//! Hardware design-space study for DeepSpeech2 using SeqPoints.
//!
//! A hardware architect wants to know how DS2 training responds to cache
//! sizing and CU count. Instead of simulating full epochs for every
//! candidate design, identify SeqPoints once and evaluate each candidate
//! from a handful of iterations (the Section VII-A "enabling simulation"
//! use case).
//!
//! ```text
//! cargo run --release --example speech_hw_study
//! ```

use seqpoint::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let corpus = Corpus::librispeech100_like(3);
    let plan = EpochPlan::new(&corpus, BatchPolicy::sorted_first_epoch(64), 3)?;
    let network = ds2();
    let profiler = Profiler::new();

    // Identify SeqPoints once on the baseline.
    let baseline = Device::new(GpuConfig::vega_fe());
    let profile = profiler.profile_epoch(&network, &plan, &baseline)?;
    let analysis = SeqPointPipeline::new().run(&profile.to_epoch_log())?;
    let points = analysis.seqpoints();
    let base_throughput = profile.throughput();
    println!(
        "baseline: {:.1} samples/s, {} SeqPoints for {} iterations\n",
        base_throughput,
        points.len(),
        plan.iterations()
    );

    // Candidate designs: sweep L2 capacity and CU count.
    let mut candidates = Vec::new();
    for l2 in [0u32, 2, 4, 8] {
        candidates.push(
            GpuConfig::builder(format!("l2-{l2}mb"))
                .l2_mib(l2)
                .build()?,
        );
    }
    for cu in [16u32, 32, 64, 96] {
        candidates.push(
            GpuConfig::builder(format!("cu-{cu}"))
                .cu_count(cu)
                .build()?,
        );
    }

    println!("design      projected samples/s    vs baseline");
    let samples: u64 = plan.total_samples() as u64;
    for cfg in candidates {
        let device = Device::new(cfg.clone());
        let reprofiled =
            profiler.profile_seq_lens(&network, plan.batch_size(), &points.seq_lens(), &device);
        let projected_epoch = points.project_total_with(|sl| {
            reprofiled
                .iter()
                .find(|p| p.seq_len == sl)
                .expect("every SeqPoint SL was re-profiled")
                .time_s
        });
        let throughput = samples as f64 / projected_epoch;
        println!(
            "{:<10}  {:>10.1}            {:>+6.1}%",
            cfg.name(),
            throughput,
            (throughput / base_throughput - 1.0) * 100.0
        );
    }
    println!(
        "\nEach design was evaluated from {} iterations, not {}.",
        points.len(),
        plan.iterations()
    );
    Ok(())
}
