//! Section VII-A: hand SeqPoint iterations to an architecture simulator.
//!
//! Detailed cycle-level simulators cannot run hours of SQNN training, but
//! they can replay a handful of kernel traces. This example identifies
//! DS2's SeqPoints, exports one trace file per SeqPoint plus a weighted
//! manifest, then plays the role of the downstream simulator: it reads
//! the bundle back and reconstructs whole-training statistics via Eq. 1.
//!
//! ```text
//! cargo run --release --example simulator_handoff
//! ```

use seqpoint::prelude::*;
use seqpoint::sqnn_profiler::export::export_seqpoint_traces;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let corpus = Corpus::librispeech100_like(13);
    let small = Corpus::from_lengths("ls-demo", corpus.lengths()[..6_000].to_vec(), 29);
    let plan = EpochPlan::new(&small, BatchPolicy::sorted_first_epoch(64), 13)?;
    let network = ds2();
    let device = Device::new(GpuConfig::vega_fe());

    // Identify SeqPoints from one profiled epoch.
    let profile = Profiler::new().profile_epoch(&network, &plan, &device)?;
    let analysis = SeqPointPipeline::new().run(&profile.to_epoch_log())?;
    let points = analysis.seqpoints();
    println!(
        "{} SeqPoints represent {} iterations ({:.1} s of training)",
        points.len(),
        plan.iterations(),
        profile.training_time_s()
    );

    // Export the bundle a simulator would consume.
    let dir = std::env::temp_dir().join("seqpoint-handoff");
    let bundle =
        export_seqpoint_traces(&dir, &network, plan.batch_size(), points, device.config())?;
    println!("\nexported to {}:", dir.display());
    for path in &bundle.traces {
        let bytes = std::fs::metadata(path)?.len();
        println!(
            "  {} ({} KiB)",
            path.file_name().unwrap().to_string_lossy(),
            bytes / 1024
        );
    }

    // ---- The "simulator" side: replay traces, apply manifest weights.
    let manifest = std::fs::read_to_string(&bundle.manifest)?;
    let mut reconstructed = 0.0;
    println!("\nreplaying traces:");
    for line in manifest.lines() {
        let mut fields = line.split('\t');
        let file = fields.next().expect("manifest line has a file");
        let seq_len: u32 = fields.next().expect("has seq_len").parse()?;
        let weight: f64 = fields.next().expect("has weight").parse()?;
        let trace =
            seqpoint::gpu_sim::trace_format::read_trace(std::fs::File::open(dir.join(file))?)?;
        let t = device.run_trace(&trace).total_time_s();
        println!(
            "  SL {seq_len:>4}: {:>6} kernels, {t:.4} s x weight {weight}",
            trace.len()
        );
        reconstructed += t * weight;
    }
    println!(
        "\nreconstructed training time: {reconstructed:.2} s (measured {:.2} s, {:+.3}%)",
        profile.training_time_s(),
        (reconstructed / profile.training_time_s() - 1.0) * 100.0
    );
    std::fs::remove_dir_all(&dir).ok();
    Ok(())
}
