//! Quickstart: profile one epoch of GNMT training on a simulated GPU and
//! distill it into SeqPoints.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use seqpoint::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. A machine-translation corpus (sequence lengths only — that is
    //    all SeqPoint observes) and GNMT-style length-bucketed batching.
    let corpus = Corpus::iwslt15_like(20_000, 7);
    let plan = EpochPlan::new(&corpus, BatchPolicy::bucketed(64, 16), 7)?;
    println!(
        "dataset: {} sentences -> {} iterations/epoch, {} unique batch SLs",
        corpus.len(),
        plan.iterations(),
        plan.unique_seq_lens().len()
    );

    // 2. Profile one epoch on the paper's baseline GPU (Vega FE).
    let device = Device::new(GpuConfig::vega_fe());
    let network = gnmt();
    let profile = Profiler::new().profile_epoch(&network, &plan, &device)?;
    println!(
        "epoch: {:.1} s training, {:.1} s eval, {:.1} s autotune",
        profile.training_time_s(),
        profile.eval_s(),
        profile.autotune_s()
    );

    // 3. Identify SeqPoints from the per-iteration (SL, runtime) log.
    let analysis = SeqPointPipeline::new().run(&profile.to_epoch_log())?;
    println!(
        "\nSeqPoints: {} iterations stand for {} (k = {}, self error {:.3}%)",
        analysis.seqpoints().len(),
        analysis.iterations(),
        analysis.k(),
        analysis.self_error_pct()
    );
    println!("\n  SL    weight   runtime");
    for p in analysis.seqpoints().points() {
        println!("  {:>4}  {:>6}   {:.4} s", p.seq_len, p.weight, p.stat);
    }

    // 4. Project the whole epoch from the SeqPoints alone (Eq. 1).
    let predicted = analysis.seqpoints().project_total();
    println!(
        "\nprojected epoch time {:.1} s vs measured {:.1} s ({:.1}x fewer iterations profiled)",
        predicted,
        analysis.actual_total(),
        analysis.iteration_reduction()
    );
    Ok(())
}
