//! End-to-end cross-configuration study: identify GNMT SeqPoints once on
//! the baseline GPU, then project total training time for every Table II
//! hardware configuration by re-profiling only the SeqPoints — the
//! paper's headline workflow (Section VI-D).
//!
//! ```text
//! cargo run --release --example translation_profiling
//! ```

use seqpoint::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let corpus = Corpus::iwslt15_like(20_000, 11);
    let plan = EpochPlan::new(&corpus, BatchPolicy::bucketed(64, 16), 11)?;
    let network = gnmt();
    let profiler = Profiler::new();

    // Identify SeqPoints once, on config #1.
    let configs = GpuConfig::table2_configs();
    let base = Device::new(configs[0].clone());
    let base_profile = profiler.profile_epoch(&network, &plan, &base)?;
    let analysis = SeqPointPipeline::new().run(&base_profile.to_epoch_log())?;
    let seqpoints = analysis.seqpoints();
    println!(
        "identified {} SeqPoints on {} ({} iterations/epoch)\n",
        seqpoints.len(),
        configs[0].name(),
        plan.iterations()
    );

    println!("config     measured    projected    error");
    for cfg in &configs {
        let device = Device::new(cfg.clone());
        // Ground truth: the full epoch (what SeqPoint lets you avoid).
        let measured = profiler
            .profile_epoch(&network, &plan, &device)?
            .training_time_s();
        // SeqPoint path: re-profile only the representative SLs.
        let reprofiled =
            profiler.profile_seq_lens(&network, plan.batch_size(), &seqpoints.seq_lens(), &device);
        let projected = seqpoints.project_total_with(|sl| {
            reprofiled
                .iter()
                .find(|p| p.seq_len == sl)
                .expect("every SeqPoint SL was re-profiled")
                .time_s
        });
        println!(
            "{}   {:>8.1} s   {:>8.1} s   {:>6.3}%",
            cfg.name(),
            measured,
            projected,
            ((projected - measured) / measured).abs() * 100.0
        );
    }
    println!(
        "\nEach projection needed {} iterations instead of {}.",
        seqpoints.len(),
        plan.iterations()
    );
    Ok(())
}
