//! Section VII-E: applying SeqPoint's SL binning to *inference*.
//!
//! A serving fleet sees requests of wildly different sequence lengths.
//! Binning the request-length space and profiling one representative per
//! bin characterizes the latency distribution with a handful of
//! measurements — the same mechanism as training SeqPoints, applied to a
//! forward-only log.
//!
//! ```text
//! cargo run --release --example inference_binning
//! ```

use gpu_sim::AutotuneTable;
use seqpoint::prelude::*;
use seqpoint_core::EpochLog;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let network = gnmt();
    let device = Device::new(GpuConfig::vega_fe());
    let mut tuner = AutotuneTable::new();

    // A day of requests: sequence lengths drawn from the translation
    // corpus distribution, served one at a time.
    let requests = Corpus::iwslt15_like(30_000, 99);
    let mut latency_of = std::collections::HashMap::new();
    let mut log = EpochLog::new();
    for &sl in requests.lengths() {
        let t = *latency_of.entry(sl).or_insert_with(|| {
            let trace =
                network.inference_trace(&IterationShape::new(1, sl), device.config(), &mut tuner);
            device.run_trace(&trace).total_time_s()
        });
        log.push(sl, t);
    }
    let total: f64 = log.actual_total();
    println!(
        "{} requests, {} unique lengths, {:.1} s total GPU time",
        log.len(),
        log.unique_sl_count(),
        total
    );

    // Bin the request-length space exactly as for training iterations.
    let analysis = SeqPointPipeline::new().run(&log)?;
    println!(
        "\n{} representative request lengths (self error {:.3}%):",
        analysis.seqpoints().len(),
        analysis.self_error_pct()
    );
    println!("  SL    requests   latency      share of fleet time");
    for p in analysis.seqpoints().points() {
        println!(
            "  {:>4}  {:>8}   {:>7.2} ms   {:>5.1}%",
            p.seq_len,
            p.weight,
            p.stat * 1e3,
            p.stat * p.weight as f64 / total * 100.0
        );
    }

    // Capacity planning from representatives only.
    let projected = analysis.seqpoints().project_total();
    println!(
        "\nfleet-time projection from {} measurements: {:.1} s (measured {:.1} s, {:+.3}%)",
        analysis.seqpoints().len(),
        projected,
        total,
        (projected / total - 1.0) * 100.0
    );
    Ok(())
}
