//! The paper's motivation (Fig. 3) as a runnable demo: why picking "a few
//! iterations" works for CNNs but not for sequence-based networks.
//!
//! ```text
//! cargo run --release --example cnn_vs_sqnn
//! ```

use gpu_sim::JitterModel;
use seqpoint::prelude::*;
use seqpoint_core::stats::coefficient_of_variation_pct;

fn bar(value: f64, scale: f64) -> String {
    let n = ((value * scale).round() as usize).clamp(1, 60);
    "#".repeat(n)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let profiler = Profiler::new();
    let iterations = 12;

    // CNN: every input scaled to 224x224 — iterations are homogeneous up
    // to hardware jitter.
    let cnn = cnn_reference();
    let mut cnn_times = Vec::new();
    for i in 0..iterations {
        let device = Device::with_jitter(GpuConfig::vega_fe(), JitterModel::new(0.02, i as u64));
        let shape = IterationShape::new(64, 1);
        cnn_times.push(profiler.profile_iteration(&cnn, &shape, &device).time_s);
    }

    // SQNN: batch sequence lengths drawn from a real-ish epoch plan.
    let corpus = Corpus::iwslt15_like(4_096, 5);
    let plan = EpochPlan::new(&corpus, BatchPolicy::bucketed(64, 16), 5)?;
    let net = gnmt();
    let mut rnn_times = Vec::new();
    let stride = (plan.iterations() / iterations).max(1);
    for (i, b) in plan
        .batches()
        .iter()
        .step_by(stride)
        .take(iterations)
        .enumerate()
    {
        let device =
            Device::with_jitter(GpuConfig::vega_fe(), JitterModel::new(0.02, 100 + i as u64));
        let shape = IterationShape::new(b.samples, b.seq_len);
        rnn_times.push(profiler.profile_iteration(&net, &shape, &device).time_s);
    }

    let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
    let (cm, rm) = (mean(&cnn_times), mean(&rnn_times));
    println!("iter   CNN (normalized)                RNN (normalized)");
    for i in 0..iterations {
        let (c, r) = (cnn_times[i] / cm, rnn_times[i] / rm);
        println!(
            "{i:>4}   {c:<5.2} {:<24} {r:<5.2} {}",
            bar(c, 12.0),
            bar(r, 12.0)
        );
    }
    println!(
        "\ncoefficient of variation: CNN {:.1}%  vs  RNN {:.1}%",
        coefficient_of_variation_pct(&cnn_times),
        coefficient_of_variation_pct(&rnn_times)
    );
    println!("-> any CNN iteration is representative; RNN iterations need SeqPoint.");
    Ok(())
}
