#!/usr/bin/env bash
# Regression gate over the committed perf trajectory: compare a freshly
# captured BENCH_stream.json (scripts/bench_stream.sh) against the
# baseline committed in the repo and fail if the stream path's median
# wall-clock regressed past the threshold. Machine-independent identity
# fields (iteration/round counts, early-stop decision) must match the
# baseline exactly — a drift there means the workload changed and the
# baseline needs a deliberate refresh, not a silent pass.
#
# Usage: scripts/bench_check.sh [fresh.json] [baseline.json]
#   BENCH_THRESHOLD_PCT  allowed median regression in percent (default 15)
set -euo pipefail

FRESH="${1:-BENCH_fresh.json}"
BASELINE="${2:-BENCH_stream.json}"
THRESHOLD_PCT="${BENCH_THRESHOLD_PCT:-15}"

[[ -f "$FRESH" ]] || { echo "bench_check: fresh report '$FRESH' not found" >&2; exit 1; }
[[ -f "$BASELINE" ]] || { echo "bench_check: baseline '$BASELINE' not found" >&2; exit 1; }

# Pull one field out of the report's single-line "stream" object.
stream_field() { # file field
  grep '"stream"' "$1" | grep -o "\"$2\": [^,}]*" | head -n1 | sed 's/.*: //'
}

require_field() { # file field
  local v
  v="$(stream_field "$1" "$2")"
  [[ -n "$v" ]] || { echo "bench_check: '$1' has no stream field '$2'" >&2; exit 1; }
  echo "$v"
}

fail=0
for field in iterations_total iterations_measured rounds early_stopped; do
  fresh_v="$(require_field "$FRESH" "$field")"
  base_v="$(require_field "$BASELINE" "$field")"
  if [[ "$fresh_v" != "$base_v" ]]; then
    echo "bench_check: identity drift in '$field': fresh=$fresh_v baseline=$base_v" >&2
    fail=1
  fi
done
if [[ "$fail" -ne 0 ]]; then
  echo "bench_check: FAILED — the benchmark no longer runs the baseline's workload;" >&2
  echo "bench_check: refresh $BASELINE deliberately if the change is intended" >&2
  exit 1
fi

fresh_median="$(require_field "$FRESH" median_wall_ms)"
base_median="$(require_field "$BASELINE" median_wall_ms)"
limit_x100=$((base_median * (100 + THRESHOLD_PCT)))

echo "bench_check: stream median_wall_ms fresh=$fresh_median baseline=$base_median (threshold +$THRESHOLD_PCT%)"
if ((fresh_median * 100 > limit_x100)); then
  echo "bench_check: FAILED — median regressed past ${THRESHOLD_PCT}% of the committed baseline" >&2
  exit 1
fi
echo "bench_check: OK"
