#!/usr/bin/env bash
# Regression gate over the committed perf trajectory: compare a freshly
# captured BENCH_stream.json (scripts/bench_stream.sh) against the
# baseline committed in the repo and fail if either path's median
# wall-clock regressed past the threshold. Machine-independent identity
# fields (iteration/round counts, early-stop decision) must match the
# baseline exactly — a drift there means the workload changed and the
# baseline needs a deliberate refresh, not a silent pass. An absent or
# non-numeric (NaN/null) field in either report is a hard failure: a
# malformed report must never read as "no regression".
#
# Usage: scripts/bench_check.sh [fresh.json] [baseline.json]
#   BENCH_THRESHOLD_PCT  allowed median regression in percent (default 15)
set -euo pipefail

FRESH="${1:-BENCH_fresh.json}"
BASELINE="${2:-BENCH_stream.json}"
THRESHOLD_PCT="${BENCH_THRESHOLD_PCT:-15}"

[[ -f "$FRESH" ]] || { echo "bench_check: fresh report '$FRESH' not found" >&2; exit 1; }
[[ -f "$BASELINE" ]] || { echo "bench_check: baseline '$BASELINE' not found" >&2; exit 1; }

# The gate is pinned to the operator-graph streaming engine: both
# reports must declare it, so a future engine swap has to refresh the
# baseline (and this check) deliberately instead of inheriting a stale
# trajectory. Reports predating the field hard-fail as malformed.
require_engine() { # file
  local v
  v="$(grep -o '"engine": "[^"]*"' "$1" | head -n1 | sed 's/.*: "//; s/"$//')"
  if [[ "$v" != "operator-graph" ]]; then
    echo "bench_check: '$1' engine is '${v:-missing}', expected 'operator-graph'" >&2
    exit 1
  fi
}

# Pull one field out of a report's single-line "stream"/"serve" object.
path_field() { # file path field
  grep "\"$2\"" "$1" | grep -o "\"$3\": [^,}]*" | head -n1 | sed 's/.*: //'
}

# A field that must exist and be a plain non-negative integer. "NaN",
# "null", an empty match, or scientific notation all hard-fail.
require_int() { # file path field
  local v
  v="$(path_field "$1" "$2" "$3")"
  if [[ -z "$v" ]]; then
    echo "bench_check: '$1' is missing $2.$3" >&2
    exit 1
  fi
  if ! [[ "$v" =~ ^[0-9]+$ ]]; then
    echo "bench_check: '$1' has non-numeric $2.$3 = '$v'" >&2
    exit 1
  fi
  echo "$v"
}

# A field that must exist and be a JSON boolean.
require_bool() { # file path field
  local v
  v="$(path_field "$1" "$2" "$3")"
  if ! [[ "$v" == "true" || "$v" == "false" ]]; then
    echo "bench_check: '$1' has missing/malformed $2.$3 = '$v'" >&2
    exit 1
  fi
  echo "$v"
}

check_path() { # stream|serve
  local path="$1" fail=0 fresh_v base_v
  for field in iterations_total iterations_measured rounds; do
    fresh_v="$(require_int "$FRESH" "$path" "$field")"
    base_v="$(require_int "$BASELINE" "$path" "$field")"
    if [[ "$fresh_v" != "$base_v" ]]; then
      echo "bench_check: identity drift in $path.$field: fresh=$fresh_v baseline=$base_v" >&2
      fail=1
    fi
  done
  fresh_v="$(require_bool "$FRESH" "$path" early_stopped)"
  base_v="$(require_bool "$BASELINE" "$path" early_stopped)"
  if [[ "$fresh_v" != "$base_v" ]]; then
    echo "bench_check: identity drift in $path.early_stopped: fresh=$fresh_v baseline=$base_v" >&2
    fail=1
  fi
  if [[ "$fail" -ne 0 ]]; then
    echo "bench_check: FAILED — the benchmark no longer runs the baseline's workload;" >&2
    echo "bench_check: refresh $BASELINE deliberately if the change is intended" >&2
    exit 1
  fi

  local fresh_median base_median limit_x100
  fresh_median="$(require_int "$FRESH" "$path" median_wall_ms)"
  base_median="$(require_int "$BASELINE" "$path" median_wall_ms)"
  if [[ "$base_median" -eq 0 ]]; then
    echo "bench_check: baseline $path.median_wall_ms is 0; the baseline is malformed" >&2
    exit 1
  fi
  limit_x100=$((base_median * (100 + THRESHOLD_PCT)))
  echo "bench_check: $path median_wall_ms fresh=$fresh_median baseline=$base_median (threshold +$THRESHOLD_PCT%)"
  if ((fresh_median * 100 > limit_x100)); then
    echo "bench_check: FAILED — $path median regressed past ${THRESHOLD_PCT}% of the committed baseline" >&2
    exit 1
  fi
}

require_engine "$FRESH"
require_engine "$BASELINE"
check_path stream
check_path serve
echo "bench_check: OK"
