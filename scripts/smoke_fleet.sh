#!/usr/bin/env bash
# Fleet + multi-tenancy smoke test, end to end through the real binary:
#
#  1. a daemon with NO supervised workers (--workers 0) is fed by three
#     externally started `seqpoint worker --connect` processes that
#     register into the fleet pool over token-gated TCP;
#  2. two client identities submit a duplicate pair and a distinct job:
#     the duplicate is answered from the result cache (single-flight) —
#     byte-identical bytes, `cache_hit=true` in `--stats`, and the
#     daemon's `cache_hits` counter moves — while the distinct job runs
#     fresh;
#  3. a batch-class flood from one tenant does not starve another
#     tenant's interactive job: the interactive job finishes while
#     flood jobs are still queued behind it;
#  4. SIGKILLing one pooled worker mid-job costs at most one round: the
#     job still completes byte-identically to the offline run on the
#     surviving workers, and the daemon accounts the reclaimed lease.
#
# Shared by scripts/verify.sh and the CI `fleet-smoke` job so the two
# cannot drift apart.
#
# On failure, daemon/worker logs are copied to $SMOKE_ARTIFACT_DIR (when
# set) so CI can upload them.
#
# Usage: scripts/smoke_fleet.sh [path/to/seqpoint]
set -euo pipefail

BIN="${1:-target/release/seqpoint}"
SMOKE_DIR="$(mktemp -d)"
SERVE_PID=""
WORKER_PIDS=()
cleanup() {
  status=$?
  if [[ $status -ne 0 && -n "${SMOKE_ARTIFACT_DIR:-}" ]]; then
    mkdir -p "$SMOKE_ARTIFACT_DIR"
    cp "$SMOKE_DIR"/*.log "$SMOKE_ARTIFACT_DIR"/ 2>/dev/null || true
  fi
  for pid in "${WORKER_PIDS[@]:-}"; do
    kill -9 "$pid" 2>/dev/null || true
  done
  if [[ -n "$SERVE_PID" ]] && kill -0 "$SERVE_PID" 2>/dev/null; then
    kill -9 "$SERVE_PID" 2>/dev/null || true
  fi
  rm -rf "$SMOKE_DIR"
}
trap cleanup EXIT

SOCK="$SMOKE_DIR/sock"
STATE="$SMOKE_DIR/state"
TOKEN="$SMOKE_DIR/token"
printf 'smoke-fleet-%s\n' "$RANDOM$RANDOM" > "$TOKEN"

# One job slot so fairness ordering is observable; no supervised
# workers — every round must be leased from the external fleet.
SERVE_ARGS=(serve --socket "$SOCK" --state-dir "$STATE" --jobs 1
            --placement subprocess --workers 0 --fair --quota 8
            --tcp 127.0.0.1:0 --token-file "$TOKEN" --retain-jobs 32)

tcp_addr() {
  for _ in $(seq 1 200); do
    if [[ -s "$STATE/serve.tcp" ]]; then
      cat "$STATE/serve.tcp"
      return 0
    fi
    sleep 0.05
  done
  echo "smoke_fleet: serve.tcp never appeared" >&2
  return 1
}

ping_line() {
  "$BIN" submit --connect "$ADDR" --token-file "$TOKEN" --ping
}

# Extract a `name=value` field from a pong line (fleet_idle may hold a
# space-separated pid list, so split on commas, not spaces).
pong_field() {
  ping_line | tr ',' '\n' | sed -n "s/^$1=//p"
}

wait_ready() {
  for _ in $(seq 1 200); do
    if ping_line >/dev/null 2>&1; then
      return 0
    fi
    sleep 0.05
  done
  echo "smoke_fleet: server never became ready over TCP" >&2
  return 1
}

wait_fleet() {
  want=$1
  for _ in $(seq 1 200); do
    if [[ "$(pong_field fleet_idle | wc -w)" -ge "$want" ]]; then
      return 0
    fi
    sleep 0.05
  done
  echo "smoke_fleet: fleet never reached $want idle workers" >&2
  return 1
}

submit() {
  "$BIN" submit --connect "$ADDR" --token-file "$TOKEN" "$@"
}

SPEC_A=(--model gnmt --dataset iwslt15 --samples 6000 --batch 16
        --shards 3 --round 32 --window 128 --quant 8 --seed 20)
SPEC_B=(--model gnmt --dataset iwslt15 --samples 5000 --batch 16
        --shards 3 --round 32 --window 128 --quant 8 --seed 21)
# Paced and never early-stopping: the SIGKILL lands mid-job.
SPEC_LONG=(--model gnmt --dataset iwslt15 --samples 4000 --batch 16
           --shards 3 --round 16 --window 99999999 --quant 8 --seed 22)

# Offline references.
"$BIN" stream "${SPEC_A[@]}"    > "$SMOKE_DIR/ref_a.txt"
"$BIN" stream "${SPEC_B[@]}"    > "$SMOKE_DIR/ref_b.txt"
"$BIN" stream "${SPEC_LONG[@]}" > "$SMOKE_DIR/ref_long.txt"

# --- Part 1: bring up the daemon and a 3-worker external fleet.
"$BIN" "${SERVE_ARGS[@]}" 2>"$SMOKE_DIR/serve.log" &
SERVE_PID=$!
ADDR="$(tcp_addr)"
wait_ready
for i in 1 2 3; do
  "$BIN" worker --connect "$ADDR" --token-file "$TOKEN" \
    2>"$SMOKE_DIR/worker$i.log" &
  WORKER_PIDS+=($!)
  disown $!
done
wait_fleet 3
echo "smoke_fleet: 3 external workers registered into the pool"

# --- Part 2: duplicate pair across two tenants is single-flighted.
submit --client alice --class interactive "${SPEC_A[@]}" \
  --job fleet-a1 > "$SMOKE_DIR/served_a1.txt"
diff "$SMOKE_DIR/ref_a.txt" "$SMOKE_DIR/served_a1.txt"
# Bob submits the identical experiment: answered from the cache, not
# re-profiled — same bytes, cache_hit=true, hit counter moves.
submit --client bob --class interactive "${SPEC_A[@]}" \
  --job fleet-a2 --stats > "$SMOKE_DIR/served_a2.txt" 2> "$SMOKE_DIR/stats_a2.log"
diff "$SMOKE_DIR/served_a1.txt" "$SMOKE_DIR/served_a2.txt"
grep -q "cache_hit=true" "$SMOKE_DIR/stats_a2.log" \
  || { echo "smoke_fleet: duplicate was not a cache hit:" >&2; cat "$SMOKE_DIR/stats_a2.log" >&2; exit 1; }
[[ "$(pong_field cache_hits)" -ge 1 ]] \
  || { echo "smoke_fleet: cache_hits counter did not move" >&2; exit 1; }
# A distinct job runs fresh (no hit-count change) and matches offline.
HITS_BEFORE="$(pong_field cache_hits)"
submit --client bob "${SPEC_B[@]}" --job fleet-b1 > "$SMOKE_DIR/served_b1.txt"
diff "$SMOKE_DIR/ref_b.txt" "$SMOKE_DIR/served_b1.txt"
[[ "$(pong_field cache_hits)" -eq "$HITS_BEFORE" ]] \
  || { echo "smoke_fleet: a distinct job was wrongly served from cache" >&2; exit 1; }
echo "smoke_fleet: duplicate submission single-flighted (byte-identical, counted); distinct job ran fresh"

# --- Part 3: a batch flood does not starve an interactive job.
for i in 1 2 3 4 5; do
  submit --client flood --class batch \
    --model gnmt --dataset iwslt15 --samples 4000 --batch 16 \
    --shards 3 --round 16 --window 99999999 --quant 8 --seed "3$i" \
    --throttle-ms 100 --job "flood-$i" --detach >/dev/null
done
submit --client alice --class interactive \
  --model gnmt --dataset iwslt15 --samples 6000 --batch 16 \
  --shards 3 --round 32 --window 128 --quant 8 --seed 40 \
  --job vip --detach >/dev/null
submit --result vip >/dev/null
# The interactive job finished; under fair weighted queueing at least
# the tail of the flood must still be waiting behind it.
submit --status flood-5 | grep -q ",queued," \
  || { echo "smoke_fleet: batch flood starved the interactive job" >&2;
       submit --status flood-5 >&2; exit 1; }
echo "smoke_fleet: interactive job finished ahead of the batch flood tail"
for i in 1 2 3 4 5; do
  submit --result "flood-$i" >/dev/null
done

# --- Part 4: SIGKILL one pooled worker mid-job; the survivors finish
# the job byte-identically and the dead lease is reclaimed.
submit --client alice "${SPEC_LONG[@]}" --throttle-ms 100 \
  --job fleet-long --detach >/dev/null
sleep 1
submit --status fleet-long | grep -q ",running," \
  || { echo "smoke_fleet: long job is not running before SIGKILL" >&2; exit 1; }
kill -9 "${WORKER_PIDS[0]}"
submit --result fleet-long > "$SMOKE_DIR/served_long.txt"
diff "$SMOKE_DIR/ref_long.txt" "$SMOKE_DIR/served_long.txt"
[[ "$(pong_field fleet_reclaimed)" -ge 1 ]] \
  || { echo "smoke_fleet: SIGKILLed worker was never reclaimed" >&2; exit 1; }
[[ "$(pong_field fleet_idle | wc -w)" -eq 2 ]] \
  || { echo "smoke_fleet: idle fleet should be down to the 2 survivors" >&2; ping_line >&2; exit 1; }
echo "smoke_fleet: job survived a SIGKILLed pooled worker and matches offline stream output"

submit --shutdown >/dev/null
wait "$SERVE_PID"
SERVE_PID=""
echo "smoke_fleet: OK"
