#!/usr/bin/env bash
# Service smoke test, end to end through the real binary:
#
#  1. two quick-scale jobs submitted concurrently to `seqpoint serve`
#     (subprocess worker placement) must return selections byte-identical
#     to offline `seqpoint stream` runs of the same specs;
#  2. SIGTERM mid-job must drain gracefully — the in-flight job's state
#     is checkpointed, the process exits 0 — and a restarted server must
#     resume the job from that checkpoint and complete it with the exact
#     offline selection.
#
# Shared by scripts/verify.sh and the CI `service-smoke` job so the two
# cannot drift apart.
#
# Usage: scripts/smoke_service.sh [path/to/seqpoint]
set -euo pipefail

BIN="${1:-target/release/seqpoint}"
SMOKE_DIR="$(mktemp -d)"
SERVE_PID=""
cleanup() {
  status=$?
  if [[ $status -ne 0 && -n "${SMOKE_ARTIFACT_DIR:-}" ]]; then
    mkdir -p "$SMOKE_ARTIFACT_DIR"
    cp "$SMOKE_DIR"/*.log "$SMOKE_ARTIFACT_DIR"/ 2>/dev/null || true
  fi
  if [[ -n "$SERVE_PID" ]] && kill -0 "$SERVE_PID" 2>/dev/null; then
    kill -9 "$SERVE_PID" 2>/dev/null || true
  fi
  rm -rf "$SMOKE_DIR"
}
trap cleanup EXIT

SOCK="$SMOKE_DIR/sock"
STATE="$SMOKE_DIR/state"
SERVE_ARGS=(serve --socket "$SOCK" --state-dir "$STATE" --jobs 2
            --placement subprocess --workers 2
            --metrics-addr 127.0.0.1:0)

wait_ready() {
  for _ in $(seq 1 200); do
    if "$BIN" submit --socket "$SOCK" --ping >/dev/null 2>&1; then
      return 0
    fi
    sleep 0.05
  done
  echo "smoke_service: server never became ready" >&2
  return 1
}

SPEC_A=(--model gnmt --dataset iwslt15 --samples 6000 --batch 16
        --shards 3 --round 32 --window 128 --quant 8 --seed 20)
SPEC_B=(--model gnmt --dataset iwslt15 --samples 5000 --batch 16
        --shards 3 --round 32 --window 128 --quant 8 --seed 21)
# A paced job that never early-stops (~16 rounds at 150 ms each), so the
# SIGTERM below is guaranteed to land mid-run.
SPEC_LONG=(--model gnmt --dataset iwslt15 --samples 4000 --batch 16
           --shards 3 --round 16 --window 99999999 --quant 8 --seed 22)

# Offline references.
"$BIN" stream "${SPEC_A[@]}"    > "$SMOKE_DIR/ref_a.txt"
"$BIN" stream "${SPEC_B[@]}"    > "$SMOKE_DIR/ref_b.txt"
"$BIN" stream "${SPEC_LONG[@]}" > "$SMOKE_DIR/ref_long.txt"

# --- Part 1: concurrent served jobs match the offline runs exactly.
"$BIN" "${SERVE_ARGS[@]}" 2>"$SMOKE_DIR/serve1.log" &
SERVE_PID=$!
wait_ready
"$BIN" submit --socket "$SOCK" "${SPEC_A[@]}" --job smoke-a --detach >/dev/null
"$BIN" submit --socket "$SOCK" "${SPEC_B[@]}" --job smoke-b --detach >/dev/null
"$BIN" submit --socket "$SOCK" --result smoke-a > "$SMOKE_DIR/served_a.txt"
"$BIN" submit --socket "$SOCK" --result smoke-b > "$SMOKE_DIR/served_b.txt"
diff "$SMOKE_DIR/ref_a.txt" "$SMOKE_DIR/served_a.txt"
diff "$SMOKE_DIR/ref_b.txt" "$SMOKE_DIR/served_b.txt"
echo "smoke_service: two concurrent served jobs match offline stream output"

# --- Metrics: scrape the plaintext endpoint (ephemeral port published
# in STATE/serve.metrics) and assert the counters the dashboards rely
# on are exported. The snapshot lands next to the daemon logs so a
# failing run uploads it as a CI artifact.
METRICS_ADDR="$(cat "$STATE/serve.metrics")"
exec 3<>"/dev/tcp/${METRICS_ADDR%:*}/${METRICS_ADDR##*:}"
printf 'GET / HTTP/1.0\r\n\r\n' >&3
cat <&3 > "$SMOKE_DIR/metrics.snapshot.log"
exec 3<&- 3>&-
grep -q '^HTTP/1.0 200 OK' "$SMOKE_DIR/metrics.snapshot.log" \
  || { echo "smoke_service: metrics scrape did not return 200" >&2; exit 1; }
for name in seqpoint_uptime_seconds seqpoint_connections_opened_total \
            seqpoint_bytes_in_total seqpoint_bytes_out_total \
            seqpoint_jobs_submitted_total seqpoint_jobs_completed_total \
            seqpoint_rounds_total seqpoint_items_total \
            seqpoint_queue_dequeued_total seqpoint_cache_misses_total; do
  grep -q "^$name" "$SMOKE_DIR/metrics.snapshot.log" \
    || { echo "smoke_service: scrape is missing $name" >&2; exit 1; }
done
grep -q '^seqpoint_jobs_completed_total 2$' "$SMOKE_DIR/metrics.snapshot.log" \
  || { echo "smoke_service: expected 2 completed jobs in the scrape" >&2; exit 1; }
echo "smoke_service: metrics endpoint serves the expected counters"

# --- Part 2: SIGTERM drain checkpoints the in-flight job ...
"$BIN" submit --socket "$SOCK" "${SPEC_LONG[@]}" --throttle-ms 150 \
  --job smoke-long --detach >/dev/null
sleep 1
"$BIN" submit --socket "$SOCK" --status smoke-long | grep -q ",running," \
  || { echo "smoke_service: long job is not running before SIGTERM" >&2; exit 1; }
kill -TERM "$SERVE_PID"
wait "$SERVE_PID"
SERVE_PID=""
test -s "$STATE/smoke-long.ckpt.json" \
  || { echo "smoke_service: drain did not checkpoint the in-flight job" >&2; exit 1; }
test ! -e "$STATE/smoke-long.result.txt" \
  || { echo "smoke_service: job finished before SIGTERM; drain untested" >&2; exit 1; }
echo "smoke_service: SIGTERM drained with the in-flight job checkpointed"

# --- ... and a restart resumes it to the exact offline selection.
"$BIN" "${SERVE_ARGS[@]}" 2>"$SMOKE_DIR/serve2.log" &
SERVE_PID=$!
wait_ready
"$BIN" submit --socket "$SOCK" --result smoke-long > "$SMOKE_DIR/served_long.txt"
diff "$SMOKE_DIR/ref_long.txt" "$SMOKE_DIR/served_long.txt"
"$BIN" submit --socket "$SOCK" --shutdown >/dev/null
wait "$SERVE_PID"
SERVE_PID=""
echo "smoke_service: drained job resumed after restart and matches offline stream output"
