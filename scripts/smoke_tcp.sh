#!/usr/bin/env bash
# TCP-transport smoke test, end to end through the real binary:
#
#  1. a daemon listening on the Unix socket AND a token-gated TCP port
#     serves a job submitted over TCP byte-identically to the offline
#     `seqpoint stream` run of the same spec;
#  2. a TCP client with a wrong (or missing) token is rejected before
#     any job state is touched;
#  3. SIGTERM mid-job drains gracefully, and a restarted daemon resumes
#     the job from its checkpoint — driven entirely over TCP with the
#     token — to the exact offline selection.
#
# Shared by scripts/verify.sh and the CI `service-smoke` job so the two
# cannot drift apart.
#
# Usage: scripts/smoke_tcp.sh [path/to/seqpoint]
set -euo pipefail

BIN="${1:-target/release/seqpoint}"
SMOKE_DIR="$(mktemp -d)"
SERVE_PID=""
cleanup() {
  status=$?
  if [[ $status -ne 0 && -n "${SMOKE_ARTIFACT_DIR:-}" ]]; then
    mkdir -p "$SMOKE_ARTIFACT_DIR"
    cp "$SMOKE_DIR"/*.log "$SMOKE_ARTIFACT_DIR"/ 2>/dev/null || true
  fi
  if [[ -n "$SERVE_PID" ]] && kill -0 "$SERVE_PID" 2>/dev/null; then
    kill -9 "$SERVE_PID" 2>/dev/null || true
  fi
  rm -rf "$SMOKE_DIR"
}
trap cleanup EXIT

SOCK="$SMOKE_DIR/sock"
STATE="$SMOKE_DIR/state"
TOKEN="$SMOKE_DIR/token"
BAD_TOKEN="$SMOKE_DIR/bad-token"
printf 'smoke-tcp-%s\n' "$RANDOM$RANDOM" > "$TOKEN"
printf 'not-the-token\n' > "$BAD_TOKEN"

SERVE_ARGS=(serve --socket "$SOCK" --state-dir "$STATE" --jobs 2
            --placement subprocess --workers 2
            --tcp 127.0.0.1:0 --token-file "$TOKEN" --retain-jobs 8)

# The daemon publishes its actual TCP address (port 0 = ephemeral) in
# STATE/serve.tcp; wait for it, then wait for an authenticated pong.
tcp_addr() {
  for _ in $(seq 1 200); do
    if [[ -s "$STATE/serve.tcp" ]]; then
      cat "$STATE/serve.tcp"
      return 0
    fi
    sleep 0.05
  done
  echo "smoke_tcp: serve.tcp never appeared" >&2
  return 1
}

wait_ready() {
  for _ in $(seq 1 200); do
    if "$BIN" submit --connect "$ADDR" --token-file "$TOKEN" --ping >/dev/null 2>&1; then
      return 0
    fi
    sleep 0.05
  done
  echo "smoke_tcp: server never became ready over TCP" >&2
  return 1
}

SPEC=(--model gnmt --dataset iwslt15 --samples 6000 --batch 16
      --shards 3 --round 32 --window 128 --quant 8 --seed 20)
# A paced job that never early-stops, so the SIGTERM lands mid-run.
SPEC_LONG=(--model gnmt --dataset iwslt15 --samples 4000 --batch 16
           --shards 3 --round 16 --window 99999999 --quant 8 --seed 22)

# Offline references.
"$BIN" stream "${SPEC[@]}"      > "$SMOKE_DIR/ref.txt"
"$BIN" stream "${SPEC_LONG[@]}" > "$SMOKE_DIR/ref_long.txt"

# --- Part 1: a TCP-served job matches the offline run exactly.
"$BIN" "${SERVE_ARGS[@]}" 2>"$SMOKE_DIR/serve1.log" &
SERVE_PID=$!
ADDR="$(tcp_addr)"
wait_ready
"$BIN" submit --connect "$ADDR" --token-file "$TOKEN" "${SPEC[@]}" \
  --job smoke-tcp > "$SMOKE_DIR/served_tcp.txt"
diff "$SMOKE_DIR/ref.txt" "$SMOKE_DIR/served_tcp.txt"
# The same result read over the Unix socket is the same bytes.
"$BIN" submit --socket "$SOCK" --result smoke-tcp > "$SMOKE_DIR/served_unix.txt"
diff "$SMOKE_DIR/served_tcp.txt" "$SMOKE_DIR/served_unix.txt"
echo "smoke_tcp: TCP-served job matches offline stream output (and the Unix view)"

# --- Part 2: wrong/missing tokens are rejected.
if "$BIN" submit --connect "$ADDR" --token-file "$BAD_TOKEN" --ping \
    >/dev/null 2>"$SMOKE_DIR/bad.log"; then
  echo "smoke_tcp: a wrong token was accepted" >&2
  exit 1
fi
grep -qi "token\|handshake" "$SMOKE_DIR/bad.log" \
  || { echo "smoke_tcp: wrong-token error is unhelpful:" >&2; cat "$SMOKE_DIR/bad.log" >&2; exit 1; }
if "$BIN" submit --connect "$ADDR" --ping >/dev/null 2>&1; then
  echo "smoke_tcp: a missing token was accepted" >&2
  exit 1
fi
echo "smoke_tcp: wrong and missing tokens are rejected"

# --- Part 3: drain/resume, driven over TCP.
"$BIN" submit --connect "$ADDR" --token-file "$TOKEN" "${SPEC_LONG[@]}" \
  --throttle-ms 150 --job smoke-tcp-long --detach >/dev/null
sleep 1
"$BIN" submit --connect "$ADDR" --token-file "$TOKEN" --status smoke-tcp-long \
  | grep -q ",running," \
  || { echo "smoke_tcp: long job is not running before SIGTERM" >&2; exit 1; }
kill -TERM "$SERVE_PID"
wait "$SERVE_PID"
SERVE_PID=""
test -s "$STATE/smoke-tcp-long.ckpt.json" \
  || { echo "smoke_tcp: drain did not checkpoint the in-flight job" >&2; exit 1; }
test ! -e "$STATE/serve.tcp" \
  || { echo "smoke_tcp: drain left the serve.tcp address file behind" >&2; exit 1; }

"$BIN" "${SERVE_ARGS[@]}" 2>"$SMOKE_DIR/serve2.log" &
SERVE_PID=$!
ADDR="$(tcp_addr)"
wait_ready
"$BIN" submit --connect "$ADDR" --token-file "$TOKEN" --result smoke-tcp-long \
  > "$SMOKE_DIR/served_long.txt"
diff "$SMOKE_DIR/ref_long.txt" "$SMOKE_DIR/served_long.txt"
"$BIN" submit --connect "$ADDR" --token-file "$TOKEN" --shutdown >/dev/null
wait "$SERVE_PID"
SERVE_PID=""
echo "smoke_tcp: drained job resumed after restart over TCP and matches offline stream output"
