#!/usr/bin/env bash
# Full verification: the tier-1 command plus workspace-wide tests,
# clippy (warnings are errors), and a warning-free doc build.
# CI (.github/workflows/ci.yml) runs the same phases, split into jobs so
# a clippy regression cannot mask a test failure.
set -euo pipefail
cd "$(dirname "$0")/.."

CURRENT_STEP="init"
step() {
  CURRENT_STEP="$1"
  echo
  echo "==> [${CURRENT_STEP}] $2"
}
trap 'echo "verify: FAILED at step [${CURRENT_STEP}]" >&2' ERR

step build "release build (tier-1)"
cargo build --release

# Covers tier-1's `cargo test -q` as a strict subset (the root package is
# a workspace member), so the root suite isn't run twice.
step test "workspace tests"
cargo test -q --workspace

step smoke "checkpoint/resume smoke (seqpoint stream)"
bash scripts/smoke_stream.sh target/release/seqpoint

step service-smoke "service smoke (serve/submit/worker, SIGTERM drain + resume)"
bash scripts/smoke_service.sh target/release/seqpoint

step tcp-smoke "TCP transport smoke (token auth, served-vs-offline diff, drain/resume over TCP)"
bash scripts/smoke_tcp.sh target/release/seqpoint

step fleet-smoke "fleet smoke (external worker pool, single-flight cache, fairness, SIGKILL survival)"
bash scripts/smoke_fleet.sh target/release/seqpoint

step bench-gate "perf capture + regression gate vs committed BENCH_stream.json"
BENCH_FRESH="$(mktemp)"
bash scripts/bench_stream.sh target/release/seqpoint "$BENCH_FRESH"
bash scripts/bench_check.sh "$BENCH_FRESH" BENCH_stream.json
rm -f "$BENCH_FRESH"

step fmt "rustfmt (check)"
cargo fmt --all --check

step lint "seqpoint-lint (lock order, panic paths, protocol drift)"
cargo run --release -q -p seqpoint_analysis --bin seqpoint-lint

step clippy "clippy (deny warnings)"
cargo clippy --workspace --all-targets -- -D warnings

step docs "docs (deny warnings)"
RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps --quiet

step targets "bench + example targets compile"
cargo build --workspace --benches --examples --quiet

echo
echo "verify: OK"
