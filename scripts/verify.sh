#!/usr/bin/env bash
# Full verification: the tier-1 command plus workspace-wide tests,
# clippy (warnings are errors), and a warning-free doc build.
# CI (.github/workflows/ci.yml) runs exactly this script.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> release build"
cargo build --release

# Covers tier-1's `cargo test -q` as a strict subset (the root package is
# a workspace member), so the root suite isn't run twice.
echo "==> workspace tests"
cargo test -q --workspace

echo "==> clippy (deny warnings)"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> docs (deny warnings)"
RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps --quiet

echo "==> bench + example targets compile"
cargo build --workspace --benches --examples --quiet

echo "verify: OK"
