#!/usr/bin/env bash
# Checkpoint/resume smoke test, end to end through the real binary: an
# uninterrupted `seqpoint stream` run, a run preempted after 2 rounds
# (state checkpointed), and a resume from that checkpoint must print
# byte-identical selections. Shared by scripts/verify.sh and CI so the
# two cannot drift apart.
#
# Usage: scripts/smoke_stream.sh [path/to/seqpoint]
set -euo pipefail

BIN="${1:-target/release/seqpoint}"
SMOKE_DIR="$(mktemp -d)"
cleanup() { rm -rf "$SMOKE_DIR"; }
trap cleanup EXIT

STREAM_ARGS=(--model gnmt --dataset iwslt15 --samples 6000 --batch 16
             --shards 3 --round 32 --window 128 --quant 8)

"$BIN" stream "${STREAM_ARGS[@]}" > "$SMOKE_DIR/uninterrupted.txt"
"$BIN" stream "${STREAM_ARGS[@]}" \
  --checkpoint "$SMOKE_DIR/ckpt.json" --checkpoint-every 1 --max-rounds 2 \
  > "$SMOKE_DIR/paused.txt"
grep -q "paused" "$SMOKE_DIR/paused.txt"
test -s "$SMOKE_DIR/ckpt.json"
"$BIN" stream "${STREAM_ARGS[@]}" \
  --checkpoint "$SMOKE_DIR/ckpt.json" > "$SMOKE_DIR/resumed.txt"
diff "$SMOKE_DIR/uninterrupted.txt" "$SMOKE_DIR/resumed.txt"
echo "smoke: interrupted+resumed run matches the uninterrupted run"
