#!/usr/bin/env bash
# Quick-scale perf capture: wall-clock, iterations-measured, and round
# counts for (a) the offline `seqpoint stream` path and (b) the same job
# served through `seqpoint serve` with subprocess workers. Both paths
# run BENCH_REPS times (default 5) and the report carries the median
# wall-clock alongside the first run's, so one noisy run cannot poison
# the trajectory. Each served rep restarts the daemon on a fresh state
# dir, so the result cache cannot answer rep N with rep 1's bytes and
# every timing covers a real profiling run. Emits a JSON report so CI
# can archive the perf trajectory run over run and
# scripts/bench_check.sh can gate on it.
#
# Usage: scripts/bench_stream.sh [path/to/seqpoint] [out.json]
set -euo pipefail

BIN="${1:-target/release/seqpoint}"
OUT="${2:-BENCH_stream.json}"
REPS="${BENCH_REPS:-5}"
BENCH_DIR="$(mktemp -d)"
SERVE_PID=""
cleanup() {
  if [[ -n "$SERVE_PID" ]] && kill -0 "$SERVE_PID" 2>/dev/null; then
    kill -9 "$SERVE_PID" 2>/dev/null || true
  fi
  rm -rf "$BENCH_DIR"
}
trap cleanup EXIT

SPEC=(--model gnmt --dataset iwslt15 --samples 6000 --batch 16
      --shards 3 --round 32 --window 128 --quant 8 --seed 20)
SOCK="$BENCH_DIR/sock"

now_ms() { date +%s%3N; }
field() { grep "^$2," "$1" | head -n1 | cut -d, -f2; }
median() { # one value per argument
  printf '%s\n' "$@" | sort -n | awk '
    { v[NR] = $1 }
    END {
      if (NR % 2) { print v[(NR + 1) / 2] }
      else { print int((v[NR / 2] + v[NR / 2 + 1]) / 2) }
    }'
}

# --- offline streaming path, repeated so the median is meaningful
STREAM_RUNS=()
for rep in $(seq 1 "$REPS"); do
  t0="$(now_ms)"
  "$BIN" stream "${SPEC[@]}" > "$BENCH_DIR/stream.$rep.txt"
  t1="$(now_ms)"
  STREAM_RUNS+=($((t1 - t0)))
  # Repeats must be byte-identical re-runs of the same job, or their
  # timings are not comparable.
  diff "$BENCH_DIR/stream.1.txt" "$BENCH_DIR/stream.$rep.txt"
done
cp "$BENCH_DIR/stream.1.txt" "$BENCH_DIR/stream.txt"
STREAM_MS="${STREAM_RUNS[0]}"
STREAM_MEDIAN_MS="$(median "${STREAM_RUNS[@]}")"

# --- served path (submit + wait through the daemon, subprocess
# workers), one fresh daemon per rep so every timing is an uncached run
SERVE_RUNS=()
for rep in $(seq 1 "$REPS"); do
  "$BIN" serve --socket "$SOCK" --state-dir "$BENCH_DIR/state.$rep" --jobs 1 \
    --placement subprocess --workers 2 2>"$BENCH_DIR/serve.$rep.log" &
  SERVE_PID=$!
  for _ in $(seq 1 200); do
    "$BIN" submit --socket "$SOCK" --ping >/dev/null 2>&1 && break
    sleep 0.05
  done
  t0="$(now_ms)"
  "$BIN" submit --socket "$SOCK" "${SPEC[@]}" --job bench > "$BENCH_DIR/served.$rep.txt"
  t1="$(now_ms)"
  SERVE_RUNS+=($((t1 - t0)))
  "$BIN" submit --socket "$SOCK" --shutdown >/dev/null
  wait "$SERVE_PID"
  SERVE_PID=""
  diff "$BENCH_DIR/served.1.txt" "$BENCH_DIR/served.$rep.txt"
done
cp "$BENCH_DIR/served.1.txt" "$BENCH_DIR/served.txt"
SERVE_MS="${SERVE_RUNS[0]}"
SERVE_MEDIAN_MS="$(median "${SERVE_RUNS[@]}")"

# The two paths must agree before their numbers are comparable.
diff "$BENCH_DIR/stream.txt" "$BENCH_DIR/served.txt"

emit_path() { # file wall_ms
  printf '{"wall_ms": %s, "iterations_total": %s, "iterations_measured": %s, "rounds": %s, "early_stopped": %s}' \
    "$2" \
    "$(field "$1" iterations_total)" \
    "$(field "$1" iterations_measured)" \
    "$(field "$1" rounds)" \
    "$(field "$1" early_stopped)"
}

{
  printf '{\n'
  printf '  "benchmark": "quick-scale gnmt/iwslt15 streaming selection",\n'
  # The streaming implementation these timings cover. Bumped in
  # lockstep with bench_check.sh when the engine is replaced, so the
  # committed trajectory can never silently compare across engines.
  printf '  "engine": "operator-graph",\n'
  printf '  "timestamp_utc": "%s",\n' "$(date -u +%Y-%m-%dT%H:%M:%SZ)"
  printf '  "toolchain": "%s",\n' "$(rustc --version 2>/dev/null || echo unknown)"
  printf '  "stream": %s,\n' "$(emit_path "$BENCH_DIR/stream.txt" "$STREAM_MS" \
    | sed "s/}$/, \"median_wall_ms\": $STREAM_MEDIAN_MS, \"reps\": $REPS}/")"
  printf '  "serve": %s\n' "$(emit_path "$BENCH_DIR/served.txt" "$SERVE_MS" \
    | sed "s/}$/, \"median_wall_ms\": $SERVE_MEDIAN_MS, \"reps\": $REPS}/")"
  printf '}\n'
} > "$OUT"

echo "bench_stream: wrote $OUT"
cat "$OUT"
