//! Offline shim for `proptest`.
//!
//! The build environment has no crates.io access, so this crate
//! re-implements the subset of proptest the workspace's property tests
//! use: the [`Strategy`] trait with `prop_map`, range and tuple
//! strategies, [`collection::vec`], the [`proptest!`] macro with
//! `#![proptest_config(...)]`, and the `prop_assert*` / [`prop_assume!`]
//! macros. Each test runs its configured number of random cases seeded
//! deterministically from the test's name, so failures reproduce across
//! runs.
//!
//! Shrinking is minimal but real: integer and float ranges shrink toward
//! their lower bound, tuples shrink one component at a time, and vectors
//! shrink first by length and then element-wise. A failing case is
//! re-run against progressively simpler candidates (bounded by a fixed
//! budget) and the panic reports both the original and the minimized
//! counterexample. `prop_map` outputs do not shrink (the mapping is not
//! invertible without the value-tree machinery of the real crate). Swap
//! in the real crate once network access exists (`vendor/README.md`).

#![forbid(unsafe_code)]

use rand::rngs::StdRng;
use rand::SeedableRng;

pub mod test_runner {
    //! Case generation plumbing (mirror of `proptest::test_runner`).

    use super::*;

    /// How many random cases each property runs (mirror of
    /// `proptest::test_runner::Config`).
    #[derive(Debug, Clone)]
    pub struct Config {
        /// Number of successful cases required for the property to pass.
        pub cases: u32,
        /// Maximum rejected (`prop_assume!`) cases before giving up.
        pub max_global_rejects: u32,
    }

    impl Config {
        /// A config running `cases` cases.
        pub fn with_cases(cases: u32) -> Self {
            Config {
                cases,
                ..Config::default()
            }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Config {
                cases: 256,
                max_global_rejects: 1024,
            }
        }
    }

    /// Why a single test case did not pass.
    #[derive(Debug)]
    pub enum TestCaseError {
        /// `prop_assume!` rejected the inputs; the case is retried.
        Reject(String),
        /// An assertion failed; the property fails.
        Fail(String),
    }

    /// Outcome of a closure-wrapped test case body.
    pub type TestCaseResult = Result<(), TestCaseError>;

    /// Drives one property: owns the RNG and the case budget.
    #[derive(Debug)]
    pub struct TestRunner {
        config: Config,
        seed: u64,
        rng: StdRng,
    }

    impl TestRunner {
        /// A runner seeded deterministically from the test name, so a
        /// failure seen once is seen on every run.
        pub fn new(config: Config, name: &str) -> Self {
            use std::hash::{Hash, Hasher};
            let mut h = std::collections::hash_map::DefaultHasher::new();
            name.hash(&mut h);
            let seed = h.finish();
            TestRunner {
                config,
                seed,
                rng: StdRng::seed_from_u64(seed),
            }
        }

        /// The seed the case stream was derived from (reported on
        /// failure).
        pub fn seed(&self) -> u64 {
            self.seed
        }

        /// The configured case count.
        pub fn cases(&self) -> u32 {
            self.config.cases
        }

        /// The configured reject budget.
        pub fn max_rejects(&self) -> u32 {
            self.config.max_global_rejects
        }

        /// The runner's RNG, for strategies to draw from.
        pub fn rng(&mut self) -> &mut StdRng {
            &mut self.rng
        }
    }
}

pub use test_runner::Config as ProptestConfig;

/// A recipe for generating random values (mirror of
/// `proptest::strategy::Strategy`, with list-based shrinking in place of
/// the real crate's value trees).
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Draw one value.
    fn new_value(&self, runner: &mut test_runner::TestRunner) -> Self::Value;

    /// Candidate simplifications of `value`, simplest first. The
    /// default — no candidates — makes a strategy opaque to shrinking
    /// (notably [`prop_map`](Strategy::prop_map) outputs).
    fn shrink(&self, _value: &Self::Value) -> Vec<Self::Value> {
        Vec::new()
    }

    /// A strategy that applies `f` to every generated value.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// A strategy that keeps only values satisfying `f`, re-drawing (up
    /// to a bounded number of attempts) otherwise.
    fn prop_filter<F>(self, whence: &'static str, f: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            inner: self,
            f,
            whence,
        }
    }
}

/// Pin a case closure's parameter type to the strategy's value type so
/// its body type-checks at the definition site (used by [`proptest!`]).
#[doc(hidden)]
pub fn case_fn<S, F>(_strategy: &S, f: F) -> F
where
    S: Strategy,
    F: Fn(&S::Value) -> test_runner::TestCaseResult,
{
    f
}

/// Greedily minimize a failing input: repeatedly take the first shrink
/// candidate that still fails, until none does or the re-run budget is
/// spent. Candidates that pass or hit `prop_assume!` are skipped.
/// Returns the minimized value, its failure message, and how many
/// shrink steps were taken.
#[doc(hidden)]
pub fn shrink_failure<S, F>(
    strategy: &S,
    original: S::Value,
    first_msg: &str,
    run: &F,
) -> (S::Value, String, usize)
where
    S: Strategy,
    F: Fn(&S::Value) -> test_runner::TestCaseResult,
{
    let mut current = original;
    let mut msg = first_msg.to_string();
    let mut steps = 0usize;
    let mut budget = 512usize;
    loop {
        let mut advanced = false;
        for candidate in strategy.shrink(&current) {
            if budget == 0 {
                return (current, msg, steps);
            }
            budget -= 1;
            if let Err(test_runner::TestCaseError::Fail(m)) = run(&candidate) {
                current = candidate;
                msg = m;
                steps += 1;
                advanced = true;
                break;
            }
        }
        if !advanced {
            return (current, msg, steps);
        }
    }
}

/// Output of [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn new_value(&self, runner: &mut test_runner::TestRunner) -> O {
        (self.f)(self.inner.new_value(runner))
    }
}

/// Output of [`Strategy::prop_filter`].
#[derive(Debug, Clone)]
pub struct Filter<S, F> {
    inner: S,
    f: F,
    whence: &'static str,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;

    fn new_value(&self, runner: &mut test_runner::TestRunner) -> S::Value {
        for _ in 0..1024 {
            let v = self.inner.new_value(runner);
            if (self.f)(&v) {
                return v;
            }
        }
        panic!("prop_filter `{}` rejected 1024 draws in a row", self.whence);
    }

    fn shrink(&self, value: &S::Value) -> Vec<S::Value> {
        self.inner
            .shrink(value)
            .into_iter()
            .filter(|v| (self.f)(v))
            .collect()
    }
}

/// A strategy that always yields clones of one value (mirror of
/// `proptest::strategy::Just`).
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn new_value(&self, _runner: &mut test_runner::TestRunner) -> T {
        self.0.clone()
    }
}

macro_rules! impl_int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;

            fn new_value(&self, runner: &mut test_runner::TestRunner) -> $t {
                rand::Rng::gen_range(runner.rng(), self.clone())
            }

            fn shrink(&self, value: &$t) -> Vec<$t> {
                int_shrink(self.start, *value)
            }
        }

        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;

            fn new_value(&self, runner: &mut test_runner::TestRunner) -> $t {
                rand::Rng::gen_range(runner.rng(), self.clone())
            }

            fn shrink(&self, value: &$t) -> Vec<$t> {
                int_shrink(*self.start(), *value)
            }
        }

        impl IntShrink for $t {
            fn int_shrink(lo: Self, v: Self) -> Vec<Self> {
                let mut out = Vec::new();
                if v > lo {
                    out.push(lo);
                    // `checked_sub` dodges signed overflow on extreme
                    // ranges; the fallback still moves toward zero.
                    let mid = match v.checked_sub(lo) {
                        Some(span) => lo + span / 2,
                        None => v / 2,
                    };
                    if mid != lo && mid != v {
                        out.push(mid);
                    }
                    let dec = v - 1;
                    if dec != lo && dec != mid {
                        out.push(dec);
                    }
                }
                out
            }
        }
    )*};
}

/// Lower-bound / halfway / decrement shrink candidates for one integer
/// type (implemented by `impl_int_range_strategy!`).
trait IntShrink: Sized {
    fn int_shrink(lo: Self, v: Self) -> Vec<Self>;
}

fn int_shrink<T: IntShrink>(lo: T, v: T) -> Vec<T> {
    T::int_shrink(lo, v)
}

impl_int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;

            fn new_value(&self, runner: &mut test_runner::TestRunner) -> $t {
                rand::Rng::gen_range(runner.rng(), self.clone())
            }

            fn shrink(&self, value: &$t) -> Vec<$t> {
                float_shrink(self.start as f64, *value as f64)
                    .into_iter()
                    .map(|v| v as $t)
                    .collect()
            }
        }

        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;

            fn new_value(&self, runner: &mut test_runner::TestRunner) -> $t {
                rand::Rng::gen_range(runner.rng(), self.clone())
            }

            fn shrink(&self, value: &$t) -> Vec<$t> {
                float_shrink(*self.start() as f64, *value as f64)
                    .into_iter()
                    .map(|v| v as $t)
                    .collect()
            }
        }
    )*};
}
impl_float_range_strategy!(f32, f64);

/// Lower-bound / halfway shrink candidates for a float drawn from a
/// range starting at `lo`.
fn float_shrink(lo: f64, v: f64) -> Vec<f64> {
    let mut out = Vec::new();
    if v > lo {
        out.push(lo);
        let mid = lo + (v - lo) / 2.0;
        if mid != lo && mid != v && mid.is_finite() {
            out.push(mid);
        }
    }
    out
}

macro_rules! impl_tuple_strategy {
    ($(($name:ident, $idx:tt)),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+)
        where
            $($name::Value: Clone,)+
        {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn new_value(&self, runner: &mut test_runner::TestRunner) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.new_value(runner),)+)
            }

            fn shrink(&self, value: &Self::Value) -> Vec<Self::Value> {
                let mut out = Vec::new();
                $(
                    for candidate in self.$idx.shrink(&value.$idx) {
                        let mut next = value.clone();
                        next.$idx = candidate;
                        out.push(next);
                    }
                )+
                out
            }
        }
    };
}
impl_tuple_strategy!((A, 0));
impl_tuple_strategy!((A, 0), (B, 1));
impl_tuple_strategy!((A, 0), (B, 1), (C, 2));
impl_tuple_strategy!((A, 0), (B, 1), (C, 2), (D, 3));
impl_tuple_strategy!((A, 0), (B, 1), (C, 2), (D, 3), (E, 4));
impl_tuple_strategy!((A, 0), (B, 1), (C, 2), (D, 3), (E, 4), (F, 5));
impl_tuple_strategy!((A, 0), (B, 1), (C, 2), (D, 3), (E, 4), (F, 5), (G, 6));
impl_tuple_strategy!(
    (A, 0),
    (B, 1),
    (C, 2),
    (D, 3),
    (E, 4),
    (F, 5),
    (G, 6),
    (H, 7)
);
impl_tuple_strategy!(
    (A, 0),
    (B, 1),
    (C, 2),
    (D, 3),
    (E, 4),
    (F, 5),
    (G, 6),
    (H, 7),
    (I, 8)
);
impl_tuple_strategy!(
    (A, 0),
    (B, 1),
    (C, 2),
    (D, 3),
    (E, 4),
    (F, 5),
    (G, 6),
    (H, 7),
    (I, 8),
    (J, 9)
);
impl_tuple_strategy!(
    (A, 0),
    (B, 1),
    (C, 2),
    (D, 3),
    (E, 4),
    (F, 5),
    (G, 6),
    (H, 7),
    (I, 8),
    (J, 9),
    (K, 10)
);
impl_tuple_strategy!(
    (A, 0),
    (B, 1),
    (C, 2),
    (D, 3),
    (E, 4),
    (F, 5),
    (G, 6),
    (H, 7),
    (I, 8),
    (J, 9),
    (K, 10),
    (L, 11)
);

pub mod collection {
    //! Collection strategies (mirror of `proptest::collection`).

    use super::*;

    /// Bounds on a generated collection's length (mirror of
    /// `proptest::collection::SizeRange`); half-open upper bound.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> Self {
            SizeRange {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: core::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi: *r.end() + 1,
            }
        }
    }

    /// A strategy producing `Vec`s whose length is drawn from `size` and
    /// whose elements are drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// Output of [`vec()`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S>
    where
        S::Value: Clone,
    {
        type Value = Vec<S::Value>;

        fn new_value(&self, runner: &mut test_runner::TestRunner) -> Vec<S::Value> {
            assert!(self.size.lo < self.size.hi, "empty collection size range");
            let n = (self.size.lo..self.size.hi).new_value(runner);
            (0..n).map(|_| self.element.new_value(runner)).collect()
        }

        fn shrink(&self, value: &Vec<S::Value>) -> Vec<Vec<S::Value>> {
            let mut out = Vec::new();
            let lo = self.size.lo;
            let n = value.len();
            // Length first — dropping elements simplifies far faster
            // than shrinking them in place.
            if n > lo {
                out.push(value[..lo].to_vec());
                let half = lo + (n - lo) / 2;
                if half != lo && half != n {
                    out.push(value[..half].to_vec());
                }
                if n - 1 != lo && n - 1 != half {
                    out.push(value[..n - 1].to_vec());
                }
            }
            for (i, element) in value.iter().enumerate() {
                for candidate in self.element.shrink(element) {
                    let mut next = value.clone();
                    next[i] = candidate;
                    out.push(next);
                }
            }
            out
        }
    }
}

pub mod prelude {
    //! The glob-import surface (mirror of `proptest::prelude`).

    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Just, Strategy,
    };
}

/// Property-test assertion: fails the current case without unwinding.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err(
                $crate::test_runner::TestCaseError::Fail(format!($($fmt)*)),
            );
        }
    };
}

/// Property-test equality assertion.
#[macro_export]
macro_rules! prop_assert_eq {
    ($lhs:expr, $rhs:expr $(,)?) => {{
        let (l, r) = (&$lhs, &$rhs);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($lhs), stringify!($rhs), l, r
        );
    }};
    ($lhs:expr, $rhs:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$lhs, &$rhs);
        $crate::prop_assert!(*l == *r, $($fmt)*);
    }};
}

/// Property-test inequality assertion.
#[macro_export]
macro_rules! prop_assert_ne {
    ($lhs:expr, $rhs:expr $(,)?) => {{
        let (l, r) = (&$lhs, &$rhs);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: `{} != {}`\n  both: {:?}",
            stringify!($lhs), stringify!($rhs), l
        );
    }};
    ($lhs:expr, $rhs:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$lhs, &$rhs);
        $crate::prop_assert!(*l != *r, $($fmt)*);
    }};
}

/// Reject the current inputs; the case is retried with fresh draws and
/// does not count against the case budget.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::Reject(
                concat!("assumption failed: ", stringify!($cond)).to_string(),
            ));
        }
    };
}

/// Define property tests (mirror of `proptest::proptest!`).
///
/// Supports the subset this workspace uses:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///
///     #[test]
///     fn my_property(x in 0u32..10, mut v in my_strategy()) { ... }
/// }
/// ```
///
/// A failing case is shrunk before the panic: the report carries the
/// originally drawn inputs and the minimized counterexample. Generated
/// values must be `Clone + Debug` for this (every strategy in the
/// workspace produces such values).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::proptest!(@impl ($config) $($rest)*);
    };
    (@impl ($config:expr) $(
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strategy:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::Config = $config;
            let mut runner =
                $crate::test_runner::TestRunner::new(config, concat!(module_path!(), "::", stringify!($name)));
            let strategies = ($($strategy,)+);
            let run_case = $crate::case_fn(&strategies, |vals| {
                let ($($pat,)+) = ::core::clone::Clone::clone(vals);
                $body
                ::core::result::Result::Ok(())
            });
            let mut passed = 0u32;
            let mut rejected = 0u32;
            while passed < runner.cases() {
                let vals = $crate::Strategy::new_value(&strategies, &mut runner);
                match run_case(&vals) {
                    ::core::result::Result::Ok(()) => passed += 1,
                    ::core::result::Result::Err($crate::test_runner::TestCaseError::Reject(why)) => {
                        rejected += 1;
                        if rejected > runner.max_rejects() {
                            panic!(
                                "property `{}` rejected {} cases ({}); giving up",
                                stringify!($name), rejected, why
                            );
                        }
                    }
                    ::core::result::Result::Err($crate::test_runner::TestCaseError::Fail(msg)) => {
                        let original = ::core::clone::Clone::clone(&vals);
                        let (minimal, minimal_msg, steps) =
                            $crate::shrink_failure(&strategies, vals, &msg, &run_case);
                        panic!(
                            "property `{}` failed at case {} (seed {:#x}, after {} rejects): {}\n\
                             original: {:?}\n\
                             minimal after {} shrink steps: {:?}\n\
                             minimal failure: {}",
                            stringify!($name), passed, runner.seed(), rejected, msg,
                            original, steps, minimal, minimal_msg
                        );
                    }
                }
            }
        }
    )*};
    ($($rest:tt)*) => {
        $crate::proptest!(@impl ($crate::test_runner::Config::default()) $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::test_runner::{TestCaseError, TestCaseResult};

    fn arb_even() -> impl Strategy<Value = u32> {
        (0u32..1000).prop_map(|x| x * 2)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_stay_in_bounds(x in 5u32..17, f in 0.25f64..0.75) {
            prop_assert!((5..17).contains(&x));
            prop_assert!((0.25..0.75).contains(&f));
        }

        #[test]
        fn map_and_vec_compose(v in crate::collection::vec(arb_even(), 1..20)) {
            prop_assert!(!v.is_empty() && v.len() < 20);
            for x in v {
                prop_assert_eq!(x % 2, 0);
            }
        }

        #[test]
        fn tuples_and_assume(pair in (1u32..10, 1u32..10)) {
            prop_assume!(pair.0 != pair.1);
            prop_assert_ne!(pair.0, pair.1);
        }

        #[test]
        fn mut_bindings_work(mut v in crate::collection::vec(0u32..5, 0..8)) {
            v.push(99);
            prop_assert_eq!(*v.last().unwrap(), 99);
        }
    }

    #[test]
    fn deterministic_across_runners() {
        let mut a = crate::test_runner::TestRunner::new(ProptestConfig::with_cases(8), "same");
        let mut b = crate::test_runner::TestRunner::new(ProptestConfig::with_cases(8), "same");
        let s = 0u64..1_000_000;
        let va: Vec<u64> = (0..32).map(|_| s.new_value(&mut a)).collect();
        let vb: Vec<u64> = (0..32).map(|_| s.new_value(&mut b)).collect();
        assert_eq!(va, vb);
    }

    #[test]
    fn int_ranges_shrink_toward_the_lower_bound() {
        assert_eq!((5u32..100).shrink(&50), vec![5, 27, 49]);
        assert_eq!((5u32..100).shrink(&5), Vec::<u32>::new());
        assert_eq!((5u32..100).shrink(&6), vec![5]);
        assert_eq!((0i64..=9).shrink(&2), vec![0, 1]);
    }

    #[test]
    fn float_ranges_shrink_toward_the_lower_bound() {
        assert_eq!((-8.0f64..8.0).shrink(&4.0), vec![-8.0, -2.0]);
        assert_eq!((-8.0f64..8.0).shrink(&-8.0), Vec::<f64>::new());
    }

    #[test]
    fn tuples_shrink_one_component_at_a_time() {
        let s = (0u32..10, 0u32..10);
        let candidates = s.shrink(&(4, 6));
        assert!(candidates.contains(&(0, 6)), "{candidates:?}");
        assert!(candidates.contains(&(4, 0)), "{candidates:?}");
        assert!(
            candidates.iter().all(|&(a, b)| a == 4 || b == 6),
            "a candidate changed both components: {candidates:?}"
        );
    }

    #[test]
    fn filters_drop_candidates_their_predicate_rejects() {
        let s = (0u32..100).prop_filter("nonzero", |&x| x != 0);
        assert_eq!(s.shrink(&50), vec![25, 49]);
    }

    #[test]
    fn shrinking_minimizes_a_failing_int() {
        let strategy = (0u32..1000,);
        let run = |vals: &(u32,)| -> TestCaseResult {
            if vals.0 >= 10 {
                Err(TestCaseError::Fail("too big".into()))
            } else {
                Ok(())
            }
        };
        let (minimal, msg, steps) = crate::shrink_failure(&strategy, (907,), "too big", &run);
        assert_eq!(minimal, (10,));
        assert_eq!(msg, "too big");
        assert!(steps > 0);
    }

    #[test]
    fn shrinking_minimizes_a_failing_vec() {
        let strategy = (crate::collection::vec(0u32..100, 0..10),);
        let run = |vals: &(Vec<u32>,)| -> TestCaseResult {
            if vals.0.iter().any(|&x| x >= 4) {
                Err(TestCaseError::Fail("has a big element".into()))
            } else {
                Ok(())
            }
        };
        let (minimal, _, _) =
            crate::shrink_failure(&strategy, (vec![50, 3, 80],), "has a big element", &run);
        assert_eq!(minimal, (vec![4],));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        // Deliberately failing; driven via catch_unwind below (no
        // #[test] attribute, so the harness never runs it directly).
        fn failing_property_for_report_test(x in 0u32..1000) {
            prop_assert!(x < 10, "x = {x} is not small");
        }
    }

    #[test]
    fn failures_report_the_minimized_counterexample() {
        let err = std::panic::catch_unwind(failing_property_for_report_test)
            .expect_err("the property must fail");
        let msg = err
            .downcast_ref::<String>()
            .expect("panic carries a formatted message");
        assert!(msg.contains("original:"), "{msg}");
        assert!(msg.contains("(10,)"), "minimal should be exactly 10: {msg}");
    }
}
