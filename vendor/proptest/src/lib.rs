//! Offline shim for `proptest`.
//!
//! The build environment has no crates.io access, so this crate
//! re-implements the subset of proptest the workspace's property tests
//! use: the [`Strategy`] trait with `prop_map`, range and tuple
//! strategies, [`collection::vec`], the [`proptest!`] macro with
//! `#![proptest_config(...)]`, and the `prop_assert*` / [`prop_assume!`]
//! macros. Each test runs its configured number of random cases seeded
//! deterministically from the test's name, so failures reproduce across
//! runs.
//!
//! **Not implemented:** shrinking. A failing case reports the inputs via
//! their `Debug`-free panic message (case index + seed) instead of a
//! minimized counterexample. Swap in the real crate once network access
//! exists (`vendor/README.md`).

#![forbid(unsafe_code)]

use rand::rngs::StdRng;
use rand::SeedableRng;

pub mod test_runner {
    //! Case generation plumbing (mirror of `proptest::test_runner`).

    use super::*;

    /// How many random cases each property runs (mirror of
    /// `proptest::test_runner::Config`).
    #[derive(Debug, Clone)]
    pub struct Config {
        /// Number of successful cases required for the property to pass.
        pub cases: u32,
        /// Maximum rejected (`prop_assume!`) cases before giving up.
        pub max_global_rejects: u32,
    }

    impl Config {
        /// A config running `cases` cases.
        pub fn with_cases(cases: u32) -> Self {
            Config {
                cases,
                ..Config::default()
            }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Config {
                cases: 256,
                max_global_rejects: 1024,
            }
        }
    }

    /// Why a single test case did not pass.
    #[derive(Debug)]
    pub enum TestCaseError {
        /// `prop_assume!` rejected the inputs; the case is retried.
        Reject(String),
        /// An assertion failed; the property fails.
        Fail(String),
    }

    /// Outcome of a closure-wrapped test case body.
    pub type TestCaseResult = Result<(), TestCaseError>;

    /// Drives one property: owns the RNG and the case budget.
    #[derive(Debug)]
    pub struct TestRunner {
        config: Config,
        seed: u64,
        rng: StdRng,
    }

    impl TestRunner {
        /// A runner seeded deterministically from the test name, so a
        /// failure seen once is seen on every run.
        pub fn new(config: Config, name: &str) -> Self {
            use std::hash::{Hash, Hasher};
            let mut h = std::collections::hash_map::DefaultHasher::new();
            name.hash(&mut h);
            let seed = h.finish();
            TestRunner {
                config,
                seed,
                rng: StdRng::seed_from_u64(seed),
            }
        }

        /// The seed the case stream was derived from (reported on
        /// failure).
        pub fn seed(&self) -> u64 {
            self.seed
        }

        /// The configured case count.
        pub fn cases(&self) -> u32 {
            self.config.cases
        }

        /// The configured reject budget.
        pub fn max_rejects(&self) -> u32 {
            self.config.max_global_rejects
        }

        /// The runner's RNG, for strategies to draw from.
        pub fn rng(&mut self) -> &mut StdRng {
            &mut self.rng
        }
    }
}

pub use test_runner::Config as ProptestConfig;

/// A recipe for generating random values (mirror of
/// `proptest::strategy::Strategy`, minus shrinking).
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Draw one value.
    fn new_value(&self, runner: &mut test_runner::TestRunner) -> Self::Value;

    /// A strategy that applies `f` to every generated value.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// A strategy that keeps only values satisfying `f`, re-drawing (up
    /// to a bounded number of attempts) otherwise.
    fn prop_filter<F>(self, whence: &'static str, f: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            inner: self,
            f,
            whence,
        }
    }
}

/// Output of [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn new_value(&self, runner: &mut test_runner::TestRunner) -> O {
        (self.f)(self.inner.new_value(runner))
    }
}

/// Output of [`Strategy::prop_filter`].
#[derive(Debug, Clone)]
pub struct Filter<S, F> {
    inner: S,
    f: F,
    whence: &'static str,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;

    fn new_value(&self, runner: &mut test_runner::TestRunner) -> S::Value {
        for _ in 0..1024 {
            let v = self.inner.new_value(runner);
            if (self.f)(&v) {
                return v;
            }
        }
        panic!("prop_filter `{}` rejected 1024 draws in a row", self.whence);
    }
}

/// A strategy that always yields clones of one value (mirror of
/// `proptest::strategy::Just`).
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn new_value(&self, _runner: &mut test_runner::TestRunner) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;

            fn new_value(&self, runner: &mut test_runner::TestRunner) -> $t {
                rand::Rng::gen_range(runner.rng(), self.clone())
            }
        }

        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;

            fn new_value(&self, runner: &mut test_runner::TestRunner) -> $t {
                rand::Rng::gen_range(runner.rng(), self.clone())
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn new_value(&self, runner: &mut test_runner::TestRunner) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.new_value(runner),)+)
            }
        }
    };
}
impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);
impl_tuple_strategy!(A, B, C, D, E, F, G);
impl_tuple_strategy!(A, B, C, D, E, F, G, H);
impl_tuple_strategy!(A, B, C, D, E, F, G, H, I);
impl_tuple_strategy!(A, B, C, D, E, F, G, H, I, J);
impl_tuple_strategy!(A, B, C, D, E, F, G, H, I, J, K);
impl_tuple_strategy!(A, B, C, D, E, F, G, H, I, J, K, L);

pub mod collection {
    //! Collection strategies (mirror of `proptest::collection`).

    use super::*;

    /// Bounds on a generated collection's length (mirror of
    /// `proptest::collection::SizeRange`); half-open upper bound.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> Self {
            SizeRange {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: core::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi: *r.end() + 1,
            }
        }
    }

    /// A strategy producing `Vec`s whose length is drawn from `size` and
    /// whose elements are drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// Output of [`vec()`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn new_value(&self, runner: &mut test_runner::TestRunner) -> Vec<S::Value> {
            assert!(self.size.lo < self.size.hi, "empty collection size range");
            let n = (self.size.lo..self.size.hi).new_value(runner);
            (0..n).map(|_| self.element.new_value(runner)).collect()
        }
    }
}

pub mod prelude {
    //! The glob-import surface (mirror of `proptest::prelude`).

    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Just, Strategy,
    };
}

/// Property-test assertion: fails the current case without unwinding.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err(
                $crate::test_runner::TestCaseError::Fail(format!($($fmt)*)),
            );
        }
    };
}

/// Property-test equality assertion.
#[macro_export]
macro_rules! prop_assert_eq {
    ($lhs:expr, $rhs:expr $(,)?) => {{
        let (l, r) = (&$lhs, &$rhs);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($lhs), stringify!($rhs), l, r
        );
    }};
    ($lhs:expr, $rhs:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$lhs, &$rhs);
        $crate::prop_assert!(*l == *r, $($fmt)*);
    }};
}

/// Property-test inequality assertion.
#[macro_export]
macro_rules! prop_assert_ne {
    ($lhs:expr, $rhs:expr $(,)?) => {{
        let (l, r) = (&$lhs, &$rhs);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: `{} != {}`\n  both: {:?}",
            stringify!($lhs), stringify!($rhs), l
        );
    }};
    ($lhs:expr, $rhs:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$lhs, &$rhs);
        $crate::prop_assert!(*l != *r, $($fmt)*);
    }};
}

/// Reject the current inputs; the case is retried with fresh draws and
/// does not count against the case budget.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::Reject(
                concat!("assumption failed: ", stringify!($cond)).to_string(),
            ));
        }
    };
}

/// Define property tests (mirror of `proptest::proptest!`).
///
/// Supports the subset this workspace uses:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///
///     #[test]
///     fn my_property(x in 0u32..10, mut v in my_strategy()) { ... }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::proptest!(@impl ($config) $($rest)*);
    };
    (@impl ($config:expr) $(
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strategy:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::Config = $config;
            let mut runner =
                $crate::test_runner::TestRunner::new(config, concat!(module_path!(), "::", stringify!($name)));
            let mut passed = 0u32;
            let mut rejected = 0u32;
            while passed < runner.cases() {
                let case: $crate::test_runner::TestCaseResult = (|| {
                    $(let $pat = $crate::Strategy::new_value(&($strategy), &mut runner);)+
                    $body
                    ::core::result::Result::Ok(())
                })();
                match case {
                    ::core::result::Result::Ok(()) => passed += 1,
                    ::core::result::Result::Err($crate::test_runner::TestCaseError::Reject(why)) => {
                        rejected += 1;
                        if rejected > runner.max_rejects() {
                            panic!(
                                "property `{}` rejected {} cases ({}); giving up",
                                stringify!($name), rejected, why
                            );
                        }
                    }
                    ::core::result::Result::Err($crate::test_runner::TestCaseError::Fail(msg)) => {
                        panic!(
                            "property `{}` failed at case {} (seed {:#x}, after {} rejects): {}",
                            stringify!($name), passed, runner.seed(), rejected, msg
                        );
                    }
                }
            }
        }
    )*};
    ($($rest:tt)*) => {
        $crate::proptest!(@impl ($crate::test_runner::Config::default()) $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn arb_even() -> impl Strategy<Value = u32> {
        (0u32..1000).prop_map(|x| x * 2)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_stay_in_bounds(x in 5u32..17, f in 0.25f64..0.75) {
            prop_assert!((5..17).contains(&x));
            prop_assert!((0.25..0.75).contains(&f));
        }

        #[test]
        fn map_and_vec_compose(v in crate::collection::vec(arb_even(), 1..20)) {
            prop_assert!(!v.is_empty() && v.len() < 20);
            for x in v {
                prop_assert_eq!(x % 2, 0);
            }
        }

        #[test]
        fn tuples_and_assume(pair in (1u32..10, 1u32..10)) {
            prop_assume!(pair.0 != pair.1);
            prop_assert_ne!(pair.0, pair.1);
        }

        #[test]
        fn mut_bindings_work(mut v in crate::collection::vec(0u32..5, 0..8)) {
            v.push(99);
            prop_assert_eq!(*v.last().unwrap(), 99);
        }
    }

    #[test]
    fn deterministic_across_runners() {
        let mut a = crate::test_runner::TestRunner::new(ProptestConfig::with_cases(8), "same");
        let mut b = crate::test_runner::TestRunner::new(ProptestConfig::with_cases(8), "same");
        let s = 0u64..1_000_000;
        let va: Vec<u64> = (0..32).map(|_| s.new_value(&mut a)).collect();
        let vb: Vec<u64> = (0..32).map(|_| s.new_value(&mut b)).collect();
        assert_eq!(va, vb);
    }
}
