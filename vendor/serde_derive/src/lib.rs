//! Offline shim for `serde_derive` — with *real* derives.
//!
//! The build environment for this repository has no access to crates.io,
//! so the real `serde_derive` (and its `syn`/`quote` stack) cannot be
//! fetched. This crate parses the derive input by hand from the raw
//! token stream and generates field-by-field `serde::Serialize` /
//! `serde::Deserialize` impls against the vendored `serde` shim's
//! `Value` data model.
//!
//! Supported shapes — everything the workspace uses:
//!
//! * structs with named fields, tuple structs, unit structs;
//! * enums with unit, newtype, tuple, and struct variants
//!   (externally tagged, like real serde: `"Variant"` for unit variants,
//!   `{"Variant": …}` otherwise);
//! * the field attributes `#[serde(skip)]` (not serialized; rebuilt with
//!   `Default::default()`), `#[serde(default)]` (optional on input), and
//!   `#[serde(rename = "…")]`.
//!
//! Generic types and other `#[serde(...)]` attributes are rejected with
//! a `compile_error!` rather than silently mis-serialized. Swap in the
//! real crates once the build has network access; see `vendor/README.md`.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Real stand-in for serde's `Serialize` derive.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    expand(input, Mode::Serialize)
}

/// Real stand-in for serde's `Deserialize` derive.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    expand(input, Mode::Deserialize)
}

#[derive(Clone, Copy, PartialEq)]
enum Mode {
    Serialize,
    Deserialize,
}

fn expand(input: TokenStream, mode: Mode) -> TokenStream {
    let code = match Item::parse(input) {
        Ok(item) => match mode {
            Mode::Serialize => gen_serialize(&item),
            Mode::Deserialize => gen_deserialize(&item),
        },
        Err(message) => Err(message),
    };
    match code {
        Ok(code) => code.parse().unwrap_or_else(|e| {
            error_tokens(&format!("serde_derive shim generated invalid code: {e}"))
        }),
        Err(message) => error_tokens(&message),
    }
}

fn error_tokens(message: &str) -> TokenStream {
    format!("compile_error!({message:?});")
        .parse()
        .expect("compile_error! invocation always parses")
}

/// Per-field `#[serde(...)]` switches.
#[derive(Default, Clone)]
struct FieldAttrs {
    skip: bool,
    default: bool,
    rename: Option<String>,
}

struct Field {
    name: String,
    attrs: FieldAttrs,
}

impl Field {
    /// The key this field uses in the serialized map.
    fn key(&self) -> &str {
        self.attrs.rename.as_deref().unwrap_or(&self.name)
    }
}

enum VariantBody {
    Unit,
    Tuple(usize),
    Named(Vec<Field>),
}

struct Variant {
    name: String,
    body: VariantBody,
}

enum Body {
    NamedStruct(Vec<Field>),
    TupleStruct(usize),
    UnitStruct,
    Enum(Vec<Variant>),
}

struct Item {
    name: String,
    body: Body,
}

/// Token cursor over a flattened `TokenStream`.
struct Cursor {
    tokens: Vec<TokenTree>,
    pos: usize,
}

impl Cursor {
    fn new(stream: TokenStream) -> Self {
        Cursor {
            tokens: stream.into_iter().collect(),
            pos: 0,
        }
    }

    fn peek(&self) -> Option<&TokenTree> {
        self.tokens.get(self.pos)
    }

    fn bump(&mut self) -> Option<TokenTree> {
        let token = self.tokens.get(self.pos).cloned();
        if token.is_some() {
            self.pos += 1;
        }
        token
    }

    fn at_end(&self) -> bool {
        self.pos >= self.tokens.len()
    }

    fn peek_punct(&self, ch: char) -> bool {
        matches!(self.peek(), Some(TokenTree::Punct(p)) if p.as_char() == ch)
    }

    fn eat_punct(&mut self, ch: char) -> bool {
        if self.peek_punct(ch) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn eat_ident(&mut self, name: &str) -> bool {
        if matches!(self.peek(), Some(TokenTree::Ident(i)) if i.to_string() == name) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_ident(&mut self) -> Result<String, String> {
        match self.bump() {
            Some(TokenTree::Ident(i)) => {
                let name = i.to_string();
                Ok(name.strip_prefix("r#").unwrap_or(&name).to_owned())
            }
            other => Err(format!(
                "serde shim derive: expected identifier, found {other:?}"
            )),
        }
    }

    /// Collect `#[...]` attribute groups, folding any `#[serde(...)]`
    /// contents into a `FieldAttrs`.
    fn parse_attrs(&mut self) -> Result<FieldAttrs, String> {
        let mut attrs = FieldAttrs::default();
        while self.peek_punct('#') {
            self.pos += 1;
            let group = match self.bump() {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket => g,
                other => {
                    return Err(format!(
                        "serde shim derive: malformed attribute, found {other:?}"
                    ))
                }
            };
            let mut inner = Cursor::new(group.stream());
            if inner.eat_ident("serde") {
                let args = match inner.bump() {
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => g,
                    other => {
                        return Err(format!(
                            "serde shim derive: expected #[serde(...)], found {other:?}"
                        ))
                    }
                };
                attrs.merge(Self::parse_serde_args(args.stream())?)?;
            }
        }
        Ok(attrs)
    }

    fn parse_serde_args(stream: TokenStream) -> Result<FieldAttrs, String> {
        let mut attrs = FieldAttrs::default();
        let mut cursor = Cursor::new(stream);
        while !cursor.at_end() {
            let name = cursor.expect_ident()?;
            match name.as_str() {
                "skip" => attrs.skip = true,
                "default" => attrs.default = true,
                "rename" => {
                    if !cursor.eat_punct('=') {
                        return Err("serde shim derive: expected #[serde(rename = \"...\")]".into());
                    }
                    match cursor.bump() {
                        Some(TokenTree::Literal(lit)) => {
                            let text = lit.to_string();
                            let trimmed = text
                                .strip_prefix('"')
                                .and_then(|t| t.strip_suffix('"'))
                                .ok_or("serde shim derive: rename value must be a plain string literal")?;
                            attrs.rename = Some(trimmed.to_owned());
                        }
                        other => {
                            return Err(format!(
                                "serde shim derive: expected string literal after rename =, found {other:?}"
                            ))
                        }
                    }
                }
                other => {
                    return Err(format!(
                        "serde shim derive: unsupported #[serde({other})] — the vendored shim \
                         only honors skip, default, and rename"
                    ))
                }
            }
            cursor.eat_punct(',');
        }
        Ok(attrs)
    }

    /// Skip a `pub` / `pub(...)` visibility qualifier, if present.
    fn skip_visibility(&mut self) {
        if self.eat_ident("pub") {
            if let Some(TokenTree::Group(g)) = self.peek() {
                if g.delimiter() == Delimiter::Parenthesis {
                    self.pos += 1;
                }
            }
        }
    }

    /// Skip tokens until a top-level `,` (consumed) or the end, treating
    /// `<`/`>` as nesting so commas inside generic arguments like
    /// `BTreeMap<String, V>` don't terminate the field early.
    fn skip_to_comma(&mut self) {
        let mut angle_depth = 0u32;
        while let Some(token) = self.peek() {
            if let TokenTree::Punct(p) = token {
                match p.as_char() {
                    '<' => angle_depth += 1,
                    '>' => angle_depth = angle_depth.saturating_sub(1),
                    ',' if angle_depth == 0 => {
                        self.pos += 1;
                        return;
                    }
                    _ => {}
                }
            }
            self.pos += 1;
        }
    }
}

impl FieldAttrs {
    fn merge(&mut self, other: FieldAttrs) -> Result<(), String> {
        self.skip |= other.skip;
        self.default |= other.default;
        if other.rename.is_some() {
            if self.rename.is_some() {
                return Err("serde shim derive: duplicate #[serde(rename)]".into());
            }
            self.rename = other.rename;
        }
        Ok(())
    }
}

impl Item {
    fn parse(input: TokenStream) -> Result<Item, String> {
        let mut cursor = Cursor::new(input);
        // Container attributes: any #[serde(...)] here would change the
        // wire format in ways the shim does not implement.
        let container_attrs = cursor.parse_attrs()?;
        if container_attrs.skip || container_attrs.default || container_attrs.rename.is_some() {
            return Err(
                "serde shim derive: container-level #[serde(...)] attributes are not supported"
                    .into(),
            );
        }
        cursor.skip_visibility();
        let is_enum = if cursor.eat_ident("struct") {
            false
        } else if cursor.eat_ident("enum") {
            true
        } else {
            return Err("serde shim derive: expected `struct` or `enum`".into());
        };
        let name = cursor.expect_ident()?;
        if cursor.peek_punct('<') {
            return Err(format!(
                "serde shim derive: generic type `{name}` is not supported by the vendored shim"
            ));
        }
        if cursor.eat_ident("where") {
            return Err(format!(
                "serde shim derive: `where` clause on `{name}` is not supported by the vendored shim"
            ));
        }
        let body = if is_enum {
            match cursor.bump() {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    Body::Enum(Self::parse_variants(g.stream())?)
                }
                other => {
                    return Err(format!(
                        "serde shim derive: expected enum body, found {other:?}"
                    ))
                }
            }
        } else {
            match cursor.bump() {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    Body::NamedStruct(Self::parse_named_fields(g.stream())?)
                }
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                    Body::TupleStruct(Self::parse_tuple_fields(g.stream())?)
                }
                Some(TokenTree::Punct(p)) if p.as_char() == ';' => Body::UnitStruct,
                other => {
                    return Err(format!(
                        "serde shim derive: expected struct body, found {other:?}"
                    ))
                }
            }
        };
        Ok(Item { name, body })
    }

    fn parse_named_fields(stream: TokenStream) -> Result<Vec<Field>, String> {
        let mut cursor = Cursor::new(stream);
        let mut fields = Vec::new();
        while !cursor.at_end() {
            let attrs = cursor.parse_attrs()?;
            cursor.skip_visibility();
            let name = cursor.expect_ident()?;
            if !cursor.eat_punct(':') {
                return Err(format!(
                    "serde shim derive: expected `:` after field `{name}`"
                ));
            }
            cursor.skip_to_comma();
            fields.push(Field { name, attrs });
        }
        Ok(fields)
    }

    fn parse_tuple_fields(stream: TokenStream) -> Result<usize, String> {
        let mut cursor = Cursor::new(stream);
        let mut count = 0;
        while !cursor.at_end() {
            let attrs = cursor.parse_attrs()?;
            if attrs.skip || attrs.default || attrs.rename.is_some() {
                return Err(
                    "serde shim derive: #[serde(...)] on tuple fields is not supported".into(),
                );
            }
            cursor.skip_visibility();
            if cursor.at_end() {
                break; // trailing comma
            }
            cursor.skip_to_comma();
            count += 1;
        }
        Ok(count)
    }

    fn parse_variants(stream: TokenStream) -> Result<Vec<Variant>, String> {
        let mut cursor = Cursor::new(stream);
        let mut variants = Vec::new();
        while !cursor.at_end() {
            let attrs = cursor.parse_attrs()?;
            if attrs.skip || attrs.default || attrs.rename.is_some() {
                return Err("serde shim derive: #[serde(...)] on variants is not supported".into());
            }
            let name = cursor.expect_ident()?;
            let body = match cursor.peek() {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    let fields = Self::parse_named_fields(g.stream())?;
                    cursor.pos += 1;
                    VariantBody::Named(fields)
                }
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                    let count = Self::parse_tuple_fields(g.stream())?;
                    cursor.pos += 1;
                    VariantBody::Tuple(count)
                }
                _ => VariantBody::Unit,
            };
            // Discriminant (`= expr`) and the separating comma.
            cursor.skip_to_comma();
            variants.push(Variant { name, body });
        }
        Ok(variants)
    }
}

/// Render the map-building expression for a list of named fields, where
/// `access` maps a field name to the expression that borrows it.
fn named_fields_to_value(fields: &[Field], access: impl Fn(&str) -> String) -> String {
    let live: Vec<&Field> = fields.iter().filter(|f| !f.attrs.skip).collect();
    if live.is_empty() {
        return "serde::Value::Map(Vec::new())".to_owned();
    }
    let mut out = String::from("{\n let mut fields: Vec<(String, serde::Value)> = Vec::new();\n");
    for field in live {
        out.push_str(&format!(
            " fields.push((String::from({key:?}), serde::Serialize::to_value({access})));\n",
            key = field.key(),
            access = access(&field.name),
        ));
    }
    out.push_str(" serde::Value::Map(fields)\n}");
    out
}

/// Render the struct-literal field initializers for deserializing a list
/// of named fields out of `source` (an expression of type `&Value`).
fn named_fields_from_value(fields: &[Field], source: &str, type_name: &str) -> String {
    let mut out = String::new();
    for field in fields {
        if field.attrs.skip {
            out.push_str(&format!(
                " {}: std::default::Default::default(),\n",
                field.name
            ));
            continue;
        }
        let missing = if field.attrs.default {
            "std::default::Default::default()".to_owned()
        } else {
            format!(
                "return std::result::Result::Err(serde::Error::missing_field({:?}, {:?}))",
                field.key(),
                type_name
            )
        };
        out.push_str(&format!(
            " {name}: match serde::Value::get_field({source}, {key:?}) {{\n\
             std::option::Option::Some(v) => serde::Deserialize::from_value(v)?,\n\
             std::option::Option::None => {missing},\n\
             }},\n",
            name = field.name,
            key = field.key(),
        ));
    }
    out
}

fn gen_serialize(item: &Item) -> Result<String, String> {
    let name = &item.name;
    let body = match &item.body {
        Body::NamedStruct(fields) => {
            named_fields_to_value(fields, |field| format!("&self.{field}"))
        }
        Body::TupleStruct(count) => {
            let items: Vec<String> = (0..*count)
                .map(|i| format!("serde::Serialize::to_value(&self.{i})"))
                .collect();
            format!("serde::Value::Seq(vec![{}])", items.join(", "))
        }
        Body::UnitStruct => "serde::Value::Null".to_owned(),
        Body::Enum(variants) => {
            if variants.is_empty() {
                // An empty enum has no values; the match is vacuous.
                "match *self {}".to_owned()
            } else {
                let mut arms = String::new();
                for variant in variants {
                    let vname = &variant.name;
                    match &variant.body {
                        VariantBody::Unit => arms.push_str(&format!(
                            "{name}::{vname} => serde::Value::Str(String::from({vname:?})),\n"
                        )),
                        VariantBody::Tuple(1) => arms.push_str(&format!(
                            "{name}::{vname}(f0) => serde::Value::Map(vec![(String::from({vname:?}), serde::Serialize::to_value(f0))]),\n"
                        )),
                        VariantBody::Tuple(count) => {
                            let binds: Vec<String> = (0..*count).map(|i| format!("f{i}")).collect();
                            let items: Vec<String> = binds
                                .iter()
                                .map(|b| format!("serde::Serialize::to_value({b})"))
                                .collect();
                            arms.push_str(&format!(
                                "{name}::{vname}({binds}) => serde::Value::Map(vec![(String::from({vname:?}), serde::Value::Seq(vec![{items}]))]),\n",
                                binds = binds.join(", "),
                                items = items.join(", "),
                            ));
                        }
                        VariantBody::Named(fields) => {
                            let binds: Vec<String> = fields
                                .iter()
                                .map(|f| {
                                    if f.attrs.skip {
                                        format!("{}: _", f.name)
                                    } else {
                                        f.name.clone()
                                    }
                                })
                                .collect();
                            let payload = named_fields_to_value(fields, |field| field.to_owned());
                            arms.push_str(&format!(
                                "{name}::{vname} {{ {binds} }} => serde::Value::Map(vec![(String::from({vname:?}), {payload})]),\n",
                                binds = binds.join(", "),
                            ));
                        }
                    }
                }
                format!("match self {{\n{arms}}}")
            }
        }
    };
    Ok(format!(
        "impl serde::Serialize for {name} {{\n\
         fn to_value(&self) -> serde::Value {{\n{body}\n}}\n\
         }}"
    ))
}

fn gen_deserialize(item: &Item) -> Result<String, String> {
    let name = &item.name;
    let body = match &item.body {
        Body::NamedStruct(fields) => format!(
            "if serde::Value::as_map(value).is_none() {{\n\
             return std::result::Result::Err(serde::Error::expected(\"map\", {name:?}));\n\
             }}\n\
             std::result::Result::Ok({name} {{\n{fields}\n}})",
            fields = named_fields_from_value(fields, "value", name),
        ),
        Body::TupleStruct(count) => {
            let items: Vec<String> = (0..*count)
                .map(|i| format!("serde::Deserialize::from_value(&seq[{i}])?"))
                .collect();
            format!(
                "let seq = serde::Value::as_seq(value)\n\
                 .ok_or_else(|| serde::Error::expected(\"sequence\", {name:?}))?;\n\
                 if seq.len() != {count} {{\n\
                 return std::result::Result::Err(serde::Error::invalid_length(seq.len(), {count}, {name:?}));\n\
                 }}\n\
                 std::result::Result::Ok({name}({items}))",
                items = items.join(", "),
            )
        }
        Body::UnitStruct => format!(
            "match value {{\n\
             serde::Value::Null => std::result::Result::Ok({name}),\n\
             _ => std::result::Result::Err(serde::Error::expected(\"null\", {name:?})),\n\
             }}"
        ),
        Body::Enum(variants) => gen_deserialize_enum(name, variants),
    };
    Ok(format!(
        "impl<'de> serde::Deserialize<'de> for {name} {{\n\
         fn from_value(value: &serde::Value) -> std::result::Result<Self, serde::Error> {{\n{body}\n}}\n\
         }}"
    ))
}

fn gen_deserialize_enum(name: &str, variants: &[Variant]) -> String {
    let unit: Vec<&Variant> = variants
        .iter()
        .filter(|v| matches!(v.body, VariantBody::Unit))
        .collect();
    let payload: Vec<&Variant> = variants
        .iter()
        .filter(|v| !matches!(v.body, VariantBody::Unit))
        .collect();
    let mut out = String::new();
    // Unit variants arrive as a bare string tag.
    out.push_str("if let std::option::Option::Some(tag) = serde::Value::as_str(value) {\n");
    if unit.is_empty() {
        out.push_str(&format!(
            "return std::result::Result::Err(serde::Error::unknown_variant(tag, {name:?}));\n"
        ));
    } else {
        out.push_str("return match tag {\n");
        for variant in &unit {
            out.push_str(&format!(
                "{tag:?} => std::result::Result::Ok({name}::{vname}),\n",
                tag = variant.name,
                vname = variant.name,
            ));
        }
        out.push_str(&format!(
            "other => std::result::Result::Err(serde::Error::unknown_variant(other, {name:?})),\n}};\n"
        ));
    }
    out.push_str("}\n");
    // Payload variants arrive as a single-entry map keyed by the tag.
    if payload.is_empty() {
        out.push_str(&format!(
            "std::result::Result::Err(serde::Error::expected(\"variant string\", {name:?}))"
        ));
        return out;
    }
    out.push_str(&format!(
        "let entries = serde::Value::as_map(value)\n\
         .ok_or_else(|| serde::Error::expected(\"variant string or single-entry map\", {name:?}))?;\n\
         if entries.len() != 1 {{\n\
         return std::result::Result::Err(serde::Error::expected(\"single-entry variant map\", {name:?}));\n\
         }}\n\
         let inner = &entries[0].1;\n\
         match entries[0].0.as_str() {{\n"
    ));
    for variant in &payload {
        let vname = &variant.name;
        match &variant.body {
            VariantBody::Unit => unreachable!("unit variants handled above"),
            VariantBody::Tuple(1) => out.push_str(&format!(
                "{vname:?} => std::result::Result::Ok({name}::{vname}(serde::Deserialize::from_value(inner)?)),\n"
            )),
            VariantBody::Tuple(count) => {
                let items: Vec<String> = (0..*count)
                    .map(|i| format!("serde::Deserialize::from_value(&seq[{i}])?"))
                    .collect();
                out.push_str(&format!(
                    "{vname:?} => {{\n\
                     let seq = serde::Value::as_seq(inner)\n\
                     .ok_or_else(|| serde::Error::expected(\"sequence\", {name:?}))?;\n\
                     if seq.len() != {count} {{\n\
                     return std::result::Result::Err(serde::Error::invalid_length(seq.len(), {count}, {name:?}));\n\
                     }}\n\
                     std::result::Result::Ok({name}::{vname}({items}))\n\
                     }},\n",
                    items = items.join(", "),
                ));
            }
            VariantBody::Named(fields) => out.push_str(&format!(
                "{vname:?} => {{\n\
                 if serde::Value::as_map(inner).is_none() {{\n\
                 return std::result::Result::Err(serde::Error::expected(\"map\", {name:?}));\n\
                 }}\n\
                 std::result::Result::Ok({name}::{vname} {{\n{fields}\n}})\n\
                 }},\n",
                fields = named_fields_from_value(fields, "inner", name),
            )),
        }
    }
    out.push_str(&format!(
        "other => std::result::Result::Err(serde::Error::unknown_variant(other, {name:?})),\n}}"
    ));
    out
}
