//! Offline shim for `serde_derive`.
//!
//! The build environment for this repository has no access to crates.io,
//! so the real `serde_derive` cannot be fetched. The workspace only needs
//! the `#[derive(Serialize, Deserialize)]` attributes to *parse* (no code
//! actually serializes anything yet), so these derives accept the same
//! syntax — including `#[serde(...)]` field attributes — and expand to
//! nothing. Swap in the real crates once the build has network access;
//! see `vendor/README.md`.

use proc_macro::TokenStream;

/// No-op stand-in for serde's `Serialize` derive.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op stand-in for serde's `Deserialize` derive.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
