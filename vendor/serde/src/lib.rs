//! Offline shim for `serde` — a *functional* one.
//!
//! The build environment has no crates.io access, so this crate stands in
//! for the real `serde`. Unlike the original no-op shim, it actually
//! serializes: values convert to and from a small self-describing
//! [`Value`] model (null / bool / i64 / u64 / f64 / string / seq / map),
//! and [`json`] renders that model as JSON text and parses it back.
//! The sibling `serde_derive` shim generates real field-by-field
//! [`Serialize`] / [`Deserialize`] impls for structs and enums, honoring
//! the `#[serde(skip)]`, `#[serde(default)]`, and `#[serde(rename)]`
//! field attributes.
//!
//! The public surface the workspace uses — the derive macros, the trait
//! names in bounds, and `serde::json::{to_string, from_str}` — stays
//! source-compatible with the real crates: swapping to registry `serde` +
//! `serde_json` needs only the dependency change and a `serde::json` →
//! `serde_json` import rename (see `vendor/README.md`).
//!
//! # Float fidelity
//!
//! Finite `f64`s are emitted with Rust's shortest round-trip formatting
//! (`{:?}`), which parses back bit-exactly — including `-0.0`,
//! subnormals, and `f64::MAX`/`MIN`. Non-finite values, which JSON cannot
//! express as numbers, fall back to a bit-exact hex string
//! (`"f64:7ff8000000000000"` for a NaN), so even NaN payloads survive a
//! round trip.

pub use serde_derive::{Deserialize, Serialize};

pub mod json;

use std::collections::{BTreeMap, HashMap};

/// The self-describing data model every [`Serialize`] impl produces and
/// every [`Deserialize`] impl consumes.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null` (also the encoding of `None` and unit structs).
    Null,
    /// A boolean.
    Bool(bool),
    /// A signed integer (negative numbers).
    I64(i64),
    /// An unsigned integer (non-negative numbers).
    U64(u64),
    /// A double-precision float.
    F64(f64),
    /// A string.
    Str(String),
    /// An ordered sequence (JSON array).
    Seq(Vec<Value>),
    /// An ordered key–value map (JSON object). Kept as a vector so field
    /// order is stable and duplicate detection stays cheap.
    Map(Vec<(String, Value)>),
}

impl Value {
    /// The map entries, if this is a [`Value::Map`].
    pub fn as_map(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Map(entries) => Some(entries),
            _ => None,
        }
    }

    /// The sequence elements, if this is a [`Value::Seq`].
    pub fn as_seq(&self) -> Option<&[Value]> {
        match self {
            Value::Seq(items) => Some(items),
            _ => None,
        }
    }

    /// The string contents, if this is a [`Value::Str`].
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Look up a map entry by key (first match wins).
    pub fn get_field<'v>(&'v self, key: &str) -> Option<&'v Value> {
        self.as_map()?
            .iter()
            .find(|(name, _)| name == key)
            .map(|(_, value)| value)
    }
}

/// Serialization/deserialization failure: a human-readable message, as in
/// `serde_json::Error`.
#[derive(Debug, Clone, PartialEq)]
pub struct Error {
    message: String,
}

impl Error {
    /// An error with a custom message.
    pub fn custom(message: impl Into<String>) -> Self {
        Error {
            message: message.into(),
        }
    }

    /// "expected X while deserializing T" — wrong [`Value`] kind.
    pub fn expected(what: &str, type_name: &str) -> Self {
        Error::custom(format!("expected {what} while deserializing {type_name}"))
    }

    /// A required field was absent from the map.
    pub fn missing_field(field: &str, type_name: &str) -> Self {
        Error::custom(format!("missing field `{field}` in {type_name}"))
    }

    /// An enum tag named no known variant.
    pub fn unknown_variant(variant: &str, type_name: &str) -> Self {
        Error::custom(format!("unknown variant `{variant}` for {type_name}"))
    }

    /// A sequence had the wrong number of elements.
    pub fn invalid_length(got: usize, want: usize, type_name: &str) -> Self {
        Error::custom(format!(
            "invalid length {got} (expected {want}) while deserializing {type_name}"
        ))
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for Error {}

/// Conversion into the [`Value`] data model.
///
/// The shim's counterpart of `serde::Serialize`: user code derives it and
/// never calls [`Serialize::to_value`] directly, so the surface stays
/// swap-compatible with the real crate.
pub trait Serialize {
    /// Represent `self` in the data model.
    fn to_value(&self) -> Value;
}

/// Conversion out of the [`Value`] data model.
///
/// Lifetime parameter kept for signature compatibility with real serde
/// (every impl here is owned, i.e. `DeserializeOwned`).
pub trait Deserialize<'de>: Sized {
    /// Rebuild `Self` from the data model.
    ///
    /// # Errors
    ///
    /// [`Error`] when `value` has the wrong shape for `Self`.
    fn from_value(value: &Value) -> Result<Self, Error>;
}

/// Map keys, which JSON forces to be strings. Mirrors `serde_json`'s
/// behaviour of stringifying integer keys.
pub trait JsonKey: Sized {
    /// Render the key as a JSON object key.
    fn to_key(&self) -> String;
    /// Parse the key back from a JSON object key.
    ///
    /// # Errors
    ///
    /// [`Error`] when `key` does not parse as `Self`.
    fn from_key(key: &str) -> Result<Self, Error>;
}

impl JsonKey for String {
    fn to_key(&self) -> String {
        self.clone()
    }

    fn from_key(key: &str) -> Result<Self, Error> {
        Ok(key.to_owned())
    }
}

macro_rules! int_json_key {
    ($($t:ty),*) => {$(
        impl JsonKey for $t {
            fn to_key(&self) -> String {
                self.to_string()
            }

            fn from_key(key: &str) -> Result<Self, Error> {
                key.parse().map_err(|_| {
                    Error::custom(format!(
                        "map key `{key}` is not a valid {}",
                        stringify!($t)
                    ))
                })
            }
        }
    )*};
}

int_json_key!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl<'de> Deserialize<'de> for Value {
    fn from_value(value: &Value) -> Result<Self, Error> {
        Ok(value.clone())
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl<'de> Deserialize<'de> for bool {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Bool(b) => Ok(*b),
            _ => Err(Error::expected("bool", "bool")),
        }
    }
}

macro_rules! uint_impls {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::U64(*self as u64)
            }
        }

        impl<'de> Deserialize<'de> for $t {
            fn from_value(value: &Value) -> Result<Self, Error> {
                let raw = match value {
                    Value::U64(n) => Some(*n),
                    Value::I64(n) => u64::try_from(*n).ok(),
                    _ => None,
                };
                raw.and_then(|n| <$t>::try_from(n).ok())
                    .ok_or_else(|| Error::expected("unsigned integer", stringify!($t)))
            }
        }
    )*};
}

macro_rules! sint_impls {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let n = *self as i64;
                if n < 0 {
                    Value::I64(n)
                } else {
                    Value::U64(n as u64)
                }
            }
        }

        impl<'de> Deserialize<'de> for $t {
            fn from_value(value: &Value) -> Result<Self, Error> {
                let raw = match value {
                    Value::I64(n) => Some(*n),
                    Value::U64(n) => i64::try_from(*n).ok(),
                    _ => None,
                };
                raw.and_then(|n| <$t>::try_from(n).ok())
                    .ok_or_else(|| Error::expected("signed integer", stringify!($t)))
            }
        }
    )*};
}

uint_impls!(u8, u16, u32, u64, usize);
sint_impls!(i8, i16, i32, i64, isize);

/// Prefix of the bit-exact hex fallback for non-finite floats.
pub(crate) const F64_HEX_PREFIX: &str = "f64:";

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::F64(*self)
    }
}

impl<'de> Deserialize<'de> for f64 {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::F64(f) => Ok(*f),
            Value::U64(n) => Ok(*n as f64),
            Value::I64(n) => Ok(*n as f64),
            Value::Str(s) => s
                .strip_prefix(F64_HEX_PREFIX)
                .and_then(|hex| u64::from_str_radix(hex, 16).ok())
                .map(f64::from_bits)
                .ok_or_else(|| Error::expected("number", "f64")),
            _ => Err(Error::expected("number", "f64")),
        }
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::F64(f64::from(*self))
    }
}

impl<'de> Deserialize<'de> for f32 {
    fn from_value(value: &Value) -> Result<Self, Error> {
        f64::from_value(value).map(|f| f as f32)
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_owned())
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl<'de> Deserialize<'de> for String {
    fn from_value(value: &Value) -> Result<Self, Error> {
        value
            .as_str()
            .map(str::to_owned)
            .ok_or_else(|| Error::expected("string", "String"))
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(inner) => inner.to_value(),
            None => Value::Null,
        }
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Option<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Vec<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        value
            .as_seq()
            .ok_or_else(|| Error::expected("sequence", "Vec"))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl<K: JsonKey, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Map(
            self.iter()
                .map(|(k, v)| (k.to_key(), v.to_value()))
                .collect(),
        )
    }
}

impl<'de, K: JsonKey + Ord, V: Deserialize<'de>> Deserialize<'de> for BTreeMap<K, V> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        value
            .as_map()
            .ok_or_else(|| Error::expected("map", "BTreeMap"))?
            .iter()
            .map(|(k, v)| Ok((K::from_key(k)?, V::from_value(v)?)))
            .collect()
    }
}

impl<K: JsonKey, V: Serialize, S> Serialize for HashMap<K, V, S> {
    fn to_value(&self) -> Value {
        // Deterministic output: order entries by their rendered key.
        let mut entries: Vec<(String, Value)> = self
            .iter()
            .map(|(k, v)| (k.to_key(), v.to_value()))
            .collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Map(entries)
    }
}

impl<'de, K, V, S> Deserialize<'de> for HashMap<K, V, S>
where
    K: JsonKey + Eq + std::hash::Hash,
    V: Deserialize<'de>,
    S: std::hash::BuildHasher + Default,
{
    fn from_value(value: &Value) -> Result<Self, Error> {
        value
            .as_map()
            .ok_or_else(|| Error::expected("map", "HashMap"))?
            .iter()
            .map(|(k, v)| Ok((K::from_key(k)?, V::from_value(v)?)))
            .collect()
    }
}

macro_rules! tuple_impls {
    ($(($len:expr => $($t:ident . $idx:tt),+)),*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Seq(vec![$(self.$idx.to_value()),+])
            }
        }

        impl<'de, $($t: Deserialize<'de>),+> Deserialize<'de> for ($($t,)+) {
            fn from_value(value: &Value) -> Result<Self, Error> {
                let seq = value
                    .as_seq()
                    .ok_or_else(|| Error::expected("sequence", "tuple"))?;
                if seq.len() != $len {
                    return Err(Error::invalid_length(seq.len(), $len, "tuple"));
                }
                Ok(($($t::from_value(&seq[$idx])?,)+))
            }
        }
    )*};
}

tuple_impls!(
    (1 => A.0),
    (2 => A.0, B.1),
    (3 => A.0, B.1, C.2),
    (4 => A.0, B.1, C.2, D.3)
);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn value_accessors() {
        let map = Value::Map(vec![("a".into(), Value::U64(1))]);
        assert_eq!(map.get_field("a"), Some(&Value::U64(1)));
        assert_eq!(map.get_field("b"), None);
        assert!(Value::Null.as_map().is_none());
        assert_eq!(Value::Str("x".into()).as_str(), Some("x"));
    }

    #[test]
    fn integer_range_checks() {
        assert_eq!(u8::from_value(&Value::U64(255)), Ok(255));
        assert!(u8::from_value(&Value::U64(256)).is_err());
        assert_eq!(i8::from_value(&Value::I64(-128)), Ok(-128));
        assert!(u32::from_value(&Value::I64(-1)).is_err());
        assert_eq!(i64::from_value(&Value::U64(7)), Ok(7));
    }

    #[test]
    fn option_round_trips_through_null() {
        assert_eq!(None::<u32>.to_value(), Value::Null);
        assert_eq!(Option::<u32>::from_value(&Value::Null), Ok(None));
        assert_eq!(Option::<u32>::from_value(&Value::U64(3)), Ok(Some(3)));
    }

    #[test]
    fn map_keys_stringify() {
        let mut m = BTreeMap::new();
        m.insert(42u32, 1.5f64);
        let v = m.to_value();
        assert_eq!(v.get_field("42"), Some(&Value::F64(1.5)));
        let back = BTreeMap::<u32, f64>::from_value(&v).unwrap();
        assert_eq!(back, m);
        assert!(BTreeMap::<u32, f64>::from_value(&Value::Map(vec![(
            "nope".into(),
            Value::F64(0.0)
        )]))
        .is_err());
    }

    #[test]
    fn non_finite_floats_use_hex_fallback() {
        let nan = f64::from_value(&Value::Str("f64:7ff8000000000000".into())).unwrap();
        assert!(nan.is_nan());
        assert!(f64::from_value(&Value::Str("not-a-float".into())).is_err());
    }
}
