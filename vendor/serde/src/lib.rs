//! Offline shim for `serde`.
//!
//! The build environment has no crates.io access, so this crate stands in
//! for the real `serde`: it provides the `Serialize` / `Deserialize`
//! trait names and re-exports the no-op derives from the sibling
//! `serde_derive` shim. Nothing in the workspace performs actual
//! serialization yet — types merely derive the traits so that the code
//! is source-compatible with the real crates the moment they can be
//! fetched (see `vendor/README.md` for the swap instructions).

pub use serde_derive::{Deserialize, Serialize};

/// Marker stand-in for `serde::Serialize`.
///
/// The shim derive does not implement it; it exists so `use` paths and
/// trait bounds written against real serde keep compiling.
pub trait Serialize {}

/// Marker stand-in for `serde::Deserialize`.
///
/// Lifetime parameter kept for signature compatibility with real serde.
pub trait Deserialize<'de>: Sized {}
