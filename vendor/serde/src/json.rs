//! JSON rendering and parsing of the [`crate::Value`] data model.
//!
//! The entry points mirror `serde_json`: [`to_string`] and [`from_str`].
//! Swapping to the real crates replaces `serde::json::` with
//! `serde_json::` (see `vendor/README.md`).
//!
//! Finite floats are written with Rust's shortest round-trip formatting
//! and parse back bit-exactly; non-finite floats are written as
//! bit-exact hex strings (`"f64:<16 hex digits>"`) because JSON has no
//! literal for them.

use crate::{Deserialize, Error, Serialize, Value};

/// Serialize `value` as compact JSON text.
///
/// # Errors
///
/// Infallible in the shim; the `Result` keeps the call-site signature of
/// `serde_json::to_string`.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value());
    Ok(out)
}

/// Deserialize a `T` from JSON text.
///
/// # Errors
///
/// [`Error`] on malformed JSON or a shape mismatch with `T`.
pub fn from_str<T: for<'de> Deserialize<'de>>(text: &str) -> Result<T, Error> {
    T::from_value(&parse(text)?)
}

/// Parse JSON text into a [`Value`].
///
/// # Errors
///
/// [`Error`] on malformed JSON or trailing garbage.
pub fn parse(text: &str) -> Result<Value, Error> {
    let mut parser = Parser {
        bytes: text.as_bytes(),
        pos: 0,
        depth: 0,
    };
    parser.skip_ws();
    let value = parser.parse_value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(parser.fail("trailing characters after JSON value"));
    }
    Ok(value)
}

fn write_value(out: &mut String, value: &Value) {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::I64(n) => out.push_str(&n.to_string()),
        Value::U64(n) => out.push_str(&n.to_string()),
        Value::F64(f) => write_f64(out, *f),
        Value::Str(s) => write_string(out, s),
        Value::Seq(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_value(out, item);
            }
            out.push(']');
        }
        Value::Map(entries) => {
            out.push('{');
            for (i, (key, item)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_string(out, key);
                out.push(':');
                write_value(out, item);
            }
            out.push('}');
        }
    }
}

fn write_f64(out: &mut String, f: f64) {
    if f.is_finite() {
        // `{:?}` is Rust's shortest representation that parses back to
        // the identical bits (also preserves the sign of -0.0).
        out.push_str(&format!("{f:?}"));
    } else {
        // JSON has no NaN/Infinity literal: bit-exact hex fallback.
        write_string(
            out,
            &format!("{}{:016x}", crate::F64_HEX_PREFIX, f.to_bits()),
        );
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Maximum container nesting accepted by the parser. A recursive-descent
/// parser with no bound would blow the stack (a process abort, not an
/// `Err`) on adversarially deep input; 128 matches `serde_json`'s
/// default and is far beyond any derived type in the workspace.
const MAX_DEPTH: usize = 128;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    depth: usize,
}

impl Parser<'_> {
    fn fail(&self, message: &str) -> Error {
        Error::custom(format!("{message} at byte {}", self.pos))
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<(), Error> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.fail(&format!("expected `{}`", byte as char)))
        }
    }

    fn eat_literal(&mut self, literal: &str) -> bool {
        if self.bytes[self.pos..].starts_with(literal.as_bytes()) {
            self.pos += literal.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            None => Err(self.fail("unexpected end of input")),
            Some(b'n') if self.eat_literal("null") => Ok(Value::Null),
            Some(b't') if self.eat_literal("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_literal("false") => Ok(Value::Bool(false)),
            Some(b'"') => self.parse_string().map(Value::Str),
            Some(b'[') => self.parse_seq(),
            Some(b'{') => self.parse_map(),
            Some(b'-' | b'0'..=b'9') => self.parse_number(),
            Some(other) => Err(self.fail(&format!("unexpected byte `{}`", other as char))),
        }
    }

    fn enter(&mut self) -> Result<(), Error> {
        self.depth += 1;
        if self.depth > MAX_DEPTH {
            return Err(self.fail("nesting deeper than the supported maximum"));
        }
        Ok(())
    }

    fn parse_seq(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        self.enter()?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(Value::Seq(items));
        }
        loop {
            self.skip_ws();
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(Value::Seq(items));
                }
                _ => return Err(self.fail("expected `,` or `]`")),
            }
        }
    }

    fn parse_map(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        self.enter()?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(Value::Map(entries));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.parse_value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(Value::Map(entries));
                }
                _ => return Err(self.fail("expected `,` or `}`")),
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Fast path: run of plain bytes.
            while let Some(b) = self.peek() {
                if b == b'"' || b == b'\\' || b < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| self.fail("invalid UTF-8 in string"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    out.push(self.parse_escape()?);
                }
                _ => return Err(self.fail("unterminated string")),
            }
        }
    }

    fn parse_escape(&mut self) -> Result<char, Error> {
        let escape = self.peek().ok_or_else(|| self.fail("truncated escape"))?;
        self.pos += 1;
        Ok(match escape {
            b'"' => '"',
            b'\\' => '\\',
            b'/' => '/',
            b'n' => '\n',
            b'r' => '\r',
            b't' => '\t',
            b'b' => '\u{8}',
            b'f' => '\u{c}',
            b'u' => {
                let unit = self.parse_hex4()?;
                if (0xd800..0xdc00).contains(&unit) {
                    // High surrogate: a \uXXXX low surrogate must follow.
                    if !self.eat_literal("\\u") {
                        return Err(self.fail("unpaired surrogate"));
                    }
                    let low = self.parse_hex4()?;
                    if !(0xdc00..0xe000).contains(&low) {
                        return Err(self.fail("invalid low surrogate"));
                    }
                    let code = 0x10000 + ((unit - 0xd800) << 10) + (low - 0xdc00);
                    char::from_u32(code).ok_or_else(|| self.fail("invalid surrogate pair"))?
                } else {
                    char::from_u32(unit).ok_or_else(|| self.fail("invalid \\u escape"))?
                }
            }
            other => {
                return Err(self.fail(&format!("unknown escape `\\{}`", other as char)));
            }
        })
    }

    fn parse_hex4(&mut self) -> Result<u32, Error> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err(self.fail("truncated \\u escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| self.fail("invalid \\u escape"))?;
        let unit = u32::from_str_radix(hex, 16).map_err(|_| self.fail("invalid \\u escape"))?;
        self.pos = end;
        Ok(unit)
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text =
            std::str::from_utf8(&self.bytes[start..self.pos]).expect("number bytes are ASCII");
        if !is_float {
            if let Some(digits) = text.strip_prefix('-') {
                if let Ok(n) = digits.parse::<u64>() {
                    // i64::MIN's magnitude is i64::MAX + 1; wrapping_neg
                    // maps that single case onto itself correctly.
                    if n <= i64::MAX as u64 + 1 {
                        return Ok(Value::I64((n as i64).wrapping_neg()));
                    }
                }
            } else if let Ok(n) = text.parse::<u64>() {
                return Ok(Value::U64(n));
            }
            // Integer overflow: fall through to the float representation.
        }
        text.parse::<f64>()
            .map(Value::F64)
            .map_err(|_| self.fail(&format!("invalid number `{text}`")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(value: &Value) -> Value {
        parse(&to_string(value).unwrap()).unwrap()
    }

    #[test]
    fn scalars_round_trip() {
        for v in [
            Value::Null,
            Value::Bool(true),
            Value::Bool(false),
            Value::I64(-42),
            Value::U64(u64::MAX),
            Value::F64(1.5),
            Value::Str("hello".into()),
        ] {
            assert_eq!(round_trip(&v), v);
        }
    }

    #[test]
    fn containers_round_trip() {
        let v = Value::Map(vec![
            ("a".into(), Value::Seq(vec![Value::U64(1), Value::Null])),
            ("b".into(), Value::Map(vec![])),
            ("weird key\n\"\\".into(), Value::Str("\u{1f600}\t".into())),
        ]);
        assert_eq!(round_trip(&v), v);
    }

    #[test]
    fn finite_floats_round_trip_bit_exactly() {
        for f in [
            0.0,
            -0.0,
            1.0 / 3.0,
            f64::MAX,
            f64::MIN,
            f64::MIN_POSITIVE,
            5e-324, // smallest subnormal
            -5e-324,
            1.2345678901234567e300,
        ] {
            let back = round_trip(&Value::F64(f));
            match back {
                Value::F64(g) => assert_eq!(g.to_bits(), f.to_bits(), "{f:?}"),
                // Small integral floats parse back as integers only if
                // formatting dropped the fraction — `{:?}` never does.
                other => panic!("f64 {f:?} came back as {other:?}"),
            }
        }
    }

    #[test]
    fn non_finite_floats_round_trip_via_typed_path() {
        for f in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY, -f64::NAN] {
            let json = to_string(&f).unwrap();
            let back: f64 = from_str(&json).unwrap();
            assert_eq!(back.to_bits(), f.to_bits(), "{json}");
        }
    }

    #[test]
    fn surrogate_pairs_and_escapes_parse() {
        let v: String = from_str("\"\\ud83d\\ude00 \\u0041\\n\"").unwrap();
        assert_eq!(v, "\u{1f600} A\n");
        assert!(from_str::<String>("\"\\ud83d\"").is_err());
    }

    #[test]
    fn malformed_inputs_error() {
        for bad in [
            "",
            "{",
            "[1,",
            "\"abc",
            "{\"a\":}",
            "01a",
            "nul",
            "[1 2]",
            "1 2",
            "{\"a\" 1}",
            "\"\\q\"",
        ] {
            assert!(parse(bad).is_err(), "`{bad}` should not parse");
        }
    }

    #[test]
    fn adversarially_deep_nesting_errors_instead_of_overflowing() {
        let deep_seq = "[".repeat(200_000);
        assert!(parse(&deep_seq).is_err());
        let deep_map = "{\"k\":".repeat(200_000);
        assert!(parse(&deep_map).is_err());
        // Moderate nesting (well under the limit) still parses.
        let ok = format!("{}1{}", "[".repeat(100), "]".repeat(100));
        assert!(parse(&ok).is_ok());
    }

    #[test]
    fn integers_keep_their_width() {
        assert_eq!(parse("18446744073709551615").unwrap(), Value::U64(u64::MAX));
        assert_eq!(parse("-9223372036854775808").unwrap(), Value::I64(i64::MIN));
        // Beyond u64: degrade to float rather than failing.
        assert!(matches!(
            parse("99999999999999999999999").unwrap(),
            Value::F64(_)
        ));
    }
}
