//! Offline shim for `rand` 0.8.
//!
//! The build environment has no crates.io access, so this crate
//! re-implements the subset of the `rand` API the workspace uses:
//! [`Rng::gen`], [`Rng::gen_range`], [`SeedableRng::seed_from_u64`],
//! [`rngs::StdRng`], and [`seq::SliceRandom::shuffle`]. The generator is
//! a genuine xoshiro256++ seeded through SplitMix64, so statistical
//! tests downstream (distribution shapes, medians, skew) behave like they
//! would on the real crate. Streams are deterministic per seed but do
//! **not** reproduce upstream `StdRng` (ChaCha12) streams bit-for-bit;
//! swap in the real crate once network access exists (`vendor/README.md`).

#![forbid(unsafe_code)]

/// A low-level source of random 32/64-bit words (mirror of `rand_core`).
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// User-facing sampling methods, blanket-implemented for every
/// [`RngCore`], mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Sample a value of type `T` from its "standard" distribution
    /// (uniform over the type's range; `[0, 1)` for floats).
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Sample uniformly from a half-open (`lo..hi`) or inclusive
    /// (`lo..=hi`) range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Sample a `bool` with the given probability of `true`.
    fn gen_bool(&mut self, p: f64) -> bool {
        f64::sample_standard(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// A generator constructible from a fixed-size seed (mirror of
/// `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Raw seed type.
    type Seed: Default + AsMut<[u8]>;

    /// Construct from a raw byte seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Construct from a `u64`, expanded through SplitMix64 exactly like
    /// upstream `rand`'s default implementation.
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            let x = splitmix64(&mut state);
            for (b, src) in chunk.iter_mut().zip(x.to_le_bytes()) {
                *b = src;
            }
        }
        Self::from_seed(seed)
    }
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Named generators (mirror of `rand::rngs`).
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The shim's standard generator: xoshiro256++.
    ///
    /// Statistically strong and fast; *not* stream-compatible with
    /// upstream `StdRng` (which is ChaCha12), but deterministic per seed.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, chunk) in seed.chunks_exact(8).enumerate() {
                s[i] = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
            }
            // An all-zero state is the one fixed point of xoshiro; nudge it.
            if s == [0; 4] {
                s = [
                    0x9E37_79B9_7F4A_7C15,
                    0x6A09_E667_F3BC_C909,
                    0xB7E1_5162_8AED_2A6B,
                    0x243F_6A88_85A3_08D3,
                ];
            }
            StdRng { s }
        }
    }
}

/// Types samplable from their standard distribution (stands in for
/// `rand::distributions::Standard`).
pub trait Standard: Sized {
    /// Draw one value.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits -> [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Types with a uniform sampler over an interval (stands in for
/// `rand::distributions::uniform::SampleUniform`).
pub trait SampleUniform: Sized + PartialOrd {
    /// Draw uniformly from `[lo, hi)` (`inclusive = false`) or `[lo, hi]`
    /// (`inclusive = true`). Bounds are assumed valid.
    fn sample_between<R: RngCore + ?Sized>(
        lo: Self,
        hi: Self,
        inclusive: bool,
        rng: &mut R,
    ) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_between<R: RngCore + ?Sized>(
                lo: Self,
                hi: Self,
                inclusive: bool,
                rng: &mut R,
            ) -> Self {
                let span = (hi as i128 - lo as i128) as u128 + u128::from(inclusive);
                let draw = (u128::from(rng.next_u64()) * span) >> 64;
                (lo as i128 + draw as i128) as $t
            }
        }
    )*};
}
impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_sample_uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_between<R: RngCore + ?Sized>(
                lo: Self,
                hi: Self,
                inclusive: bool,
                rng: &mut R,
            ) -> Self {
                let v = lo + (hi - lo) * <$t as Standard>::sample_standard(rng);
                // Rounding can land exactly on an excluded endpoint
                // (probability ~2^-53); fold that draw onto the start.
                if !inclusive && v >= hi { lo } else { v }
            }
        }
    )*};
}
impl_sample_uniform_float!(f32, f64);

/// Ranges a value can be drawn from (stands in for
/// `rand::distributions::uniform::SampleRange`).
pub trait SampleRange<T> {
    /// Draw one value uniformly from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for core::ops::Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "cannot sample empty range");
        T::sample_between(self.start, self.end, false, rng)
    }
}

impl<T: SampleUniform + Copy> SampleRange<T> for core::ops::RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "cannot sample empty range");
        T::sample_between(lo, hi, true, rng)
    }
}

/// Sequence helpers (mirror of `rand::seq`).
pub mod seq {
    use super::{Rng, RngCore};

    /// Slice extensions (mirror of `rand::seq::SliceRandom`).
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// A uniformly random element, or `None` if empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        let va: Vec<u64> = (0..32).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..32).map(|_| b.next_u64()).collect();
        let vc: Vec<u64> = (0..32).map(|_| c.next_u64()).collect();
        assert_eq!(va, vb);
        assert_ne!(va, vc);
    }

    #[test]
    fn unit_floats_are_uniformish() {
        let mut rng = StdRng::seed_from_u64(1);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| rng.gen::<f64>()).sum::<f64>() / f64::from(n);
        assert!((0.49..0.51).contains(&mean), "mean = {mean}");
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..10_000 {
            let x = rng.gen_range(5u32..17);
            assert!((5..17).contains(&x));
            let y = rng.gen_range(-3i64..=3);
            assert!((-3..=3).contains(&y));
            let f = rng.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn integer_ranges_hit_all_values() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut seen = [false; 10];
        for _ in 0..1_000 {
            seen[rng.gen_range(0usize..10)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut v: Vec<u32> = (0..100).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<u32>>());
        assert_ne!(v, sorted, "a 100-element shuffle virtually never fixes");
    }
}
