//! Offline shim for `criterion`.
//!
//! The build environment has no crates.io access, so this crate provides
//! the benchmark-definition API the workspace's `benches/` targets use —
//! [`Criterion`], [`BenchmarkId`], benchmark groups, `Bencher::iter`, and
//! the [`criterion_group!`] / [`criterion_main!`] macros — backed by a
//! plain wall-clock loop instead of criterion's statistical engine. Each
//! bench warms up once, runs `sample_size` timed iterations, and prints
//! the mean per-iteration time. No outlier analysis, no HTML reports.
//! Swap in the real crate once network access exists (`vendor/README.md`).

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level benchmark driver (mirror of `criterion::Criterion`).
#[derive(Debug)]
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
            _parent: self,
        }
    }

    /// Run a single free-standing benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&id.into().render(), self.sample_size, &mut f);
        self
    }
}

/// A named cluster of benchmarks sharing settings (mirror of
/// `criterion::BenchmarkGroup`).
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Set how many timed iterations each bench in this group runs.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Run one benchmark in this group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id.into().render());
        run_one(&label, self.sample_size, &mut f);
        self
    }

    /// Run one benchmark that borrows an input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.into().render());
        run_one(&label, self.sample_size, &mut |b: &mut Bencher| f(b, input));
        self
    }

    /// Close the group (upstream flushes reports here; the shim has
    /// nothing buffered).
    pub fn finish(self) {}
}

/// A benchmark identifier, optionally parameterized (mirror of
/// `criterion::BenchmarkId`).
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    function_name: String,
    parameter: Option<String>,
}

impl BenchmarkId {
    /// An id for `function_name` at the given parameter value.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            function_name: function_name.into(),
            parameter: Some(parameter.to_string()),
        }
    }

    /// An id carrying only a parameter value.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            function_name: String::new(),
            parameter: Some(parameter.to_string()),
        }
    }

    fn render(&self) -> String {
        match &self.parameter {
            Some(p) if self.function_name.is_empty() => p.clone(),
            Some(p) => format!("{}/{}", self.function_name, p),
            None => self.function_name.clone(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(name: &str) -> Self {
        BenchmarkId {
            function_name: name.to_owned(),
            parameter: None,
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(name: String) -> Self {
        BenchmarkId {
            function_name: name,
            parameter: None,
        }
    }
}

/// Passed to every benchmark closure; its [`iter`](Bencher::iter) runs
/// and times the workload.
#[derive(Debug, Default)]
pub struct Bencher {
    samples: Vec<Duration>,
    iters_per_sample: usize,
}

impl Bencher {
    /// Time `routine`, called repeatedly; results are averaged.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // Warm-up also sizes the batch so very fast routines get a
        // measurable number of calls per sample.
        let warm = Instant::now();
        black_box(routine());
        let once = warm.elapsed();
        let per_sample = if once < Duration::from_micros(50) {
            (Duration::from_micros(200).as_nanos() / once.as_nanos().max(1)) as usize + 1
        } else {
            1
        };
        self.iters_per_sample = per_sample;
        let start = Instant::now();
        for _ in 0..per_sample {
            black_box(routine());
        }
        self.samples.push(start.elapsed());
    }
}

fn run_one<F: FnMut(&mut Bencher)>(label: &str, sample_size: usize, f: &mut F) {
    let mut samples = Vec::with_capacity(sample_size);
    let mut iters = 1usize;
    for _ in 0..sample_size {
        let mut b = Bencher::default();
        f(&mut b);
        iters = b.iters_per_sample.max(1);
        samples.extend(b.samples);
    }
    if samples.is_empty() {
        println!("{label:<60} (no measurement: bencher.iter never called)");
        return;
    }
    let total: Duration = samples.iter().sum();
    let mean = total / (samples.len() as u32 * iters as u32).max(1);
    let best = *samples.iter().min().expect("non-empty") / iters as u32;
    println!("{label:<60} mean {mean:>12?}   best {best:>12?}");
}

/// Bundle benchmark functions into one group runner (mirror of
/// `criterion::criterion_group!`).
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emit `main` running the given groups (mirror of
/// `criterion::criterion_main!`).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick(c: &mut Criterion) {
        let mut group = c.benchmark_group("shim");
        group.sample_size(3);
        group.bench_function("sum", |b| b.iter(|| (0..100u64).sum::<u64>()));
        group.bench_with_input(BenchmarkId::new("sq", 7), &7u64, |b, &x| b.iter(|| x * x));
        group.finish();
    }

    criterion_group!(unit_benches, quick);

    #[test]
    fn harness_runs_without_panicking() {
        unit_benches();
    }

    #[test]
    fn ids_render_like_criterion() {
        assert_eq!(BenchmarkId::new("f", 32).render(), "f/32");
        assert_eq!(BenchmarkId::from(String::from("plain")).render(), "plain");
        assert_eq!(BenchmarkId::from_parameter(9).render(), "9");
    }
}
