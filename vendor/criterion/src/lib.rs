//! Offline shim for `criterion`.
//!
//! The build environment has no crates.io access, so this crate provides
//! the benchmark-definition API the workspace's `benches/` targets use —
//! [`Criterion`], [`BenchmarkId`], benchmark groups, `Bencher::iter`, and
//! the [`criterion_group!`] / [`criterion_main!`] macros — with a small
//! statistical engine modeled on criterion's: a wall-clock warm-up phase
//! before measurement, Tukey 1.5×IQR outlier rejection over the samples,
//! and a bootstrap 95% confidence interval on the median (deterministic
//! resampling, seeded from the benchmark label). Each line reports the
//! median with its CI, the outlier-filtered mean, and how many samples
//! were rejected. No HTML reports. Swap in the real crate once network
//! access exists (`vendor/README.md`).

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Wall-clock budget of the warm-up phase preceding measurement.
const WARM_UP: Duration = Duration::from_millis(100);
/// Most warm-up calls before measurement starts regardless of budget.
const WARM_UP_MAX_CALLS: usize = 10;
/// Bootstrap resamples behind each confidence interval.
const BOOTSTRAP_RESAMPLES: usize = 200;

/// Top-level benchmark driver (mirror of `criterion::Criterion`).
#[derive(Debug)]
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
            _parent: self,
        }
    }

    /// Run a single free-standing benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&id.into().render(), self.sample_size, &mut f);
        self
    }
}

/// A named cluster of benchmarks sharing settings (mirror of
/// `criterion::BenchmarkGroup`).
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Set how many timed iterations each bench in this group runs.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Run one benchmark in this group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id.into().render());
        run_one(&label, self.sample_size, &mut f);
        self
    }

    /// Run one benchmark that borrows an input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.into().render());
        run_one(&label, self.sample_size, &mut |b: &mut Bencher| f(b, input));
        self
    }

    /// Close the group (upstream flushes reports here; the shim has
    /// nothing buffered).
    pub fn finish(self) {}
}

/// A benchmark identifier, optionally parameterized (mirror of
/// `criterion::BenchmarkId`).
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    function_name: String,
    parameter: Option<String>,
}

impl BenchmarkId {
    /// An id for `function_name` at the given parameter value.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            function_name: function_name.into(),
            parameter: Some(parameter.to_string()),
        }
    }

    /// An id carrying only a parameter value.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            function_name: String::new(),
            parameter: Some(parameter.to_string()),
        }
    }

    fn render(&self) -> String {
        match &self.parameter {
            Some(p) if self.function_name.is_empty() => p.clone(),
            Some(p) => format!("{}/{}", self.function_name, p),
            None => self.function_name.clone(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(name: &str) -> Self {
        BenchmarkId {
            function_name: name.to_owned(),
            parameter: None,
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(name: String) -> Self {
        BenchmarkId {
            function_name: name,
            parameter: None,
        }
    }
}

/// Passed to every benchmark closure; its [`iter`](Bencher::iter) runs
/// and times the workload.
#[derive(Debug, Default)]
pub struct Bencher {
    samples: Vec<f64>,
}

impl Bencher {
    /// Time `routine`: one timed batch per call, recorded as one
    /// per-iteration sample.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // An untimed call sizes the batch so very fast routines get a
        // measurable number of calls per sample.
        let sizing = Instant::now();
        black_box(routine());
        let once = sizing.elapsed();
        let per_sample = if once < Duration::from_micros(50) {
            (Duration::from_micros(200).as_nanos() / once.as_nanos().max(1)) as usize + 1
        } else {
            1
        };
        let start = Instant::now();
        for _ in 0..per_sample {
            black_box(routine());
        }
        let nanos = start.elapsed().as_secs_f64() * 1e9;
        self.samples.push(nanos / per_sample as f64);
    }
}

/// The statistics behind one report line, exposed for the unit tests.
#[derive(Debug, Clone, PartialEq)]
struct Analysis {
    median: f64,
    ci_lo: f64,
    ci_hi: f64,
    mean: f64,
    kept: usize,
    outliers: usize,
}

fn run_one<F: FnMut(&mut Bencher)>(label: &str, sample_size: usize, f: &mut F) {
    // Warm-up phase: run the routine unmeasured until the budget is
    // spent, so caches, branch predictors, and allocator state settle
    // before anything is recorded.
    let warm_start = Instant::now();
    let mut warm_calls = 0;
    while warm_calls == 0 || (warm_start.elapsed() < WARM_UP && warm_calls < WARM_UP_MAX_CALLS) {
        let mut b = Bencher::default();
        f(&mut b);
        if b.samples.is_empty() {
            println!("{label:<60} (no measurement: bencher.iter never called)");
            return;
        }
        warm_calls += 1;
    }
    // Measurement phase.
    let mut samples = Vec::with_capacity(sample_size);
    for _ in 0..sample_size {
        let mut b = Bencher::default();
        f(&mut b);
        samples.extend(b.samples);
    }
    let analysis = analyze(&mut samples, seed_from_label(label));
    println!(
        "{label:<48} median {:>10} [{}, {}] (95% CI)   mean {:>10}   {} samples, {} outliers",
        fmt_ns(analysis.median),
        fmt_ns(analysis.ci_lo),
        fmt_ns(analysis.ci_hi),
        fmt_ns(analysis.mean),
        analysis.kept,
        analysis.outliers,
    );
}

/// Tukey-filter the samples, then bootstrap a 95% CI on the median.
/// Sorts `samples` in place.
fn analyze(samples: &mut [f64], seed: u64) -> Analysis {
    samples.sort_by(|a, b| a.partial_cmp(b).expect("times are finite"));
    let (lo_fence, hi_fence) = tukey_fences(samples);
    let kept: Vec<f64> = samples
        .iter()
        .copied()
        .filter(|&s| s >= lo_fence && s <= hi_fence)
        .collect();
    let outliers = samples.len() - kept.len();
    let mean = kept.iter().sum::<f64>() / kept.len() as f64;
    let (ci_lo, ci_hi) = bootstrap_median_ci(&kept, seed);
    Analysis {
        median: median_of_sorted(samples),
        ci_lo,
        ci_hi,
        mean,
        kept: kept.len(),
        outliers,
    }
}

/// Median of an ascending-sorted, non-empty slice.
fn median_of_sorted(sorted: &[f64]) -> f64 {
    let n = sorted.len();
    if n % 2 == 1 {
        sorted[n / 2]
    } else {
        (sorted[n / 2 - 1] + sorted[n / 2]) / 2.0
    }
}

/// Linear-interpolation quantile of an ascending-sorted, non-empty
/// slice (the R-7 rule, what criterion's Tukey pass uses).
fn quantile_of_sorted(sorted: &[f64], q: f64) -> f64 {
    let n = sorted.len();
    if n == 1 {
        return sorted[0];
    }
    let rank = q * (n - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    let frac = rank - lo as f64;
    sorted[lo] + (sorted[hi] - sorted[lo]) * frac
}

/// Tukey fences at 1.5×IQR outside the quartiles.
fn tukey_fences(sorted: &[f64]) -> (f64, f64) {
    let q1 = quantile_of_sorted(sorted, 0.25);
    let q3 = quantile_of_sorted(sorted, 0.75);
    let iqr = q3 - q1;
    (q1 - 1.5 * iqr, q3 + 1.5 * iqr)
}

/// SplitMix64: a tiny deterministic generator for bootstrap resampling
/// (no external RNG dependency, reproducible per label).
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// FNV-1a of the label: the bootstrap seed, stable across runs.
fn seed_from_label(label: &str) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in label.as_bytes() {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// Percentile-method bootstrap 95% confidence interval on the median:
/// resample with replacement, take each resample's median, and read the
/// 2.5th/97.5th percentiles of that distribution.
fn bootstrap_median_ci(kept: &[f64], mut seed: u64) -> (f64, f64) {
    let mut medians = Vec::with_capacity(BOOTSTRAP_RESAMPLES);
    let mut resample = vec![0.0; kept.len()];
    for _ in 0..BOOTSTRAP_RESAMPLES {
        for slot in &mut resample {
            let idx = (splitmix64(&mut seed) % kept.len() as u64) as usize;
            *slot = kept[idx];
        }
        resample.sort_by(|a, b| a.partial_cmp(b).expect("times are finite"));
        medians.push(median_of_sorted(&resample));
    }
    medians.sort_by(|a, b| a.partial_cmp(b).expect("times are finite"));
    (
        quantile_of_sorted(&medians, 0.025),
        quantile_of_sorted(&medians, 0.975),
    )
}

/// Render nanoseconds with the unit a human would pick.
fn fmt_ns(ns: f64) -> String {
    if ns < 1e3 {
        format!("{ns:.1}ns")
    } else if ns < 1e6 {
        format!("{:.2}µs", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.2}ms", ns / 1e6)
    } else {
        format!("{:.3}s", ns / 1e9)
    }
}

/// Bundle benchmark functions into one group runner (mirror of
/// `criterion::criterion_group!`).
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emit `main` running the given groups (mirror of
/// `criterion::criterion_main!`).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick(c: &mut Criterion) {
        let mut group = c.benchmark_group("shim");
        group.sample_size(3);
        group.bench_function("sum", |b| b.iter(|| (0..100u64).sum::<u64>()));
        group.bench_with_input(BenchmarkId::new("sq", 7), &7u64, |b, &x| b.iter(|| x * x));
        group.finish();
    }

    criterion_group!(unit_benches, quick);

    #[test]
    fn harness_runs_without_panicking() {
        unit_benches();
    }

    #[test]
    fn ids_render_like_criterion() {
        assert_eq!(BenchmarkId::new("f", 32).render(), "f/32");
        assert_eq!(BenchmarkId::from(String::from("plain")).render(), "plain");
        assert_eq!(BenchmarkId::from_parameter(9).render(), "9");
    }

    #[test]
    fn median_and_quantiles_interpolate() {
        assert_eq!(median_of_sorted(&[1.0, 2.0, 3.0]), 2.0);
        assert_eq!(median_of_sorted(&[1.0, 2.0, 3.0, 4.0]), 2.5);
        let sorted = [10.0, 20.0, 30.0, 40.0, 50.0];
        assert_eq!(quantile_of_sorted(&sorted, 0.0), 10.0);
        assert_eq!(quantile_of_sorted(&sorted, 0.5), 30.0);
        assert_eq!(quantile_of_sorted(&sorted, 1.0), 50.0);
        assert_eq!(quantile_of_sorted(&sorted, 0.25), 20.0);
        assert_eq!(quantile_of_sorted(&[7.0], 0.75), 7.0);
    }

    #[test]
    fn tukey_rejects_the_stray_sample() {
        // 19 tight samples and one 100× straggler (a GC pause, say).
        let mut samples: Vec<f64> = (0..19).map(|i| 100.0 + i as f64).collect();
        samples.push(10_000.0);
        let analysis = analyze(&mut samples, 1);
        assert_eq!(analysis.outliers, 1);
        assert_eq!(analysis.kept, 19);
        // The filtered mean sits in the tight cluster; an unfiltered
        // mean would be dragged to ~600.
        assert!(analysis.mean < 120.0, "mean = {}", analysis.mean);
        assert!(analysis.ci_lo <= analysis.median && analysis.median <= analysis.ci_hi);
    }

    #[test]
    fn bootstrap_ci_is_deterministic_and_brackets_the_median() {
        let mut a: Vec<f64> = (0..50).map(|i| 200.0 + (i % 7) as f64).collect();
        let mut b = a.clone();
        let one = analyze(&mut a, seed_from_label("x"));
        let two = analyze(&mut b, seed_from_label("x"));
        assert_eq!(one, two, "same samples + seed ⇒ same analysis");
        assert!(one.ci_lo <= one.median && one.median <= one.ci_hi);
        // A different seed still brackets the median.
        let three = analyze(&mut b.clone(), seed_from_label("y"));
        assert!(three.ci_lo <= three.median && three.median <= three.ci_hi);
    }

    #[test]
    fn constant_samples_collapse_the_interval() {
        let mut samples = vec![42.0; 30];
        let analysis = analyze(&mut samples, 9);
        assert_eq!(analysis.median, 42.0);
        assert_eq!(analysis.ci_lo, 42.0);
        assert_eq!(analysis.ci_hi, 42.0);
        assert_eq!(analysis.outliers, 0);
    }

    #[test]
    fn formats_pick_sensible_units() {
        assert_eq!(fmt_ns(12.34), "12.3ns");
        assert_eq!(fmt_ns(12_345.0), "12.35µs");
        assert_eq!(fmt_ns(12_345_678.0), "12.35ms");
        assert_eq!(fmt_ns(2_500_000_000.0), "2.500s");
    }
}
