//! # sqnn-profiler — the profiling harness
//!
//! This crate plays the role of the paper's Radeon Compute Profiler
//! setup: it runs one training epoch of a [`sqnn::Network`] over an
//! [`sqnn_data::EpochPlan`] on a simulated [`gpu_sim::Device`] and
//! records, per iteration, the runtime and hardware counters (and
//! optionally the full per-kernel breakdown).
//!
//! It exploits the paper's key observation 4 — iterations with the same
//! input shape behave identically (absent data-dependent optimizations) —
//! by memoizing iteration profiles per unique `(seq_len, samples)` pair,
//! which is also what makes simulating full epochs cheap.
//!
//! Beyond epoch profiling it provides:
//!
//! * [`Profiler::profile_seq_lens`] — re-profile only a SeqPoint set's
//!   sequence lengths on a new hardware configuration (the paper's
//!   cross-configuration projection flow);
//! * [`parallel::profile_seq_lens_parallel`] — the Section VI-F
//!   observation that SeqPoints are independent iterations and can be
//!   profiled on separate machines concurrently;
//! * [`stream::profile_epoch_streaming`] — sharded streaming ingestion
//!   with saturation early stop: the epoch log is never materialized,
//!   worker shards profile rounds concurrently, and selection runs on
//!   merged streamed counts;
//! * evaluation-phase and autotune-phase cost models (Section IV-C);
//! * [`export`] — SeqPoint kernel-trace bundles for architecture-
//!   simulator hand-off (Section VII-A);
//! * [`report`] — markdown/CSV table rendering for the experiment
//!   drivers.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod error;
mod harness;
mod phases;

pub mod export;
pub mod parallel;
pub mod pipeline;
pub mod report;
pub mod stream;

pub use error::ProfileError;
pub use harness::{EpochProfile, IterationProfile, Profiler, StatKind};
pub use phases::PhaseModel;
