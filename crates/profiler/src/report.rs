//! Report rendering: the markdown and CSV tables the experiment drivers
//! print and archive under `results/`.

use std::fmt::Write as _;
use std::fs;
use std::path::Path;

use crate::ProfileError;

/// A simple rectangular table with a title, built row by row.
///
/// ```
/// use sqnn_profiler::report::Table;
///
/// let mut t = Table::new("Fig. 0 — demo", ["scheme", "error %"]);
/// t.push_row(["seqpoint", "0.11"]);
/// assert!(t.to_markdown().contains("| seqpoint | 0.11 |"));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Create a table with the given title and column headers.
    pub fn new<S: Into<String>>(
        title: impl Into<String>,
        headers: impl IntoIterator<Item = S>,
    ) -> Self {
        Table {
            title: title.into(),
            headers: headers.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row. Rows shorter than the header are padded with empty
    /// cells; longer rows are truncated.
    pub fn push_row<S: Into<String>>(&mut self, cells: impl IntoIterator<Item = S>) {
        let mut row: Vec<String> = cells.into_iter().map(Into::into).collect();
        row.resize(self.headers.len(), String::new());
        self.rows.push(row);
    }

    /// The table's title.
    pub fn title(&self) -> &str {
        &self.title
    }

    /// Number of data rows.
    pub fn row_count(&self) -> usize {
        self.rows.len()
    }

    /// Render as a GitHub-flavoured markdown table with a heading.
    pub fn to_markdown(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "### {}\n", self.title);
        let _ = writeln!(out, "| {} |", self.headers.join(" | "));
        let _ = writeln!(
            out,
            "|{}|",
            self.headers
                .iter()
                .map(|_| "---")
                .collect::<Vec<_>>()
                .join("|")
        );
        for row in &self.rows {
            let _ = writeln!(out, "| {} |", row.join(" | "));
        }
        out
    }

    /// Render as CSV (header row first; quotes around cells containing
    /// commas or quotes).
    pub fn to_csv(&self) -> String {
        let escape = |cell: &str| -> String {
            if cell.contains(',') || cell.contains('"') || cell.contains('\n') {
                format!("\"{}\"", cell.replace('"', "\"\""))
            } else {
                cell.to_owned()
            }
        };
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{}",
            self.headers
                .iter()
                .map(|h| escape(h))
                .collect::<Vec<_>>()
                .join(",")
        );
        for row in &self.rows {
            let _ = writeln!(
                out,
                "{}",
                row.iter().map(|c| escape(c)).collect::<Vec<_>>().join(",")
            );
        }
        out
    }

    /// Write the CSV rendering to `path`, creating parent directories.
    ///
    /// # Errors
    ///
    /// [`ProfileError::Io`] when the filesystem write fails.
    pub fn write_csv(&self, path: impl AsRef<Path>) -> Result<(), ProfileError> {
        let path = path.as_ref();
        let io_err = |e: std::io::Error| ProfileError::Io {
            path: path.display().to_string(),
            message: e.to_string(),
        };
        if let Some(parent) = path.parent() {
            fs::create_dir_all(parent).map_err(io_err)?;
        }
        fs::write(path, self.to_csv()).map_err(io_err)
    }
}

/// Format a float with `digits` decimal places, trimming `-0`.
pub fn fmt_f(value: f64, digits: usize) -> String {
    let s = format!("{value:.digits$}");
    if s.starts_with("-0.") && s[3..].chars().all(|c| c == '0') {
        s[1..].to_owned()
    } else {
        s
    }
}

/// Format a duration in seconds with an adaptive unit (s / ms / µs).
pub fn fmt_duration(seconds: f64) -> String {
    if seconds >= 1.0 {
        format!("{seconds:.2} s")
    } else if seconds >= 1e-3 {
        format!("{:.2} ms", seconds * 1e3)
    } else {
        format!("{:.2} µs", seconds * 1e6)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table() -> Table {
        let mut t = Table::new("Demo", ["a", "b"]);
        t.push_row(["1", "2"]);
        t.push_row(["x,y", "q\"z"]);
        t.push_row(["only-one"]);
        t
    }

    #[test]
    fn markdown_has_header_and_rows() {
        let md = table().to_markdown();
        assert!(md.contains("### Demo"));
        assert!(md.contains("| a | b |"));
        assert!(md.contains("| 1 | 2 |"));
    }

    #[test]
    fn csv_escapes_delimiters() {
        let csv = table().to_csv();
        assert!(csv.contains("\"x,y\""));
        assert!(csv.contains("\"q\"\"z\""));
    }

    #[test]
    fn short_rows_are_padded() {
        let t = table();
        assert_eq!(t.row_count(), 3);
        let md = t.to_markdown();
        assert!(md.contains("| only-one |  |"));
    }

    #[test]
    fn write_csv_creates_directories() {
        let dir = std::env::temp_dir().join("seqpoint-report-test");
        let path = dir.join("nested/out.csv");
        let _ = std::fs::remove_dir_all(&dir);
        table().write_csv(&path).unwrap();
        let content = std::fs::read_to_string(&path).unwrap();
        assert!(content.starts_with("a,b"));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn float_formatting() {
        assert_eq!(fmt_f(1.23456, 2), "1.23");
        assert_eq!(fmt_f(-0.0001, 2), "0.00");
        assert_eq!(fmt_duration(2.5), "2.50 s");
        assert_eq!(fmt_duration(0.0025), "2.50 ms");
        assert_eq!(fmt_duration(0.0000025), "2.50 µs");
    }
}
