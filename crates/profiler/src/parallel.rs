//! Parallel SeqPoint profiling (paper Section VI-F).
//!
//! "Given each SeqPoint is an independent iteration, they can be executed
//! in parallel (on different machines) which further speeds up profiling
//! by 214× and 345×" — this module reproduces that: each sequence length
//! is profiled on its own thread with its own simulated device, and the
//! wall time of the parallel profile equals the *maximum* SeqPoint time
//! rather than the sum.

use gpu_sim::Device;
use sqnn::Network;

use crate::{IterationProfile, Profiler};

/// Profile one iteration per sequence length concurrently, one thread
/// per SL (each standing for a separate profiling machine).
///
/// Results are returned in the order of `seq_lens`, identical to what
/// [`Profiler::profile_seq_lens`] produces serially.
pub fn profile_seq_lens_parallel(
    profiler: &Profiler,
    network: &Network,
    batch: u32,
    seq_lens: &[u32],
    device: &Device,
) -> Vec<IterationProfile> {
    std::thread::scope(|scope| {
        let handles: Vec<_> = seq_lens
            .iter()
            .map(|&sl| {
                let device = device.clone();
                scope.spawn(move || {
                    profiler
                        .profile_seq_lens(network, batch, &[sl], &device)
                        .remove(0)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("profiling thread panicked"))
            .collect()
    })
}

/// The serial and parallel profiling costs of a SeqPoint set: the sum and
/// the maximum of the per-SL times (Section VI-F's two speedup flavours).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ProfilingCost {
    /// Total time when SeqPoints run back to back on one machine.
    pub serial_s: f64,
    /// Wall time when each SeqPoint runs on its own machine.
    pub parallel_s: f64,
}

/// Compute the profiling cost of a set of per-SL iteration profiles.
pub fn profiling_cost(profiles: &[IterationProfile]) -> ProfilingCost {
    ProfilingCost {
        serial_s: profiles.iter().map(|p| p.time_s).sum(),
        parallel_s: profiles.iter().map(|p| p.time_s).fold(0.0, f64::max),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::GpuConfig;
    use sqnn::models::gnmt_with;

    #[test]
    fn parallel_matches_serial_results() {
        let net = gnmt_with(200, 32);
        let device = Device::new(GpuConfig::vega_fe());
        let profiler = Profiler::new();
        let sls = [5, 10, 20, 40];
        let serial = profiler.profile_seq_lens(&net, 4, &sls, &device);
        let parallel = profile_seq_lens_parallel(&profiler, &net, 4, &sls, &device);
        assert_eq!(serial, parallel);
    }

    #[test]
    fn cost_summary_sums_and_maxes() {
        let net = gnmt_with(200, 32);
        let device = Device::new(GpuConfig::vega_fe());
        let profiles = Profiler::new().profile_seq_lens(&net, 4, &[5, 10, 20], &device);
        let cost = profiling_cost(&profiles);
        assert!(cost.serial_s > cost.parallel_s);
        assert!((cost.parallel_s - profiles[2].time_s).abs() < 1e-12);
        let sum: f64 = profiles.iter().map(|p| p.time_s).sum();
        assert!((cost.serial_s - sum).abs() < 1e-12);
    }

    #[test]
    fn empty_set_costs_nothing() {
        let cost = profiling_cost(&[]);
        assert_eq!(cost.serial_s, 0.0);
        assert_eq!(cost.parallel_s, 0.0);
    }
}
