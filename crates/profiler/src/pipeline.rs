//! The streaming harness as composable dataflow operators.
//!
//! [`crate::stream`] defines the *contract* of streamed profiling —
//! rounds, shard chunks, checkpoints, the early stop. This module
//! defines its *structure*: a small operator algebra wired into one
//! canonical graph by [`StreamGraph`], replacing the bespoke round loop
//! that used to live inside `profile_epoch_streaming_with`.
//!
//! ```text
//!                    driver thread                 merge-stage thread
//!   ┌─────────┐   ┌───────────┐  bounded(1)  ┌────────────┐ ┌──────┐ ┌──────┐
//!   │ Round-  │──▶│ ShardFold │═════════════▶│ KeyedMerge │▶│ Gate │▶│ Sink │
//!   │ Source  │   │ (executor)│◀═════════════│            │ │      │ │      │
//!   └─────────┘   └───────────┘  stop+credit └────────────┘ └──────┘ └──────┘
//! ```
//!
//! * [`RoundSource`] walks the epoch plan in `round_len` blocks and
//!   deals each block to per-shard [`ShardChunk`]s.
//! * [`ShardFold`] executes one round's chunks through the
//!   [`RoundExecutor`] seam. It runs on the **driver** thread — the
//!   executor trait object is not `Send` (subprocess executors hold
//!   pool borrows, test executors hold log borrows), and keeping it
//!   here means a placement layer leases workers exactly at the fold
//!   stage boundary.
//! * [`KeyedMerge`] folds the per-shard reports into the SL-keyed
//!   round tracker, the shape memo, and the cost accounting.
//! * [`Gate`] is the round-boundary decision surface: the Good–Turing
//!   saturation rule ([`SaturationGate`]) decides *stop*, and the
//!   max-rounds/interrupt budget ([`BudgetGate`]) decides *pause*.
//! * [`CheckpointSink`] renders the merged state into the periodic,
//!   pause, and final checkpoint writes.
//!
//! Merge, gate, and sink run on a dedicated stage thread connected to
//! the driver by capacity-1 [`pipe`] channels, so round `N + 1` folds
//! while round `N` merges and checkpoints — and backpressure falls out
//! of the channel bound instead of ad-hoc joins. Speculation is gated
//! by the **credit** each gate reply carries
//! ([`seqpoint_core::stream::StreamingSelector::stop_credit`]): a
//! round of `n` iterations may launch before the previous merge lands
//! only while `n < credit`, which is exactly the old
//! `stop_possible_after` rule, so an early stop never pays for a round
//! it would immediately discard.
//!
//! Every operator records a [`StageSample`] per item into a caller-
//! provided [`StageMeter`], giving a loaded pipeline per-stage
//! observability (items in/out, stage wall-ms, channel depth) for free
//! at construction time — `seqpoint serve` plugs its metrics registry
//! in here.
//!
//! Adding a new fold or gate is implementing one trait; see
//! `docs/architecture.md` for the extension walkthrough.

use std::collections::HashMap;
use std::sync::PoisonError;
use std::time::Instant;

use seqpoint_core::online::OnlineSlTracker;
use seqpoint_core::stream::StreamingSelector;
use sqnn::IterationShape;
use sqnn_data::{BatchShape, EpochPlan};

use crate::stream::{
    checkpoint_error, deal_round, read_checkpoint, tmp_sibling, write_checkpoint,
    CheckpointOptions, RoundExecutor, ShardChunk, ShardReport, StreamCheckpoint, StreamOptions,
    StreamOutcome, StreamPause, StreamedEpochProfile, CHECKPOINT_VERSION,
};
use crate::{IterationProfile, ProfileError};

/// The stages of the canonical streaming graph, in dataflow order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StageId {
    /// [`RoundSource`]: plan blocks dealt into shard chunks.
    Source,
    /// [`ShardFold`]: chunk execution through the [`RoundExecutor`].
    Fold,
    /// [`KeyedMerge`]: SL-keyed report merge and cost accounting.
    Merge,
    /// [`Gate`]: the round-boundary stop/pause decision.
    Gate,
    /// [`CheckpointSink`]: checkpoint rendering and persistence.
    Sink,
}

impl StageId {
    /// Every stage, in dataflow order.
    pub const ALL: [StageId; 5] = [
        StageId::Source,
        StageId::Fold,
        StageId::Merge,
        StageId::Gate,
        StageId::Sink,
    ];

    /// Stable lowercase label (metrics label value, docs).
    pub fn label(self) -> &'static str {
        match self {
            StageId::Source => "source",
            StageId::Fold => "fold",
            StageId::Merge => "merge",
            StageId::Gate => "gate",
            StageId::Sink => "sink",
        }
    }

    /// Dense index in [`Self::ALL`] order.
    pub fn index(self) -> usize {
        match self {
            StageId::Source => 0,
            StageId::Fold => 1,
            StageId::Merge => 2,
            StageId::Gate => 3,
            StageId::Sink => 4,
        }
    }
}

/// One metered unit of stage work.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StageSample {
    /// Items the stage consumed (iterations for source/fold, reports
    /// for merge, rounds for gate/sink).
    pub items_in: u64,
    /// Items the stage produced.
    pub items_out: u64,
    /// Wall-clock milliseconds the stage spent on this unit.
    pub wall_ms: u64,
    /// Depth of the stage's input channel when the sample was taken
    /// (the live backpressure signal; `0` for unchanneled stages).
    pub channel_depth: u64,
}

/// Observability hook attached at operator construction: each operator
/// reports a [`StageSample`] per unit of work. Implementations must be
/// cheap and non-blocking — samples arrive from both pipeline threads.
pub trait StageMeter: Sync {
    /// Record one unit of work for `stage`.
    fn record(&self, stage: StageId, sample: StageSample);
}

/// The do-nothing meter unmetered graphs run with.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoopMeter;

impl StageMeter for NoopMeter {
    fn record(&self, _stage: StageId, _sample: StageSample) {}
}

static NOOP_METER: NoopMeter = NoopMeter;

/// Aggregate of every [`StageSample`] a stage reported.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StageTally {
    /// Total items consumed.
    pub items_in: u64,
    /// Total items produced.
    pub items_out: u64,
    /// Total wall-clock milliseconds.
    pub wall_ms: u64,
    /// Maximum observed input-channel depth.
    pub max_depth: u64,
    /// Samples recorded.
    pub samples: u64,
}

/// An in-memory aggregating [`StageMeter`] (tests and the experiments
/// harness); `seqpoint serve` uses its metrics registry instead.
#[derive(Debug, Default)]
pub struct TallyMeter {
    slots: std::sync::Mutex<[StageTally; 5]>,
}

impl TallyMeter {
    /// A meter with all tallies at zero.
    pub fn new() -> Self {
        TallyMeter::default()
    }

    /// The aggregate recorded for `stage` so far.
    pub fn tally(&self, stage: StageId) -> StageTally {
        let slots = self.slots.lock().unwrap_or_else(PoisonError::into_inner);
        slots.get(stage.index()).copied().unwrap_or_default()
    }
}

impl StageMeter for TallyMeter {
    fn record(&self, stage: StageId, sample: StageSample) {
        let mut slots = self.slots.lock().unwrap_or_else(PoisonError::into_inner);
        if let Some(slot) = slots.get_mut(stage.index()) {
            slot.items_in += sample.items_in;
            slot.items_out += sample.items_out;
            slot.wall_ms += sample.wall_ms;
            slot.max_depth = slot.max_depth.max(sample.channel_depth);
            slot.samples += 1;
        }
    }
}

fn elapsed_ms(since: Instant) -> u64 {
    u64::try_from(since.elapsed().as_millis()).unwrap_or(u64::MAX)
}

pub mod pipe {
    //! The bounded channels connecting pipeline stages.
    //!
    //! A minimal blocking SPSC channel: `send` blocks while the queue
    //! is at capacity (backpressure), `recv` blocks while it is empty,
    //! and dropping either end wakes and unblocks the other. The queue
    //! depth is observable for the [`super::StageSample::channel_depth`]
    //! gauge.
    //!
    //! Lock discipline: each endpoint operation takes the single
    //! channel mutex (`chan` in `analysis/lock_order.toml`) and never
    //! calls user code or another lock while holding it — the channel
    //! is a leaf, strictly after every service lock.

    use std::collections::VecDeque;
    use std::sync::{Arc, Condvar, Mutex, PoisonError};

    struct Core<T> {
        queue: VecDeque<T>,
        sender_alive: bool,
        receiver_alive: bool,
    }

    struct Shared<T> {
        capacity: usize,
        chan: Mutex<Core<T>>,
        cv: Condvar,
    }

    /// The sending half; dropping it lets `recv` drain and disconnect.
    pub struct Sender<T>(Arc<Shared<T>>);

    /// The receiving half; dropping it makes `send` fail fast.
    pub struct Receiver<T>(Arc<Shared<T>>);

    /// A bounded channel holding at most `capacity.max(1)` queued items.
    pub fn bounded<T>(capacity: usize) -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            capacity: capacity.max(1),
            chan: Mutex::new(Core {
                queue: VecDeque::new(),
                sender_alive: true,
                receiver_alive: true,
            }),
            cv: Condvar::new(),
        });
        (Sender(Arc::clone(&shared)), Receiver(shared))
    }

    impl<T> Sender<T> {
        /// Enqueue `value`, blocking while the channel is full.
        ///
        /// # Errors
        ///
        /// Returns the value back when the receiver is gone.
        pub fn send(&self, value: T) -> Result<(), T> {
            let mut core = self.0.chan.lock().unwrap_or_else(PoisonError::into_inner);
            loop {
                if !core.receiver_alive {
                    return Err(value);
                }
                if core.queue.len() < self.0.capacity {
                    core.queue.push_back(value);
                    self.0.cv.notify_all();
                    return Ok(());
                }
                core = self.0.cv.wait(core).unwrap_or_else(PoisonError::into_inner);
            }
        }

        /// Items enqueued but not yet received — the live backpressure
        /// depth this channel exerts on its producer.
        pub fn depth(&self) -> usize {
            let core = self.0.chan.lock().unwrap_or_else(PoisonError::into_inner);
            core.queue.len()
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut core = self.0.chan.lock().unwrap_or_else(PoisonError::into_inner);
            core.sender_alive = false;
            drop(core);
            self.0.cv.notify_all();
        }
    }

    impl<T> Receiver<T> {
        /// Dequeue the next item, blocking while the channel is empty.
        /// Returns `None` once the sender is gone and the queue drained.
        pub fn recv(&self) -> Option<T> {
            let mut core = self.0.chan.lock().unwrap_or_else(PoisonError::into_inner);
            loop {
                if let Some(value) = core.queue.pop_front() {
                    self.0.cv.notify_all();
                    return Some(value);
                }
                if !core.sender_alive {
                    return None;
                }
                core = self.0.cv.wait(core).unwrap_or_else(PoisonError::into_inner);
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            let mut core = self.0.chan.lock().unwrap_or_else(PoisonError::into_inner);
            core.receiver_alive = false;
            drop(core);
            self.0.cv.notify_all();
        }
    }
}

/// The `Source` operator: walks an [`EpochPlan`] in `round_len` blocks
/// from a resume position and deals each block into per-shard
/// [`ShardChunk`]s by the global round-robin rule ([`deal_round`]).
pub struct RoundSource<'p, 'm> {
    blocks: std::iter::Skip<std::slice::Chunks<'p, BatchShape>>,
    dealt: usize,
    shards: usize,
    meter: &'m dyn StageMeter,
}

impl<'p, 'm> RoundSource<'p, 'm> {
    /// A source over `plan` starting at iteration `consumed` (which
    /// must lie on a round boundary, as checkpoints guarantee).
    pub fn new(
        plan: &'p EpochPlan,
        round_len: usize,
        consumed: usize,
        shards: usize,
        meter: &'m dyn StageMeter,
    ) -> Self {
        let round_len = round_len.max(1);
        RoundSource {
            blocks: plan
                .batches()
                .chunks(round_len)
                .skip(consumed.div_ceil(round_len)),
            dealt: consumed,
            shards,
            meter,
        }
    }

    /// Deal the next round: `(chunks, block_len)`, or `None` when the
    /// plan is exhausted.
    pub fn next_round(&mut self) -> Option<(Vec<ShardChunk>, usize)> {
        let block = self.blocks.next()?;
        let started = Instant::now();
        let chunks = deal_round(block, self.dealt, self.shards);
        self.dealt += block.len();
        self.meter.record(
            StageId::Source,
            StageSample {
                items_in: block.len() as u64,
                items_out: chunks.len() as u64,
                wall_ms: elapsed_ms(started),
                channel_depth: 0,
            },
        );
        Some((chunks, block.len()))
    }
}

/// The `ShardFold` operator: per-shard measurement fold through the
/// [`RoundExecutor`] seam. Runs on the driver thread — the executor is
/// deliberately not `Send` (it may borrow a worker pool or test state),
/// which also pins each placement's worker leasing to this stage
/// boundary.
pub struct ShardFold<'e, 'm> {
    executor: &'e mut dyn RoundExecutor,
    shards: usize,
    meter: &'m dyn StageMeter,
}

impl<'e, 'm> ShardFold<'e, 'm> {
    /// A fold placing rounds on `executor`, expecting `shards` reports
    /// per round.
    pub fn new(
        executor: &'e mut dyn RoundExecutor,
        shards: usize,
        meter: &'m dyn StageMeter,
    ) -> Self {
        ShardFold {
            executor,
            shards,
            meter,
        }
    }

    /// Execute one round's chunks and validate the report count.
    ///
    /// # Errors
    ///
    /// [`ProfileError::Executor`] from the placement layer, or when the
    /// executor answers the wrong number of chunks.
    pub fn run_round(&mut self, chunks: &[ShardChunk]) -> Result<Vec<ShardReport>, ProfileError> {
        let items_in: u64 = chunks.iter().map(|c| c.batches.len() as u64).sum();
        let started = Instant::now();
        let result = self.executor.execute_round(chunks);
        self.meter.record(
            StageId::Fold,
            StageSample {
                items_in,
                items_out: result.as_ref().map_or(0, |r| r.len() as u64),
                wall_ms: elapsed_ms(started),
                channel_depth: 0,
            },
        );
        let reports = result?;
        if reports.len() != self.shards {
            return Err(ProfileError::Executor {
                message: format!(
                    "executor answered {} of {} chunks",
                    reports.len(),
                    self.shards
                ),
            });
        }
        Ok(reports)
    }

    /// Profile one shape on demand (the replay phase's miss path).
    ///
    /// # Errors
    ///
    /// [`ProfileError::Executor`] from the placement layer.
    pub fn profile_shape(
        &mut self,
        shape: IterationShape,
    ) -> Result<IterationProfile, ProfileError> {
        self.executor.profile_shape(shape)
    }

    /// Seed the executor's memo with already-profiled shapes (resume).
    pub fn seed_shapes(&mut self, shapes: &[IterationProfile]) {
        self.executor.seed_shapes(shapes);
    }
}

/// The `KeyedMerge` operator: folds per-shard [`ShardReport`]s into the
/// SL-keyed round tracker, the `(seq_len, samples)` shape memo, the
/// consumed position, and the serial/wall cost accounting.
pub struct KeyedMerge<'m> {
    shapes: HashMap<(u32, u32), IterationProfile>,
    consumed: usize,
    profiled_serial_s: f64,
    profiled_wall_s: f64,
    meter: &'m dyn StageMeter,
}

impl<'m> KeyedMerge<'m> {
    /// An empty merge state (a fresh, non-resumed run).
    pub fn new(meter: &'m dyn StageMeter) -> Self {
        KeyedMerge::resume(HashMap::new(), 0, 0.0, 0.0, meter)
    }

    /// A merge state adopted from a checkpoint.
    pub fn resume(
        shapes: HashMap<(u32, u32), IterationProfile>,
        consumed: usize,
        profiled_serial_s: f64,
        profiled_wall_s: f64,
        meter: &'m dyn StageMeter,
    ) -> Self {
        KeyedMerge {
            shapes,
            consumed,
            profiled_serial_s,
            profiled_wall_s,
            meter,
        }
    }

    /// Merge one round's reports **in shard order** (the determinism
    /// contract: shard-ordered merges make executor placement invisible
    /// to the selection) and advance the consumed position by the
    /// round's block length. Returns the merged round tracker for the
    /// gate.
    pub fn absorb(&mut self, reports: &[ShardReport], block_len: usize) -> OnlineSlTracker {
        let started = Instant::now();
        let mut round = OnlineSlTracker::new();
        let mut slowest_shard_s = 0.0;
        for report in reports {
            round.merge(&report.tracker);
            self.profiled_serial_s += report.chunk_time_s;
            slowest_shard_s = f64::max(slowest_shard_s, report.chunk_time_s);
            for profile in &report.shapes {
                self.shapes
                    .entry((profile.seq_len, profile.samples))
                    .or_insert_with(|| profile.clone());
            }
        }
        self.profiled_wall_s += slowest_shard_s;
        self.consumed += block_len;
        self.meter.record(
            StageId::Merge,
            StageSample {
                items_in: reports.len() as u64,
                items_out: 1,
                wall_ms: elapsed_ms(started),
                channel_depth: 0,
            },
        );
        round
    }

    /// The recorded profile for a shape, if any (the replay hit path).
    pub fn lookup(&self, key: (u32, u32)) -> Option<&IterationProfile> {
        self.shapes.get(&key)
    }

    /// Record an on-demand measurement from the replay phase: the shape
    /// joins the memo and its runtime charges both cost totals (the
    /// measurement ran serially, nothing overlapped it).
    pub fn record_on_demand(&mut self, profile: IterationProfile) {
        self.profiled_serial_s += profile.time_s;
        self.profiled_wall_s += profile.time_s;
        self.shapes
            .insert((profile.seq_len, profile.samples), profile);
    }

    /// Advance the consumed position to `consumed` (replay blocks).
    pub fn set_consumed(&mut self, consumed: usize) {
        self.consumed = consumed;
    }

    /// Plan iterations fully processed so far.
    pub fn consumed(&self) -> usize {
        self.consumed
    }

    /// Back-to-back simulated seconds of every measured iteration.
    pub fn serial_s(&self) -> f64 {
        self.profiled_serial_s
    }

    /// Wall seconds with shards concurrent (slowest shard per round).
    pub fn wall_s(&self) -> f64 {
        self.profiled_wall_s
    }

    /// Distinct shapes profiled so far.
    pub fn shapes_profiled(&self) -> usize {
        self.shapes.len()
    }

    /// The shape memo sorted by `(seq_len, samples)` — the canonical
    /// checkpoint order.
    pub(crate) fn sorted_shapes(&self) -> Vec<IterationProfile> {
        let mut shapes: Vec<IterationProfile> = self.shapes.values().cloned().collect();
        shapes.sort_by_key(|p| (p.seq_len, p.samples));
        shapes
    }
}

/// What a [`Gate`] decided at a round boundary.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GateDecision {
    /// Measurement stops now; the rest of the plan replays.
    pub stop: bool,
    /// Speculation credit: the next round may overlap this round's
    /// downstream work only if its block length is **less than** this
    /// many iterations (`0` = never speculate again).
    pub credit: u64,
}

/// A round-boundary decision operator: early stop, pause, or both.
/// [`SaturationGate`] implements the paper's Good–Turing stop;
/// [`BudgetGate`] implements max-rounds/interrupt pausing; a
/// changepoint detector (ROADMAP item 4) would be a third
/// implementation slotted into the same graph position.
pub trait Gate {
    /// Absorb one merged round tracker and decide stop + credit.
    fn after_round(&mut self, round: &OnlineSlTracker) -> GateDecision;

    /// The current speculation credit, without absorbing anything.
    fn credit(&self) -> u64;

    /// Whether the run should pause at this round boundary, given how
    /// many blocks this invocation has processed. Default: never.
    fn pause_now(&mut self, blocks_this_run: u64) -> bool {
        let _ = blocks_this_run;
        false
    }
}

/// The Good–Turing saturation [`Gate`]: owns the
/// [`StreamingSelector`] and stops measurement once the SL space
/// saturates, exactly as the sequential loop did.
pub struct SaturationGate<'m> {
    selector: StreamingSelector,
    meter: &'m dyn StageMeter,
}

impl<'m> SaturationGate<'m> {
    /// A gate around `selector` (fresh, or restored from a checkpoint).
    pub fn resume(selector: StreamingSelector, meter: &'m dyn StageMeter) -> Self {
        SaturationGate { selector, meter }
    }

    /// The selector state (checkpoint snapshots, pause accounting).
    pub fn selector(&self) -> &StreamingSelector {
        &self.selector
    }

    /// Whether the stop rule currently holds (may latch the stop).
    pub fn should_stop(&mut self) -> bool {
        self.selector.should_stop()
    }

    /// Record a replayed iteration (replay phase hit path).
    pub fn observe_replayed(&mut self, seq_len: u32, stat: f64) {
        self.selector.observe_replayed(seq_len, stat);
    }

    /// Record an out-of-round measured iteration (replay miss path).
    pub fn observe_measured(&mut self, seq_len: u32, stat: f64) {
        self.selector.observe_measured(seq_len, stat);
    }

    /// Run the selection pipeline over the streamed aggregates.
    ///
    /// # Errors
    ///
    /// [`ProfileError::Selection`] when the pipeline rejects the counts.
    pub fn finalize(&self) -> Result<seqpoint_core::stream::StreamingAnalysis, ProfileError> {
        self.selector
            .finalize()
            .map_err(|e| ProfileError::Selection {
                message: e.to_string(),
            })
    }
}

impl Gate for SaturationGate<'_> {
    fn after_round(&mut self, round: &OnlineSlTracker) -> GateDecision {
        let started = Instant::now();
        let stop = self.selector.ingest_round(round);
        let decision = GateDecision {
            stop,
            credit: self.selector.stop_credit(),
        };
        self.meter.record(
            StageId::Gate,
            StageSample {
                items_in: 1,
                items_out: 1,
                wall_ms: elapsed_ms(started),
                channel_depth: 0,
            },
        );
        decision
    }

    fn credit(&self) -> u64 {
        self.selector.stop_credit()
    }
}

/// The pause [`Gate`]: trips after [`CheckpointOptions::max_rounds`]
/// blocks or when the interrupt hook reports true — but only when a
/// checkpoint policy exists (without one there is nowhere to persist a
/// pause, so the hook is ignored, as the sequential loop did). The
/// max-rounds check short-circuits the hook, preserving the exact
/// poll-count contract the round-boundary pause tests pin.
pub struct BudgetGate<'a> {
    max_rounds: Option<u64>,
    interrupt: Option<&'a dyn Fn() -> bool>,
    armed: bool,
}

impl<'a> BudgetGate<'a> {
    /// A budget gate for this invocation's checkpoint policy and
    /// interrupt hook.
    pub fn new(
        checkpoint: Option<&CheckpointOptions>,
        interrupt: Option<&'a dyn Fn() -> bool>,
    ) -> Self {
        BudgetGate {
            max_rounds: checkpoint.and_then(|c| c.max_rounds),
            interrupt,
            armed: checkpoint.is_some(),
        }
    }
}

impl Gate for BudgetGate<'_> {
    fn after_round(&mut self, _round: &OnlineSlTracker) -> GateDecision {
        GateDecision {
            stop: false,
            credit: u64::MAX,
        }
    }

    fn credit(&self) -> u64 {
        u64::MAX
    }

    fn pause_now(&mut self, blocks_this_run: u64) -> bool {
        self.armed
            && (self.max_rounds.is_some_and(|m| blocks_this_run >= m)
                || self.interrupt.is_some_and(|f| f()))
    }
}

/// The `Sink` operator: renders the merged state into [`StreamCheckpoint`]
/// writes — periodic (every `every_rounds` blocks), pause, and final.
/// With no checkpoint policy every write is a no-op, and pausing is
/// impossible ([`Self::can_pause`]).
pub struct CheckpointSink<'a, 'm> {
    policy: Option<&'a CheckpointOptions>,
    fingerprint: u64,
    total_iterations: usize,
    since_checkpoint: u32,
    meter: &'m dyn StageMeter,
}

impl<'a, 'm> CheckpointSink<'a, 'm> {
    /// A sink writing under `policy` (or swallowing writes when `None`).
    pub fn new(
        policy: Option<&'a CheckpointOptions>,
        fingerprint: u64,
        total_iterations: usize,
        meter: &'m dyn StageMeter,
    ) -> Self {
        CheckpointSink {
            policy,
            fingerprint,
            total_iterations,
            since_checkpoint: 0,
            meter,
        }
    }

    fn snapshot(&self, selector: &StreamingSelector, merge: &KeyedMerge) -> StreamCheckpoint {
        StreamCheckpoint {
            version: CHECKPOINT_VERSION,
            fingerprint: self.fingerprint,
            selector: selector.clone(),
            consumed: merge.consumed() as u64,
            shapes: merge.sorted_shapes(),
            profiled_serial_s: merge.serial_s(),
            profiled_wall_s: merge.wall_s(),
        }
    }

    fn write(&self, selector: &StreamingSelector, merge: &KeyedMerge) -> Result<(), ProfileError> {
        let Some(policy) = self.policy else {
            return Ok(());
        };
        let started = Instant::now();
        write_checkpoint(&policy.path, &self.snapshot(selector, merge))?;
        self.meter.record(
            StageId::Sink,
            StageSample {
                items_in: 1,
                items_out: 1,
                wall_ms: elapsed_ms(started),
                channel_depth: 0,
            },
        );
        Ok(())
    }

    /// One block (measured round or replay block) finished: advance the
    /// checkpoint cadence and write when it comes due.
    ///
    /// # Errors
    ///
    /// [`ProfileError::Checkpoint`] from the periodic write.
    pub fn on_round(
        &mut self,
        selector: &StreamingSelector,
        merge: &KeyedMerge,
    ) -> Result<(), ProfileError> {
        self.since_checkpoint += 1;
        if let Some(policy) = self.policy {
            if self.since_checkpoint >= policy.every_rounds {
                self.write(selector, merge)?;
                self.since_checkpoint = 0;
            }
        }
        Ok(())
    }

    /// Whether a pause can be persisted (a checkpoint policy exists).
    pub fn can_pause(&self) -> bool {
        self.policy.is_some()
    }

    /// Persist the state unconditionally and describe the pause point.
    ///
    /// # Errors
    ///
    /// [`ProfileError::Checkpoint`] from the write, or when no policy
    /// exists (callers must check [`Self::can_pause`] first).
    pub fn pause(
        &mut self,
        selector: &StreamingSelector,
        merge: &KeyedMerge,
    ) -> Result<StreamPause, ProfileError> {
        let Some(policy) = self.policy else {
            return Err(ProfileError::Checkpoint {
                path: String::new(),
                message: "cannot pause without a checkpoint policy".to_owned(),
            });
        };
        self.write(selector, merge)?;
        Ok(StreamPause {
            rounds_ingested: selector.rounds(),
            iterations_consumed: merge.consumed() as u64,
            iterations_total: self.total_iterations as u64,
            path: policy.path.clone(),
        })
    }

    /// Persist the completed run's final state (resume short-circuit).
    ///
    /// # Errors
    ///
    /// [`ProfileError::Checkpoint`] from the write.
    pub fn finish(
        &mut self,
        selector: &StreamingSelector,
        merge: &KeyedMerge,
    ) -> Result<(), ProfileError> {
        self.write(selector, merge)
    }
}

/// A round travelling from the driver to the merge stage.
enum MergeMsg {
    /// One executed round's reports and its block length.
    Round {
        reports: Vec<ShardReport>,
        block_len: usize,
    },
    /// Persist a pause snapshot and report the pause point.
    Pause,
}

/// The merge stage's answer to one [`MergeMsg`].
enum MergeReply {
    /// The gate's verdict after absorbing a round.
    Round { stop: bool, credit: u64 },
    /// The persisted pause point.
    Paused(StreamPause),
}

fn stage_disconnected() -> ProfileError {
    ProfileError::Executor {
        message: "pipeline merge stage disconnected".to_owned(),
    }
}

/// The merge-stage thread body: KeyedMerge → Gate → Sink over each
/// received round, replying with the gate verdict so the driver can
/// decide speculation. Returns the operators so the replay phase can
/// continue with their state on the driver.
fn merge_stage<'a, 'm>(
    rounds: pipe::Receiver<MergeMsg>,
    replies: pipe::Sender<Result<MergeReply, ProfileError>>,
    mut merge: KeyedMerge<'m>,
    mut gate: SaturationGate<'m>,
    mut sink: CheckpointSink<'a, 'm>,
) -> (KeyedMerge<'m>, SaturationGate<'m>, CheckpointSink<'a, 'm>) {
    while let Some(msg) = rounds.recv() {
        let reply = match msg {
            MergeMsg::Round { reports, block_len } => {
                let round = merge.absorb(&reports, block_len);
                let decision = gate.after_round(&round);
                sink.on_round(gate.selector(), &merge)
                    .map(|()| MergeReply::Round {
                        stop: decision.stop,
                        credit: decision.credit,
                    })
            }
            MergeMsg::Pause => sink.pause(gate.selector(), &merge).map(MergeReply::Paused),
        };
        if replies.send(reply).is_err() {
            break;
        }
    }
    (merge, gate, sink)
}

/// How the measure phase ended. The settled operators are boxed so the
/// enum stays pause-variant sized.
enum MeasureEnd<'a, 'm> {
    /// Stopped or drained; the operators return for the replay phase.
    Settled(Box<(KeyedMerge<'m>, SaturationGate<'m>, CheckpointSink<'a, 'm>)>),
    /// Paused; state is persisted at the returned point.
    Paused(StreamPause),
}

/// The driver loop of the measure phase: fold rounds on this thread
/// while the previous round merges/gates/sinks on the stage thread,
/// with speculation bounded by the gate's credit.
#[allow(clippy::too_many_arguments)]
fn drive_rounds(
    source: &mut RoundSource<'_, '_>,
    fold: &mut ShardFold<'_, '_>,
    to_merge: &pipe::Sender<MergeMsg>,
    from_merge: &pipe::Receiver<Result<MergeReply, ProfileError>>,
    initial_credit: u64,
    budget: &mut BudgetGate<'_>,
    blocks_this_run: &mut u64,
    can_pause: bool,
    meter: &dyn StageMeter,
) -> Result<Option<StreamPause>, ProfileError> {
    // Receive the merge stage's verdict for the round just submitted.
    let recv_verdict = || -> Result<(bool, u64), ProfileError> {
        match from_merge.recv() {
            Some(reply) => match reply? {
                MergeReply::Round { stop, credit } => Ok((stop, credit)),
                MergeReply::Paused(_) => Err(stage_disconnected()),
            },
            None => Err(stage_disconnected()),
        }
    };
    let submit = |reports: Vec<ShardReport>, block_len: usize| -> Result<(), ProfileError> {
        to_merge
            .send(MergeMsg::Round { reports, block_len })
            .map_err(|_| stage_disconnected())?;
        // The send's residual queue depth is the backpressure the merge
        // stage currently exerts on the driver.
        meter.record(
            StageId::Merge,
            StageSample {
                items_in: 0,
                items_out: 0,
                wall_ms: 0,
                channel_depth: to_merge.depth() as u64,
            },
        );
        Ok(())
    };

    // The round handed to the fold but not yet submitted to the merge
    // stage, with its block length. An executor error parks here until
    // the merge boundary — after the previous round's checkpoint
    // landed, the same position the sequential loop surfaced it from.
    let mut exec_result: Option<(Result<Vec<ShardReport>, ProfileError>, usize)> = None;
    let mut credit = initial_credit;
    loop {
        // Reports of round N, error-checked before any new work is
        // dispatched on a placement that just failed.
        let pending = match exec_result.take() {
            Some((result, block_len)) => Some((result?, block_len)),
            None => None,
        };
        let stopped = match pending {
            Some((reports, block_len)) => {
                if block_len as u64 >= credit {
                    // Merging round N may fire the stop, so round N+1
                    // waits for the verdict — speculating here would
                    // measure a full round the stop then discards.
                    submit(reports, block_len)?;
                    let (stop, new_credit) = recv_verdict()?;
                    *blocks_this_run += 1;
                    credit = new_credit;
                    if !stop {
                        if let Some((chunks, launch_len)) = source.next_round() {
                            exec_result = Some((fold.run_round(&chunks), launch_len));
                        }
                    }
                    stop
                } else if let Some((chunks, launch_len)) = source.next_round() {
                    // Steady state: the stop provably cannot fire at
                    // this merge (credit exceeds the block), so round
                    // N+1 folds here while round N merges and
                    // checkpoints on the stage thread.
                    submit(reports, block_len)?;
                    let result = fold.run_round(&chunks);
                    exec_result = Some((result, launch_len));
                    let (stop, new_credit) = recv_verdict()?;
                    *blocks_this_run += 1;
                    credit = new_credit;
                    stop
                } else {
                    // Plan exhausted: drain the last round, nothing
                    // overlaps.
                    submit(reports, block_len)?;
                    let (stop, new_credit) = recv_verdict()?;
                    *blocks_this_run += 1;
                    credit = new_credit;
                    stop
                }
            }
            // Pipeline fill: the very first round has no predecessor.
            None => match source.next_round() {
                Some((chunks, launch_len)) => {
                    exec_result = Some((fold.run_round(&chunks), launch_len));
                    false
                }
                None => return Ok(None),
            },
        };
        if stopped {
            // Discard any speculative round: the replay phase covers
            // those iterations from the shape memo.
            return Ok(None);
        }
        // Round-boundary pause check, polled once per launched round
        // exactly as the sequential loop polled once per executed
        // round. Only while more measure work is in flight — a fully
        // drained measure phase hands control to the replay loop,
        // which runs its own boundary checks.
        if exec_result.is_some() && can_pause && budget.pause_now(*blocks_this_run) {
            to_merge
                .send(MergeMsg::Pause)
                .map_err(|_| stage_disconnected())?;
            match from_merge.recv() {
                Some(reply) => match reply? {
                    MergeReply::Paused(pause) => return Ok(Some(pause)),
                    MergeReply::Round { .. } => return Err(stage_disconnected()),
                },
                None => return Err(stage_disconnected()),
            }
        }
    }
}

/// The canonical operator-graph assembly of streamed profiling:
/// [`RoundSource`] → [`ShardFold`] → [`KeyedMerge`] →
/// [`SaturationGate`]/[`BudgetGate`] → [`CheckpointSink`], preserving
/// every contract of the sequential loop it replaced bit for bit
/// (selection bytes, checkpoint bytes, executor call sequence,
/// interrupt poll cadence).
///
/// ```no_run
/// use sqnn_profiler::pipeline::{StreamGraph, TallyMeter, StageId};
/// use sqnn_profiler::stream::{stream_fingerprint, StreamOptions, ThreadExecutor};
/// # fn demo(profiler: &sqnn_profiler::Profiler, network: &sqnn::Network,
/// #        plan: &sqnn_data::EpochPlan, device: &gpu_sim::Device)
/// #        -> Result<(), sqnn_profiler::ProfileError> {
/// let options = StreamOptions::default();
/// let mut executor =
///     ThreadExecutor::new(profiler, network, device.clone(), options.stat, options.shards);
/// let meter = TallyMeter::new();
/// let fingerprint = stream_fingerprint(network, plan, device, &options);
/// let outcome = StreamGraph::new(&mut executor, plan, &options, fingerprint)
///     .with_meter(&meter)
///     .run()?;
/// assert!(meter.tally(StageId::Fold).items_in > 0);
/// # let _ = outcome;
/// # Ok(())
/// # }
/// ```
pub struct StreamGraph<'e, 'p, 'x, 'm> {
    executor: &'e mut dyn RoundExecutor,
    plan: &'p EpochPlan,
    options: &'p StreamOptions,
    fingerprint: u64,
    checkpoint: Option<&'x CheckpointOptions>,
    interrupt: Option<&'x dyn Fn() -> bool>,
    meter: &'m dyn StageMeter,
}

impl<'e, 'p, 'x, 'm> StreamGraph<'e, 'p, 'x, 'm> {
    /// A graph over `plan` placing rounds on `executor`; `fingerprint`
    /// guards checkpoint compatibility ([`crate::stream::stream_fingerprint`]).
    pub fn new(
        executor: &'e mut dyn RoundExecutor,
        plan: &'p EpochPlan,
        options: &'p StreamOptions,
        fingerprint: u64,
    ) -> Self {
        StreamGraph {
            executor,
            plan,
            options,
            fingerprint,
            checkpoint: None,
            interrupt: None,
            meter: &NOOP_METER,
        }
    }

    /// Attach a checkpoint policy: resume-from-file, periodic writes,
    /// and the max-rounds pause budget.
    pub fn with_checkpoint(mut self, checkpoint: &'x CheckpointOptions) -> Self {
        self.checkpoint = Some(checkpoint);
        self
    }

    /// Attach an interrupt hook, polled at round boundaries (ignored
    /// without a checkpoint policy — there is nowhere to persist).
    pub fn with_interrupt(mut self, interrupt: &'x dyn Fn() -> bool) -> Self {
        self.interrupt = Some(interrupt);
        self
    }

    /// Attach a per-stage observability meter.
    pub fn with_meter(mut self, meter: &'m dyn StageMeter) -> Self {
        self.meter = meter;
        self
    }

    /// Assemble and run the graph to completion or pause.
    ///
    /// # Errors
    ///
    /// Exactly [`crate::stream::profile_epoch_streaming_with`]'s error
    /// surface: invalid options, checkpoint problems, executor
    /// failures, selection failures.
    pub fn run(self) -> Result<StreamOutcome, ProfileError> {
        if self.plan.iterations() == 0 {
            return Err(ProfileError::EmptyPlan);
        }
        if self.options.shards == 0 || self.options.round_len == 0 {
            return Err(ProfileError::InvalidStream {
                message: "shards and round_len must be positive".to_owned(),
            });
        }
        if self.options.stream.unseen_threshold < 0.0
            || !self.options.stream.unseen_threshold.is_finite()
        {
            return Err(ProfileError::InvalidStream {
                message: "unseen_threshold must be non-negative and finite".to_owned(),
            });
        }
        if self.options.stream.quantization == 0 {
            return Err(ProfileError::InvalidStream {
                message: "quantization must be positive".to_owned(),
            });
        }
        if self.checkpoint.is_some_and(|c| c.every_rounds == 0) {
            return Err(ProfileError::InvalidStream {
                message: "checkpoint every_rounds must be positive".to_owned(),
            });
        }
        // A zero budget would pause before any work — for a served job
        // that means an infinite pause/requeue loop, so reject it up
        // front.
        if self.checkpoint.is_some_and(|c| c.max_rounds == Some(0)) {
            return Err(ProfileError::InvalidStream {
                message: "checkpoint max_rounds must be positive when set".to_owned(),
            });
        }

        let total_iterations = self.plan.iterations();
        let mut selector = StreamingSelector::with_config(self.options.stream);
        let mut shapes: HashMap<(u32, u32), IterationProfile> = HashMap::new();
        let mut consumed: usize = 0;
        let mut profiled_serial_s = 0.0;
        let mut profiled_wall_s = 0.0;
        let mut seeds: Vec<IterationProfile> = Vec::new();

        // Resume: adopt the persisted state when a checkpoint exists.
        if let Some(ckpt) = self.checkpoint {
            // A crash between the temp write and the rename leaves a
            // stale `.tmp` sibling behind; it is dead weight (possibly
            // torn) and must never be read, so clear it first.
            let tmp = tmp_sibling(&ckpt.path);
            if tmp.exists() {
                std::fs::remove_file(&tmp).map_err(|e| {
                    checkpoint_error(&ckpt.path, format!("removing stale temp file: {e}"))
                })?;
            }
            if ckpt.path.exists() {
                let loaded = read_checkpoint(&ckpt.path)?;
                if loaded.version != CHECKPOINT_VERSION {
                    return Err(checkpoint_error(
                        &ckpt.path,
                        format!(
                            "version {} is not the supported {CHECKPOINT_VERSION}",
                            loaded.version
                        ),
                    ));
                }
                if loaded.fingerprint != self.fingerprint {
                    return Err(checkpoint_error(
                        &ckpt.path,
                        "checkpoint was written by a different run configuration \
                         (plan, network, device, statistic, round length, or thresholds differ)",
                    ));
                }
                if loaded.consumed as usize > total_iterations {
                    return Err(checkpoint_error(
                        &ckpt.path,
                        "checkpoint is ahead of the plan it claims to match",
                    ));
                }
                selector = loaded.selector;
                consumed = loaded.consumed as usize;
                shapes = loaded
                    .shapes
                    .iter()
                    .map(|p| ((p.seq_len, p.samples), p.clone()))
                    .collect();
                seeds = loaded.shapes;
                profiled_serial_s = loaded.profiled_serial_s;
                profiled_wall_s = loaded.profiled_wall_s;
            }
        }

        // Operator construction: this is the whole graph.
        let mut fold = ShardFold::new(self.executor, self.options.shards, self.meter);
        if !seeds.is_empty() {
            // Seed the executor with the profiled shapes: deterministic
            // per shape, so this only avoids re-simulating.
            fold.seed_shapes(&seeds);
        }
        let mut merge = KeyedMerge::resume(
            shapes,
            consumed,
            profiled_serial_s,
            profiled_wall_s,
            self.meter,
        );
        let mut gate = SaturationGate::resume(selector, self.meter);
        let mut sink = CheckpointSink::new(
            self.checkpoint,
            self.fingerprint,
            total_iterations,
            self.meter,
        );
        let mut budget = BudgetGate::new(self.checkpoint, self.interrupt);
        let mut blocks_this_run: u64 = 0;

        // Measure phase: the pipelined part of the graph.
        if !gate.should_stop() && merge.consumed() < total_iterations {
            let mut source = RoundSource::new(
                self.plan,
                self.options.round_len,
                merge.consumed(),
                self.options.shards,
                self.meter,
            );
            let can_pause = sink.can_pause();
            let initial_credit = gate.credit();
            let (to_merge, round_rx) = pipe::bounded::<MergeMsg>(1);
            let (reply_tx, from_merge) = pipe::bounded::<Result<MergeReply, ProfileError>>(1);
            let meter = self.meter;
            let end = std::thread::scope(|scope| -> Result<MeasureEnd<'x, 'm>, ProfileError> {
                let stage = scope.spawn(move || merge_stage(round_rx, reply_tx, merge, gate, sink));
                let outcome = drive_rounds(
                    &mut source,
                    &mut fold,
                    &to_merge,
                    &from_merge,
                    initial_credit,
                    &mut budget,
                    &mut blocks_this_run,
                    can_pause,
                    meter,
                );
                // Close the round channel so the stage thread winds
                // down, then recover the operators (or propagate a
                // stage panic).
                drop(to_merge);
                let (merge, gate, sink) = match stage.join() {
                    Ok(state) => state,
                    Err(payload) => std::panic::resume_unwind(payload),
                };
                match outcome? {
                    Some(pause) => Ok(MeasureEnd::Paused(pause)),
                    None => Ok(MeasureEnd::Settled(Box::new((merge, gate, sink)))),
                }
            })?;
            match end {
                MeasureEnd::Paused(pause) => return Ok(StreamOutcome::Paused(pause)),
                MeasureEnd::Settled(settled) => {
                    (merge, gate, sink) = *settled;
                }
            }
        }

        // Replay phase: batch shapes are free metadata from the data
        // pipeline; a shape profiled during the rounds replays its
        // recorded statistic, and only a never-seen shape costs a
        // measurement. Paced in round-sized blocks so checkpoints keep
        // landing.
        let stat = self.options.stat;
        while merge.consumed() < total_iterations {
            if budget.pause_now(blocks_this_run) {
                let pause = sink.pause(gate.selector(), &merge)?;
                return Ok(StreamOutcome::Paused(pause));
            }
            let start = merge.consumed();
            let end = (start + self.options.round_len).min(total_iterations);
            for batch in self.plan.batches().get(start..end).unwrap_or_default() {
                let key = (batch.seq_len, batch.samples);
                match merge.lookup(key) {
                    Some(profile) => {
                        gate.observe_replayed(profile.seq_len, profile.stat(stat));
                    }
                    None => {
                        let shape = IterationShape::new(batch.samples, batch.seq_len);
                        let profile = fold.profile_shape(shape)?;
                        gate.observe_measured(profile.seq_len, profile.stat(stat));
                        merge.record_on_demand(profile);
                    }
                }
            }
            merge.set_consumed(end);
            blocks_this_run += 1;
            sink.on_round(gate.selector(), &merge)?;
        }

        let selection = gate.finalize()?;
        // Final state: a re-run with the same path resumes straight to
        // this completed selection without re-profiling anything.
        sink.finish(gate.selector(), &merge)?;
        Ok(StreamOutcome::Complete(StreamedEpochProfile {
            selection,
            shards: self.options.shards,
            profiled_serial_s: merge.serial_s(),
            profiled_wall_s: merge.wall_s(),
        }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::{Path, PathBuf};
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::OnceLock;
    use std::time::Duration;

    use gpu_sim::{Device, GpuConfig};
    use proptest::prelude::*;
    use seqpoint_core::stream::StreamConfig;
    use sqnn::models::gnmt_with;
    use sqnn::Network;
    use sqnn_data::{BatchPolicy, Corpus};

    use crate::stream::{profile_epoch_streaming, stream_fingerprint, ThreadExecutor};
    use crate::Profiler;

    fn device() -> Device {
        Device::new(GpuConfig::vega_fe())
    }

    /// A small steady-state epoch shared by the operator tests: 2k
    /// sentences at batch 16 → 125 batches.
    fn graph_workload() -> (Network, EpochPlan) {
        let corpus = Corpus::iwslt15_like(2_000, 13);
        let plan = EpochPlan::new(&corpus, BatchPolicy::shuffled(16), 13).unwrap();
        (gnmt_with(400, 48), plan)
    }

    /// Stream options that saturate on `graph_workload`.
    fn graph_options(shards: usize) -> StreamOptions {
        StreamOptions {
            shards,
            round_len: 32,
            stream: StreamConfig {
                saturation_window: 128,
                unseen_threshold: 0.05,
                quantization: 8,
                ..StreamConfig::default()
            },
            ..StreamOptions::default()
        }
    }

    /// A unique, self-cleaning checkpoint path under the tmp dir.
    struct TempCheckpoint(PathBuf);

    impl TempCheckpoint {
        fn new(tag: &str) -> Self {
            let mut path = std::env::temp_dir();
            path.push(format!("seqpoint-pipe-{}-{tag}.json", std::process::id()));
            let _ = std::fs::remove_file(&path);
            TempCheckpoint(path)
        }

        fn path(&self) -> &Path {
            &self.0
        }
    }

    impl Drop for TempCheckpoint {
        fn drop(&mut self) {
            let _ = std::fs::remove_file(&self.0);
            let _ = std::fs::remove_file(tmp_sibling(&self.0));
        }
    }

    #[test]
    fn stage_ids_are_dense_and_distinctly_labeled() {
        for (i, stage) in StageId::ALL.iter().enumerate() {
            assert_eq!(stage.index(), i);
        }
        let labels: std::collections::HashSet<&str> =
            StageId::ALL.iter().map(|s| s.label()).collect();
        assert_eq!(labels.len(), StageId::ALL.len());
    }

    #[test]
    fn tally_meter_accumulates_and_keeps_the_depth_high_water() {
        let meter = TallyMeter::new();
        meter.record(
            StageId::Merge,
            StageSample {
                items_in: 3,
                items_out: 1,
                wall_ms: 7,
                channel_depth: 3,
            },
        );
        meter.record(
            StageId::Merge,
            StageSample {
                items_in: 2,
                items_out: 1,
                wall_ms: 1,
                channel_depth: 1,
            },
        );
        let merge = meter.tally(StageId::Merge);
        assert_eq!(merge.items_in, 5);
        assert_eq!(merge.items_out, 2);
        assert_eq!(merge.wall_ms, 8);
        assert_eq!(merge.max_depth, 3, "high-water must survive lower samples");
        assert_eq!(merge.samples, 2);
        assert_eq!(meter.tally(StageId::Sink), StageTally::default());
    }

    #[test]
    fn pipe_delivers_in_order_and_unblocks_on_disconnect() {
        // Sender drop: the queue drains, then the receiver disconnects.
        let (tx, rx) = pipe::bounded(2);
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        drop(tx);
        assert_eq!(rx.recv(), Some(1));
        assert_eq!(rx.recv(), Some(2));
        assert_eq!(rx.recv(), None);

        // Receiver drop: a send fails fast and hands the value back.
        let (tx, rx) = pipe::bounded::<u8>(1);
        drop(rx);
        assert_eq!(tx.send(9), Err(9));
    }

    #[test]
    fn pipe_send_blocks_at_capacity_until_a_recv() {
        let (tx, rx) = pipe::bounded(1);
        tx.send(1).unwrap();
        assert_eq!(tx.depth(), 1);
        let second_landed = AtomicBool::new(false);
        std::thread::scope(|scope| {
            scope.spawn(|| {
                tx.send(2).unwrap();
                second_landed.store(true, Ordering::SeqCst);
            });
            // The channel holds one item; the second send must still be
            // parked after a generous grace period.
            std::thread::sleep(Duration::from_millis(50));
            assert!(
                !second_landed.load(Ordering::SeqCst),
                "send overflowed the capacity bound"
            );
            assert_eq!(rx.recv(), Some(1));
            assert_eq!(rx.recv(), Some(2));
        });
        assert!(second_landed.load(Ordering::SeqCst));
    }

    #[test]
    fn source_rechunks_exactly_like_the_dealt_plan() {
        let (_, plan) = graph_workload();
        let meter = TallyMeter::new();
        let (round_len, shards) = (7, 3);
        let mut source = RoundSource::new(&plan, round_len, 0, shards, &meter);
        let mut consumed = 0;
        for block in plan.batches().chunks(round_len) {
            let (chunks, len) = source.next_round().unwrap();
            assert_eq!(len, block.len());
            assert_eq!(chunks, deal_round(block, consumed, shards));
            consumed += block.len();
        }
        assert!(source.next_round().is_none());
        assert_eq!(consumed, plan.iterations());
        assert_eq!(
            meter.tally(StageId::Source).items_in,
            plan.iterations() as u64
        );

        // A resumed source picks up at the exact round boundary with the
        // same global deal positions a never-interrupted source used.
        let mut resumed = RoundSource::new(&plan, round_len, 2 * round_len, shards, &meter);
        let (chunks, _) = resumed.next_round().unwrap();
        let third = plan.batches().chunks(round_len).nth(2).unwrap();
        assert_eq!(chunks, deal_round(third, 2 * round_len, shards));
    }

    #[test]
    fn fold_is_deterministic_and_validates_the_report_count() {
        let (net, plan) = graph_workload();
        let device = device();
        let profiler = Profiler::new();
        let options = graph_options(3);
        let meter = TallyMeter::new();
        let block = plan.batches().get(..48).unwrap();
        let chunks = deal_round(block, 0, 3);
        let mut executor = ThreadExecutor::new(
            &profiler,
            &net,
            device.clone(),
            options.stat,
            options.shards,
        );
        let mut fold = ShardFold::new(&mut executor, 3, &meter);
        let first = fold.run_round(&chunks).unwrap();
        let second = fold.run_round(&chunks).unwrap();
        assert_eq!(first.len(), 3);
        assert_eq!(first, second, "same chunks must fold to identical reports");
        assert_eq!(meter.tally(StageId::Fold).items_in, 96);

        // An executor that drops a chunk is caught at the fold boundary.
        struct ShortExecutor;
        impl RoundExecutor for ShortExecutor {
            fn execute_round(
                &mut self,
                _chunks: &[ShardChunk],
            ) -> Result<Vec<ShardReport>, ProfileError> {
                Ok(vec![ShardReport {
                    tracker: OnlineSlTracker::new(),
                    chunk_time_s: 0.0,
                    shapes: Vec::new(),
                }])
            }
            fn profile_shape(
                &mut self,
                _shape: IterationShape,
            ) -> Result<IterationProfile, ProfileError> {
                Err(ProfileError::Executor {
                    message: "unused".to_owned(),
                })
            }
        }
        let mut short = ShortExecutor;
        let mut fold = ShardFold::new(&mut short, 3, &meter);
        let err = fold.run_round(&chunks).unwrap_err();
        assert!(
            matches!(err, ProfileError::Executor { ref message }
                if message.contains("answered 1 of 3")),
            "{err:?}"
        );
    }

    #[test]
    fn merge_is_invariant_to_the_shard_partition() {
        let (net, plan) = graph_workload();
        let device = device();
        let profiler = Profiler::new();
        let options = graph_options(1);
        let block = plan.batches().get(..48).unwrap();
        let meter = TallyMeter::new();
        let absorb = |shards: usize| {
            let mut executor =
                ThreadExecutor::new(&profiler, &net, device.clone(), options.stat, shards);
            let chunks = deal_round(block, 0, shards);
            let reports = executor.execute_round(&chunks).unwrap();
            let mut merge = KeyedMerge::new(&meter);
            let round = merge.absorb(&reports, block.len());
            (merge, round)
        };
        let (single, single_round) = absorb(1);
        assert_eq!(single.consumed(), 48);
        for shards in [2, 3, 5] {
            let (merged, round) = absorb(shards);
            assert_eq!(merged.consumed(), single.consumed(), "shards = {shards}");
            assert_eq!(
                merged.shapes_profiled(),
                single.shapes_profiled(),
                "shards = {shards}"
            );
            // Same work, just dealt out: identical serial cost, and the
            // round tracker aggregates the same observations.
            assert!((merged.serial_s() - single.serial_s()).abs() <= 1e-9 * single.serial_s());
            assert!(merged.wall_s() <= merged.serial_s() + 1e-12);
            assert_eq!(round.iterations(), single_round.iterations());
            assert_eq!(round.unique_count(), single_round.unique_count());
            for (sl, count) in single_round.sl_counts() {
                let mean = round.mean_stat_of(sl).unwrap();
                let reference = single_round.mean_stat_of(sl).unwrap();
                assert!(
                    (mean - reference).abs() <= 1e-9 * reference.abs().max(1.0),
                    "sl {sl} ({count} iterations) diverged"
                );
            }
        }

        // An on-demand replay measurement charges both cost totals and
        // joins the memo.
        let (mut merged, _) = absorb(1);
        let mut executor = ThreadExecutor::new(&profiler, &net, device.clone(), options.stat, 1);
        let profile = executor
            .profile_shape(IterationShape::new(16, 999))
            .unwrap();
        let (serial, wall) = (merged.serial_s(), merged.wall_s());
        merged.record_on_demand(profile.clone());
        assert!((merged.serial_s() - serial - profile.time_s).abs() < 1e-12);
        assert!((merged.wall_s() - wall - profile.time_s).abs() < 1e-12);
        assert_eq!(
            merged.lookup((profile.seq_len, profile.samples)),
            Some(&profile)
        );
    }

    #[test]
    fn saturation_gate_credit_is_monotone_and_zero_at_stop() {
        let config = StreamConfig {
            saturation_window: 300,
            unseen_threshold: 0.0,
            quantization: 1,
            ..StreamConfig::default()
        };
        let meter = TallyMeter::new();
        let mut gate = SaturationGate::resume(StreamingSelector::with_config(config), &meter);
        let mut last_credit = gate.credit();
        let mut stopped = false;
        for round_index in 0..100 {
            let mut round = OnlineSlTracker::new();
            round.observe_n(40, 1.5, 30);
            let decision = gate.after_round(&round);
            assert_eq!(
                decision.credit,
                gate.credit(),
                "decision and gate must agree on the credit"
            );
            if decision.stop {
                assert_eq!(decision.credit, 0, "a stopped gate must refuse speculation");
                stopped = true;
                break;
            }
            // No new SL arrived, so the window keeps closing: the credit
            // shrinks monotonically toward the stop.
            assert!(
                decision.credit < last_credit,
                "round {round_index}: credit {} did not shrink from {last_credit}",
                decision.credit
            );
            last_credit = decision.credit;
        }
        assert!(stopped, "a saturated stream must stop within the window");
        assert_eq!(gate.credit(), 0);
        assert_eq!(
            meter.tally(StageId::Gate).items_in,
            meter.tally(StageId::Gate).samples
        );
    }

    #[test]
    fn budget_gate_arms_only_with_a_checkpoint_policy() {
        let polls = std::cell::Cell::new(0u32);
        let hook = || {
            polls.set(polls.get() + 1);
            false
        };
        // Without a checkpoint there is nowhere to persist a pause: the
        // gate never trips and never even polls the hook.
        let mut unarmed = BudgetGate::new(None, Some(&hook));
        assert!(!unarmed.pause_now(1_000));
        assert_eq!(polls.get(), 0);

        let ckpt = TempCheckpoint::new("budget");
        let policy = CheckpointOptions {
            max_rounds: Some(3),
            ..CheckpointOptions::new(ckpt.path())
        };
        let mut armed = BudgetGate::new(Some(&policy), Some(&hook));
        assert!(!armed.pause_now(2));
        assert_eq!(polls.get(), 1, "below budget the hook is polled once");
        assert!(armed.pause_now(3));
        assert_eq!(
            polls.get(),
            1,
            "the max-rounds trip must short-circuit the hook"
        );

        // Hook-only pausing (the serve drain path) works without a
        // round budget.
        let tripping = || true;
        let drain_policy = CheckpointOptions::new(ckpt.path());
        let mut draining = BudgetGate::new(Some(&drain_policy), Some(&tripping));
        assert!(draining.pause_now(0));
    }

    #[test]
    fn sink_writes_on_cadence_pause_and_finish() {
        let meter = TallyMeter::new();
        let ckpt = TempCheckpoint::new("sink");
        let policy = CheckpointOptions {
            every_rounds: 2,
            ..CheckpointOptions::new(ckpt.path())
        };
        let selector = StreamingSelector::with_config(StreamConfig::default());
        let merge = KeyedMerge::new(&meter);
        let mut sink = CheckpointSink::new(Some(&policy), 99, 640, &meter);
        assert!(sink.can_pause());
        sink.on_round(&selector, &merge).unwrap();
        assert!(!ckpt.path().exists(), "one round is below the cadence");
        sink.on_round(&selector, &merge).unwrap();
        assert!(ckpt.path().exists(), "the second round comes due");
        let loaded = read_checkpoint(ckpt.path()).unwrap();
        assert_eq!(loaded.fingerprint, 99);
        assert_eq!(loaded.consumed, 0);

        let pause = sink.pause(&selector, &merge).unwrap();
        assert_eq!(pause.iterations_total, 640);
        assert_eq!(pause.path.as_path(), ckpt.path());
        sink.finish(&selector, &merge).unwrap();
        assert_eq!(meter.tally(StageId::Sink).samples, 3);

        // No policy: writes are no-ops and pausing is impossible.
        let mut silent = CheckpointSink::new(None, 0, 10, &meter);
        assert!(!silent.can_pause());
        silent.on_round(&selector, &merge).unwrap();
        assert!(silent.pause(&selector, &merge).is_err());
        assert_eq!(meter.tally(StageId::Sink).samples, 3);
    }

    /// Wraps the in-process executor and fails one `execute_round` call
    /// (1-based `fail_on`; `0` never fails).
    struct FlakyExecutor<'a> {
        inner: ThreadExecutor<'a>,
        calls: usize,
        fail_on: usize,
        tripped: bool,
    }

    impl RoundExecutor for FlakyExecutor<'_> {
        fn execute_round(
            &mut self,
            chunks: &[ShardChunk],
        ) -> Result<Vec<ShardReport>, ProfileError> {
            self.calls += 1;
            if !self.tripped && self.calls == self.fail_on {
                self.tripped = true;
                return Err(ProfileError::Executor {
                    message: "injected shard loss".to_owned(),
                });
            }
            self.inner.execute_round(chunks)
        }

        fn profile_shape(
            &mut self,
            shape: IterationShape,
        ) -> Result<IterationProfile, ProfileError> {
            self.inner.profile_shape(shape)
        }

        fn seed_shapes(&mut self, shapes: &[IterationProfile]) {
            self.inner.seed_shapes(shapes);
        }
    }

    /// Assemble and run the canonical graph over `graph_workload`.
    fn run_graph(
        options: &StreamOptions,
        checkpoint: Option<&CheckpointOptions>,
        fail_on: usize,
    ) -> Result<StreamOutcome, ProfileError> {
        let (net, plan) = graph_workload();
        let device = device();
        let profiler = Profiler::new();
        let fingerprint = stream_fingerprint(&net, &plan, &device, options);
        let inner = ThreadExecutor::new(
            &profiler,
            &net,
            device.clone(),
            options.stat,
            options.shards,
        );
        let run = |executor: &mut dyn RoundExecutor| {
            let mut graph = StreamGraph::new(executor, &plan, options, fingerprint);
            if let Some(ckpt) = checkpoint {
                graph = graph.with_checkpoint(ckpt);
            }
            graph.run()
        };
        if fail_on > 0 {
            let mut flaky = FlakyExecutor {
                inner,
                calls: 0,
                fail_on,
                tripped: false,
            };
            run(&mut flaky)
        } else {
            let mut inner = inner;
            run(&mut inner)
        }
    }

    /// The canonical single-shard streamed run every property case is
    /// measured against, computed once.
    fn reference_profile() -> &'static StreamedEpochProfile {
        static REFERENCE: OnceLock<StreamedEpochProfile> = OnceLock::new();
        REFERENCE.get_or_init(|| {
            let (net, plan) = graph_workload();
            let device = device();
            let profiler = Profiler::new();
            profile_epoch_streaming(&profiler, &net, &plan, &device, &graph_options(1)).unwrap()
        })
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]

        /// The graph's output is pinned to the canonical run across
        /// shard counts, checkpoint cadences, kill-and-resume points,
        /// and injected executor failures.
        #[test]
        fn graph_output_survives_shards_checkpoints_and_failures(
            shards in 1usize..5,
            every in 1u32..5,
            kill in 1u64..6,
            fail_on in 0usize..8,
        ) {
            let options = graph_options(shards);
            let plain = match run_graph(&options, None, 0).unwrap() {
                StreamOutcome::Complete(profile) => profile,
                StreamOutcome::Paused(_) => unreachable!("no checkpoint, cannot pause"),
            };

            // Across shard counts: the same stop point and selection
            // (weights exact, statistics to rounding), same serial cost.
            let reference = reference_profile();
            prop_assert_eq!(
                plain.selection.iterations_measured(),
                reference.selection.iterations_measured()
            );
            prop_assert_eq!(plain.selection.stopped_at(), reference.selection.stopped_at());
            prop_assert_eq!(
                plain.selection.seqpoints().seq_lens(),
                reference.selection.seqpoints().seq_lens()
            );
            for (p, r) in plain
                .selection
                .seqpoints()
                .points()
                .iter()
                .zip(reference.selection.seqpoints().points())
            {
                prop_assert_eq!(p.weight, r.weight);
                prop_assert!((p.stat - r.stat).abs() <= 1e-9 * r.stat.abs().max(1.0));
            }
            prop_assert!(
                (plain.profiled_serial_s - reference.profiled_serial_s).abs()
                    <= 1e-9 * reference.profiled_serial_s
            );

            // Kill-and-resume at a `kill`-block budget: however many
            // times the run is preempted, the finished profile is
            // byte-identical to the uninterrupted one, costs included.
            let ckpt = TempCheckpoint::new(&format!("prop-kill-{shards}-{every}-{kill}-{fail_on}"));
            let budget = CheckpointOptions {
                every_rounds: every,
                max_rounds: Some(kill),
                ..CheckpointOptions::new(ckpt.path())
            };
            let mut finished = None;
            for _ in 0..200 {
                match run_graph(&options, Some(&budget), 0).unwrap() {
                    StreamOutcome::Complete(profile) => {
                        finished = Some(profile);
                        break;
                    }
                    StreamOutcome::Paused(_) => {}
                }
            }
            let finished = finished.expect("kill-and-resume never completed");
            prop_assert_eq!(&finished, &plain);

            // An injected executor failure surfaces as an error whose
            // checkpoint resumes to the byte-identical profile.
            let ckpt = TempCheckpoint::new(&format!("prop-flaky-{shards}-{every}-{kill}-{fail_on}"));
            let policy = CheckpointOptions {
                every_rounds: every,
                ..CheckpointOptions::new(ckpt.path())
            };
            let recovered = match run_graph(&options, Some(&policy), fail_on) {
                Ok(StreamOutcome::Complete(profile)) => profile,
                Ok(StreamOutcome::Paused(_)) => unreachable!("no budget, cannot pause"),
                Err(_) => match run_graph(&options, Some(&policy), 0).unwrap() {
                    StreamOutcome::Complete(profile) => profile,
                    StreamOutcome::Paused(_) => unreachable!("no budget, cannot pause"),
                },
            };
            prop_assert_eq!(&recovered, &plain);
        }
    }
}
