use gpu_sim::{AutotuneTable, Device};
use serde::{Deserialize, Serialize};
use sqnn::{IterationShape, Network};
use sqnn_data::EpochPlan;

/// Model of the non-training computations around an epoch
/// (paper Section IV-C).
///
/// * **Evaluation phase** — after every epoch the network runs inference
///   over a small held-out set. The paper measures it at 2–3% of total
///   time and argues it can be ignored by representative profiles; this
///   model makes that claim checkable instead of assumed.
/// * **Autotune phase** — frameworks time candidate kernels per unique
///   shape once per training run. Its cost is accumulated by the
///   [`AutotuneTable`] during profiling; the paper ignores it because it
///   is one-time.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PhaseModel {
    /// Held-out evaluation set size as a fraction of the training set
    /// (default 3%).
    pub eval_fraction: f64,
    /// Whether the evaluation phase is modelled at all.
    pub eval_enabled: bool,
}

impl Default for PhaseModel {
    fn default() -> Self {
        PhaseModel {
            eval_fraction: 0.03,
            eval_enabled: true,
        }
    }
}

impl PhaseModel {
    /// A model with the evaluation phase disabled.
    pub fn disabled() -> Self {
        PhaseModel {
            eval_fraction: 0.0,
            eval_enabled: false,
        }
    }

    /// Estimate the evaluation-phase time for one epoch: forward-only
    /// inference over `eval_fraction · samples` inputs at the plan's
    /// dominant sequence lengths.
    pub fn eval_time_s(
        &self,
        network: &Network,
        plan: &EpochPlan,
        device: &Device,
        tuner: &mut AutotuneTable,
    ) -> f64 {
        if !self.eval_enabled || self.eval_fraction <= 0.0 {
            return 0.0;
        }
        let eval_batches = ((plan.iterations() as f64) * self.eval_fraction)
            .ceil()
            .max(1.0) as usize;
        // Evaluate at a spread of the epoch's sequence lengths (first,
        // middle, last of the unique set) and average.
        let lens = plan.unique_seq_lens();
        if lens.is_empty() {
            return 0.0;
        }
        let picks = [lens[0], lens[lens.len() / 2], lens[lens.len() - 1]];
        let mean_t: f64 = picks
            .iter()
            .map(|&sl| {
                let shape = IterationShape::new(plan.batch_size(), sl);
                let trace = network.inference_trace(&shape, device.config(), tuner);
                device.run_trace(&trace).total_time_s()
            })
            .sum::<f64>()
            / picks.len() as f64;
        mean_t * eval_batches as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::GpuConfig;
    use sqnn::models::gnmt_with;
    use sqnn_data::{BatchPolicy, Corpus};

    fn setup() -> (Network, EpochPlan, Device) {
        let corpus = Corpus::from_lengths("t", (1..=40).map(|i| i * 3).collect::<Vec<_>>(), 100);
        let plan = EpochPlan::new(&corpus, BatchPolicy::shuffled(4), 0).unwrap();
        (gnmt_with(100, 32), plan, Device::new(GpuConfig::vega_fe()))
    }

    #[test]
    fn eval_phase_is_a_few_percent_of_training() {
        let (net, plan, device) = setup();
        let profile = crate::Profiler::new()
            .profile_epoch(&net, &plan, &device)
            .unwrap();
        let share = profile.eval_s() / profile.total_time_s();
        // "it only takes up to 2-3% of the total training time"
        assert!(share > 0.0 && share < 0.06, "share = {share}");
    }

    #[test]
    fn disabled_model_costs_nothing() {
        let (net, plan, device) = setup();
        let mut tuner = AutotuneTable::new();
        let t = PhaseModel::disabled().eval_time_s(&net, &plan, &device, &mut tuner);
        assert_eq!(t, 0.0);
    }

    #[test]
    fn eval_time_scales_with_fraction() {
        let (net, plan, device) = setup();
        let mut tuner = AutotuneTable::new();
        // The plan has 10 iterations: fractions 0.1 and 1.0 give 1 and 10
        // evaluation batches respectively.
        let small = PhaseModel {
            eval_fraction: 0.1,
            eval_enabled: true,
        }
        .eval_time_s(&net, &plan, &device, &mut tuner);
        let large = PhaseModel {
            eval_fraction: 1.0,
            eval_enabled: true,
        }
        .eval_time_s(&net, &plan, &device, &mut tuner);
        assert!(large > small * 2.0);
    }
}
