//! Streaming epoch profiling with sharded logs, saturation early stop,
//! and checkpoint/resume.
//!
//! [`crate::Profiler::profile_epoch`] materializes the whole epoch in
//! memory on one device. This module is the scalable counterpart: the
//! epoch plan is consumed in rounds ([`sqnn_data::EpochPlan::rounds`]),
//! each round's iterations are dealt round-robin to worker shards that
//! profile concurrently on their own thread (one simulated device each,
//! as in [`crate::parallel`]), and the per-shard
//! [`OnlineSlTracker`] states are merged into a
//! [`StreamingSelector`] after every round. The round loop is
//! software-pipelined: while round N's reports merge (and its periodic
//! checkpoint writes) on a helper thread, round N+1 is already
//! executing on the placement — the stop/pause decision lands one round
//! late, and the speculatively executed round is simply discarded,
//! exactly what a resumed run would redo. Once the sequence-length
//! space saturates, the harness stops *executing* iterations and keeps
//! consuming the rest of the plan as free shape metadata: an iteration
//! whose `(seq_len, samples)` shape was already profiled is replayed
//! against the recorded statistic (the paper's key observation 4 —
//! identical shapes behave identically), and a never-seen shape is
//! profiled on demand. Whole-epoch counts *and* per-SL statistic sums
//! stay exact, so the selection matches the full-epoch path while only
//! a fraction of the iterations were ever executed — and the full
//! per-iteration epoch log never exists anywhere.
//!
//! # Placement abstraction
//!
//! *Where* a round's shard chunks execute is behind the
//! [`RoundExecutor`] trait: [`ThreadExecutor`] runs one scoped thread
//! per shard in this process (the classic `seqpoint stream` path), and
//! `seqpoint_service` provides a subprocess implementation that ships
//! each [`ShardChunk`] to a `seqpoint worker` process over a Unix
//! socket and collects [`ShardReport`]s serialized in the checkpoint
//! interchange format. Selection is executor independent: chunks are
//! dealt by [`deal_round`]'s global round-robin rule and merged in
//! shard order, so any two executors produce bit-identical selections.
//!
//! # Fault tolerance
//!
//! [`profile_epoch_streaming_checkpointed`] persists the complete run
//! state — selector (compensated statistic sums included), consumed
//! position, memoized shape profiles, and cost accounting — to a JSON
//! checkpoint file, atomically (write-temp-then-rename) every
//! [`CheckpointOptions::every_rounds`] rounds. When the file already
//! exists the run resumes from it instead of starting over, and the
//! resumed run's stop decision, selection, and cost totals are
//! bit-identical to an uninterrupted run's. The checkpoint embeds a
//! fingerprint of the plan/network/device/options, so a stale file from
//! a different run configuration is rejected instead of silently
//! corrupting the selection. The worker shard count is deliberately
//! *not* fingerprinted: selection is shard-count independent, so a run
//! may resume on a machine with more or fewer workers. A stale
//! `<path>.tmp` sibling left by a crash between write and rename is
//! removed on startup before the resume check.

use std::collections::HashMap;
use std::path::{Path, PathBuf};

use gpu_sim::Device;
use seqpoint_core::online::OnlineSlTracker;
use seqpoint_core::stream::{StreamConfig, StreamingAnalysis, StreamingSelector};
use serde::{Deserialize, Serialize};
use sqnn::{IterationShape, Network};
use sqnn_data::{BatchShape, EpochPlan};

use crate::pipeline::StreamGraph;
use crate::{IterationProfile, ProfileError, Profiler, StatKind};

/// How the streaming harness shards and paces ingestion.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StreamOptions {
    /// Worker shards profiling concurrently (≥ 1).
    pub shards: usize,
    /// Iterations ingested per round before the merged early-stop check
    /// (≥ 1).
    pub round_len: usize,
    /// Which per-iteration statistic feeds the selection.
    pub stat: StatKind,
    /// Early-stop thresholds and the selection pipeline configuration.
    pub stream: StreamConfig,
}

impl Default for StreamOptions {
    fn default() -> Self {
        StreamOptions {
            shards: 4,
            round_len: 64,
            stat: StatKind::Runtime,
            stream: StreamConfig::default(),
        }
    }
}

/// Checkpoint policy for [`profile_epoch_streaming_checkpointed`].
#[derive(Debug, Clone, PartialEq)]
pub struct CheckpointOptions {
    /// Checkpoint file. Resumed from automatically when it exists;
    /// written atomically (`<path>.tmp` + rename) during the run.
    pub path: PathBuf,
    /// Write the checkpoint every this many processed rounds (≥ 1).
    pub every_rounds: u32,
    /// Stop after this many rounds processed *in this invocation*,
    /// persisting state and returning [`StreamOutcome::Paused`] — a
    /// cooperative preemption hook (and the test harness's kill switch).
    pub max_rounds: Option<u64>,
}

impl CheckpointOptions {
    /// Checkpoint to `path` every 8 rounds, with no pause limit.
    pub fn new(path: impl Into<PathBuf>) -> Self {
        CheckpointOptions {
            path: path.into(),
            every_rounds: 8,
            max_rounds: None,
        }
    }
}

/// Format version of [`StreamCheckpoint`] files.
pub const CHECKPOINT_VERSION: u32 = 1;

/// The persisted state of a streamed profiling run: everything needed to
/// resume bit-identically after a crash or preemption.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StreamCheckpoint {
    pub(crate) version: u32,
    pub(crate) fingerprint: u64,
    pub(crate) selector: StreamingSelector,
    pub(crate) consumed: u64,
    pub(crate) shapes: Vec<IterationProfile>,
    pub(crate) profiled_serial_s: f64,
    pub(crate) profiled_wall_s: f64,
}

impl StreamCheckpoint {
    /// The selector state at the checkpoint.
    pub fn selector(&self) -> &StreamingSelector {
        &self.selector
    }

    /// Plan iterations fully processed (measured or replayed) so far.
    pub fn consumed(&self) -> u64 {
        self.consumed
    }

    /// Distinct `(seq_len, samples)` shapes profiled so far.
    pub fn shapes_profiled(&self) -> usize {
        self.shapes.len()
    }
}

/// The outcome of one streamed profiling run.
#[derive(Debug, Clone, PartialEq)]
pub struct StreamedEpochProfile {
    /// The selection over the streamed counts, with measured/total
    /// iteration accounting.
    pub selection: StreamingAnalysis,
    /// Worker shards used.
    pub shards: usize,
    /// Profiling cost when the measured iterations run back to back on
    /// one machine, in (simulated) seconds.
    pub profiled_serial_s: f64,
    /// Profiling wall time with the shards running concurrently: per
    /// round, the slowest shard bounds the round; on-demand measurements
    /// in the replay phase run serially.
    pub profiled_wall_s: f64,
}

impl StreamedEpochProfile {
    /// Speedup of sharding the profiling itself (serial ÷ wall).
    pub fn shard_speedup(&self) -> f64 {
        if self.profiled_wall_s <= 0.0 {
            return 1.0;
        }
        self.profiled_serial_s / self.profiled_wall_s
    }
}

/// Where a checkpointed run stopped.
#[derive(Debug, Clone, PartialEq)]
pub struct StreamPause {
    /// Rounds merged into the selector so far (across all invocations).
    pub rounds_ingested: u32,
    /// Plan iterations fully processed so far.
    pub iterations_consumed: u64,
    /// Iterations in the whole plan.
    pub iterations_total: u64,
    /// The checkpoint file holding the persisted state.
    pub path: PathBuf,
}

/// Result of a checkpointed streaming run: finished, or paused with
/// state persisted for a later resume.
#[derive(Debug, Clone, PartialEq)]
#[allow(clippy::large_enum_variant)]
pub enum StreamOutcome {
    /// The run finished; the selection is final.
    Complete(StreamedEpochProfile),
    /// [`CheckpointOptions::max_rounds`] was reached (or an interrupt
    /// fired); re-run with the same checkpoint path to continue.
    Paused(StreamPause),
}

/// One shard's slice of a round, as dealt by the global round-robin rule
/// ([`deal_round`]). This is the unit of work a [`RoundExecutor`] places
/// on a thread, a subprocess, or (eventually) a remote node.
#[derive(Debug, Clone, PartialEq)]
pub struct ShardChunk {
    /// Shard index within the round (0-based, dense).
    pub shard: usize,
    /// The batches this shard must profile, in stream order.
    pub batches: Vec<BatchShape>,
}

/// What one shard reports back after executing its chunk. Reports are
/// merged in shard order, so two executors that produce identical
/// per-chunk trackers produce bit-identical selections.
#[derive(Debug, Clone, PartialEq)]
pub struct ShardReport {
    /// Per-SL observations over the chunk (one [`OnlineSlTracker`]
    /// `observe` per batch, in chunk order).
    pub tracker: OnlineSlTracker,
    /// Simulated seconds the chunk's iterations take back to back
    /// (memoized iterations still charge their full runtime, as the
    /// paper's cost accounting does).
    pub chunk_time_s: f64,
    /// The distinct `(seq_len, samples)` shapes appearing in the chunk,
    /// with their profiles — the runner unions these into the replay
    /// memo and the checkpoint.
    pub shapes: Vec<IterationProfile>,
}

/// Placement abstraction for the streaming harness: something that can
/// execute one round's shard chunks and profile a single shape on
/// demand. Implementations must be deterministic per shape — the same
/// `(seq_len, samples)` must always produce the same profile — which
/// holds for the simulated device and is what makes executor placement
/// invisible to the selection.
pub trait RoundExecutor {
    /// Execute every chunk of one round and return the reports in shard
    /// order (`reports[i]` answers `chunks[i]`).
    ///
    /// # Errors
    ///
    /// [`ProfileError::Executor`] when the placement layer loses a
    /// worker or cannot complete the round; the caller may retry from
    /// its last checkpoint.
    fn execute_round(&mut self, chunks: &[ShardChunk]) -> Result<Vec<ShardReport>, ProfileError>;

    /// Profile one iteration shape (the replay phase's on-demand path
    /// for shapes never seen during the measured rounds).
    ///
    /// # Errors
    ///
    /// [`ProfileError::Executor`] when the placement layer cannot
    /// complete the measurement.
    fn profile_shape(&mut self, shape: IterationShape) -> Result<IterationProfile, ProfileError>;

    /// Seed already-profiled shapes (from a resumed checkpoint) into the
    /// executor's memo, so resuming avoids re-simulating them. Profiles
    /// are deterministic per shape, so ignoring the seeds changes cost
    /// and selection by nothing — only wall-clock time.
    fn seed_shapes(&mut self, shapes: &[IterationProfile]) {
        let _ = shapes;
    }
}

/// The in-process [`RoundExecutor`]: one scoped thread per shard, each
/// with its own `(seq_len, samples)` profile memo, all on clones of one
/// simulated device — exactly the placement `seqpoint stream` has always
/// used.
pub struct ThreadExecutor<'a> {
    profiler: &'a Profiler,
    network: &'a Network,
    device: Device,
    stat: StatKind,
    memos: Vec<HashMap<(u32, u32), IterationProfile>>,
}

impl<'a> ThreadExecutor<'a> {
    /// An executor running `shards` concurrent worker threads.
    pub fn new(
        profiler: &'a Profiler,
        network: &'a Network,
        device: Device,
        stat: StatKind,
        shards: usize,
    ) -> Self {
        ThreadExecutor {
            profiler,
            network,
            device,
            stat,
            memos: vec![HashMap::new(); shards.max(1)],
        }
    }
}

impl RoundExecutor for ThreadExecutor<'_> {
    fn execute_round(&mut self, chunks: &[ShardChunk]) -> Result<Vec<ShardReport>, ProfileError> {
        if chunks.len() != self.memos.len() {
            return Err(ProfileError::Executor {
                message: format!(
                    "round has {} chunks but the executor holds {} shards",
                    chunks.len(),
                    self.memos.len()
                ),
            });
        }
        let profiler = self.profiler;
        let network = self.network;
        let device = &self.device;
        let stat = self.stat;
        let reports: Vec<ShardReport> = std::thread::scope(|scope| {
            let handles: Vec<_> = self
                .memos
                .iter_mut()
                .zip(chunks)
                .map(|(memo, chunk)| {
                    let device = device.clone();
                    scope
                        .spawn(move || execute_chunk(profiler, network, &device, stat, memo, chunk))
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("profiling shard panicked"))
                .collect()
        });
        Ok(reports)
    }

    fn profile_shape(&mut self, shape: IterationShape) -> Result<IterationProfile, ProfileError> {
        Ok(self
            .profiler
            .profile_iteration(self.network, &shape, &self.device))
    }

    fn seed_shapes(&mut self, shapes: &[IterationProfile]) {
        for memo in &mut self.memos {
            memo.extend(shapes.iter().map(|p| ((p.seq_len, p.samples), p.clone())));
        }
    }
}

/// Profile one shard chunk against a memo: the shared leaf both the
/// thread executor and `seqpoint worker` subprocesses run, so their
/// reports are bit-identical by construction.
pub fn execute_chunk(
    profiler: &Profiler,
    network: &Network,
    device: &Device,
    stat: StatKind,
    memo: &mut HashMap<(u32, u32), IterationProfile>,
    chunk: &ShardChunk,
) -> ShardReport {
    let mut tracker = OnlineSlTracker::new();
    let mut chunk_time_s = 0.0;
    let mut shape_keys: Vec<(u32, u32)> = Vec::new();
    for batch in &chunk.batches {
        let key = (batch.seq_len, batch.samples);
        let profile = memo.entry(key).or_insert_with(|| {
            let shape = IterationShape::new(batch.samples, batch.seq_len);
            profiler.profile_iteration(network, &shape, device)
        });
        tracker.observe(profile.seq_len, profile.stat(stat));
        chunk_time_s += profile.time_s;
        if !shape_keys.contains(&key) {
            shape_keys.push(key);
        }
    }
    let shapes = shape_keys.iter().map(|key| memo[key].clone()).collect();
    ShardReport {
        tracker,
        chunk_time_s,
        shapes,
    }
}

/// Deal one round block to `shards` chunks by **global** iteration index
/// (`index % shards` — exactly [`sqnn_data::EpochPlan::shard`]'s rule),
/// where `consumed` is the global index of the block's first iteration.
/// Worker `s`'s chunk is a contiguous slice of `plan.shard(s, shards)`,
/// and the union of all chunks is the block itself.
pub fn deal_round(block: &[BatchShape], consumed: usize, shards: usize) -> Vec<ShardChunk> {
    let shards = shards.max(1);
    (0..shards)
        .map(|shard| {
            // First block index dealt to this shard under the global
            // round-robin rule.
            let start = (shard + shards - consumed % shards) % shards;
            ShardChunk {
                shard,
                batches: block.iter().skip(start).step_by(shards).copied().collect(),
            }
        })
        .collect()
}

/// FNV-1a accumulation helper for the run fingerprint.
fn fnv_mix(hash: &mut u64, bytes: &[u8]) {
    for &b in bytes {
        *hash ^= u64::from(b);
        *hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
}

/// Fingerprint of everything that determines a streamed run's results —
/// plan contents, network, device, statistic, round length, and stop
/// thresholds — but *not* the shard count (selection is shard-count
/// independent, so resumes may reshard).
pub fn stream_fingerprint(
    network: &Network,
    plan: &EpochPlan,
    device: &Device,
    options: &StreamOptions,
) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    fnv_mix(&mut hash, network.name().as_bytes());
    fnv_mix(&mut hash, plan.dataset().as_bytes());
    fnv_mix(&mut hash, &plan.batch_size().to_le_bytes());
    for batch in plan.batches() {
        fnv_mix(&mut hash, &batch.seq_len.to_le_bytes());
        fnv_mix(&mut hash, &batch.samples.to_le_bytes());
    }
    let device_json = serde::json::to_string(device).expect("device serialization is infallible");
    fnv_mix(&mut hash, device_json.as_bytes());
    let stream_json =
        serde::json::to_string(&options.stream).expect("config serialization is infallible");
    fnv_mix(&mut hash, stream_json.as_bytes());
    fnv_mix(&mut hash, options.stat.label().as_bytes());
    fnv_mix(&mut hash, &(options.round_len as u64).to_le_bytes());
    hash
}

pub(crate) fn checkpoint_error(path: &Path, message: impl Into<String>) -> ProfileError {
    ProfileError::Checkpoint {
        path: path.display().to_string(),
        message: message.into(),
    }
}

/// The `<path>.tmp` sibling used for atomic checkpoint writes.
pub(crate) fn tmp_sibling(path: &Path) -> PathBuf {
    let mut tmp = path.as_os_str().to_owned();
    tmp.push(".tmp");
    PathBuf::from(tmp)
}

/// Atomically persist a checkpoint: write the JSON to `<path>.tmp`, then
/// rename over `path`, so a crash mid-write never leaves a torn file.
pub(crate) fn write_checkpoint(
    path: &Path,
    checkpoint: &StreamCheckpoint,
) -> Result<(), ProfileError> {
    let json =
        serde::json::to_string(checkpoint).map_err(|e| checkpoint_error(path, e.to_string()))?;
    let tmp = tmp_sibling(path);
    std::fs::write(&tmp, json)
        .map_err(|e| checkpoint_error(path, format!("writing temp file: {e}")))?;
    std::fs::rename(&tmp, path)
        .map_err(|e| checkpoint_error(path, format!("renaming into place: {e}")))?;
    Ok(())
}

pub(crate) fn read_checkpoint(path: &Path) -> Result<StreamCheckpoint, ProfileError> {
    let json = std::fs::read_to_string(path)
        .map_err(|e| checkpoint_error(path, format!("reading: {e}")))?;
    let checkpoint: StreamCheckpoint =
        serde::json::from_str(&json).map_err(|e| checkpoint_error(path, e.to_string()))?;
    // A parseable but internally inconsistent file (hand-edited, or from
    // a buggy writer) must fail here, not panic later mid-run.
    checkpoint.selector.validate().map_err(|reason| {
        checkpoint_error(path, format!("inconsistent selector state: {reason}"))
    })?;
    Ok(checkpoint)
}

/// Profile an epoch plan in streaming mode: sharded, round-paced, and
/// early-stopped once the SL space saturates.
///
/// Iterations are dealt to shards round-robin by **global** iteration
/// index (`index % shards` — exactly [`sqnn_data::EpochPlan::shard`]'s
/// rule, so worker `s`'s measured sub-stream is a prefix of
/// `plan.shard(s, shards)`), and the union measured after `r` rounds is
/// the plan's first `r * round_len` iterations regardless of the shard
/// count — sharded and unsharded runs select the same SeqPoints.
/// Per-shard `(seq_len, samples)` memoization mirrors
/// [`Profiler::profile_epoch`]; memoized iterations still charge their
/// full simulated runtime to the profiling cost, as the paper does.
///
/// # Errors
///
/// * [`ProfileError::EmptyPlan`] — the plan has no iterations.
/// * [`ProfileError::InvalidStream`] — zero `shards`/`round_len`/
///   `quantization`, or a negative/non-finite unseen threshold.
/// * [`ProfileError::Selection`] — the selection pipeline rejected the
///   streamed counts (e.g. unmet error threshold at `max_k`).
pub fn profile_epoch_streaming(
    profiler: &Profiler,
    network: &Network,
    plan: &EpochPlan,
    device: &Device,
    options: &StreamOptions,
) -> Result<StreamedEpochProfile, ProfileError> {
    let mut executor = ThreadExecutor::new(
        profiler,
        network,
        device.clone(),
        options.stat,
        options.shards,
    );
    let fingerprint = stream_fingerprint(network, plan, device, options);
    match profile_epoch_streaming_with(&mut executor, plan, options, fingerprint, None, None)? {
        StreamOutcome::Complete(profile) => Ok(profile),
        StreamOutcome::Paused(_) => unreachable!("pausing requires a checkpoint policy"),
    }
}

/// [`profile_epoch_streaming`] with crash tolerance: state is persisted
/// to [`CheckpointOptions::path`] every
/// [`CheckpointOptions::every_rounds`] rounds, and a run whose
/// checkpoint file already exists resumes from it — reaching the exact
/// `stopped_at`, selection, and cost totals of an uninterrupted run.
///
/// # Errors
///
/// As [`profile_epoch_streaming`], plus
/// [`ProfileError::Checkpoint`] for unreadable, torn, version-skewed, or
/// configuration-mismatched checkpoint files, and
/// [`ProfileError::InvalidStream`] for a zero `every_rounds`.
pub fn profile_epoch_streaming_checkpointed(
    profiler: &Profiler,
    network: &Network,
    plan: &EpochPlan,
    device: &Device,
    options: &StreamOptions,
    checkpoint: &CheckpointOptions,
) -> Result<StreamOutcome, ProfileError> {
    let mut executor = ThreadExecutor::new(
        profiler,
        network,
        device.clone(),
        options.stat,
        options.shards,
    );
    let fingerprint = stream_fingerprint(network, plan, device, options);
    profile_epoch_streaming_with(
        &mut executor,
        plan,
        options,
        fingerprint,
        Some(checkpoint),
        None,
    )
}

/// The placement-generic streaming runner: everything
/// [`profile_epoch_streaming_checkpointed`] does, but rounds execute on
/// the given [`RoundExecutor`] — threads, subprocess workers, or
/// anything else that honors the determinism contract.
///
/// `fingerprint` guards checkpoint resume compatibility; compute it with
/// [`stream_fingerprint`] so in-process and service runs can exchange
/// checkpoints.
///
/// `interrupt` is polled at round boundaries; when it returns `true`
/// *and* a checkpoint policy is present, the run persists its state and
/// returns [`StreamOutcome::Paused`] — the graceful-drain hook
/// `seqpoint serve` uses on SIGTERM. Without a checkpoint policy the
/// hook is ignored (there is nowhere to persist the pause).
///
/// The measure phase overlaps round N+1's execution with round N's
/// merge and checkpoint, so a pause or stop may discard one
/// speculatively executed round; the persisted state never includes it,
/// and the resumed run re-executes it bit-identically. Executors see at
/// most one `execute_round` call at a time — the overlap never calls
/// the executor concurrently with itself.
///
/// This is a thin assembly wrapper over the canonical operator graph,
/// [`crate::pipeline::StreamGraph`]; callers that want per-stage
/// metrics or custom operators assemble the graph directly.
///
/// # Errors
///
/// As [`profile_epoch_streaming_checkpointed`], plus
/// [`ProfileError::Executor`] from the placement layer.
pub fn profile_epoch_streaming_with(
    executor: &mut dyn RoundExecutor,
    plan: &EpochPlan,
    options: &StreamOptions,
    fingerprint: u64,
    checkpoint: Option<&CheckpointOptions>,
    interrupt: Option<&dyn Fn() -> bool>,
) -> Result<StreamOutcome, ProfileError> {
    let mut graph = StreamGraph::new(executor, plan, options, fingerprint);
    if let Some(ckpt) = checkpoint {
        graph = graph.with_checkpoint(ckpt);
    }
    if let Some(hook) = interrupt {
        graph = graph.with_interrupt(hook);
    }
    graph.run()
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::GpuConfig;
    use seqpoint_core::SeqPointPipeline;
    use sqnn::models::gnmt_with;
    use sqnn_data::{BatchPolicy, Corpus};

    fn device() -> Device {
        Device::new(GpuConfig::vega_fe())
    }

    /// A steady-state (shuffled) epoch large enough to saturate: 12k
    /// sentences at batch 16 → 750 full batches.
    fn big_workload() -> (Network, EpochPlan) {
        let corpus = Corpus::iwslt15_like(12_000, 13);
        let plan = EpochPlan::new(&corpus, BatchPolicy::shuffled(16), 13).unwrap();
        (gnmt_with(400, 48), plan)
    }

    /// A small epoch for the exhaustive (no early stop) comparisons.
    fn small_workload() -> (Network, EpochPlan) {
        let corpus = Corpus::iwslt15_like(3_000, 13);
        let plan = EpochPlan::new(&corpus, BatchPolicy::bucketed(16, 12), 13).unwrap();
        (gnmt_with(400, 48), plan)
    }

    /// A unique, self-cleaning checkpoint path under the target tmp dir.
    struct TempCheckpoint(PathBuf);

    impl TempCheckpoint {
        fn new(tag: &str) -> Self {
            let mut path = std::env::temp_dir();
            path.push(format!("seqpoint-ckpt-{}-{tag}.json", std::process::id()));
            let _ = std::fs::remove_file(&path);
            TempCheckpoint(path)
        }

        fn path(&self) -> &Path {
            &self.0
        }
    }

    impl Drop for TempCheckpoint {
        fn drop(&mut self) {
            let _ = std::fs::remove_file(&self.0);
            let _ = std::fs::remove_file(tmp_sibling(&self.0));
        }
    }

    #[test]
    fn early_stop_measures_fewer_iterations_and_selects_identically() {
        let (net, plan) = big_workload();
        let device = device();
        let options = StreamOptions {
            shards: 3,
            round_len: 25,
            ..StreamOptions::default()
        };
        let profiler = Profiler::new();
        let streamed = profile_epoch_streaming(&profiler, &net, &plan, &device, &options).unwrap();
        assert!(streamed.selection.early_stopped());
        assert!(
            (streamed.selection.iterations_measured() as usize) < plan.iterations(),
            "measured {} of {}",
            streamed.selection.iterations_measured(),
            plan.iterations()
        );
        assert_eq!(
            streamed.selection.iterations_total() as usize,
            plan.iterations()
        );
        assert!(streamed.profiled_wall_s > 0.0);
        assert!(streamed.profiled_wall_s <= streamed.profiled_serial_s + 1e-12);
        assert!(streamed.shard_speedup() >= 1.0);
        // Exact counts ⇒ the streamed selection equals the full-epoch
        // selection, weights included.
        let full_log = profiler
            .profile_epoch(&net, &plan, &device)
            .unwrap()
            .to_epoch_log();
        let full = SeqPointPipeline::new().run(&full_log).unwrap();
        assert_eq!(
            streamed.selection.seqpoints().seq_lens(),
            full.seqpoints().seq_lens()
        );
        let weights = |s: &seqpoint_core::SeqPointSet| -> Vec<u64> {
            s.points().iter().map(|p| p.weight).collect()
        };
        assert_eq!(
            weights(streamed.selection.seqpoints()),
            weights(full.seqpoints())
        );
    }

    #[test]
    fn partial_batch_after_the_stop_is_measured_on_demand() {
        // 12,010 sentences at batch 16: the final batch has 10 samples —
        // a (seq_len, samples) shape the rounds never profiled. It must
        // be measured, not imputed, so per-SL statistics stay exact.
        let corpus = Corpus::iwslt15_like(12_010, 13);
        let plan = EpochPlan::new(&corpus, BatchPolicy::shuffled(16), 13).unwrap();
        let net = gnmt_with(400, 48);
        let device = device();
        let profiler = Profiler::new();
        let options = StreamOptions {
            shards: 3,
            round_len: 25,
            ..StreamOptions::default()
        };
        let streamed = profile_epoch_streaming(&profiler, &net, &plan, &device, &options).unwrap();
        assert!(streamed.selection.early_stopped());
        // At least the short final batch was measured after the stop.
        assert!(
            streamed.selection.iterations_measured() > streamed.selection.stopped_at().unwrap()
        );
        // Exact per-shape replay ⇒ the streamed selection matches the
        // full-epoch path in SLs, weights, AND statistics.
        let full_log = profiler
            .profile_epoch(&net, &plan, &device)
            .unwrap()
            .to_epoch_log();
        let full = SeqPointPipeline::new().run(&full_log).unwrap();
        let streamed_points = streamed.selection.seqpoints().points();
        let full_points = full.seqpoints().points();
        assert_eq!(streamed_points.len(), full_points.len());
        for (s, f) in streamed_points.iter().zip(full_points) {
            assert_eq!(s.seq_len, f.seq_len);
            assert_eq!(s.weight, f.weight);
            assert!((s.stat - f.stat).abs() < 1e-9 * f.stat.abs().max(1.0));
        }
    }

    #[test]
    fn exhaustive_stream_matches_the_full_epoch_selection() {
        let (net, plan) = small_workload();
        let device = device();
        // A window no epoch reaches: ingestion never stops measuring.
        let options = StreamOptions {
            shards: 4,
            round_len: 32,
            stream: StreamConfig {
                saturation_window: u64::MAX,
                ..StreamConfig::default()
            },
            ..StreamOptions::default()
        };
        let profiler = Profiler::new();
        let streamed = profile_epoch_streaming(&profiler, &net, &plan, &device, &options).unwrap();
        assert!(!streamed.selection.early_stopped());
        assert_eq!(
            streamed.selection.iterations_measured() as usize,
            plan.iterations()
        );
        let full_log = profiler
            .profile_epoch(&net, &plan, &device)
            .unwrap()
            .to_epoch_log();
        let full = SeqPointPipeline::new().run(&full_log).unwrap();
        assert_eq!(
            streamed.selection.seqpoints().seq_lens(),
            full.seqpoints().seq_lens()
        );
    }

    #[test]
    fn shard_count_does_not_change_the_selection() {
        let (net, plan) = big_workload();
        let device = device();
        let profiler = Profiler::new();
        let run = |shards: usize| {
            let options = StreamOptions {
                shards,
                round_len: 25,
                ..StreamOptions::default()
            };
            profile_epoch_streaming(&profiler, &net, &plan, &device, &options).unwrap()
        };
        let single = run(1);
        assert!(single.selection.early_stopped());
        for shards in [2, 5] {
            let sharded = run(shards);
            assert_eq!(
                sharded.selection.iterations_measured(),
                single.selection.iterations_measured(),
                "shards = {shards}"
            );
            assert_eq!(
                sharded.selection.stopped_at(),
                single.selection.stopped_at()
            );
            assert_eq!(
                sharded.selection.seqpoints().seq_lens(),
                single.selection.seqpoints().seq_lens(),
                "shards = {shards}"
            );
            // Serial profiling cost is the same work, just dealt out.
            assert!(
                (sharded.profiled_serial_s - single.profiled_serial_s).abs()
                    < 1e-9 * single.profiled_serial_s
            );
        }
    }

    #[test]
    fn rejects_degenerate_inputs() {
        let (net, plan) = small_workload();
        let device = device();
        let empty = EpochPlan::from_batches("e", 1, 1, Vec::new());
        let profiler = Profiler::new();
        assert_eq!(
            profile_epoch_streaming(&profiler, &net, &empty, &device, &StreamOptions::default()),
            Err(ProfileError::EmptyPlan)
        );
        for bad in [
            StreamOptions {
                shards: 0,
                ..StreamOptions::default()
            },
            StreamOptions {
                round_len: 0,
                ..StreamOptions::default()
            },
            StreamOptions {
                stream: StreamConfig {
                    unseen_threshold: -0.05,
                    ..StreamConfig::default()
                },
                ..StreamOptions::default()
            },
            StreamOptions {
                stream: StreamConfig {
                    quantization: 0,
                    ..StreamConfig::default()
                },
                ..StreamOptions::default()
            },
        ] {
            assert!(matches!(
                profile_epoch_streaming(&profiler, &net, &plan, &device, &bad),
                Err(ProfileError::InvalidStream { .. })
            ));
        }
        // Checkpointed flavor: every_rounds must be positive, and a
        // zero max_rounds budget (pause before any work — an infinite
        // requeue loop for a served job) is rejected too.
        let ckpt = TempCheckpoint::new("degenerate");
        for policy in [
            CheckpointOptions {
                every_rounds: 0,
                ..CheckpointOptions::new(ckpt.path())
            },
            CheckpointOptions {
                max_rounds: Some(0),
                ..CheckpointOptions::new(ckpt.path())
            },
        ] {
            assert!(matches!(
                profile_epoch_streaming_checkpointed(
                    &profiler,
                    &net,
                    &plan,
                    &device,
                    &StreamOptions::default(),
                    &policy
                ),
                Err(ProfileError::InvalidStream { .. })
            ));
        }
    }

    #[test]
    fn interrupted_and_resumed_run_matches_the_uninterrupted_run() {
        let (net, plan) = big_workload();
        let device = device();
        let profiler = Profiler::new();
        let options = StreamOptions {
            shards: 3,
            round_len: 25,
            ..StreamOptions::default()
        };
        let uninterrupted =
            profile_epoch_streaming(&profiler, &net, &plan, &device, &options).unwrap();

        let ckpt = TempCheckpoint::new("resume");
        // "Kill" the run every 2 rounds until it completes; every
        // invocation resumes from the previous one's persisted state.
        let mut invocations = 0;
        let completed = loop {
            invocations += 1;
            assert!(invocations < 1_000, "checkpointed run never finished");
            let policy = CheckpointOptions {
                every_rounds: 1,
                max_rounds: Some(2),
                ..CheckpointOptions::new(ckpt.path())
            };
            match profile_epoch_streaming_checkpointed(
                &profiler, &net, &plan, &device, &options, &policy,
            )
            .unwrap()
            {
                StreamOutcome::Complete(profile) => break profile,
                StreamOutcome::Paused(pause) => {
                    assert!(pause.iterations_consumed < pause.iterations_total);
                    assert!(ckpt.path().exists());
                }
            }
        };
        assert!(
            invocations > 2,
            "expected several pauses, got {invocations} invocation(s)"
        );
        // Bit-identical outcome: selection, accounting, and cost totals.
        assert_eq!(completed, uninterrupted);

        // A further re-run resumes from the completed checkpoint and
        // reproduces the same result without re-profiling.
        let rerun = match profile_epoch_streaming_checkpointed(
            &profiler,
            &net,
            &plan,
            &device,
            &options,
            &CheckpointOptions::new(ckpt.path()),
        )
        .unwrap()
        {
            StreamOutcome::Complete(profile) => profile,
            StreamOutcome::Paused(_) => panic!("completed checkpoint must not pause"),
        };
        assert_eq!(rerun, uninterrupted);
    }

    #[test]
    fn resume_may_reshard_the_workers() {
        let (net, plan) = big_workload();
        let device = device();
        let profiler = Profiler::new();
        let options = |shards| StreamOptions {
            shards,
            round_len: 25,
            ..StreamOptions::default()
        };
        let uninterrupted =
            profile_epoch_streaming(&profiler, &net, &plan, &device, &options(3)).unwrap();

        let ckpt = TempCheckpoint::new("reshard");
        let paused = profile_epoch_streaming_checkpointed(
            &profiler,
            &net,
            &plan,
            &device,
            &options(3),
            &CheckpointOptions {
                every_rounds: 1,
                max_rounds: Some(3),
                ..CheckpointOptions::new(ckpt.path())
            },
        )
        .unwrap();
        assert!(matches!(paused, StreamOutcome::Paused(_)));
        // Resume with a different worker count: the selection is
        // shard-count independent, so the outcome still matches.
        let resumed = match profile_epoch_streaming_checkpointed(
            &profiler,
            &net,
            &plan,
            &device,
            &options(5),
            &CheckpointOptions::new(ckpt.path()),
        )
        .unwrap()
        {
            StreamOutcome::Complete(profile) => profile,
            StreamOutcome::Paused(_) => panic!("no max_rounds, must complete"),
        };
        assert_eq!(resumed.selection, uninterrupted.selection);
    }

    #[test]
    fn checkpoint_from_a_different_configuration_is_rejected() {
        let (net, plan) = small_workload();
        let device = device();
        let profiler = Profiler::new();
        let options = StreamOptions {
            shards: 2,
            round_len: 32,
            ..StreamOptions::default()
        };
        let ckpt = TempCheckpoint::new("mismatch");
        let outcome = profile_epoch_streaming_checkpointed(
            &profiler,
            &net,
            &plan,
            &device,
            &options,
            &CheckpointOptions::new(ckpt.path()),
        )
        .unwrap();
        assert!(matches!(outcome, StreamOutcome::Complete(_)));
        // Same path, different round length ⇒ different stop decisions ⇒
        // the fingerprint must refuse the resume.
        let different = StreamOptions {
            round_len: 16,
            ..options
        };
        assert!(matches!(
            profile_epoch_streaming_checkpointed(
                &profiler,
                &net,
                &plan,
                &device,
                &different,
                &CheckpointOptions::new(ckpt.path()),
            ),
            Err(ProfileError::Checkpoint { .. })
        ));
    }

    #[test]
    fn torn_or_garbage_checkpoints_are_rejected() {
        let (net, plan) = small_workload();
        let device = device();
        let profiler = Profiler::new();
        let ckpt = TempCheckpoint::new("torn");
        std::fs::write(ckpt.path(), "{\"version\":1,\"truncat").unwrap();
        assert!(matches!(
            profile_epoch_streaming_checkpointed(
                &profiler,
                &net,
                &plan,
                &device,
                &StreamOptions::default(),
                &CheckpointOptions::new(ckpt.path()),
            ),
            Err(ProfileError::Checkpoint { .. })
        ));
    }

    #[test]
    fn stale_tmp_sibling_is_cleaned_on_startup() {
        let (net, plan) = small_workload();
        let device = device();
        let profiler = Profiler::new();
        let options = StreamOptions {
            shards: 2,
            round_len: 32,
            ..StreamOptions::default()
        };

        // Case 1: a crash between temp write and rename left only the
        // `.tmp` sibling (possibly torn). The run must remove it, start
        // fresh, and complete.
        let ckpt = TempCheckpoint::new("staletmp");
        let tmp = tmp_sibling(ckpt.path());
        std::fs::write(&tmp, "{\"version\":1,\"torn mid-wri").unwrap();
        let outcome = profile_epoch_streaming_checkpointed(
            &profiler,
            &net,
            &plan,
            &device,
            &options,
            &CheckpointOptions::new(ckpt.path()),
        )
        .unwrap();
        assert!(matches!(outcome, StreamOutcome::Complete(_)));
        assert!(!tmp.exists(), "stale .tmp must be cleaned on startup");
        assert!(ckpt.path().exists());

        // Case 2: the crash happened on a later write, so a valid
        // checkpoint AND a stale tmp coexist. The resume must use the
        // checkpoint and still clear the sibling.
        std::fs::write(&tmp, "stale garbage from a killed writer").unwrap();
        let rerun = profile_epoch_streaming_checkpointed(
            &profiler,
            &net,
            &plan,
            &device,
            &options,
            &CheckpointOptions::new(ckpt.path()),
        )
        .unwrap();
        assert!(!tmp.exists());
        let (StreamOutcome::Complete(a), StreamOutcome::Complete(b)) = (outcome, rerun) else {
            panic!("both runs must complete");
        };
        assert_eq!(a, b);
    }

    #[test]
    fn interrupt_hook_pauses_at_the_next_round_boundary() {
        use std::sync::atomic::{AtomicU32, Ordering};

        let (net, plan) = big_workload();
        let device = device();
        let profiler = Profiler::new();
        let options = StreamOptions {
            shards: 3,
            round_len: 25,
            ..StreamOptions::default()
        };
        let uninterrupted =
            profile_epoch_streaming(&profiler, &net, &plan, &device, &options).unwrap();

        // Interrupt fires once 2 boundary checks have happened — the
        // drain signal `seqpoint serve` raises on SIGTERM.
        let ckpt = TempCheckpoint::new("interrupt");
        let polls = AtomicU32::new(0);
        let interrupt = || polls.fetch_add(1, Ordering::SeqCst) >= 2;
        let mut executor = ThreadExecutor::new(
            &profiler,
            &net,
            device.clone(),
            options.stat,
            options.shards,
        );
        let fingerprint = stream_fingerprint(&net, &plan, &device, &options);
        let policy = CheckpointOptions {
            every_rounds: 1,
            ..CheckpointOptions::new(ckpt.path())
        };
        let outcome = profile_epoch_streaming_with(
            &mut executor,
            &plan,
            &options,
            fingerprint,
            Some(&policy),
            Some(&interrupt),
        )
        .unwrap();
        let StreamOutcome::Paused(pause) = outcome else {
            panic!("interrupt must pause the run");
        };
        assert_eq!(pause.rounds_ingested, 2);
        assert!(ckpt.path().exists());

        // Resuming without the interrupt completes bit-identically —
        // including through the public checkpointed entry point, proving
        // the service and CLI paths share checkpoint compatibility.
        let resumed = match profile_epoch_streaming_checkpointed(
            &profiler,
            &net,
            &plan,
            &device,
            &options,
            &CheckpointOptions::new(ckpt.path()),
        )
        .unwrap()
        {
            StreamOutcome::Complete(profile) => profile,
            StreamOutcome::Paused(_) => panic!("no interrupt, must complete"),
        };
        assert_eq!(resumed, uninterrupted);
    }

    #[test]
    fn deal_round_partitions_the_block_and_matches_plan_shard() {
        let (_, plan) = small_workload();
        let round_len = 32;
        let shards = 3;
        let mut consumed = 0;
        let mut per_shard: Vec<Vec<BatchShape>> = vec![Vec::new(); shards];
        for block in plan.rounds(round_len) {
            let chunks = deal_round(block, consumed, shards);
            assert_eq!(chunks.len(), shards);
            // The chunks partition the block.
            let total: usize = chunks.iter().map(|c| c.batches.len()).sum();
            assert_eq!(total, block.len());
            for chunk in chunks {
                per_shard[chunk.shard].extend(chunk.batches);
            }
            consumed += block.len();
        }
        // Concatenated per-shard chunks reproduce EpochPlan::shard.
        for (shard, batches) in per_shard.iter().enumerate() {
            let expected: Vec<BatchShape> = plan.shard(shard, shards).collect();
            assert_eq!(batches, &expected, "shard {shard}");
        }
    }

    #[test]
    fn checkpoint_reports_its_contents() {
        let (net, plan) = small_workload();
        let device = device();
        let profiler = Profiler::new();
        let ckpt = TempCheckpoint::new("contents");
        let outcome = profile_epoch_streaming_checkpointed(
            &profiler,
            &net,
            &plan,
            &device,
            &StreamOptions {
                shards: 2,
                round_len: 32,
                ..StreamOptions::default()
            },
            &CheckpointOptions {
                every_rounds: 1,
                max_rounds: Some(2),
                ..CheckpointOptions::new(ckpt.path())
            },
        )
        .unwrap();
        let StreamOutcome::Paused(pause) = outcome else {
            panic!("max_rounds = 2 must pause on this workload");
        };
        assert_eq!(pause.iterations_consumed, 64);
        let state = read_checkpoint(ckpt.path()).unwrap();
        assert_eq!(state.consumed(), 64);
        assert!(state.shapes_profiled() > 0);
        assert_eq!(state.selector().rounds(), pause.rounds_ingested);
    }

    /// A [`ThreadExecutor`] wrapper recording the (sorted) batch
    /// multiset of every `execute_round` call — the witness that the
    /// pipelined loop speculated, discarded, and replayed.
    struct RecordingExecutor<'a> {
        inner: ThreadExecutor<'a>,
        rounds: Vec<Vec<BatchShape>>,
    }

    impl<'a> RecordingExecutor<'a> {
        fn new(
            profiler: &'a Profiler,
            network: &'a Network,
            device: Device,
            options: &StreamOptions,
        ) -> Self {
            RecordingExecutor {
                inner: ThreadExecutor::new(profiler, network, device, options.stat, options.shards),
                rounds: Vec::new(),
            }
        }
    }

    impl RoundExecutor for RecordingExecutor<'_> {
        fn execute_round(
            &mut self,
            chunks: &[ShardChunk],
        ) -> Result<Vec<ShardReport>, ProfileError> {
            let mut batches: Vec<BatchShape> = chunks
                .iter()
                .flat_map(|c| c.batches.iter().copied())
                .collect();
            batches.sort_by_key(|b| (b.seq_len, b.samples));
            self.rounds.push(batches);
            self.inner.execute_round(chunks)
        }

        fn profile_shape(
            &mut self,
            shape: IterationShape,
        ) -> Result<IterationProfile, ProfileError> {
            self.inner.profile_shape(shape)
        }

        fn seed_shapes(&mut self, shapes: &[IterationProfile]) {
            self.inner.seed_shapes(shapes);
        }
    }

    /// A [`ThreadExecutor`] wrapper that loses its workers on the
    /// `fail_on`-th round.
    struct FlakyExecutor<'a> {
        inner: ThreadExecutor<'a>,
        calls: u32,
        fail_on: u32,
    }

    impl RoundExecutor for FlakyExecutor<'_> {
        fn execute_round(
            &mut self,
            chunks: &[ShardChunk],
        ) -> Result<Vec<ShardReport>, ProfileError> {
            self.calls += 1;
            if self.calls == self.fail_on {
                return Err(ProfileError::Executor {
                    message: "injected worker loss".to_owned(),
                });
            }
            self.inner.execute_round(chunks)
        }

        fn profile_shape(
            &mut self,
            shape: IterationShape,
        ) -> Result<IterationProfile, ProfileError> {
            self.inner.profile_shape(shape)
        }

        fn seed_shapes(&mut self, shapes: &[IterationProfile]) {
            self.inner.seed_shapes(shapes);
        }
    }

    #[test]
    fn every_round_boundary_discards_the_speculative_round_and_replays_it() {
        // A 6k-sentence epoch saturates in a handful of rounds, keeping
        // the boundary sweep (a full resume per boundary) affordable.
        let corpus = Corpus::iwslt15_like(6_000, 13);
        let plan = EpochPlan::new(&corpus, BatchPolicy::shuffled(16), 13).unwrap();
        let net = gnmt_with(400, 48);
        let device = device();
        let profiler = Profiler::new();
        let options = StreamOptions {
            shards: 3,
            round_len: 25,
            ..StreamOptions::default()
        };
        let fingerprint = stream_fingerprint(&net, &plan, &device, &options);
        let uninterrupted =
            profile_epoch_streaming(&profiler, &net, &plan, &device, &options).unwrap();

        // Kill at every round boundary in turn (fresh checkpoint each
        // time). Every boundary of the pipelined measure loop is
        // exercised; once the pauses move into the (sequential) replay
        // phase, two more suffice — nothing speculates there.
        let mut boundary: u64 = 0;
        let mut replay_pauses = 0;
        loop {
            boundary += 1;
            assert!(boundary < 100, "the kill loop never exhausted the run");
            if replay_pauses >= 2 {
                break;
            }
            let ckpt = TempCheckpoint::new(&format!("boundary{boundary}"));
            let mut killed = RecordingExecutor::new(&profiler, &net, device.clone(), &options);
            let outcome = profile_epoch_streaming_with(
                &mut killed,
                &plan,
                &options,
                fingerprint,
                Some(&CheckpointOptions {
                    every_rounds: 1,
                    max_rounds: Some(boundary),
                    ..CheckpointOptions::new(ckpt.path())
                }),
                None,
            )
            .unwrap();
            let StreamOutcome::Paused(pause) = outcome else {
                break; // budget outlived the run: every boundary covered
            };
            let merged = pause.rounds_ingested as usize;
            // While measurement was still running, the loop had already
            // launched exactly one round beyond what it merged — the
            // speculation. (A pause inside the replay phase launches
            // nothing new.)
            if killed.rounds.len() > merged {
                assert_eq!(
                    killed.rounds.len(),
                    merged + 1,
                    "boundary {boundary}: exactly one speculative round"
                );
            } else {
                replay_pauses += 1;
            }
            let mut resumed_exec =
                RecordingExecutor::new(&profiler, &net, device.clone(), &options);
            let resumed = match profile_epoch_streaming_with(
                &mut resumed_exec,
                &plan,
                &options,
                fingerprint,
                Some(&CheckpointOptions::new(ckpt.path())),
                None,
            )
            .unwrap()
            {
                StreamOutcome::Complete(profile) => profile,
                StreamOutcome::Paused(_) => panic!("resume without a budget must complete"),
            };
            // The in-flight round was not persisted: the resumed run
            // re-executes that exact block first, and the end-to-end
            // outcome is bit-identical to the uninterrupted run.
            assert_eq!(resumed, uninterrupted, "boundary {boundary}");
            if killed.rounds.len() > merged && !resumed_exec.rounds.is_empty() {
                assert_eq!(
                    resumed_exec.rounds[0], killed.rounds[merged],
                    "boundary {boundary}: the discarded round is replayed first"
                );
            }
        }
        assert!(boundary > 3, "expected several boundaries, got {boundary}");
    }

    #[test]
    fn speculative_round_failure_is_discarded_by_a_pause_and_surfaces_at_a_merge() {
        let (net, plan) = big_workload();
        let device = device();
        let profiler = Profiler::new();
        let options = StreamOptions {
            shards: 3,
            round_len: 25,
            ..StreamOptions::default()
        };
        let fingerprint = stream_fingerprint(&net, &plan, &device, &options);
        let uninterrupted =
            profile_epoch_streaming(&profiler, &net, &plan, &device, &options).unwrap();
        let executor = |fail_on| FlakyExecutor {
            inner: ThreadExecutor::new(
                &profiler,
                &net,
                device.clone(),
                options.stat,
                options.shards,
            ),
            calls: 0,
            fail_on,
        };

        // With a 2-round budget the 3rd round is still speculative at
        // the pause boundary, so its injected failure is discarded with
        // it — the pause wins, not the error.
        let ckpt = TempCheckpoint::new("flaky-paused");
        let outcome = profile_epoch_streaming_with(
            &mut executor(3),
            &plan,
            &options,
            fingerprint,
            Some(&CheckpointOptions {
                every_rounds: 1,
                max_rounds: Some(2),
                ..CheckpointOptions::new(ckpt.path())
            }),
            None,
        )
        .unwrap();
        assert!(matches!(outcome, StreamOutcome::Paused(_)));

        // Without the budget the same failure surfaces as an executor
        // error at the next merge boundary — after round 2's checkpoint
        // landed, so the state on disk is still consistent.
        let ckpt2 = TempCheckpoint::new("flaky-error");
        let err = profile_epoch_streaming_with(
            &mut executor(3),
            &plan,
            &options,
            fingerprint,
            Some(&CheckpointOptions {
                every_rounds: 1,
                ..CheckpointOptions::new(ckpt2.path())
            }),
            None,
        )
        .unwrap_err();
        assert!(matches!(err, ProfileError::Executor { .. }));

        // Both leftovers resume to the uninterrupted result.
        for path in [ckpt.path(), ckpt2.path()] {
            let mut healthy = ThreadExecutor::new(
                &profiler,
                &net,
                device.clone(),
                options.stat,
                options.shards,
            );
            let resumed = match profile_epoch_streaming_with(
                &mut healthy,
                &plan,
                &options,
                fingerprint,
                Some(&CheckpointOptions::new(path)),
                None,
            )
            .unwrap()
            {
                StreamOutcome::Complete(profile) => profile,
                StreamOutcome::Paused(_) => panic!("resume without a budget must complete"),
            };
            assert_eq!(resumed, uninterrupted);
        }
    }
}
