//! Streaming epoch profiling with sharded logs and saturation early stop.
//!
//! [`crate::Profiler::profile_epoch`] materializes the whole epoch in
//! memory on one device. This module is the scalable counterpart: the
//! epoch plan is consumed in rounds ([`sqnn_data::EpochPlan::rounds`]),
//! each round's iterations are dealt round-robin to worker shards that
//! profile concurrently on their own thread (one simulated device each,
//! as in [`crate::parallel`]), and the per-shard
//! [`OnlineSlTracker`] states are merged into a
//! [`StreamingSelector`] after every round. Once the sequence-length
//! space saturates, the harness stops *executing* iterations and keeps
//! consuming the rest of the plan as free shape metadata: an iteration
//! whose `(seq_len, samples)` shape was already profiled is replayed
//! against the recorded statistic (the paper's key observation 4 —
//! identical shapes behave identically), and a never-seen shape is
//! profiled on demand. Whole-epoch counts *and* per-SL statistic sums
//! stay exact, so the selection matches the full-epoch path while only
//! a fraction of the iterations were ever executed — and the full
//! per-iteration epoch log never exists anywhere.

use std::collections::HashMap;

use gpu_sim::Device;
use seqpoint_core::online::OnlineSlTracker;
use seqpoint_core::stream::{StreamConfig, StreamingAnalysis, StreamingSelector};
use sqnn::{IterationShape, Network};
use sqnn_data::EpochPlan;

use crate::{IterationProfile, ProfileError, Profiler, StatKind};

/// How the streaming harness shards and paces ingestion.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StreamOptions {
    /// Worker shards profiling concurrently (≥ 1).
    pub shards: usize,
    /// Iterations ingested per round before the merged early-stop check
    /// (≥ 1).
    pub round_len: usize,
    /// Which per-iteration statistic feeds the selection.
    pub stat: StatKind,
    /// Early-stop thresholds and the selection pipeline configuration.
    pub stream: StreamConfig,
}

impl Default for StreamOptions {
    fn default() -> Self {
        StreamOptions {
            shards: 4,
            round_len: 64,
            stat: StatKind::Runtime,
            stream: StreamConfig::default(),
        }
    }
}

/// The outcome of one streamed profiling run.
#[derive(Debug, Clone, PartialEq)]
pub struct StreamedEpochProfile {
    /// The selection over the streamed counts, with measured/total
    /// iteration accounting.
    pub selection: StreamingAnalysis,
    /// Worker shards used.
    pub shards: usize,
    /// Profiling cost when the measured iterations run back to back on
    /// one machine, in (simulated) seconds.
    pub profiled_serial_s: f64,
    /// Profiling wall time with the shards running concurrently: per
    /// round, the slowest shard bounds the round; on-demand measurements
    /// in the replay phase run serially.
    pub profiled_wall_s: f64,
}

impl StreamedEpochProfile {
    /// Speedup of sharding the profiling itself (serial ÷ wall).
    pub fn shard_speedup(&self) -> f64 {
        if self.profiled_wall_s <= 0.0 {
            return 1.0;
        }
        self.profiled_serial_s / self.profiled_wall_s
    }
}

/// Profile an epoch plan in streaming mode: sharded, round-paced, and
/// early-stopped once the SL space saturates.
///
/// Iterations are dealt to shards round-robin by **global** iteration
/// index (`index % shards` — exactly [`sqnn_data::EpochPlan::shard`]'s
/// rule, so worker `s`'s measured sub-stream is a prefix of
/// `plan.shard(s, shards)`), and the union measured after `r` rounds is
/// the plan's first `r * round_len` iterations regardless of the shard
/// count — sharded and unsharded runs select the same SeqPoints.
/// Per-shard `(seq_len, samples)` memoization mirrors
/// [`Profiler::profile_epoch`]; memoized iterations still charge their
/// full simulated runtime to the profiling cost, as the paper does.
///
/// # Errors
///
/// * [`ProfileError::EmptyPlan`] — the plan has no iterations.
/// * [`ProfileError::InvalidStream`] — zero `shards`/`round_len`/
///   `quantization`, or a negative/non-finite unseen threshold.
/// * [`ProfileError::Selection`] — the selection pipeline rejected the
///   streamed counts (e.g. unmet error threshold at `max_k`).
pub fn profile_epoch_streaming(
    profiler: &Profiler,
    network: &Network,
    plan: &EpochPlan,
    device: &Device,
    options: &StreamOptions,
) -> Result<StreamedEpochProfile, ProfileError> {
    if plan.iterations() == 0 {
        return Err(ProfileError::EmptyPlan);
    }
    if options.shards == 0 || options.round_len == 0 {
        return Err(ProfileError::InvalidStream {
            message: "shards and round_len must be positive".to_owned(),
        });
    }
    if options.stream.unseen_threshold < 0.0 || !options.stream.unseen_threshold.is_finite() {
        return Err(ProfileError::InvalidStream {
            message: "unseen_threshold must be non-negative and finite".to_owned(),
        });
    }
    if options.stream.quantization == 0 {
        return Err(ProfileError::InvalidStream {
            message: "quantization must be positive".to_owned(),
        });
    }
    let mut selector = StreamingSelector::with_config(options.stream);
    let mut memos: Vec<HashMap<(u32, u32), IterationProfile>> =
        vec![HashMap::new(); options.shards];
    let mut profiled_serial_s = 0.0;
    let mut profiled_wall_s = 0.0;
    let mut consumed = 0;
    for block in plan.rounds(options.round_len) {
        let round_results: Vec<(OnlineSlTracker, f64)> = std::thread::scope(|scope| {
            let handles: Vec<_> = memos
                .iter_mut()
                .enumerate()
                .map(|(shard, memo)| {
                    let device = device.clone();
                    // First block index dealt to this shard under the
                    // global round-robin rule (EpochPlan::shard).
                    let start = (shard + options.shards - consumed % options.shards)
                        % options.shards;
                    scope.spawn(move || {
                        let mut tracker = OnlineSlTracker::new();
                        let mut chunk_time_s = 0.0;
                        for batch in block.iter().skip(start).step_by(options.shards) {
                            let key = (batch.seq_len, batch.samples);
                            let profile = memo.entry(key).or_insert_with(|| {
                                let shape =
                                    IterationShape::new(batch.samples, batch.seq_len);
                                profiler.profile_iteration(network, &shape, &device)
                            });
                            tracker.observe(profile.seq_len, profile.stat(options.stat));
                            chunk_time_s += profile.time_s;
                        }
                        (tracker, chunk_time_s)
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("profiling shard panicked"))
                .collect()
        });
        let mut round = OnlineSlTracker::new();
        let mut slowest_shard_s = 0.0;
        for (tracker, chunk_time_s) in &round_results {
            round.merge(tracker);
            profiled_serial_s += chunk_time_s;
            slowest_shard_s = f64::max(slowest_shard_s, *chunk_time_s);
        }
        profiled_wall_s += slowest_shard_s;
        consumed += block.len();
        if selector.ingest_round(&round) {
            break;
        }
    }
    // Replay phase: batch shapes are free metadata from the data
    // pipeline; a shape profiled during the rounds replays its recorded
    // statistic, and only a never-seen shape costs a measurement.
    let mut shapes: HashMap<(u32, u32), IterationProfile> = HashMap::new();
    for memo in memos {
        shapes.extend(memo);
    }
    for batch in &plan.batches()[consumed..] {
        let key = (batch.seq_len, batch.samples);
        match shapes.get(&key) {
            Some(profile) => {
                selector.observe_replayed(profile.seq_len, profile.stat(options.stat));
            }
            None => {
                let shape = IterationShape::new(batch.samples, batch.seq_len);
                let profile = profiler.profile_iteration(network, &shape, device);
                profiled_serial_s += profile.time_s;
                profiled_wall_s += profile.time_s;
                selector.observe_measured(profile.seq_len, profile.stat(options.stat));
                shapes.insert(key, profile);
            }
        }
    }
    let selection = selector.finalize().map_err(|e| ProfileError::Selection {
        message: e.to_string(),
    })?;
    Ok(StreamedEpochProfile {
        selection,
        shards: options.shards,
        profiled_serial_s,
        profiled_wall_s,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::GpuConfig;
    use seqpoint_core::SeqPointPipeline;
    use sqnn::models::gnmt_with;
    use sqnn_data::{BatchPolicy, Corpus};

    fn device() -> Device {
        Device::new(GpuConfig::vega_fe())
    }

    /// A steady-state (shuffled) epoch large enough to saturate: 12k
    /// sentences at batch 16 → 750 full batches.
    fn big_workload() -> (Network, EpochPlan) {
        let corpus = Corpus::iwslt15_like(12_000, 13);
        let plan = EpochPlan::new(&corpus, BatchPolicy::shuffled(16), 13).unwrap();
        (gnmt_with(400, 48), plan)
    }

    /// A small epoch for the exhaustive (no early stop) comparisons.
    fn small_workload() -> (Network, EpochPlan) {
        let corpus = Corpus::iwslt15_like(3_000, 13);
        let plan = EpochPlan::new(&corpus, BatchPolicy::bucketed(16, 12), 13).unwrap();
        (gnmt_with(400, 48), plan)
    }

    #[test]
    fn early_stop_measures_fewer_iterations_and_selects_identically() {
        let (net, plan) = big_workload();
        let device = device();
        let options = StreamOptions {
            shards: 3,
            round_len: 25,
            ..StreamOptions::default()
        };
        let profiler = Profiler::new();
        let streamed =
            profile_epoch_streaming(&profiler, &net, &plan, &device, &options).unwrap();
        assert!(streamed.selection.early_stopped());
        assert!(
            (streamed.selection.iterations_measured() as usize) < plan.iterations(),
            "measured {} of {}",
            streamed.selection.iterations_measured(),
            plan.iterations()
        );
        assert_eq!(
            streamed.selection.iterations_total() as usize,
            plan.iterations()
        );
        assert!(streamed.profiled_wall_s > 0.0);
        assert!(streamed.profiled_wall_s <= streamed.profiled_serial_s + 1e-12);
        assert!(streamed.shard_speedup() >= 1.0);
        // Exact counts ⇒ the streamed selection equals the full-epoch
        // selection, weights included.
        let full_log = profiler
            .profile_epoch(&net, &plan, &device)
            .unwrap()
            .to_epoch_log();
        let full = SeqPointPipeline::new().run(&full_log).unwrap();
        assert_eq!(
            streamed.selection.seqpoints().seq_lens(),
            full.seqpoints().seq_lens()
        );
        let weights =
            |s: &seqpoint_core::SeqPointSet| -> Vec<u64> { s.points().iter().map(|p| p.weight).collect() };
        assert_eq!(
            weights(streamed.selection.seqpoints()),
            weights(full.seqpoints())
        );
    }

    #[test]
    fn partial_batch_after_the_stop_is_measured_on_demand() {
        // 12,010 sentences at batch 16: the final batch has 10 samples —
        // a (seq_len, samples) shape the rounds never profiled. It must
        // be measured, not imputed, so per-SL statistics stay exact.
        let corpus = Corpus::iwslt15_like(12_010, 13);
        let plan = EpochPlan::new(&corpus, BatchPolicy::shuffled(16), 13).unwrap();
        let net = gnmt_with(400, 48);
        let device = device();
        let profiler = Profiler::new();
        let options = StreamOptions {
            shards: 3,
            round_len: 25,
            ..StreamOptions::default()
        };
        let streamed =
            profile_epoch_streaming(&profiler, &net, &plan, &device, &options).unwrap();
        assert!(streamed.selection.early_stopped());
        // At least the short final batch was measured after the stop.
        assert!(
            streamed.selection.iterations_measured()
                > streamed.selection.stopped_at().unwrap()
        );
        // Exact per-shape replay ⇒ the streamed selection matches the
        // full-epoch path in SLs, weights, AND statistics.
        let full_log = profiler
            .profile_epoch(&net, &plan, &device)
            .unwrap()
            .to_epoch_log();
        let full = SeqPointPipeline::new().run(&full_log).unwrap();
        let streamed_points = streamed.selection.seqpoints().points();
        let full_points = full.seqpoints().points();
        assert_eq!(streamed_points.len(), full_points.len());
        for (s, f) in streamed_points.iter().zip(full_points) {
            assert_eq!(s.seq_len, f.seq_len);
            assert_eq!(s.weight, f.weight);
            assert!((s.stat - f.stat).abs() < 1e-9 * f.stat.abs().max(1.0));
        }
    }

    #[test]
    fn exhaustive_stream_matches_the_full_epoch_selection() {
        let (net, plan) = small_workload();
        let device = device();
        // A window no epoch reaches: ingestion never stops measuring.
        let options = StreamOptions {
            shards: 4,
            round_len: 32,
            stream: StreamConfig {
                saturation_window: u64::MAX,
                ..StreamConfig::default()
            },
            ..StreamOptions::default()
        };
        let profiler = Profiler::new();
        let streamed =
            profile_epoch_streaming(&profiler, &net, &plan, &device, &options).unwrap();
        assert!(!streamed.selection.early_stopped());
        assert_eq!(
            streamed.selection.iterations_measured() as usize,
            plan.iterations()
        );
        let full_log = profiler
            .profile_epoch(&net, &plan, &device)
            .unwrap()
            .to_epoch_log();
        let full = SeqPointPipeline::new().run(&full_log).unwrap();
        assert_eq!(
            streamed.selection.seqpoints().seq_lens(),
            full.seqpoints().seq_lens()
        );
    }

    #[test]
    fn shard_count_does_not_change_the_selection() {
        let (net, plan) = big_workload();
        let device = device();
        let profiler = Profiler::new();
        let run = |shards: usize| {
            let options = StreamOptions {
                shards,
                round_len: 25,
                ..StreamOptions::default()
            };
            profile_epoch_streaming(&profiler, &net, &plan, &device, &options).unwrap()
        };
        let single = run(1);
        assert!(single.selection.early_stopped());
        for shards in [2, 5] {
            let sharded = run(shards);
            assert_eq!(
                sharded.selection.iterations_measured(),
                single.selection.iterations_measured(),
                "shards = {shards}"
            );
            assert_eq!(sharded.selection.stopped_at(), single.selection.stopped_at());
            assert_eq!(
                sharded.selection.seqpoints().seq_lens(),
                single.selection.seqpoints().seq_lens(),
                "shards = {shards}"
            );
            // Serial profiling cost is the same work, just dealt out.
            assert!(
                (sharded.profiled_serial_s - single.profiled_serial_s).abs()
                    < 1e-9 * single.profiled_serial_s
            );
        }
    }

    #[test]
    fn rejects_degenerate_inputs() {
        let (net, plan) = small_workload();
        let device = device();
        let empty = EpochPlan::from_batches("e", 1, 1, Vec::new());
        let profiler = Profiler::new();
        assert_eq!(
            profile_epoch_streaming(&profiler, &net, &empty, &device, &StreamOptions::default()),
            Err(ProfileError::EmptyPlan)
        );
        for bad in [
            StreamOptions {
                shards: 0,
                ..StreamOptions::default()
            },
            StreamOptions {
                round_len: 0,
                ..StreamOptions::default()
            },
            StreamOptions {
                stream: StreamConfig {
                    unseen_threshold: -0.05,
                    ..StreamConfig::default()
                },
                ..StreamOptions::default()
            },
            StreamOptions {
                stream: StreamConfig {
                    quantization: 0,
                    ..StreamConfig::default()
                },
                ..StreamOptions::default()
            },
        ] {
            assert!(matches!(
                profile_epoch_streaming(&profiler, &net, &plan, &device, &bad),
                Err(ProfileError::InvalidStream { .. })
            ));
        }
    }
}
