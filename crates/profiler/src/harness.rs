use std::collections::HashMap;

use gpu_sim::{AutotuneTable, Device, KernelCounters, TraceProfile};
use seqpoint_core::EpochLog;
use serde::{Deserialize, Serialize};
use sqnn::{IterationShape, Network};
use sqnn_data::EpochPlan;

use crate::phases::PhaseModel;
use crate::ProfileError;

/// Which per-iteration statistic to extract into an [`EpochLog`].
///
/// The paper identifies SeqPoints on runtime but notes any statistic that
/// varies with SL works (Section V-C); the motivation figures use the
/// counter statistics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
#[non_exhaustive]
pub enum StatKind {
    /// Iteration wall time in seconds.
    Runtime,
    /// Vector-ALU instructions.
    ValuInsts,
    /// Bytes fetched past the L1 ("load data size").
    LoadBytes,
    /// Cycles stalled on memory writes.
    MemWriteStalls,
    /// DRAM traffic in bytes.
    DramBytes,
    /// Energy in joules (first-order model, [`gpu_sim::energy`]).
    EnergyJ,
}

impl StatKind {
    /// Display label used in reports.
    pub fn label(self) -> &'static str {
        match self {
            StatKind::Runtime => "runtime",
            StatKind::ValuInsts => "valu_insts",
            StatKind::LoadBytes => "load_bytes",
            StatKind::MemWriteStalls => "mem_write_stalls",
            StatKind::DramBytes => "dram_bytes",
            StatKind::EnergyJ => "energy_j",
        }
    }

    fn extract(self, time_s: f64, c: &KernelCounters, energy_j: f64) -> f64 {
        match self {
            StatKind::Runtime => time_s,
            StatKind::ValuInsts => c.valu_insts,
            StatKind::LoadBytes => c.load_bytes,
            StatKind::MemWriteStalls => c.mem_write_stall_cycles,
            StatKind::DramBytes => c.dram_bytes,
            StatKind::EnergyJ => energy_j,
        }
    }
}

/// The measured profile of one training iteration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct IterationProfile {
    /// The iteration's padded sequence length.
    pub seq_len: u32,
    /// Samples in the batch.
    pub samples: u32,
    /// Wall time in seconds.
    pub time_s: f64,
    /// Summed hardware counters.
    pub counters: KernelCounters,
    /// Energy in joules under the default [`gpu_sim::energy::EnergyModel`].
    pub energy_j: f64,
    /// Number of kernel launches.
    pub launches: u64,
    /// Full per-kernel breakdown (only with
    /// [`Profiler::with_kernel_detail`]).
    pub trace: Option<TraceProfile>,
}

impl IterationProfile {
    /// Extract one statistic.
    pub fn stat(&self, kind: StatKind) -> f64 {
        kind.extract(self.time_s, &self.counters, self.energy_j)
    }
}

/// The measured profile of one training epoch on one configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EpochProfile {
    network: String,
    config: String,
    batch_size: u32,
    iterations: Vec<IterationProfile>,
    autotune_s: f64,
    eval_s: f64,
}

impl EpochProfile {
    /// The profiled network's name.
    pub fn network(&self) -> &str {
        &self.network
    }

    /// The hardware configuration's name.
    pub fn config(&self) -> &str {
        &self.config
    }

    /// The nominal batch size.
    pub fn batch_size(&self) -> u32 {
        self.batch_size
    }

    /// Per-iteration profiles in execution order.
    pub fn iterations(&self) -> &[IterationProfile] {
        &self.iterations
    }

    /// Number of iterations.
    pub fn iteration_count(&self) -> usize {
        self.iterations.len()
    }

    /// Total training time (iterations only), in seconds.
    pub fn training_time_s(&self) -> f64 {
        self.iterations.iter().map(|i| i.time_s).sum()
    }

    /// One-time autotune phase cost (Section IV-C2), in seconds.
    pub fn autotune_s(&self) -> f64 {
        self.autotune_s
    }

    /// Per-epoch evaluation-phase cost (Section IV-C1), in seconds.
    pub fn eval_s(&self) -> f64 {
        self.eval_s
    }

    /// Wall time including the non-training phases.
    pub fn total_time_s(&self) -> f64 {
        self.training_time_s() + self.autotune_s + self.eval_s
    }

    /// Samples processed across the epoch.
    pub fn total_samples(&self) -> u64 {
        self.iterations.iter().map(|i| u64::from(i.samples)).sum()
    }

    /// Training throughput in samples per second (the paper's speedup
    /// metric).
    pub fn throughput(&self) -> f64 {
        let t = self.training_time_s();
        if t <= 0.0 {
            return 0.0;
        }
        self.total_samples() as f64 / t
    }

    /// Convert to the [`EpochLog`] the SeqPoint pipeline consumes
    /// (runtime statistic).
    pub fn to_epoch_log(&self) -> EpochLog {
        self.to_epoch_log_of(StatKind::Runtime)
    }

    /// Convert to an [`EpochLog`] over an arbitrary statistic.
    pub fn to_epoch_log_of(&self, kind: StatKind) -> EpochLog {
        EpochLog::from_pairs(self.iterations.iter().map(|i| (i.seq_len, i.stat(kind))))
    }

    /// Mean iteration time of a given sequence length, if observed.
    pub fn mean_time_of(&self, seq_len: u32) -> Option<f64> {
        let (mut n, mut sum) = (0u32, 0.0);
        for i in &self.iterations {
            if i.seq_len == seq_len {
                n += 1;
                sum += i.time_s;
            }
        }
        (n > 0).then(|| sum / f64::from(n))
    }

    /// Per-iteration feature vectors (runtime share per kernel kind) for
    /// the k-means/SimPoint comparators. Requires kernel detail; returns
    /// `None` otherwise.
    pub fn feature_matrix(&self) -> Option<Vec<Vec<f64>>> {
        let kinds = gpu_sim::KernelKind::all();
        self.iterations
            .iter()
            .map(|i| {
                i.trace.as_ref().map(|t| {
                    let shares = t.runtime_shares_by_kind();
                    kinds
                        .iter()
                        .map(|k| shares.get(k).copied().unwrap_or(0.0))
                        .collect()
                })
            })
            .collect()
    }
}

/// The profiling harness. See the crate docs for the role it plays.
///
/// ```
/// use gpu_sim::{Device, GpuConfig};
/// use sqnn::models::ds2;
/// use sqnn_data::{BatchPolicy, Corpus, EpochPlan};
/// use sqnn_profiler::Profiler;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let corpus = Corpus::from_lengths("mini", vec![60, 80, 100, 120], 29);
/// let plan = EpochPlan::new(&corpus, BatchPolicy::sorted_first_epoch(2), 0)?;
/// let profile = Profiler::new().profile_epoch(&ds2(), &plan, &Device::new(GpuConfig::vega_fe()))?;
/// assert_eq!(profile.iteration_count(), 2);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Default)]
pub struct Profiler {
    kernel_detail: bool,
    phases: PhaseModel,
}

impl Profiler {
    /// A profiler recording runtimes and counters only.
    pub fn new() -> Self {
        Profiler::default()
    }

    /// Also keep the full per-kernel breakdown per unique iteration shape
    /// (needed for the kernel-distribution figures and k-means features).
    pub fn with_kernel_detail(mut self) -> Self {
        self.kernel_detail = true;
        self
    }

    /// Override the non-training phase model.
    pub fn with_phases(mut self, phases: PhaseModel) -> Self {
        self.phases = phases;
        self
    }

    /// Profile one full training epoch.
    ///
    /// # Errors
    ///
    /// [`ProfileError::EmptyPlan`] if the plan has no iterations.
    pub fn profile_epoch(
        &self,
        network: &Network,
        plan: &EpochPlan,
        device: &Device,
    ) -> Result<EpochProfile, ProfileError> {
        if plan.iterations() == 0 {
            return Err(ProfileError::EmptyPlan);
        }
        let mut tuner = AutotuneTable::new();
        // Key observation 4: iterations with identical shape behave
        // identically; memoize per (seq_len, samples).
        let mut memo: HashMap<(u32, u32), IterationProfile> = HashMap::new();
        let mut iterations = Vec::with_capacity(plan.iterations());
        for batch in plan.batches() {
            let key = (batch.seq_len, batch.samples);
            let profile = match memo.get(&key) {
                Some(p) => p.clone(),
                None => {
                    let shape = IterationShape::new(batch.samples, batch.seq_len);
                    let p = self.run_iteration(network, &shape, device, &mut tuner);
                    memo.insert(key, p.clone());
                    p
                }
            };
            iterations.push(profile);
        }
        let eval_s = self.phases.eval_time_s(network, plan, device, &mut tuner);
        Ok(EpochProfile {
            network: network.name().to_owned(),
            config: device.config().name().to_owned(),
            batch_size: plan.batch_size(),
            iterations,
            autotune_s: tuner.tuning_cost_s(),
            eval_s,
        })
    }

    /// Profile a single training iteration of the given shape.
    pub fn profile_iteration(
        &self,
        network: &Network,
        shape: &IterationShape,
        device: &Device,
    ) -> IterationProfile {
        let mut tuner = AutotuneTable::new();
        self.run_iteration(network, shape, device, &mut tuner)
    }

    /// Profile one iteration per sequence length at a fixed batch size —
    /// the cross-configuration SeqPoint re-profiling flow.
    pub fn profile_seq_lens(
        &self,
        network: &Network,
        batch: u32,
        seq_lens: &[u32],
        device: &Device,
    ) -> Vec<IterationProfile> {
        let mut tuner = AutotuneTable::new();
        seq_lens
            .iter()
            .map(|&sl| {
                self.run_iteration(network, &IterationShape::new(batch, sl), device, &mut tuner)
            })
            .collect()
    }

    fn run_iteration(
        &self,
        network: &Network,
        shape: &IterationShape,
        device: &Device,
        tuner: &mut AutotuneTable,
    ) -> IterationProfile {
        let trace = network.iteration_trace(shape, device.config(), tuner);
        let profile = device.run_trace(&trace);
        let energy_j =
            gpu_sim::energy::EnergyModel::default().trace_energy_j(device.config(), &profile);
        IterationProfile {
            seq_len: shape.src_len,
            samples: shape.batch,
            time_s: profile.total_time_s(),
            counters: profile.counters(),
            energy_j,
            launches: profile.launches(),
            trace: self.kernel_detail.then_some(profile),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::GpuConfig;
    use sqnn::models::{ds2_with, gnmt_with};
    use sqnn_data::{BatchPolicy, Corpus};

    fn small_net() -> Network {
        gnmt_with(500, 64)
    }

    fn plan(lengths: &[u32], batch: u32) -> EpochPlan {
        let corpus = Corpus::from_lengths("t", lengths.to_vec(), 500);
        EpochPlan::new(&corpus, BatchPolicy::sorted_first_epoch(batch), 0).unwrap()
    }

    #[test]
    fn epoch_profile_covers_every_iteration() {
        let p = plan(&[10, 10, 20, 20, 30, 30], 2);
        let device = Device::new(GpuConfig::vega_fe());
        let profile = Profiler::new()
            .profile_epoch(&small_net(), &p, &device)
            .unwrap();
        assert_eq!(profile.iteration_count(), 3);
        assert_eq!(profile.total_samples(), 6);
        assert!(profile.training_time_s() > 0.0);
        assert!(profile.throughput() > 0.0);
        assert!(profile.autotune_s() > 0.0);
        assert!(profile.eval_s() > 0.0);
    }

    #[test]
    fn memoization_matches_direct_profiling() {
        // Two iterations with the same shape must have identical profiles.
        let p = plan(&[15, 15, 15, 15], 2);
        let device = Device::new(GpuConfig::vega_fe());
        let profile = Profiler::new()
            .profile_epoch(&small_net(), &p, &device)
            .unwrap();
        assert_eq!(profile.iterations()[0], profile.iterations()[1]);
    }

    #[test]
    fn epoch_log_preserves_order_and_stats() {
        let p = plan(&[10, 20, 30, 40], 1);
        let device = Device::new(GpuConfig::vega_fe());
        let profile = Profiler::new()
            .profile_epoch(&small_net(), &p, &device)
            .unwrap();
        let log = profile.to_epoch_log();
        assert_eq!(log.len(), 4);
        // Sorted plan: ascending SLs, ascending runtimes.
        let stats: Vec<f64> = log.records().iter().map(|r| r.stat).collect();
        assert!(stats.windows(2).all(|w| w[0] <= w[1]));
        assert!((log.actual_total() - profile.training_time_s()).abs() < 1e-9);
    }

    #[test]
    fn counter_logs_differ_from_runtime_logs() {
        let p = plan(&[10, 40], 1);
        let device = Device::new(GpuConfig::vega_fe());
        let profile = Profiler::new()
            .profile_epoch(&small_net(), &p, &device)
            .unwrap();
        let runtime = profile.to_epoch_log_of(StatKind::Runtime);
        let valu = profile.to_epoch_log_of(StatKind::ValuInsts);
        assert_ne!(runtime.actual_total(), valu.actual_total());
        assert!(valu.actual_total() > 0.0);
    }

    #[test]
    fn kernel_detail_enables_features() {
        let p = plan(&[10, 40], 1);
        let device = Device::new(GpuConfig::vega_fe());
        let plain = Profiler::new()
            .profile_epoch(&small_net(), &p, &device)
            .unwrap();
        assert!(plain.feature_matrix().is_none());
        let detailed = Profiler::new()
            .with_kernel_detail()
            .profile_epoch(&small_net(), &p, &device)
            .unwrap();
        let features = detailed.feature_matrix().unwrap();
        assert_eq!(features.len(), 2);
        assert_eq!(features[0].len(), gpu_sim::KernelKind::all().len());
        let share_sum: f64 = features[0].iter().sum();
        assert!((share_sum - 1.0).abs() < 1e-9);
    }

    #[test]
    fn profile_seq_lens_matches_epoch_means() {
        let p = plan(&[10, 20, 20, 30], 1);
        let device = Device::new(GpuConfig::vega_fe());
        let net = small_net();
        let epoch = Profiler::new().profile_epoch(&net, &p, &device).unwrap();
        let reprofiled = Profiler::new().profile_seq_lens(&net, 1, &[20], &device);
        assert!((reprofiled[0].time_s - epoch.mean_time_of(20).unwrap()).abs() < 1e-12);
    }

    #[test]
    fn ds2_profiles_run_end_to_end() {
        let corpus = Corpus::from_lengths("mini-speech", vec![60, 90, 120, 150], 29);
        let p = EpochPlan::new(&corpus, BatchPolicy::sorted_first_epoch(2), 0).unwrap();
        let device = Device::new(GpuConfig::vega_fe());
        let profile = Profiler::new()
            .profile_epoch(&ds2_with(29, 64), &p, &device)
            .unwrap();
        assert_eq!(profile.iteration_count(), 2);
        assert!(profile.iterations()[1].time_s > profile.iterations()[0].time_s);
    }

    #[test]
    fn empty_plan_is_rejected() {
        let p = EpochPlan::from_batches("e", 1, 1, Vec::new());
        let device = Device::new(GpuConfig::vega_fe());
        assert_eq!(
            Profiler::new().profile_epoch(&small_net(), &p, &device),
            Err(ProfileError::EmptyPlan)
        );
    }

    #[test]
    fn stat_kind_labels_are_distinct() {
        let kinds = [
            StatKind::Runtime,
            StatKind::ValuInsts,
            StatKind::LoadBytes,
            StatKind::MemWriteStalls,
            StatKind::DramBytes,
            StatKind::EnergyJ,
        ];
        let mut labels: Vec<&str> = kinds.iter().map(|k| k.label()).collect();
        labels.sort_unstable();
        labels.dedup();
        assert_eq!(labels.len(), kinds.len());
    }

    #[test]
    fn energy_stat_is_populated_and_sl_dependent() {
        let p = plan(&[10, 40], 1);
        let device = Device::new(GpuConfig::vega_fe());
        let profile = Profiler::new()
            .profile_epoch(&small_net(), &p, &device)
            .unwrap();
        let short = profile.iterations()[0].stat(StatKind::EnergyJ);
        let long = profile.iterations()[1].stat(StatKind::EnergyJ);
        assert!(short > 0.0);
        assert!(long > short);
    }
}
