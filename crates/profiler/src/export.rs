//! SeqPoint-trace export for architecture-simulator hand-off (paper
//! Section VII-A).
//!
//! Detailed GPU simulators cannot run hours of SQNN training, but they
//! *can* replay a handful of representative iterations. This module
//! writes one kernel-trace file per SeqPoint (in the
//! [`gpu_sim::trace_format`] v1 format) plus a manifest recording each
//! trace's sequence length and epoch weight, so a downstream simulator
//! can reconstruct whole-training statistics with Eq. 1.

use std::fs;
use std::path::{Path, PathBuf};

use gpu_sim::{trace_format, AutotuneTable, GpuConfig};
use seqpoint_core::SeqPointSet;
use sqnn::{IterationShape, Network};

use crate::ProfileError;

/// Manifest + trace files written by [`export_seqpoint_traces`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExportedBundle {
    /// Path of the manifest file.
    pub manifest: PathBuf,
    /// One trace file per SeqPoint, in SeqPoint order.
    pub traces: Vec<PathBuf>,
}

/// File name of the bundle manifest.
pub const MANIFEST_NAME: &str = "seqpoints.manifest";

/// Export one kernel-trace file per SeqPoint of `set` into `dir`.
///
/// The manifest lists, per line: `trace-file  seq_len  weight`.
///
/// # Errors
///
/// [`ProfileError::Io`] when any file cannot be written.
pub fn export_seqpoint_traces(
    dir: impl AsRef<Path>,
    network: &Network,
    batch: u32,
    set: &SeqPointSet,
    cfg: &GpuConfig,
) -> Result<ExportedBundle, ProfileError> {
    let dir = dir.as_ref();
    let io_err = |path: &Path| {
        let path = path.display().to_string();
        move |e: std::io::Error| ProfileError::Io {
            path: path.clone(),
            message: e.to_string(),
        }
    };
    fs::create_dir_all(dir).map_err(io_err(dir))?;
    let mut tuner = AutotuneTable::new();
    let mut manifest = String::new();
    let mut traces = Vec::with_capacity(set.len());
    for point in set.points() {
        let file = dir.join(format!("seqpoint_sl{:05}.trace", point.seq_len));
        let trace =
            network.iteration_trace(&IterationShape::new(batch, point.seq_len), cfg, &mut tuner);
        let mut buf = Vec::new();
        trace_format::write_trace(&mut buf, &trace).map_err(|e| ProfileError::Io {
            path: file.display().to_string(),
            message: e.to_string(),
        })?;
        fs::write(&file, buf).map_err(io_err(&file))?;
        manifest.push_str(&format!(
            "{}\t{}\t{}\n",
            file.file_name()
                .expect("constructed with a file name")
                .to_string_lossy(),
            point.seq_len,
            point.weight
        ));
        traces.push(file);
    }
    let manifest_path = dir.join(MANIFEST_NAME);
    fs::write(&manifest_path, manifest).map_err(io_err(&manifest_path))?;
    Ok(ExportedBundle {
        manifest: manifest_path,
        traces,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::Device;
    use seqpoint_core::SeqPoint;
    use sqnn::models::gnmt_with;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("seqpoint-export-{tag}"));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn small_set() -> SeqPointSet {
        SeqPointSet::from_points(vec![
            SeqPoint {
                seq_len: 8,
                stat: 0.1,
                weight: 30,
            },
            SeqPoint {
                seq_len: 32,
                stat: 0.3,
                weight: 10,
            },
        ])
    }

    #[test]
    fn bundle_contains_one_trace_per_seqpoint() {
        let dir = tmp_dir("bundle");
        let net = gnmt_with(500, 64);
        let cfg = GpuConfig::vega_fe();
        let bundle = export_seqpoint_traces(&dir, &net, 4, &small_set(), &cfg).unwrap();
        assert_eq!(bundle.traces.len(), 2);
        let manifest = fs::read_to_string(&bundle.manifest).unwrap();
        assert_eq!(manifest.lines().count(), 2);
        assert!(manifest.contains("\t8\t30"));
        assert!(manifest.contains("\t32\t10"));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn exported_traces_replay_identically() {
        let dir = tmp_dir("replay");
        let net = gnmt_with(500, 64);
        let cfg = GpuConfig::vega_fe();
        let device = Device::new(cfg.clone());
        let bundle = export_seqpoint_traces(&dir, &net, 4, &small_set(), &cfg).unwrap();
        // Replaying the file reproduces the direct simulation exactly.
        let mut tuner = AutotuneTable::new();
        let direct = net.iteration_trace(&IterationShape::new(4, 8), &cfg, &mut tuner);
        let replayed =
            gpu_sim::trace_format::read_trace(fs::File::open(&bundle.traces[0]).unwrap()).unwrap();
        assert_eq!(
            device.run_trace(&direct).total_time_s(),
            device.run_trace(&replayed).total_time_s()
        );
        let _ = fs::remove_dir_all(&dir);
    }
}
