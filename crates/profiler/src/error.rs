use std::error::Error;
use std::fmt;

/// Errors produced by the profiling harness.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ProfileError {
    /// The epoch plan contains no iterations.
    EmptyPlan,
    /// Writing a report file failed.
    Io {
        /// The destination path.
        path: String,
        /// The underlying error message.
        message: String,
    },
}

impl fmt::Display for ProfileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProfileError::EmptyPlan => write!(f, "epoch plan contains no iterations"),
            ProfileError::Io { path, message } => {
                write!(f, "failed writing report to `{path}`: {message}")
            }
        }
    }
}

impl Error for ProfileError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        assert!(ProfileError::EmptyPlan.to_string().contains("no iterations"));
        let e = ProfileError::Io {
            path: "/tmp/x".into(),
            message: "denied".into(),
        };
        assert!(e.to_string().contains("/tmp/x"));
    }
}
