use std::error::Error;
use std::fmt;

/// Errors produced by the profiling harness.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ProfileError {
    /// The epoch plan contains no iterations.
    EmptyPlan,
    /// Writing a report file failed.
    Io {
        /// The destination path.
        path: String,
        /// The underlying error message.
        message: String,
    },
    /// The streaming harness was configured with degenerate parameters.
    InvalidStream {
        /// What was wrong.
        message: String,
    },
    /// The selection pipeline rejected the streamed counts.
    Selection {
        /// The underlying [`seqpoint_core::CoreError`] rendered.
        message: String,
    },
    /// Reading, writing, or validating a streaming checkpoint failed.
    Checkpoint {
        /// The checkpoint file path.
        path: String,
        /// What went wrong.
        message: String,
    },
    /// The placement layer behind a [`crate::stream::RoundExecutor`]
    /// failed (lost a worker, broken transport, short round). The run's
    /// last checkpoint is still valid, so callers may resume/retry.
    Executor {
        /// What went wrong.
        message: String,
    },
}

impl fmt::Display for ProfileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProfileError::EmptyPlan => write!(f, "epoch plan contains no iterations"),
            ProfileError::Io { path, message } => {
                write!(f, "failed writing report to `{path}`: {message}")
            }
            ProfileError::InvalidStream { message } => {
                write!(f, "invalid streaming options: {message}")
            }
            ProfileError::Selection { message } => {
                write!(f, "streamed selection failed: {message}")
            }
            ProfileError::Checkpoint { path, message } => {
                write!(f, "checkpoint `{path}`: {message}")
            }
            ProfileError::Executor { message } => {
                write!(f, "shard executor failed: {message}")
            }
        }
    }
}

impl Error for ProfileError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        assert!(ProfileError::EmptyPlan
            .to_string()
            .contains("no iterations"));
        let e = ProfileError::Io {
            path: "/tmp/x".into(),
            message: "denied".into(),
        };
        assert!(e.to_string().contains("/tmp/x"));
    }
}
