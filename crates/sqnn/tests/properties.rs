//! Property-based invariants of the network models' trace emission.

use gpu_sim::{AutotuneTable, Device, GpuConfig, KernelDesc, KernelKind};
use proptest::prelude::*;
use sqnn::models::{
    cnn_reference, conv_s2s_with, ds2_with, gnmt_with, seq2seq_with, transformer_with,
};
use sqnn::{IterationShape, Network};

fn small_models() -> Vec<Network> {
    vec![
        gnmt_with(300, 64),
        ds2_with(29, 64),
        transformer_with(300, 64, 4, 2),
        conv_s2s_with(300, 64, 2),
        seq2seq_with(300, 64, 2),
    ]
}

fn trace(net: &Network, shape: IterationShape) -> Vec<KernelDesc> {
    let cfg = GpuConfig::vega_fe();
    let mut tuner = AutotuneTable::new();
    net.iteration_trace(&shape, &cfg, &mut tuner)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn traces_are_deterministic(batch in 1u32..16, sl in 1u32..64) {
        for net in small_models() {
            let shape = IterationShape::new(batch, sl);
            prop_assert_eq!(trace(&net, shape), trace(&net, shape), "{}", net.name());
        }
    }

    #[test]
    fn runtime_grows_with_sl_modulo_tile_sawtooth(batch in 1u32..16, sl in 2u32..64) {
        // Tiled-kernel libraries produce sawtooth runtime-vs-size curves:
        // crossing a tile boundary can switch to a more efficient variant
        // and *briefly* lower runtime (real GPUs do this too). Adjacent
        // SLs may therefore dip a few percent; over a +8 stride the trend
        // must be strictly upward.
        let device = Device::new(GpuConfig::vega_fe());
        for net in small_models() {
            let t = |s: u32| {
                device
                    .run_trace(&trace(&net, IterationShape::new(batch, s)))
                    .total_time_s()
            };
            let (short, long) = (t(sl - 1), t(sl));
            prop_assert!(
                long >= short * 0.95,
                "{} dips more than 5% at SL {sl}",
                net.name()
            );
            prop_assert!(
                t(sl + 8) > long,
                "{} not increasing over a +8 stride at SL {sl}",
                net.name()
            );
        }
    }

    #[test]
    fn every_trace_ends_with_optimizer_kernels(batch in 1u32..8, sl in 1u32..32) {
        for net in small_models() {
            let t = trace(&net, IterationShape::new(batch, sl));
            let opt_count = t.iter().filter(|k| k.kind() == KernelKind::Optimizer).count();
            let param_layers = net.layers().filter(|l| l.param_count() > 0).count();
            prop_assert_eq!(opt_count, param_layers, "{}", net.name());
            // Optimizer kernels come last.
            let first_opt = t
                .iter()
                .position(|k| k.kind() == KernelKind::Optimizer)
                .expect("all models have parameters");
            prop_assert!(t[first_opt..].iter().all(|k| k.kind() == KernelKind::Optimizer));
        }
    }

    #[test]
    fn inference_is_a_strict_prefix_of_training_work(batch in 1u32..8, sl in 1u32..32) {
        let cfg = GpuConfig::vega_fe();
        for net in small_models() {
            let mut tuner = AutotuneTable::new();
            let shape = IterationShape::new(batch, sl);
            let fwd = net.inference_trace(&shape, &cfg, &mut tuner);
            let full = net.iteration_trace(&shape, &cfg, &mut tuner);
            prop_assert!(fwd.len() < full.len(), "{}", net.name());
            prop_assert_eq!(&full[..fwd.len()], &fwd[..], "{}", net.name());
        }
    }

    #[test]
    fn backward_work_is_one_to_three_times_forward(sl in 4u32..64) {
        let cfg = GpuConfig::vega_fe();
        for net in small_models() {
            let mut tuner = AutotuneTable::new();
            let shape = IterationShape::new(8, sl);
            let fwd: f64 = net
                .inference_trace(&shape, &cfg, &mut tuner)
                .iter()
                .map(|k| k.flops())
                .sum();
            let full: f64 = net
                .iteration_trace(&shape, &cfg, &mut tuner)
                .iter()
                .map(|k| k.flops())
                .sum();
            let bwd_ratio = (full - fwd) / fwd;
            prop_assert!(
                (0.9..3.2).contains(&bwd_ratio),
                "{}: backward/forward = {bwd_ratio}",
                net.name()
            );
        }
    }

    #[test]
    fn cnn_traces_ignore_sequence_length(batch in 1u32..8, sl_a in 1u32..400, sl_b in 1u32..400) {
        let net = cnn_reference();
        prop_assert_eq!(
            trace(&net, IterationShape::new(batch, sl_a)),
            trace(&net, IterationShape::new(batch, sl_b))
        );
    }

    #[test]
    fn all_kernels_are_well_formed(sl in 1u32..48) {
        for net in small_models() {
            for k in trace(&net, IterationShape::new(4, sl)) {
                prop_assert!(k.flops() >= 0.0);
                prop_assert!(k.read_bytes() >= 0.0 && k.write_bytes() >= 0.0);
                prop_assert!(k.footprint_bytes() <= k.read_bytes() + k.write_bytes() + 1e-9);
                prop_assert!((0.0..=1.0).contains(&k.l1_locality()));
                prop_assert!((0.0..=1.0).contains(&k.l2_locality()));
                prop_assert!(k.efficiency() > 0.0 && k.efficiency() <= 1.0);
                prop_assert!(k.workgroups() >= 1.0);
                prop_assert!(!k.name().is_empty());
            }
        }
    }
}
