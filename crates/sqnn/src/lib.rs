//! # sqnn — sequence-based neural networks as kernel-trace generators
//!
//! The SeqPoint paper profiles two end-to-end MLPerf networks — Google's
//! Neural Machine Translation (GNMT) and Baidu's DeepSpeech2 (DS2) — on a
//! real GPU. This crate is the substitute: layer-level models of those
//! networks (plus a fixed-input CNN for the paper's Fig. 3 contrast and a
//! Transformer for the Section VII-B generality discussion) that *emit the
//! kernel trace* of one training iteration given an input batch shape.
//!
//! The emitted traces reproduce the structural facts the paper's analysis
//! rests on:
//!
//! * recurrent layers unroll per time step while attention, convolution,
//!   and classifier layers process whole sequences (key observation 1);
//! * GEMM operand shapes scale with sequence length, matching Table I
//!   (the GNMT classifier runs `M=36549, K=1024, N=64·T`; DS2's runs
//!   `M=29, K=1600, N=64·T`);
//! * which kernels are invoked changes with sequence length through tile
//!   variant selection and size-bucketed dispatch (key observation 2);
//! * an optimizer pass whose cost is independent of sequence length gives
//!   iteration runtime its constant component.
//!
//! ```
//! use gpu_sim::{AutotuneTable, Device, GpuConfig};
//! use sqnn::{models::gnmt, IterationShape};
//!
//! let net = gnmt();
//! let device = Device::new(GpuConfig::vega_fe());
//! let mut tuner = AutotuneTable::new();
//! let shape = IterationShape::new(64, 40);
//! let trace = net.iteration_trace(&shape, device.config(), &mut tuner);
//! let profile = device.run_trace(&trace);
//! assert!(profile.total_time_s() > 0.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod error;
mod layer;
mod network;
mod shape;
mod trace;

pub mod layers;
pub mod models;

pub use error::ModelError;
pub use layer::Layer;
pub use network::{Network, NetworkBuilder, Optimizer};
pub use shape::{IterationShape, Stream};
pub use trace::TraceCtx;
