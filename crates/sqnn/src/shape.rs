use serde::{Deserialize, Serialize};

/// Which sequence a layer consumes in an encoder–decoder network.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Stream {
    /// The encoder-side (source) sequence.
    Source,
    /// The decoder-side (target) sequence.
    Target,
}

/// The input shape of one training iteration: batch size and the padded
/// sequence lengths of the source and target streams.
///
/// Per the paper's Section IV-B1, frameworks pick a single sequence length
/// per batch (the maximum) and pad; the iteration's computation is then
/// fully determined by `(batch, src_len, dst_len)`. Keeping the target
/// length a deterministic function of the source length (here: equal, set
/// by [`IterationShape::new`]) preserves the paper's premise that the
/// *input SL* is the sole shape determinant.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct IterationShape {
    /// Number of samples in the batch.
    pub batch: u32,
    /// Padded source-sequence length (time steps / tokens).
    pub src_len: u32,
    /// Padded target-sequence length.
    pub dst_len: u32,
}

impl IterationShape {
    /// A shape whose target length equals its source length (a deliberate
    /// simplification: translation pairs have strongly correlated source
    /// and target lengths, and the paper bins on a single padded SL).
    pub fn new(batch: u32, seq_len: u32) -> Self {
        IterationShape {
            batch: batch.max(1),
            src_len: seq_len.max(1),
            dst_len: seq_len.max(1),
        }
    }

    /// A shape with distinct source and target lengths.
    pub fn with_lengths(batch: u32, src_len: u32, dst_len: u32) -> Self {
        IterationShape {
            batch: batch.max(1),
            src_len: src_len.max(1),
            dst_len: dst_len.max(1),
        }
    }

    /// The padded length of the given stream.
    pub fn len_of(&self, stream: Stream) -> u32 {
        match stream {
            Stream::Source => self.src_len,
            Stream::Target => self.dst_len,
        }
    }

    /// `batch · len_of(stream)` as `u64` — the token count of a stream.
    pub fn tokens(&self, stream: Stream) -> u64 {
        u64::from(self.batch) * u64::from(self.len_of(stream))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_sets_equal_lengths() {
        let s = IterationShape::new(64, 42);
        assert_eq!(s.src_len, 42);
        assert_eq!(s.dst_len, 42);
        assert_eq!(s.tokens(Stream::Source), 64 * 42);
    }

    #[test]
    fn with_lengths_keeps_streams_distinct() {
        let s = IterationShape::with_lengths(32, 10, 20);
        assert_eq!(s.len_of(Stream::Source), 10);
        assert_eq!(s.len_of(Stream::Target), 20);
    }

    #[test]
    fn degenerate_values_are_lifted() {
        let s = IterationShape::new(0, 0);
        assert_eq!(s.batch, 1);
        assert_eq!(s.src_len, 1);
    }
}
