use gpu_sim::gemm::GemmShape;
use gpu_sim::{conv, elementwise, memops, reduce, AutotuneTable, GpuConfig, KernelDesc};

/// The emission context layers write kernels into: the target hardware
/// configuration (needed for autotuned kernel selection), the autotune
/// table, and the growing trace.
///
/// Layers call the `emit_*` helpers rather than constructing
/// [`KernelDesc`]s directly, which keeps kernel naming and the traffic
/// models consistent across the whole network zoo.
#[derive(Debug)]
pub struct TraceCtx<'a> {
    cfg: &'a GpuConfig,
    tuner: &'a mut AutotuneTable,
    kernels: Vec<KernelDesc>,
}

impl<'a> TraceCtx<'a> {
    /// Create an empty context targeting `cfg`.
    pub fn new(cfg: &'a GpuConfig, tuner: &'a mut AutotuneTable) -> Self {
        TraceCtx {
            cfg,
            tuner,
            kernels: Vec::new(),
        }
    }

    /// The hardware configuration being targeted.
    pub fn config(&self) -> &GpuConfig {
        self.cfg
    }

    /// Number of kernels emitted so far.
    pub fn len(&self) -> usize {
        self.kernels.len()
    }

    /// Whether no kernels have been emitted.
    pub fn is_empty(&self) -> bool {
        self.kernels.is_empty()
    }

    /// Consume the context, returning the emitted trace.
    pub fn into_trace(self) -> Vec<KernelDesc> {
        self.kernels
    }

    /// Emit a raw kernel descriptor.
    pub fn emit(&mut self, kernel: KernelDesc) {
        self.kernels.push(kernel);
    }

    /// Emit an autotuned GEMM `C[m×n] += A[m×k]·B[k×n]` with layout
    /// `flavor` (`"nn"` forward, `"nt"` backward-data, `"tn"`
    /// backward-weights, `"bnn"`/`"bnt"` strided-batched).
    pub fn emit_gemm(&mut self, flavor: &str, m: u64, k: u64, n: u64) {
        let kernel = self
            .tuner
            .gemm_flavored(self.cfg, flavor, GemmShape::new(m, k, n));
        self.kernels.push(kernel);
    }

    /// Emit an element-wise map kernel.
    pub fn emit_ew(&mut self, op: &str, elems: u64, flops_per_elem: f64, inputs: u32) {
        self.kernels
            .push(elementwise::map(op, elems, flops_per_elem, inputs));
    }

    /// Emit a dropout kernel.
    pub fn emit_dropout(&mut self, elems: u64) {
        self.kernels.push(elementwise::dropout(elems));
    }

    /// Emit a row-wise reduction.
    pub fn emit_reduce(&mut self, op: &str, rows: u64, width: u64) {
        self.kernels.push(reduce::reduce(op, rows, width));
    }

    /// Emit a row-wise softmax.
    pub fn emit_softmax(&mut self, rows: u64, width: u64) {
        self.kernels.push(reduce::softmax(rows, width));
    }

    /// Emit a batch-norm kernel.
    pub fn emit_batchnorm(&mut self, elems: u64, channels: u64, backward: bool) {
        self.kernels
            .push(reduce::batchnorm(elems, channels, backward));
    }

    /// Emit an embedding-table gather.
    pub fn emit_gather(&mut self, rows: u64, row_bytes: u64, table_bytes: u64) {
        self.kernels
            .push(memops::gather(rows, row_bytes, table_bytes));
    }

    /// Emit an embedding-gradient scatter-add.
    pub fn emit_scatter_add(&mut self, rows: u64, row_bytes: u64, table_bytes: u64) {
        self.kernels
            .push(memops::scatter_add(rows, row_bytes, table_bytes));
    }

    /// Emit a device copy.
    pub fn emit_copy(&mut self, bytes: u64) {
        self.kernels.push(memops::copy(bytes));
    }

    /// Emit a concatenation.
    pub fn emit_concat(&mut self, bytes: u64) {
        self.kernels.push(memops::concat(bytes));
    }

    /// Emit a tiled transpose.
    pub fn emit_transpose(&mut self, rows: u64, cols: u64) {
        self.kernels.push(memops::transpose(rows, cols));
    }

    /// Emit one convolution pass.
    pub fn emit_conv(&mut self, shape: &conv::ConvShape, pass: conv::ConvPass) {
        self.kernels.push(conv::kernel(self.cfg, shape, pass));
    }

    /// Emit an optimizer parameter-update sweep.
    pub fn emit_optimizer(&mut self, params: u64) {
        self.kernels.push(elementwise::sgd_momentum_update(params));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn helpers_append_kernels() {
        let cfg = GpuConfig::vega_fe();
        let mut tuner = AutotuneTable::new();
        let mut ctx = TraceCtx::new(&cfg, &mut tuner);
        assert!(ctx.is_empty());
        ctx.emit_gemm("nn", 128, 128, 128);
        ctx.emit_ew("tanh", 1024, 4.0, 1);
        ctx.emit_softmax(64, 100);
        ctx.emit_gather(64, 4096, 1 << 20);
        assert_eq!(ctx.len(), 4);
        let trace = ctx.into_trace();
        assert!(trace[0].name().starts_with("gemm_nn_"));
        assert!(trace[1].name().starts_with("ew_tanh"));
    }

    #[test]
    fn gemm_emission_uses_shared_tuner() {
        let cfg = GpuConfig::vega_fe();
        let mut tuner = AutotuneTable::new();
        {
            let mut ctx = TraceCtx::new(&cfg, &mut tuner);
            ctx.emit_gemm("nn", 256, 256, 256);
            ctx.emit_gemm("nn", 256, 256, 256);
        }
        assert_eq!(tuner.shapes_tuned(), 1);
    }
}
