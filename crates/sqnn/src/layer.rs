use crate::{IterationShape, TraceCtx};

/// One layer of a network: a generator of forward- and backward-pass
/// kernels for a given iteration shape.
///
/// Implementations live in [`crate::layers`]. The contract mirrors how
/// the paper reasons about layers (Section IV-B1): some layers unroll
/// per time step (LSTM/GRU), some process whole sequences (attention,
/// convolution, classifier), and each contributes parameters to the
/// sequence-length-independent optimizer pass.
pub trait Layer: std::fmt::Debug + Send + Sync {
    /// A short human-readable layer name (e.g. `"enc-lstm-3"`).
    fn name(&self) -> &str;

    /// Number of learnable parameters (drives optimizer cost).
    fn param_count(&self) -> u64;

    /// Emit the forward-pass kernels for one iteration of `shape`.
    fn emit_forward(&self, shape: &IterationShape, ctx: &mut TraceCtx<'_>);

    /// Emit the backward-pass kernels for one iteration of `shape`.
    ///
    /// Called in reverse layer order by [`crate::Network`]. The default
    /// contract is that backward work ≈ 2× forward flops (dgrad + wgrad),
    /// which every bundled layer follows.
    fn emit_backward(&self, shape: &IterationShape, ctx: &mut TraceCtx<'_>);
}
