use std::error::Error;
use std::fmt;

/// Errors produced when constructing network models.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ModelError {
    /// A model hyper-parameter was outside its valid range.
    InvalidParameter {
        /// The offending parameter name.
        parameter: &'static str,
        /// Description of the violated constraint.
        reason: String,
    },
}

impl ModelError {
    pub(crate) fn invalid(parameter: &'static str, reason: impl Into<String>) -> Self {
        ModelError::InvalidParameter {
            parameter,
            reason: reason.into(),
        }
    }
}

impl fmt::Display for ModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModelError::InvalidParameter { parameter, reason } => {
                write!(f, "invalid model parameter `{parameter}`: {reason}")
            }
        }
    }
}

impl Error for ModelError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_parameter() {
        let e = ModelError::invalid("hidden", "must be positive");
        assert!(e.to_string().contains("hidden"));
    }
}
