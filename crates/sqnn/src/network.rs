use gpu_sim::{AutotuneTable, GpuConfig, KernelDesc};

use crate::{IterationShape, Layer, ModelError, TraceCtx};

/// The optimizer whose parameter-update sweep closes every training
/// iteration. Its cost depends only on the parameter count — never on the
/// sequence length — giving iteration runtimes their constant component.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Optimizer {
    /// Plain stochastic gradient descent.
    Sgd,
    /// SGD with momentum (the default; what the paper's MLPerf reference
    /// implementations use).
    #[default]
    SgdMomentum,
}

/// An end-to-end network: an ordered layer stack plus an optimizer.
///
/// A `Network` does not hold tensors — it is a *trace generator*: given an
/// iteration's input shape it emits the kernel sequence of the forward
/// pass, the backward pass (reverse layer order), and the optimizer
/// update, exactly the structure the paper's profiled iterations have.
///
/// ```
/// use gpu_sim::{AutotuneTable, GpuConfig};
/// use sqnn::{models::ds2, IterationShape};
///
/// let net = ds2();
/// let cfg = GpuConfig::vega_fe();
/// let mut tuner = AutotuneTable::new();
/// let trace = net.iteration_trace(&IterationShape::new(64, 100), &cfg, &mut tuner);
/// assert!(trace.len() > 100);
/// ```
#[derive(Debug)]
pub struct Network {
    name: String,
    layers: Vec<Box<dyn Layer>>,
    vocab_size: u32,
    optimizer: Optimizer,
}

impl Network {
    /// Start building a network named `name`.
    pub fn builder(name: impl Into<String>) -> NetworkBuilder {
        NetworkBuilder {
            name: name.into(),
            layers: Vec::new(),
            vocab_size: 1,
            optimizer: Optimizer::default(),
        }
    }

    /// The network's name (e.g. `"gnmt"`).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The vocabulary size the network was configured for.
    pub fn vocab_size(&self) -> u32 {
        self.vocab_size
    }

    /// The optimizer used for parameter updates.
    pub fn optimizer(&self) -> Optimizer {
        self.optimizer
    }

    /// Number of layers.
    pub fn layer_count(&self) -> usize {
        self.layers.len()
    }

    /// Iterate over the layers in forward order.
    pub fn layers(&self) -> impl Iterator<Item = &dyn Layer> {
        self.layers.iter().map(Box::as_ref)
    }

    /// Total learnable parameters.
    pub fn param_count(&self) -> u64 {
        self.layers.iter().map(|l| l.param_count()).sum()
    }

    /// Emit the full training-iteration trace for `shape`: forward pass,
    /// backward pass in reverse layer order, and one optimizer update per
    /// parameterized layer.
    pub fn iteration_trace(
        &self,
        shape: &IterationShape,
        cfg: &GpuConfig,
        tuner: &mut AutotuneTable,
    ) -> Vec<KernelDesc> {
        let mut ctx = TraceCtx::new(cfg, tuner);
        for layer in &self.layers {
            layer.emit_forward(shape, &mut ctx);
        }
        for layer in self.layers.iter().rev() {
            layer.emit_backward(shape, &mut ctx);
        }
        for layer in &self.layers {
            let params = layer.param_count();
            if params > 0 {
                ctx.emit_optimizer(params);
            }
        }
        ctx.into_trace()
    }

    /// Emit a forward-only (inference) trace for `shape` — the
    /// Section VII-E use case.
    pub fn inference_trace(
        &self,
        shape: &IterationShape,
        cfg: &GpuConfig,
        tuner: &mut AutotuneTable,
    ) -> Vec<KernelDesc> {
        let mut ctx = TraceCtx::new(cfg, tuner);
        for layer in &self.layers {
            layer.emit_forward(shape, &mut ctx);
        }
        ctx.into_trace()
    }
}

/// Builder for [`Network`]; see that type's docs.
#[derive(Debug)]
pub struct NetworkBuilder {
    name: String,
    layers: Vec<Box<dyn Layer>>,
    vocab_size: u32,
    optimizer: Optimizer,
}

impl NetworkBuilder {
    /// Append a layer.
    pub fn layer(mut self, layer: impl Layer + 'static) -> Self {
        self.layers.push(Box::new(layer));
        self
    }

    /// Set the vocabulary size metadata.
    pub fn vocab_size(mut self, vocab: u32) -> Self {
        self.vocab_size = vocab.max(1);
        self
    }

    /// Select the optimizer.
    pub fn optimizer(mut self, opt: Optimizer) -> Self {
        self.optimizer = opt;
        self
    }

    /// Finish building.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::InvalidParameter`] if no layers were added.
    pub fn build(self) -> Result<Network, ModelError> {
        if self.layers.is_empty() {
            return Err(ModelError::invalid(
                "layers",
                "network needs at least one layer",
            ));
        }
        Ok(Network {
            name: self.name,
            layers: self.layers,
            vocab_size: self.vocab_size,
            optimizer: self.optimizer,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::{Dense, RowSpec};
    use crate::Stream;

    fn tiny_net() -> Network {
        Network::builder("tiny")
            .vocab_size(100)
            .layer(Dense::new("a", 8, 8, RowSpec::PerToken(Stream::Source)))
            .layer(Dense::new("b", 8, 4, RowSpec::PerSample))
            .build()
            .unwrap()
    }

    #[test]
    fn empty_network_is_rejected() {
        assert!(Network::builder("x").build().is_err());
    }

    #[test]
    fn trace_contains_fwd_bwd_and_optimizer() {
        let net = tiny_net();
        let cfg = GpuConfig::vega_fe();
        let mut tuner = AutotuneTable::new();
        let trace = net.iteration_trace(&IterationShape::new(4, 4), &cfg, &mut tuner);
        let opt_kernels = trace
            .iter()
            .filter(|k| k.kind() == gpu_sim::KernelKind::Optimizer)
            .count();
        assert_eq!(opt_kernels, 2); // one per parameterized layer
        let inference = net.inference_trace(&IterationShape::new(4, 4), &cfg, &mut tuner);
        assert!(inference.len() < trace.len());
    }

    #[test]
    fn param_count_sums_layers() {
        let net = tiny_net();
        assert_eq!(net.param_count(), (8 * 8 + 8) + (8 * 4 + 4));
    }

    #[test]
    fn optimizer_cost_is_sl_independent() {
        let net = tiny_net();
        let cfg = GpuConfig::vega_fe();
        let mut tuner = AutotuneTable::new();
        let short = net.iteration_trace(&IterationShape::new(4, 2), &cfg, &mut tuner);
        let long = net.iteration_trace(&IterationShape::new(4, 50), &cfg, &mut tuner);
        let opt = |t: &[KernelDesc]| -> Vec<KernelDesc> {
            t.iter()
                .filter(|k| k.kind() == gpu_sim::KernelKind::Optimizer)
                .cloned()
                .collect()
        };
        assert_eq!(opt(&short), opt(&long));
    }

    #[test]
    fn metadata_accessors() {
        let net = tiny_net();
        assert_eq!(net.name(), "tiny");
        assert_eq!(net.vocab_size(), 100);
        assert_eq!(net.layer_count(), 2);
        assert_eq!(net.optimizer(), Optimizer::SgdMomentum);
        assert_eq!(net.layers().count(), 2);
    }
}
