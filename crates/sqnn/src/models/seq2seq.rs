//! A Seq2Seq model with attention (Luong et al., 2014) — the classic
//! 4+4-layer LSTM encoder–decoder the paper's Section VII-B lists among
//! the networks SeqPoint applies to.

use crate::layers::{Attention, Dropout, Embedding, Lstm, SoftmaxCrossEntropy};
use crate::{Network, Stream};

/// Build the classic Seq2Seq: 4-layer LSTM encoder, 4-layer LSTM
/// decoder, attention, hidden 1000, over a 50k vocabulary.
pub fn seq2seq() -> Network {
    seq2seq_with(50_000, 1_000, 4)
}

/// Build a Seq2Seq model with custom dimensions.
pub fn seq2seq_with(vocab: u64, hidden: u64, layers_per_side: u32) -> Network {
    let h = hidden.max(1);
    let mut b = Network::builder("seq2seq")
        .vocab_size(vocab.min(u64::from(u32::MAX)) as u32)
        .layer(Embedding::new("src-embed", vocab, h, Stream::Source))
        .layer(Dropout::new("src-drop", h, Stream::Source));
    for i in 0..layers_per_side {
        b = b.layer(Lstm::new(format!("enc-lstm-{i}"), h, h, Stream::Source));
    }
    b = b
        .layer(Embedding::new("tgt-embed", vocab, h, Stream::Target))
        .layer(Dropout::new("tgt-drop", h, Stream::Target));
    for i in 0..layers_per_side {
        b = b.layer(Lstm::new(format!("dec-lstm-{i}"), h, h, Stream::Target));
    }
    b = b
        .layer(Attention::new("attention", h))
        .layer(SoftmaxCrossEntropy::new(
            "classifier",
            h,
            vocab,
            Stream::Target,
        ));
    b.build().expect("seq2seq layer list is non-empty")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::IterationShape;
    use gpu_sim::{AutotuneTable, Device, GpuConfig};

    #[test]
    fn structure_is_4_plus_4() {
        let net = seq2seq();
        let enc = net
            .layers()
            .filter(|l| l.name().starts_with("enc-lstm"))
            .count();
        let dec = net
            .layers()
            .filter(|l| l.name().starts_with("dec-lstm"))
            .count();
        assert_eq!(enc, 4);
        assert_eq!(dec, 4);
        // ~4x H² per LSTM, 8 LSTMs, two 50k×1000 embeddings + classifier.
        assert!(net.param_count() > 180_000_000);
    }

    #[test]
    fn runtime_is_sl_dependent() {
        let net = seq2seq_with(2_000, 256, 2);
        let cfg = GpuConfig::vega_fe();
        let device = Device::new(cfg.clone());
        let mut tuner = AutotuneTable::new();
        let mut t = |sl: u32| {
            device
                .run_trace(&net.iteration_trace(&IterationShape::new(64, sl), &cfg, &mut tuner))
                .total_time_s()
        };
        assert!(t(80) > 2.0 * t(20));
    }
}
