//! A fixed-input convolutional network — the paper's Fig. 3 contrast
//! case. Every input is scaled to the same resolution, so every training
//! iteration performs identical computation and the per-iteration
//! statistics are flat (up to hardware jitter).

use crate::layers::{Conv2d, Dense, RowSpec, SoftmaxCrossEntropy, TimeSpec};
use crate::Network;

/// Build the reference CNN: a small VGG-style stack on 224×224 RGB
/// images with a 1000-class head.
pub fn cnn_reference() -> Network {
    cnn_with(224, 1000)
}

/// Build a CNN on `image_size`² inputs with `classes` output classes.
pub fn cnn_with(image_size: u64, classes: u64) -> Network {
    let s = image_size.max(8);
    let b = Network::builder("cnn")
        .vocab_size(classes.min(u64::from(u32::MAX)) as u32)
        .layer(
            Conv2d::new("conv1", 3, 64, s, (3, 3), (1, 1), TimeSpec::Fixed(s))
                .with_activation("relu"),
        )
        .layer(
            Conv2d::new("conv2", 64, 128, s, (3, 3), (2, 2), TimeSpec::Fixed(s))
                .with_activation("relu"),
        )
        .layer(
            Conv2d::new(
                "conv3",
                128,
                256,
                s.div_ceil(2),
                (3, 3),
                (2, 2),
                TimeSpec::Fixed(s.div_ceil(2)),
            )
            .with_activation("relu"),
        )
        .layer(
            Conv2d::new(
                "conv4",
                256,
                256,
                s.div_ceil(4),
                (3, 3),
                (2, 2),
                TimeSpec::Fixed(s.div_ceil(4)),
            )
            .with_activation("relu"),
        )
        // Global-average-pooled features into the head.
        .layer(Dense::new("fc1", 256, 512, RowSpec::PerSample).with_activation("relu"))
        .layer(SoftmaxCrossEntropy::per_sample("head", 512, classes));
    b.build().expect("cnn layer list is non-empty")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::IterationShape;
    use gpu_sim::{AutotuneTable, GpuConfig};

    #[test]
    fn iterations_are_homogeneous() {
        // The defining CNN property for Fig. 3: the trace is identical
        // regardless of the (meaningless) sequence length.
        let net = cnn_reference();
        let cfg = GpuConfig::vega_fe();
        let mut tuner = AutotuneTable::new();
        let a = net.iteration_trace(&IterationShape::new(64, 1), &cfg, &mut tuner);
        let b = net.iteration_trace(&IterationShape::new(64, 500), &cfg, &mut tuner);
        assert_eq!(a, b);
    }

    #[test]
    fn has_convolutions_and_a_head() {
        let net = cnn_reference();
        let convs = net
            .layers()
            .filter(|l| l.name().starts_with("conv"))
            .count();
        assert_eq!(convs, 4);
        assert!(net.param_count() > 1_000_000);
    }
}
