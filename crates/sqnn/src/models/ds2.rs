//! Baidu's DeepSpeech2 (Amodei et al., 2016), as configured by the MLPerf
//! reference the paper profiles:
//!
//! * two 2-D convolutional front-end layers over the spectrogram;
//! * one batch-normalization layer;
//! * five bidirectional GRU layers (hidden 800 per direction);
//! * one fully connected classifier onto the 29-character alphabet,
//!   trained with CTC.
//!
//! The iteration's sequence length is the number of *recurrent* time
//! steps; the stride-2 front-end consumes `2·SL` spectrogram frames
//! (161 frequency bins), so the Table I classifier GEMM is
//! `M = 29, K = 1600, N = 64·SL`.

use crate::layers::{
    BatchNorm, Conv2d, CtcLoss, Dense, Gru, RowSpec, SoftmaxCrossEntropy, TimeSpec,
};
use crate::{Network, Stream};

/// DS2's output alphabet: 26 letters, space, apostrophe, CTC blank.
pub const DS2_ALPHABET: u64 = 29;

const FREQ_BINS: u64 = 161;
const CONV_CHANNELS: u64 = 32;
const GRU_HIDDEN: u64 = 800;

/// Build DeepSpeech2 with the paper's configuration.
pub fn ds2() -> Network {
    ds2_with(DS2_ALPHABET, GRU_HIDDEN)
}

/// Build DeepSpeech2 with a custom alphabet and GRU hidden width.
pub fn ds2_with(alphabet: u64, gru_hidden: u64) -> Network {
    let h = gru_hidden.max(1);
    // conv1: 41×11 kernel, stride 2×2 → freq 161→81, time 2·SL→SL.
    let conv1 = Conv2d::new(
        "conv1",
        1,
        CONV_CHANNELS,
        FREQ_BINS,
        (41, 11),
        (2, 2),
        TimeSpec::PerSourceStep(2),
    )
    .with_activation("hardtanh");
    let conv1_out_h = conv1.out_h(); // 81
                                     // conv2: 21×11 kernel, stride 2×1 → freq 81→41, time SL→SL.
    let conv2 = Conv2d::new(
        "conv2",
        CONV_CHANNELS,
        CONV_CHANNELS,
        conv1_out_h,
        (21, 11),
        (2, 1),
        TimeSpec::PerSourceStep(1),
    )
    .with_activation("hardtanh");
    let conv2_out_h = conv2.out_h(); // 41
    let gru_input = CONV_CHANNELS * conv2_out_h; // 1312 features per step

    let mut b = Network::builder("ds2")
        .vocab_size(alphabet.min(u64::from(u32::MAX)) as u32)
        .layer(conv1)
        .layer(BatchNorm::new(
            "bnorm",
            CONV_CHANNELS,
            CONV_CHANNELS * conv1_out_h,
            Stream::Source,
        ))
        .layer(conv2)
        // Five bidirectional GRUs; layers 1..5 consume the 2·H concat.
        .layer(Gru::new("gru-0", gru_input, h, Stream::Source).bidirectional());
    for i in 1..5 {
        b = b.layer(Gru::new(format!("gru-{i}"), 2 * h, h, Stream::Source).bidirectional());
    }
    b = b
        // Fully connected classifier onto the alphabet: Table I's
        // M=29, K=1600, N=64·SL GEMM.
        .layer(Dense::new(
            "fc",
            2 * h,
            alphabet,
            RowSpec::PerToken(Stream::Source),
        ))
        .layer(CtcLoss::new("ctc", alphabet, Stream::Source));
    b.build().expect("ds2 layer list is non-empty")
}

/// DS2 variant with a per-token softmax classifier instead of CTC (used
/// by ablation experiments that need a like-for-like loss with GNMT).
pub fn ds2_softmax() -> Network {
    let mut b = Network::builder("ds2-softmax").vocab_size(DS2_ALPHABET as u32);
    let conv1 = Conv2d::new(
        "conv1",
        1,
        CONV_CHANNELS,
        FREQ_BINS,
        (41, 11),
        (2, 2),
        TimeSpec::PerSourceStep(2),
    )
    .with_activation("hardtanh");
    let conv1_out_h = conv1.out_h();
    b = b.layer(conv1).layer(BatchNorm::new(
        "bnorm",
        CONV_CHANNELS,
        CONV_CHANNELS * conv1_out_h,
        Stream::Source,
    ));
    let conv2 = Conv2d::new(
        "conv2",
        CONV_CHANNELS,
        CONV_CHANNELS,
        conv1_out_h,
        (21, 11),
        (2, 1),
        TimeSpec::PerSourceStep(1),
    )
    .with_activation("hardtanh");
    let gru_input = CONV_CHANNELS * conv2.out_h();
    b = b.layer(conv2);
    b = b.layer(Gru::new("gru-0", gru_input, GRU_HIDDEN, Stream::Source).bidirectional());
    for i in 1..5 {
        b = b.layer(
            Gru::new(
                format!("gru-{i}"),
                2 * GRU_HIDDEN,
                GRU_HIDDEN,
                Stream::Source,
            )
            .bidirectional(),
        );
    }
    b = b.layer(SoftmaxCrossEntropy::new(
        "classifier",
        2 * GRU_HIDDEN,
        DS2_ALPHABET,
        Stream::Source,
    ));
    b.build().expect("ds2-softmax layer list is non-empty")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::IterationShape;
    use gpu_sim::{AutotuneTable, Device, GpuConfig};

    #[test]
    fn has_the_paper_layer_structure() {
        let net = ds2();
        let names: Vec<&str> = net.layers().map(|l| l.name()).collect();
        assert_eq!(names.iter().filter(|n| n.starts_with("conv")).count(), 2);
        assert_eq!(names.iter().filter(|n| n.starts_with("gru")).count(), 5);
        assert!(names.contains(&"bnorm"));
        assert!(names.contains(&"fc"));
        assert!(names.contains(&"ctc"));
        assert_eq!(net.vocab_size(), 29);
    }

    #[test]
    fn classifier_input_width_is_1600() {
        // The Table I K dimension: bidirectional GRU output 2·800.
        let net = ds2();
        let cfg = GpuConfig::vega_fe();
        let mut tuner = AutotuneTable::new();
        let trace = net.iteration_trace(&IterationShape::new(64, 402), &cfg, &mut tuner);
        let expected_flops = 2.0 * 29.0 * 1600.0 * (64.0 * 402.0);
        assert!(
            trace
                .iter()
                .any(|k| (k.flops() - expected_flops).abs() < 1.0),
            "classifier GEMM M=29 K=1600 N=25728 not found"
        );
    }

    #[test]
    fn parameter_count_is_ds2_scale() {
        // Published DS2 configurations are in the 35M–120M range.
        let params = ds2().param_count();
        assert!(
            (30_000_000..130_000_000).contains(&params),
            "params = {params}"
        );
    }

    #[test]
    fn runtime_is_near_linear_in_sl() {
        let net = ds2();
        let cfg = GpuConfig::vega_fe();
        let device = Device::new(cfg.clone());
        let mut tuner = AutotuneTable::new();
        let mut t = |sl: u32| {
            device
                .run_trace(&net.iteration_trace(&IterationShape::new(64, sl), &cfg, &mut tuner))
                .total_time_s()
        };
        let ratio = t(400) / t(200);
        assert!((1.6..2.2).contains(&ratio), "ratio = {ratio}");
    }

    #[test]
    fn softmax_variant_shares_backbone() {
        let a = ds2();
        let b = ds2_softmax();
        // Same recurrent stack: parameter difference is only in the head.
        let diff = a.param_count().abs_diff(b.param_count());
        assert!(diff < 200_000, "diff = {diff}");
    }
}
