//! Google's Neural Machine Translation model (Wu et al., 2016), as
//! configured by the MLPerf reference the paper profiles:
//!
//! * an encoder of eight LSTM layers, the first bidirectional;
//! * a decoder of eight unidirectional LSTM layers;
//! * an attention network connecting them;
//! * a fully connected classifier over the 36 549-entry vocabulary.
//!
//! Hidden width is 1024 throughout. Source and target embeddings are
//! separate tables. Dropout follows the embedding and every stack.

use crate::layers::{Attention, Dropout, Embedding, Lstm, SoftmaxCrossEntropy};
use crate::{Network, Stream};

/// GNMT's hidden (and embedding) width.
pub const GNMT_HIDDEN: u64 = 1024;

/// The IWSLT'15 vocabulary size used in the paper's Table I.
pub const GNMT_VOCAB: u64 = 36_549;

/// Build GNMT with the paper's configuration.
pub fn gnmt() -> Network {
    gnmt_with(GNMT_VOCAB, GNMT_HIDDEN)
}

/// Build GNMT with a custom vocabulary and hidden width.
///
/// # Panics
///
/// Never panics: degenerate values are lifted to 1 by the layer
/// constructors; the layer list is statically non-empty.
pub fn gnmt_with(vocab: u64, hidden: u64) -> Network {
    let h = hidden.max(1);
    let mut b = Network::builder("gnmt")
        .vocab_size(vocab.min(u64::from(u32::MAX)) as u32)
        // Source embedding + dropout.
        .layer(Embedding::new("src-embed", vocab, h, Stream::Source))
        .layer(Dropout::new("src-embed-drop", h, Stream::Source))
        // Encoder: one bidirectional layer, then seven unidirectional.
        .layer(Lstm::new("enc-lstm-0", h, h, Stream::Source).bidirectional());
    // The bidirectional layer outputs 2H; layer 1 consumes it.
    b = b.layer(Lstm::new("enc-lstm-1", 2 * h, h, Stream::Source));
    for i in 2..8 {
        b = b.layer(Lstm::new(format!("enc-lstm-{i}"), h, h, Stream::Source));
    }
    b = b
        .layer(Dropout::new("enc-drop", h, Stream::Source))
        // Target embedding.
        .layer(Embedding::new("tgt-embed", vocab, h, Stream::Target))
        .layer(Dropout::new("tgt-embed-drop", h, Stream::Target))
        // Decoder: the first layer consumes [embedding; context].
        .layer(Lstm::new("dec-lstm-0", 2 * h, h, Stream::Target));
    for i in 1..8 {
        b = b.layer(Lstm::new(format!("dec-lstm-{i}"), h, h, Stream::Target));
    }
    b = b
        // Attention bridging encoder and decoder.
        .layer(Attention::new("attention", h))
        .layer(Dropout::new("dec-drop", h, Stream::Target))
        // Vocabulary classifier (Table I's GEMM-a/GEMM-b).
        .layer(SoftmaxCrossEntropy::new(
            "classifier",
            h,
            vocab,
            Stream::Target,
        ));
    b.build().expect("gnmt layer list is non-empty")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::IterationShape;
    use gpu_sim::{AutotuneTable, Device, GpuConfig};

    #[test]
    fn has_the_paper_layer_structure() {
        let net = gnmt();
        let names: Vec<&str> = net.layers().map(|l| l.name()).collect();
        let enc = names.iter().filter(|n| n.starts_with("enc-lstm")).count();
        let dec = names.iter().filter(|n| n.starts_with("dec-lstm")).count();
        assert_eq!(enc, 8, "encoder must have 8 LSTM layers");
        assert_eq!(dec, 8, "decoder must have 8 LSTM layers");
        assert!(names.contains(&"attention"));
        assert!(names.contains(&"classifier"));
        assert_eq!(net.vocab_size(), 36_549);
    }

    #[test]
    fn parameter_count_is_gnmt_scale() {
        // Published GNMT configurations land in the 150M–300M range
        // (embedding sharing varies); ours must too.
        let params = gnmt().param_count();
        assert!(
            (150_000_000..350_000_000).contains(&params),
            "params = {params}"
        );
    }

    #[test]
    fn runtime_grows_with_sequence_length() {
        let net = gnmt();
        let cfg = GpuConfig::vega_fe();
        let device = Device::new(cfg.clone());
        let mut tuner = AutotuneTable::new();
        let mut t = |sl: u32| {
            device
                .run_trace(&net.iteration_trace(&IterationShape::new(64, sl), &cfg, &mut tuner))
                .total_time_s()
        };
        let (t20, t100, t200) = (t(20), t(100), t(200));
        assert!(t20 < t100 && t100 < t200);
        // Near-linear with a constant offset (paper Fig. 9a): the 200/100
        // ratio must be below 2.3 (attention adds a quadratic term) and
        // above 1.5 (the constant part must not dominate).
        let ratio = t200 / t100;
        assert!((1.5..2.3).contains(&ratio), "ratio = {ratio}");
    }

    #[test]
    fn iteration_is_dominated_by_gemms() {
        let net = gnmt();
        let cfg = GpuConfig::vega_fe();
        let device = Device::new(cfg.clone());
        let mut tuner = AutotuneTable::new();
        let profile =
            device.run_trace(&net.iteration_trace(&IterationShape::new(64, 80), &cfg, &mut tuner));
        let shares = profile.runtime_shares_by_kind();
        let gemm_share = shares
            .get(&gpu_sim::KernelKind::Gemm)
            .copied()
            .unwrap_or(0.0);
        assert!(gemm_share > 0.4, "gemm share = {gemm_share}");
    }

    #[test]
    fn custom_widths_scale_params() {
        let small = gnmt_with(1000, 128);
        assert!(small.param_count() < gnmt().param_count() / 50);
    }
}
