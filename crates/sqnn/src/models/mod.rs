//! The model zoo: the paper's two evaluation networks (GNMT, DS2), the
//! fixed-input CNN used as the homogeneous-iteration contrast (Fig. 3),
//! and the Section VII-B families SeqPoint generalizes to — Transformer
//! (attention), ConvS2S (convolutional seq2seq), and the classic Seq2Seq
//! LSTM encoder–decoder.

mod cnn;
mod convs2s;
mod ds2;
mod gnmt;
mod seq2seq;
mod transformer;

pub use cnn::{cnn_reference, cnn_with};
pub use convs2s::{conv_s2s, conv_s2s_with};
pub use ds2::{ds2, ds2_softmax, ds2_with, DS2_ALPHABET};
pub use gnmt::{gnmt, gnmt_with, GNMT_HIDDEN, GNMT_VOCAB};
pub use seq2seq::{seq2seq, seq2seq_with};
pub use transformer::{transformer_base, transformer_with};
