//! A Transformer encoder–decoder (Vaswani et al., 2017) — the
//! Section VII-B extension showing SeqPoint applies to any network whose
//! computation varies with input sequence length, not just RNNs.

use crate::layers::{Dense, Dropout, Embedding, RowSpec, SelfAttention, SoftmaxCrossEntropy};
use crate::{Network, Stream};

/// Build the base Transformer: 6+6 layers, hidden 512, 8 heads, FFN 2048,
/// over the GNMT vocabulary.
pub fn transformer_base() -> Network {
    transformer_with(36_549, 512, 8, 6)
}

/// Build a Transformer with custom dimensions.
pub fn transformer_with(vocab: u64, hidden: u64, heads: u64, layers: u32) -> Network {
    let h = hidden.max(1);
    let ffn = 4 * h;
    let mut b = Network::builder("transformer")
        .vocab_size(vocab.min(u64::from(u32::MAX)) as u32)
        .layer(Embedding::new("src-embed", vocab, h, Stream::Source))
        .layer(Dropout::new("src-drop", h, Stream::Source));
    for i in 0..layers {
        b = b
            .layer(SelfAttention::new(
                format!("enc-attn-{i}"),
                h,
                heads,
                Stream::Source,
            ))
            .layer(
                Dense::new(
                    format!("enc-ffn1-{i}"),
                    h,
                    ffn,
                    RowSpec::PerToken(Stream::Source),
                )
                .with_activation("gelu"),
            )
            .layer(Dense::new(
                format!("enc-ffn2-{i}"),
                ffn,
                h,
                RowSpec::PerToken(Stream::Source),
            ));
    }
    b = b
        .layer(Embedding::new("tgt-embed", vocab, h, Stream::Target))
        .layer(Dropout::new("tgt-drop", h, Stream::Target));
    for i in 0..layers {
        b = b
            .layer(SelfAttention::new(
                format!("dec-attn-{i}"),
                h,
                heads,
                Stream::Target,
            ))
            // Cross-attention approximated as another attention block over
            // the target stream (source/target lengths are equal here).
            .layer(SelfAttention::new(
                format!("dec-xattn-{i}"),
                h,
                heads,
                Stream::Target,
            ))
            .layer(
                Dense::new(
                    format!("dec-ffn1-{i}"),
                    h,
                    ffn,
                    RowSpec::PerToken(Stream::Target),
                )
                .with_activation("gelu"),
            )
            .layer(Dense::new(
                format!("dec-ffn2-{i}"),
                ffn,
                h,
                RowSpec::PerToken(Stream::Target),
            ));
    }
    b = b.layer(SoftmaxCrossEntropy::new(
        "classifier",
        h,
        vocab,
        Stream::Target,
    ));
    b.build().expect("transformer layer list is non-empty")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::IterationShape;
    use gpu_sim::{AutotuneTable, Device, GpuConfig};

    #[test]
    fn runtime_varies_with_sequence_length() {
        // The property that makes SeqPoint applicable (Section VII-B).
        let net = transformer_base();
        let cfg = GpuConfig::vega_fe();
        let device = Device::new(cfg.clone());
        let mut tuner = AutotuneTable::new();
        let mut t = |sl: u32| {
            device
                .run_trace(&net.iteration_trace(&IterationShape::new(64, sl), &cfg, &mut tuner))
                .total_time_s()
        };
        assert!(t(100) > 1.7 * t(50), "quadratic attention should dominate");
    }

    #[test]
    fn base_configuration_is_sane() {
        let net = transformer_base();
        assert!(net.param_count() > 40_000_000);
        let attn = net.layers().filter(|l| l.name().contains("attn")).count();
        assert_eq!(attn, 6 + 12);
    }
}
