//! A ConvS2S-like convolutional sequence-to-sequence model (Gehring et
//! al., 2017) — one of the Section VII-B network families whose
//! computation varies with sequence length through *convolution* rather
//! than recurrence.
//!
//! Encoder and decoder are stacks of 1-D convolutions over the token
//! axis with gated linear units; an attention block connects them and a
//! vocabulary classifier closes the network.

use crate::layers::{Attention, Conv2d, Dropout, Embedding, SoftmaxCrossEntropy, TimeSpec};
use crate::{Network, Stream};

/// Build the base ConvS2S-like model: 8+8 conv layers, hidden 512,
/// kernel width 3, over the GNMT vocabulary.
pub fn conv_s2s() -> Network {
    conv_s2s_with(36_549, 512, 8)
}

/// Build a ConvS2S-like model with custom vocabulary, channel width, and
/// per-side layer count.
pub fn conv_s2s_with(vocab: u64, channels: u64, layers: u32) -> Network {
    let c = channels.max(1);
    let mut b = Network::builder("conv-s2s")
        .vocab_size(vocab.min(u64::from(u32::MAX)) as u32)
        .layer(Embedding::new("src-embed", vocab, c, Stream::Source))
        .layer(Dropout::new("src-drop", c, Stream::Source));
    for i in 0..layers {
        // 1-D conv over the token axis: height 1, kernel 1×3, GLU gate
        // (the 2·c output channels halve through the gate).
        b = b.layer(
            Conv2d::new(
                format!("enc-conv-{i}"),
                c,
                2 * c,
                1,
                (1, 3),
                (1, 1),
                TimeSpec::PerSourceStep(1),
            )
            .with_activation("glu"),
        );
    }
    b = b
        .layer(Embedding::new("tgt-embed", vocab, c, Stream::Target))
        .layer(Dropout::new("tgt-drop", c, Stream::Target));
    for i in 0..layers {
        b = b.layer(
            Conv2d::new(
                format!("dec-conv-{i}"),
                c,
                2 * c,
                1,
                (1, 3),
                (1, 1),
                TimeSpec::PerTargetStep(1),
            )
            .with_activation("glu"),
        );
    }
    b = b
        .layer(Attention::new("attention", c))
        .layer(SoftmaxCrossEntropy::new(
            "classifier",
            c,
            vocab,
            Stream::Target,
        ));
    b.build().expect("conv-s2s layer list is non-empty")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::IterationShape;
    use gpu_sim::{AutotuneTable, Device, GpuConfig};

    #[test]
    fn runtime_scales_with_sequence_length() {
        let net = conv_s2s_with(5_000, 256, 4);
        let cfg = GpuConfig::vega_fe();
        let device = Device::new(cfg.clone());
        let mut tuner = AutotuneTable::new();
        let mut t = |sl: u32| {
            device
                .run_trace(&net.iteration_trace(&IterationShape::new(64, sl), &cfg, &mut tuner))
                .total_time_s()
        };
        let (t25, t100) = (t(25), t(100));
        assert!(
            t100 > 2.5 * t25,
            "conv stack must scale with SL: {t100} vs {t25}"
        );
    }

    #[test]
    fn has_conv_stacks_on_both_sides() {
        let net = conv_s2s();
        let enc = net
            .layers()
            .filter(|l| l.name().starts_with("enc-conv"))
            .count();
        let dec = net
            .layers()
            .filter(|l| l.name().starts_with("dec-conv"))
            .count();
        assert_eq!(enc, 8);
        assert_eq!(dec, 8);
    }

    #[test]
    fn decoder_convs_follow_target_length() {
        let net = conv_s2s_with(1_000, 128, 2);
        let cfg = GpuConfig::vega_fe();
        let mut tuner = AutotuneTable::new();
        let short_tgt =
            net.iteration_trace(&IterationShape::with_lengths(8, 50, 10), &cfg, &mut tuner);
        let long_tgt =
            net.iteration_trace(&IterationShape::with_lengths(8, 50, 100), &cfg, &mut tuner);
        let flops = |t: &[gpu_sim::KernelDesc]| t.iter().map(|k| k.flops()).sum::<f64>();
        assert!(flops(&long_tgt) > flops(&short_tgt) * 1.5);
    }
}
