use crate::{IterationShape, Layer, Stream, TraceCtx};

/// A symbol-to-vector lookup table.
///
/// The paper's key observation 6: the vocabulary determines a considerable
/// fraction of per-iteration time (lookup cost, classifier width), so
/// representative iterations must keep the *full* vocabulary. Here the
/// vocabulary size feeds the gather's table size (cache behaviour) and the
/// scatter-add of the backward pass.
#[derive(Debug, Clone)]
pub struct Embedding {
    name: String,
    vocab: u64,
    dim: u64,
    stream: Stream,
}

impl Embedding {
    /// Create an embedding of `vocab` symbols into `dim`-wide vectors for
    /// the given stream.
    pub fn new(name: impl Into<String>, vocab: u64, dim: u64, stream: Stream) -> Self {
        Embedding {
            name: name.into(),
            vocab: vocab.max(1),
            dim: dim.max(1),
            stream,
        }
    }

    /// Vocabulary size.
    pub fn vocab(&self) -> u64 {
        self.vocab
    }
}

impl Layer for Embedding {
    fn name(&self) -> &str {
        &self.name
    }

    fn param_count(&self) -> u64 {
        self.vocab * self.dim
    }

    fn emit_forward(&self, shape: &IterationShape, ctx: &mut TraceCtx<'_>) {
        let rows = shape.tokens(self.stream);
        ctx.emit_gather(rows, self.dim * 4, self.vocab * self.dim * 4);
    }

    fn emit_backward(&self, shape: &IterationShape, ctx: &mut TraceCtx<'_>) {
        let rows = shape.tokens(self.stream);
        ctx.emit_scatter_add(rows, self.dim * 4, self.vocab * self.dim * 4);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::{AutotuneTable, Device, GpuConfig};

    fn run(emb: &Embedding, shape: IterationShape) -> f64 {
        let cfg = GpuConfig::vega_fe();
        let device = Device::new(cfg.clone());
        let mut tuner = AutotuneTable::new();
        let mut ctx = TraceCtx::new(&cfg, &mut tuner);
        emb.emit_forward(&shape, &mut ctx);
        emb.emit_backward(&shape, &mut ctx);
        device.run_trace(&ctx.into_trace()).total_time_s()
    }

    #[test]
    fn lookup_cost_scales_with_tokens() {
        let emb = Embedding::new("src-emb", 36_549, 1024, Stream::Source);
        let short = run(&emb, IterationShape::new(64, 10));
        let long = run(&emb, IterationShape::new(64, 100));
        assert!(long > short);
    }

    #[test]
    fn bigger_vocabulary_costs_more() {
        let small = Embedding::new("e", 1_000, 1024, Stream::Source);
        let large = Embedding::new("e", 36_549, 1024, Stream::Source);
        let shape = IterationShape::new(64, 50);
        assert!(run(&large, shape) > run(&small, shape));
    }

    #[test]
    fn params_are_table_size() {
        let emb = Embedding::new("e", 36_549, 1024, Stream::Target);
        assert_eq!(emb.param_count(), 36_549 * 1024);
    }

    #[test]
    fn forward_and_backward_use_distinct_kernels() {
        let cfg = GpuConfig::vega_fe();
        let mut tuner = AutotuneTable::new();
        let mut ctx = TraceCtx::new(&cfg, &mut tuner);
        let emb = Embedding::new("e", 100, 16, Stream::Source);
        let shape = IterationShape::new(4, 4);
        emb.emit_forward(&shape, &mut ctx);
        emb.emit_backward(&shape, &mut ctx);
        let trace = ctx.into_trace();
        assert_eq!(trace.len(), 2);
        assert_ne!(trace[0].name(), trace[1].name());
    }
}
