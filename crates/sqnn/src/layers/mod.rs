//! The layer zoo: every layer type the paper's networks are built from.
//!
//! | Layer | Scaling with sequence length | Used by |
//! |---|---|---|
//! | [`Dense`] | linear (per-token) or none (per-sample) | all |
//! | [`Embedding`] | linear | GNMT, Transformer |
//! | [`Lstm`] / [`Gru`] | linear, unrolled per step | GNMT / DS2 |
//! | [`Conv2d`] | linear (time axis) or none (fixed) | DS2, CNN |
//! | [`BatchNorm`] | linear | DS2 |
//! | [`Attention`] | quadratic (T_dec · T_enc) | GNMT |
//! | [`SelfAttention`] | quadratic | Transformer |
//! | [`Dropout`] | linear | GNMT, Transformer |
//! | [`SoftmaxCrossEntropy`] | linear (per-token classifier) | GNMT, CNN |
//! | [`CtcLoss`] | linear | DS2 |

mod attention;
mod batchnorm;
mod classifier;
mod conv2d;
mod dense;
mod dropout;
mod embedding;
mod recurrent;

pub use attention::{Attention, SelfAttention};
pub use batchnorm::BatchNorm;
pub use classifier::{CtcLoss, SoftmaxCrossEntropy};
pub use conv2d::{Conv2d, TimeSpec};
pub use dense::{Dense, RowSpec};
pub use dropout::Dropout;
pub use embedding::Embedding;
pub use recurrent::{Gru, Lstm};
