use crate::{IterationShape, Layer, Stream, TraceCtx};

/// Per-token dropout over a `dim`-wide activation tensor.
#[derive(Debug, Clone)]
pub struct Dropout {
    name: String,
    dim: u64,
    stream: Stream,
}

impl Dropout {
    /// Dropout over `dim` features per token of `stream`.
    pub fn new(name: impl Into<String>, dim: u64, stream: Stream) -> Self {
        Dropout {
            name: name.into(),
            dim: dim.max(1),
            stream,
        }
    }
}

impl Layer for Dropout {
    fn name(&self) -> &str {
        &self.name
    }

    fn param_count(&self) -> u64 {
        0
    }

    fn emit_forward(&self, shape: &IterationShape, ctx: &mut TraceCtx<'_>) {
        ctx.emit_dropout(shape.tokens(self.stream) * self.dim);
    }

    fn emit_backward(&self, shape: &IterationShape, ctx: &mut TraceCtx<'_>) {
        // Gradient masked by the stored dropout mask.
        ctx.emit_ew("dropout_bwd", shape.tokens(self.stream) * self.dim, 1.0, 2);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::{AutotuneTable, GpuConfig};

    #[test]
    fn emits_one_kernel_each_way_and_no_params() {
        let cfg = GpuConfig::vega_fe();
        let mut tuner = AutotuneTable::new();
        let mut ctx = TraceCtx::new(&cfg, &mut tuner);
        let d = Dropout::new("drop", 1024, Stream::Source);
        let shape = IterationShape::new(64, 20);
        d.emit_forward(&shape, &mut ctx);
        d.emit_backward(&shape, &mut ctx);
        assert_eq!(ctx.len(), 2);
        assert_eq!(d.param_count(), 0);
    }
}
