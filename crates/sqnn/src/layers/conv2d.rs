use gpu_sim::conv::{ConvPass, ConvShape};

use crate::{IterationShape, Layer, TraceCtx};

/// How a convolution's time (width) axis relates to the iteration shape.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TimeSpec {
    /// A fixed width — CNN-style image inputs, independent of sequence
    /// length (the homogeneous-iteration case of the paper's Fig. 3).
    Fixed(u64),
    /// Width = `scale · src_len` — DS2's spectrogram front-end, where the
    /// time axis carries the sequence length.
    PerSourceStep(u64),
    /// Width = `scale · dst_len` — decoder-side convolutions (ConvS2S).
    PerTargetStep(u64),
}

/// A 2-D convolution layer with bias and optional fused activation,
/// lowered to implicit GEMM on the device.
#[derive(Debug, Clone)]
pub struct Conv2d {
    name: String,
    in_c: u64,
    out_c: u64,
    in_h: u64,
    kh: u64,
    kw: u64,
    stride_h: u64,
    stride_w: u64,
    time: TimeSpec,
    activation: Option<&'static str>,
}

impl Conv2d {
    /// Create a convolution layer.
    ///
    /// `in_h` is the fixed spatial height (e.g. frequency bins); the width
    /// comes from `time` at emission.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        name: impl Into<String>,
        in_c: u64,
        out_c: u64,
        in_h: u64,
        (kh, kw): (u64, u64),
        (stride_h, stride_w): (u64, u64),
        time: TimeSpec,
    ) -> Self {
        Conv2d {
            name: name.into(),
            in_c: in_c.max(1),
            out_c: out_c.max(1),
            in_h: in_h.max(1),
            kh: kh.max(1),
            kw: kw.max(1),
            stride_h: stride_h.max(1),
            stride_w: stride_w.max(1),
            time,
            activation: None,
        }
    }

    /// Fuse an element-wise activation (e.g. `"hardtanh"` for DS2).
    pub fn with_activation(mut self, op: &'static str) -> Self {
        self.activation = Some(op);
        self
    }

    /// The concrete convolution problem for an iteration shape.
    pub fn shape_for(&self, shape: &IterationShape) -> ConvShape {
        let in_w = match self.time {
            TimeSpec::Fixed(w) => w,
            TimeSpec::PerSourceStep(scale) => scale * u64::from(shape.src_len),
            TimeSpec::PerTargetStep(scale) => scale * u64::from(shape.dst_len),
        };
        ConvShape {
            batch: u64::from(shape.batch),
            in_c: self.in_c,
            out_c: self.out_c,
            in_h: self.in_h,
            in_w: in_w.max(1),
            kh: self.kh,
            kw: self.kw,
            stride_h: self.stride_h,
            stride_w: self.stride_w,
        }
    }

    /// Output height under SAME padding (for stacking).
    pub fn out_h(&self) -> u64 {
        self.in_h.div_ceil(self.stride_h)
    }

    fn out_elems(&self, shape: &IterationShape) -> u64 {
        let s = self.shape_for(shape);
        s.batch * s.out_c * s.out_h() * s.out_w()
    }
}

impl Layer for Conv2d {
    fn name(&self) -> &str {
        &self.name
    }

    fn param_count(&self) -> u64 {
        self.out_c * self.in_c * self.kh * self.kw + self.out_c
    }

    fn emit_forward(&self, shape: &IterationShape, ctx: &mut TraceCtx<'_>) {
        let conv = self.shape_for(shape);
        ctx.emit_conv(&conv, ConvPass::Forward);
        let elems = self.out_elems(shape);
        ctx.emit_ew("bias_add", elems, 1.0, 2);
        if let Some(op) = self.activation {
            ctx.emit_ew(op, elems, 2.0, 1);
        }
    }

    fn emit_backward(&self, shape: &IterationShape, ctx: &mut TraceCtx<'_>) {
        let conv = self.shape_for(shape);
        let elems = self.out_elems(shape);
        if let Some(op) = self.activation {
            ctx.emit_ew(&format!("{op}_bwd"), elems, 2.0, 2);
        }
        ctx.emit_conv(&conv, ConvPass::BackwardData);
        ctx.emit_conv(&conv, ConvPass::BackwardWeights);
        ctx.emit_reduce("bias_grad", self.out_c, elems / self.out_c.max(1));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::{AutotuneTable, GpuConfig, KernelDesc};

    fn ds2_conv1() -> Conv2d {
        Conv2d::new(
            "conv1",
            1,
            32,
            161,
            (41, 11),
            (2, 2),
            TimeSpec::PerSourceStep(2),
        )
        .with_activation("hardtanh")
    }

    fn trace(layer: &Conv2d, shape: IterationShape, backward: bool) -> Vec<KernelDesc> {
        let cfg = GpuConfig::vega_fe();
        let mut tuner = AutotuneTable::new();
        let mut ctx = TraceCtx::new(&cfg, &mut tuner);
        if backward {
            layer.emit_backward(&shape, &mut ctx);
        } else {
            layer.emit_forward(&shape, &mut ctx);
        }
        ctx.into_trace()
    }

    #[test]
    fn ds2_front_end_halves_time_axis() {
        // SL = GRU steps: the conv consumes 2·SL frames and its stride-2
        // output matches SL steps.
        let conv = ds2_conv1();
        let s = conv.shape_for(&IterationShape::new(64, 402));
        assert_eq!(s.in_w, 804);
        assert_eq!(s.out_w(), 402);
        assert_eq!(s.out_h(), 81);
    }

    #[test]
    fn fixed_time_is_sl_independent() {
        let conv = Conv2d::new("c", 3, 64, 224, (3, 3), (1, 1), TimeSpec::Fixed(224));
        let a = trace(&conv, IterationShape::new(32, 10), false);
        let b = trace(&conv, IterationShape::new(32, 200), false);
        assert_eq!(a, b);
    }

    #[test]
    fn per_step_time_scales_flops() {
        let conv = ds2_conv1();
        let short: f64 = trace(&conv, IterationShape::new(64, 100), false)
            .iter()
            .map(|k| k.flops())
            .sum();
        let long: f64 = trace(&conv, IterationShape::new(64, 400), false)
            .iter()
            .map(|k| k.flops())
            .sum();
        assert!(
            (long / short - 4.0).abs() < 0.05,
            "ratio = {}",
            long / short
        );
    }

    #[test]
    fn backward_emits_two_conv_passes() {
        let conv = ds2_conv1();
        let bwd = trace(&conv, IterationShape::new(8, 50), true);
        let conv_kernels = bwd.iter().filter(|k| k.name().starts_with("conv_")).count();
        assert_eq!(conv_kernels, 2);
    }

    #[test]
    fn param_count_matches_conv_shape() {
        let conv = ds2_conv1();
        let s = conv.shape_for(&IterationShape::new(1, 1));
        assert_eq!(conv.param_count(), s.param_count());
    }
}
