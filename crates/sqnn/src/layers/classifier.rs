use crate::{IterationShape, Layer, Stream, TraceCtx};

/// The output classifier: a projection onto the vocabulary followed by
/// softmax and cross-entropy loss.
///
/// This layer produces the GEMMs of the paper's Table I — forward
/// `M = vocab, K = hidden, N = batch·T` and backward-data
/// `M = hidden, K = vocab, N = batch·T` — and, through the vocabulary
/// width, the bulk of the sequence-length-*linear* non-recurrent cost.
#[derive(Debug, Clone)]
pub struct SoftmaxCrossEntropy {
    name: String,
    hidden: u64,
    vocab: u64,
    rows: Rows,
}

#[derive(Debug, Clone, Copy)]
enum Rows {
    PerToken(Stream),
    PerSample,
}

impl SoftmaxCrossEntropy {
    /// A per-token classifier over `stream` (SQNN case).
    pub fn new(name: impl Into<String>, hidden: u64, vocab: u64, stream: Stream) -> Self {
        SoftmaxCrossEntropy {
            name: name.into(),
            hidden: hidden.max(1),
            vocab: vocab.max(2),
            rows: Rows::PerToken(stream),
        }
    }

    /// A per-sample classifier (CNN case: one label per image).
    pub fn per_sample(name: impl Into<String>, hidden: u64, classes: u64) -> Self {
        SoftmaxCrossEntropy {
            name: name.into(),
            hidden: hidden.max(1),
            vocab: classes.max(2),
            rows: Rows::PerSample,
        }
    }

    fn rows(&self, shape: &IterationShape) -> u64 {
        match self.rows {
            Rows::PerToken(stream) => shape.tokens(stream),
            Rows::PerSample => u64::from(shape.batch),
        }
    }

    /// Vocabulary (class) count.
    pub fn vocab(&self) -> u64 {
        self.vocab
    }
}

impl Layer for SoftmaxCrossEntropy {
    fn name(&self) -> &str {
        &self.name
    }

    fn param_count(&self) -> u64 {
        self.hidden * self.vocab + self.vocab
    }

    fn emit_forward(&self, shape: &IterationShape, ctx: &mut TraceCtx<'_>) {
        let rows = self.rows(shape);
        // Logits: the Table I forward GEMM.
        ctx.emit_gemm("nn", self.vocab, self.hidden, rows);
        ctx.emit_ew("bias_add", rows * self.vocab, 1.0, 2);
        ctx.emit_softmax(rows, self.vocab);
        // Per-token negative log-likelihood, reduced to a scalar.
        ctx.emit_reduce("ce_loss", 1, rows);
    }

    fn emit_backward(&self, shape: &IterationShape, ctx: &mut TraceCtx<'_>) {
        let rows = self.rows(shape);
        // dLogits = softmax − one_hot(target).
        ctx.emit_ew("softmax_ce_grad", rows * self.vocab, 2.0, 2);
        // The Table I backward-data GEMM: M = hidden, K = vocab.
        ctx.emit_gemm("nt", self.hidden, self.vocab, rows);
        // Weight and bias gradients.
        ctx.emit_gemm("tn", self.vocab, rows, self.hidden);
        ctx.emit_reduce("bias_grad", self.vocab, rows);
    }
}

/// Connectionist Temporal Classification loss over per-step class
/// posteriors — DeepSpeech2's training objective.
///
/// The forward/backward (α/β) lattice sweeps scale linearly with the
/// number of time steps.
#[derive(Debug, Clone)]
pub struct CtcLoss {
    name: String,
    classes: u64,
    stream: Stream,
}

impl CtcLoss {
    /// CTC over `classes` output symbols (including blank) on `stream`.
    pub fn new(name: impl Into<String>, classes: u64, stream: Stream) -> Self {
        CtcLoss {
            name: name.into(),
            classes: classes.max(2),
            stream,
        }
    }
}

impl Layer for CtcLoss {
    fn name(&self) -> &str {
        &self.name
    }

    fn param_count(&self) -> u64 {
        0
    }

    fn emit_forward(&self, shape: &IterationShape, ctx: &mut TraceCtx<'_>) {
        let t = u64::from(shape.len_of(self.stream));
        let b = u64::from(shape.batch);
        ctx.emit_softmax(b * t, self.classes);
        // α and β lattice sweeps: O(B · T · labels), labels ≈ T/2.
        ctx.emit_reduce("ctc_alpha", b, t * self.classes);
        ctx.emit_reduce("ctc_beta", b, t * self.classes);
    }

    fn emit_backward(&self, shape: &IterationShape, ctx: &mut TraceCtx<'_>) {
        let t = u64::from(shape.len_of(self.stream));
        let b = u64::from(shape.batch);
        ctx.emit_ew("ctc_grad", b * t * self.classes, 3.0, 3);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::{AutotuneTable, GpuConfig, KernelDesc};

    fn trace(layer: &dyn Layer, shape: IterationShape) -> Vec<KernelDesc> {
        let cfg = GpuConfig::vega_fe();
        let mut tuner = AutotuneTable::new();
        let mut ctx = TraceCtx::new(&cfg, &mut tuner);
        layer.emit_forward(&shape, &mut ctx);
        layer.emit_backward(&shape, &mut ctx);
        ctx.into_trace()
    }

    #[test]
    fn ds2_classifier_pairs_with_table1() {
        // DS2's FC classifier is a Dense(1600 → 29); this layer adds its
        // softmax/CE. Verify the CE classifier reproduces GNMT Table I.
        let cls = SoftmaxCrossEntropy::new("cls", 1024, 36_549, Stream::Target);
        let t = trace(&cls, IterationShape::new(64, 94));
        let fwd_gemm = t.iter().find(|k| k.name().contains("_nn_")).unwrap();
        assert_eq!(fwd_gemm.flops(), 2.0 * 36_549.0 * 1024.0 * 6016.0);
        let vocab_softmax = t.iter().find(|k| k.name().starts_with("softmax")).unwrap();
        assert_eq!(vocab_softmax.name(), "softmax_2pass"); // 36549-wide rows
    }

    #[test]
    fn per_sample_classifier_ignores_sl() {
        let cls = SoftmaxCrossEntropy::per_sample("head", 512, 1000);
        let a = trace(&cls, IterationShape::new(32, 7));
        let b = trace(&cls, IterationShape::new(32, 177));
        assert_eq!(a, b);
    }

    #[test]
    fn ctc_scales_linearly_with_t() {
        let ctc = CtcLoss::new("ctc", 29, Stream::Source);
        let flops = |sl: u32| -> f64 {
            trace(&ctc, IterationShape::new(64, sl))
                .iter()
                .map(|k| k.flops())
                .sum()
        };
        let ratio = flops(200) / flops(100);
        assert!((1.8..2.2).contains(&ratio), "ratio = {ratio}");
    }

    #[test]
    fn ctc_has_no_parameters() {
        assert_eq!(CtcLoss::new("ctc", 29, Stream::Source).param_count(), 0);
    }

    #[test]
    fn classifier_params_count_weights_and_bias() {
        let cls = SoftmaxCrossEntropy::new("c", 1600, 29, Stream::Source);
        assert_eq!(cls.param_count(), 1600 * 29 + 29);
    }
}
