use crate::{IterationShape, Layer, Stream, TraceCtx};

/// What a [`Dense`] layer's GEMM rows range over.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RowSpec {
    /// One row per token of the given stream (`rows = batch · seq_len`) —
    /// the classifier/projection case whose GEMM shapes the paper's
    /// Table I reports.
    PerToken(Stream),
    /// One row per sample (`rows = batch`) — CNN-style heads.
    PerSample,
}

impl RowSpec {
    fn rows(self, shape: &IterationShape) -> u64 {
        match self {
            RowSpec::PerToken(stream) => shape.tokens(stream),
            RowSpec::PerSample => u64::from(shape.batch),
        }
    }
}

/// A fully connected layer `Y[out × rows] = W[out × in] · X[in × rows]`
/// with bias and optional fused activation.
#[derive(Debug, Clone)]
pub struct Dense {
    name: String,
    in_features: u64,
    out_features: u64,
    rows: RowSpec,
    activation: Option<&'static str>,
}

impl Dense {
    /// Create a dense layer.
    pub fn new(
        name: impl Into<String>,
        in_features: u64,
        out_features: u64,
        rows: RowSpec,
    ) -> Self {
        Dense {
            name: name.into(),
            in_features: in_features.max(1),
            out_features: out_features.max(1),
            rows,
            activation: None,
        }
    }

    /// Fuse an element-wise activation (by op name, e.g. `"relu"`).
    pub fn with_activation(mut self, op: &'static str) -> Self {
        self.activation = Some(op);
        self
    }

    /// Input feature count.
    pub fn in_features(&self) -> u64 {
        self.in_features
    }

    /// Output feature count.
    pub fn out_features(&self) -> u64 {
        self.out_features
    }
}

impl Layer for Dense {
    fn name(&self) -> &str {
        &self.name
    }

    fn param_count(&self) -> u64 {
        self.in_features * self.out_features + self.out_features
    }

    fn emit_forward(&self, shape: &IterationShape, ctx: &mut TraceCtx<'_>) {
        let rows = self.rows.rows(shape);
        ctx.emit_gemm("nn", self.out_features, self.in_features, rows);
        ctx.emit_ew("bias_add", rows * self.out_features, 1.0, 2);
        if let Some(op) = self.activation {
            ctx.emit_ew(op, rows * self.out_features, 2.0, 1);
        }
    }

    fn emit_backward(&self, shape: &IterationShape, ctx: &mut TraceCtx<'_>) {
        let rows = self.rows.rows(shape);
        if let Some(op) = self.activation {
            // d/dx of the activation, fused with the incoming gradient.
            ctx.emit_ew(&format!("{op}_bwd"), rows * self.out_features, 2.0, 2);
        }
        // dX = Wᵀ · dY
        ctx.emit_gemm("nt", self.in_features, self.out_features, rows);
        // dW = dY · Xᵀ
        ctx.emit_gemm("tn", self.out_features, rows, self.in_features);
        // db = row-sum of dY
        ctx.emit_reduce("bias_grad", self.out_features, rows);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::{AutotuneTable, GpuConfig, KernelKind};

    fn trace_of(layer: &Dense, shape: IterationShape, backward: bool) -> Vec<gpu_sim::KernelDesc> {
        let cfg = GpuConfig::vega_fe();
        let mut tuner = AutotuneTable::new();
        let mut ctx = TraceCtx::new(&cfg, &mut tuner);
        if backward {
            layer.emit_backward(&shape, &mut ctx);
        } else {
            layer.emit_forward(&shape, &mut ctx);
        }
        ctx.into_trace()
    }

    #[test]
    fn gnmt_classifier_matches_table1() {
        // Table I (GNMT): GEMM-a is M=36549, K=1024, N = 64·T.
        let classifier = Dense::new("cls", 1024, 36_549, RowSpec::PerToken(Stream::Target));
        let shape = IterationShape::new(64, 94);
        let fwd = trace_of(&classifier, shape, false);
        let gemm = &fwd[0];
        assert_eq!(gemm.kind(), KernelKind::Gemm);
        let expected = 2.0 * 36_549.0 * 1024.0 * (64.0 * 94.0);
        assert!((gemm.flops() - expected).abs() < 1.0);
        // GEMM-b is the backward-data GEMM: M=1024, K=36549, N = 64·T.
        let bwd = trace_of(&classifier, shape, true);
        let dgrad = bwd.iter().find(|k| k.name().contains("_nt_")).unwrap();
        assert!((dgrad.flops() - expected).abs() < 1.0);
    }

    #[test]
    fn per_sample_rows_ignore_sequence_length() {
        let head = Dense::new("head", 256, 10, RowSpec::PerSample);
        let a = trace_of(&head, IterationShape::new(64, 10), false);
        let b = trace_of(&head, IterationShape::new(64, 200), false);
        assert_eq!(a, b);
    }

    #[test]
    fn per_token_rows_scale_with_sequence_length() {
        let proj = Dense::new("proj", 128, 128, RowSpec::PerToken(Stream::Source));
        let short = trace_of(&proj, IterationShape::new(8, 10), false);
        let long = trace_of(&proj, IterationShape::new(8, 100), false);
        assert!(long[0].flops() > short[0].flops());
    }

    #[test]
    fn activation_adds_kernels_both_ways() {
        let plain = Dense::new("p", 64, 64, RowSpec::PerSample);
        let act = Dense::new("a", 64, 64, RowSpec::PerSample).with_activation("relu");
        let shape = IterationShape::new(4, 4);
        assert_eq!(
            trace_of(&act, shape, false).len(),
            trace_of(&plain, shape, false).len() + 1
        );
        assert_eq!(
            trace_of(&act, shape, true).len(),
            trace_of(&plain, shape, true).len() + 1
        );
    }

    #[test]
    fn param_count_includes_bias() {
        let d = Dense::new("d", 100, 50, RowSpec::PerSample);
        assert_eq!(d.param_count(), 100 * 50 + 50);
    }

    #[test]
    fn backward_has_roughly_twice_forward_flops() {
        let d = Dense::new("d", 512, 512, RowSpec::PerToken(Stream::Source));
        let shape = IterationShape::new(32, 20);
        let f: f64 = trace_of(&d, shape, false).iter().map(|k| k.flops()).sum();
        let b: f64 = trace_of(&d, shape, true).iter().map(|k| k.flops()).sum();
        let ratio = b / f;
        assert!((1.8..2.2).contains(&ratio), "ratio = {ratio}");
    }
}
