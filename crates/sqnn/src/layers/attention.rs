//! Attention layers: GNMT's encoder–decoder attention and the
//! Transformer's multi-head self-attention (the Section VII-B extension).
//!
//! Attention processes *whole sequences* — its score matrix is
//! `T_dec × T_enc` — so its cost grows quadratically with sequence length
//! while recurrent layers grow linearly. This changing mix is the paper's
//! key observation 1 (the proportion of operations varies with SL).

use crate::{IterationShape, Layer, Stream, TraceCtx};

/// GNMT-style encoder–decoder attention (Luong general form): for each
/// decoder step, score all encoder states, normalize, and blend a context
/// vector.
#[derive(Debug, Clone)]
pub struct Attention {
    name: String,
    hidden: u64,
}

impl Attention {
    /// Attention over `hidden`-wide encoder/decoder states.
    pub fn new(name: impl Into<String>, hidden: u64) -> Self {
        Attention {
            name: name.into(),
            hidden: hidden.max(1),
        }
    }
}

impl Layer for Attention {
    fn name(&self) -> &str {
        &self.name
    }

    fn param_count(&self) -> u64 {
        // W_a [H×H] plus the context-combination W_c [2H×H].
        3 * self.hidden * self.hidden
    }

    fn emit_forward(&self, shape: &IterationShape, ctx: &mut TraceCtx<'_>) {
        let t_enc = u64::from(shape.src_len);
        let t_dec = u64::from(shape.dst_len);
        let b = u64::from(shape.batch);
        let h = self.hidden;
        for _step in 0..t_dec {
            // Query transform: W_a · h_dec.
            ctx.emit_gemm("nn", h, h, b);
            // Scores against all encoder states (batched): [T_enc × H]·[H × 1] per sample.
            ctx.emit_gemm("bnt", t_enc, h, b);
            // Normalize over encoder positions.
            ctx.emit_softmax(b, t_enc);
            // Context: α-weighted sum of encoder states (batched).
            ctx.emit_gemm("bnn", h, t_enc, b);
            // Combine [c; h] and squash.
            ctx.emit_gemm("nn", h, 2 * h, b);
            ctx.emit_ew("tanh", b * h, 4.0, 1);
        }
    }

    fn emit_backward(&self, shape: &IterationShape, ctx: &mut TraceCtx<'_>) {
        let t_enc = u64::from(shape.src_len);
        let t_dec = u64::from(shape.dst_len);
        let b = u64::from(shape.batch);
        let h = self.hidden;
        for _step in 0..t_dec {
            ctx.emit_ew("tanh_bwd", b * h, 2.0, 2);
            // Combine gradients (data + weights).
            ctx.emit_gemm("nt", 2 * h, h, b);
            ctx.emit_gemm("tn", h, b, 2 * h);
            // Context backward through the α-blend.
            ctx.emit_gemm("bnt", t_enc, h, b);
            ctx.emit_gemm("bnn", h, t_enc, b);
            // Softmax backward over encoder positions.
            ctx.emit_ew("softmax_bwd", b * t_enc, 4.0, 2);
            // Score and query-transform gradients.
            ctx.emit_gemm("tn", h, b, h);
            ctx.emit_gemm("nt", h, h, b);
        }
    }
}

/// Multi-head self-attention (plus output projection), the core of the
/// Transformer layer used to demonstrate SeqPoint's applicability beyond
/// RNNs (paper Section VII-B).
#[derive(Debug, Clone)]
pub struct SelfAttention {
    name: String,
    hidden: u64,
    heads: u64,
    stream: Stream,
}

impl SelfAttention {
    /// Self-attention with `heads` heads over `hidden`-wide tokens of
    /// `stream`.
    pub fn new(name: impl Into<String>, hidden: u64, heads: u64, stream: Stream) -> Self {
        SelfAttention {
            name: name.into(),
            hidden: hidden.max(1),
            heads: heads.clamp(1, hidden.max(1)),
            stream,
        }
    }
}

impl Layer for SelfAttention {
    fn name(&self) -> &str {
        &self.name
    }

    fn param_count(&self) -> u64 {
        // Q, K, V, and output projections.
        4 * self.hidden * self.hidden + 4 * self.hidden
    }

    fn emit_forward(&self, shape: &IterationShape, ctx: &mut TraceCtx<'_>) {
        let t = u64::from(shape.len_of(self.stream));
        let b = u64::from(shape.batch);
        let h = self.hidden;
        let tokens = b * t;
        // Fused QKV projection.
        ctx.emit_gemm("nn", 3 * h, h, tokens);
        // Scores: per head, [T × d]·[d × T], batched over B·heads (the N
        // dimension carries the batch of T-wide query rows).
        ctx.emit_gemm("bnt", t, h / self.heads, b * self.heads * t);
        // Softmax over keys for every (sample, head, query) row.
        ctx.emit_softmax(b * self.heads * t, t);
        // Context: scores · V.
        ctx.emit_gemm("bnn", h / self.heads, t, b * self.heads * t);
        // Output projection.
        ctx.emit_gemm("nn", h, h, tokens);
    }

    fn emit_backward(&self, shape: &IterationShape, ctx: &mut TraceCtx<'_>) {
        let t = u64::from(shape.len_of(self.stream));
        let b = u64::from(shape.batch);
        let h = self.hidden;
        let tokens = b * t;
        ctx.emit_gemm("nt", h, h, tokens);
        ctx.emit_gemm("tn", h, tokens, h);
        ctx.emit_gemm("bnt", t, h / self.heads, b * self.heads * t);
        ctx.emit_ew("softmax_bwd", b * self.heads * t * t, 4.0, 2);
        ctx.emit_gemm("bnn", h / self.heads, t, b * self.heads * t);
        ctx.emit_gemm("nt", h, 3 * h, tokens);
        ctx.emit_gemm("tn", 3 * h, tokens, h);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::{AutotuneTable, GpuConfig, KernelDesc};

    fn forward(layer: &dyn Layer, shape: IterationShape) -> Vec<KernelDesc> {
        let cfg = GpuConfig::vega_fe();
        let mut tuner = AutotuneTable::new();
        let mut ctx = TraceCtx::new(&cfg, &mut tuner);
        layer.emit_forward(&shape, &mut ctx);
        ctx.into_trace()
    }

    #[test]
    fn attention_cost_is_superlinear_in_sl() {
        let attn = Attention::new("attn", 1024);
        let flops = |sl: u32| -> f64 {
            forward(&attn, IterationShape::new(64, sl))
                .iter()
                .map(|k| k.flops())
                .sum()
        };
        // At small SL the per-step projections (linear term) dominate, but
        // the T_dec·T_enc score/context terms make growth superlinear: a
        // 4x SL increase must cost strictly more than 4x.
        let ratio = flops(400) / flops(100);
        assert!(ratio > 4.2, "ratio = {ratio}");
    }

    #[test]
    fn attention_unrolls_per_decoder_step() {
        let attn = Attention::new("attn", 256);
        let t = forward(&attn, IterationShape::with_lengths(8, 30, 5));
        assert_eq!(t.len(), 6 * 5); // 6 kernels per decoder step
    }

    #[test]
    fn attention_softmax_width_tracks_encoder_len() {
        let attn = Attention::new("attn", 256);
        let narrow = forward(&attn, IterationShape::with_lengths(8, 100, 1));
        let wide = forward(&attn, IterationShape::with_lengths(8, 2000, 1));
        let name_of = |t: &[KernelDesc]| {
            t.iter()
                .find(|k| k.name().starts_with("softmax"))
                .unwrap()
                .name()
                .to_owned()
        };
        assert_ne!(name_of(&narrow), name_of(&wide));
    }

    #[test]
    fn self_attention_is_superlinear() {
        let sa = SelfAttention::new("sa", 512, 8, Stream::Source);
        let flops = |sl: u32| -> f64 {
            forward(&sa, IterationShape::new(16, sl))
                .iter()
                .map(|k| k.flops())
                .sum()
        };
        // The score/context terms are quadratic in SL; with the linear
        // QKV/output projections mixed in, 4x SL must cost > 4.3x.
        let ratio = flops(512) / flops(128);
        assert!(ratio > 4.3, "ratio = {ratio}");
    }

    #[test]
    fn param_counts() {
        assert_eq!(Attention::new("a", 100).param_count(), 30_000);
        assert_eq!(
            SelfAttention::new("s", 100, 4, Stream::Source).param_count(),
            40_400
        );
    }
}
