//! Recurrent layers: LSTM and GRU, unidirectional or bidirectional.
//!
//! These are the layers whose unrolling makes SQNN iterations
//! heterogeneous: the per-step recurrent GEMM and gate kernels are emitted
//! `seq_len` times, so kernel count and runtime scale with the input
//! sequence length (the paper's Fig. 3 and key observation 1).
//!
//! The emission follows the cuDNN/MIOpen RNN decomposition: the
//! input-to-hidden transform of *all* steps is batched into one large GEMM
//! (`N = batch·T`), while the hidden-to-hidden transform is a per-step
//! GEMM (`N = batch`) — which is exactly why SQNN iterations mix a few
//! large shape-varying GEMMs with many small fixed-shape ones.

use crate::{IterationShape, Layer, Stream, TraceCtx};

/// Shared machinery for gated recurrent layers.
#[derive(Debug, Clone)]
struct RecurrentCore {
    name: String,
    gate_label: &'static str,
    gates: u64,
    input: u64,
    hidden: u64,
    bidirectional: bool,
    stream: Stream,
}

impl RecurrentCore {
    fn directions(&self) -> u64 {
        if self.bidirectional {
            2
        } else {
            1
        }
    }

    fn param_count(&self) -> u64 {
        // Per direction: W_ih [gates·H × E], W_hh [gates·H × H], biases.
        self.directions()
            * (self.gates * self.hidden * (self.input + self.hidden) + 2 * self.gates * self.hidden)
    }

    fn emit_forward(&self, shape: &IterationShape, ctx: &mut TraceCtx<'_>) {
        let t = u64::from(shape.len_of(self.stream));
        let b = u64::from(shape.batch);
        let gh = self.gates * self.hidden;
        for _dir in 0..self.directions() {
            // Input transform for all steps at once: [gh × E] · [E × B·T].
            ctx.emit_gemm("nn", gh, self.input, b * t);
            for _step in 0..t {
                // Recurrent transform: [gh × H] · [H × B].
                ctx.emit_gemm("nn", gh, self.hidden, b);
                // Gate math (sigmoid/tanh) over the gate pre-activations.
                ctx.emit_ew(self.gate_label, b * gh, 6.0, 2);
                // State update (cell/hidden blend).
                ctx.emit_ew("state_update", b * self.hidden, 4.0, 3);
            }
        }
        if self.bidirectional {
            // Concatenate forward/backward hidden sequences.
            ctx.emit_concat(b * t * 2 * self.hidden * 4);
        }
    }

    fn emit_backward(&self, shape: &IterationShape, ctx: &mut TraceCtx<'_>) {
        let t = u64::from(shape.len_of(self.stream));
        let b = u64::from(shape.batch);
        let gh = self.gates * self.hidden;
        for _dir in 0..self.directions() {
            for _step in 0..t {
                // Gate derivative.
                ctx.emit_ew(&format!("{}_bwd", self.gate_label), b * gh, 8.0, 3);
                // dh_{t-1} += W_hhᵀ · dgates_t.
                ctx.emit_gemm("nt", self.hidden, gh, b);
            }
            // Weight gradients, batched over time:
            // dW_hh = dGates · Hᵀ, dW_ih = dGates · Xᵀ.
            ctx.emit_gemm("tn", gh, b * t, self.hidden);
            ctx.emit_gemm("tn", gh, b * t, self.input);
            // dX = W_ihᵀ · dGates for all steps.
            ctx.emit_gemm("nt", self.input, gh, b * t);
            // Bias gradients.
            ctx.emit_reduce("bias_grad", gh, b * t);
        }
    }
}

/// A Long Short-Term Memory layer (4 gates), as stacked in GNMT's encoder
/// and decoder.
#[derive(Debug, Clone)]
pub struct Lstm {
    core: RecurrentCore,
}

impl Lstm {
    /// A unidirectional LSTM over `stream` with the given input and hidden
    /// widths.
    pub fn new(name: impl Into<String>, input: u64, hidden: u64, stream: Stream) -> Self {
        Lstm {
            core: RecurrentCore {
                name: name.into(),
                gate_label: "lstm_gates",
                gates: 4,
                input: input.max(1),
                hidden: hidden.max(1),
                bidirectional: false,
                stream,
            },
        }
    }

    /// Make the layer bidirectional (GNMT's first encoder layer).
    pub fn bidirectional(mut self) -> Self {
        self.core.bidirectional = true;
        self
    }

    /// Hidden width.
    pub fn hidden(&self) -> u64 {
        self.core.hidden
    }
}

impl Layer for Lstm {
    fn name(&self) -> &str {
        &self.core.name
    }

    fn param_count(&self) -> u64 {
        self.core.param_count()
    }

    fn emit_forward(&self, shape: &IterationShape, ctx: &mut TraceCtx<'_>) {
        self.core.emit_forward(shape, ctx);
    }

    fn emit_backward(&self, shape: &IterationShape, ctx: &mut TraceCtx<'_>) {
        self.core.emit_backward(shape, ctx);
    }
}

/// A Gated Recurrent Unit layer (3 gates), as stacked bidirectionally in
/// DeepSpeech2.
#[derive(Debug, Clone)]
pub struct Gru {
    core: RecurrentCore,
}

impl Gru {
    /// A unidirectional GRU over `stream`.
    pub fn new(name: impl Into<String>, input: u64, hidden: u64, stream: Stream) -> Self {
        Gru {
            core: RecurrentCore {
                name: name.into(),
                gate_label: "gru_gates",
                gates: 3,
                input: input.max(1),
                hidden: hidden.max(1),
                bidirectional: false,
                stream,
            },
        }
    }

    /// Make the layer bidirectional (all five DS2 GRU layers).
    pub fn bidirectional(mut self) -> Self {
        self.core.bidirectional = true;
        self
    }

    /// Hidden width.
    pub fn hidden(&self) -> u64 {
        self.core.hidden
    }
}

impl Layer for Gru {
    fn name(&self) -> &str {
        &self.core.name
    }

    fn param_count(&self) -> u64 {
        self.core.param_count()
    }

    fn emit_forward(&self, shape: &IterationShape, ctx: &mut TraceCtx<'_>) {
        self.core.emit_forward(shape, ctx);
    }

    fn emit_backward(&self, shape: &IterationShape, ctx: &mut TraceCtx<'_>) {
        self.core.emit_backward(shape, ctx);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::{AutotuneTable, GpuConfig, KernelDesc};

    fn forward_trace(layer: &dyn Layer, shape: IterationShape) -> Vec<KernelDesc> {
        let cfg = GpuConfig::vega_fe();
        let mut tuner = AutotuneTable::new();
        let mut ctx = TraceCtx::new(&cfg, &mut tuner);
        layer.emit_forward(&shape, &mut ctx);
        ctx.into_trace()
    }

    fn backward_trace(layer: &dyn Layer, shape: IterationShape) -> Vec<KernelDesc> {
        let cfg = GpuConfig::vega_fe();
        let mut tuner = AutotuneTable::new();
        let mut ctx = TraceCtx::new(&cfg, &mut tuner);
        layer.emit_backward(&shape, &mut ctx);
        ctx.into_trace()
    }

    #[test]
    fn kernel_count_unrolls_with_sequence_length() {
        let lstm = Lstm::new("l", 1024, 1024, Stream::Source);
        let t10 = forward_trace(&lstm, IterationShape::new(64, 10)).len();
        let t20 = forward_trace(&lstm, IterationShape::new(64, 20)).len();
        // 3 kernels per step plus 1 batched input GEMM.
        assert_eq!(t10, 3 * 10 + 1);
        assert_eq!(t20, 3 * 20 + 1);
    }

    #[test]
    fn bidirectional_doubles_work_and_concatenates() {
        let uni = Gru::new("g", 800, 800, Stream::Source);
        let bi = Gru::new("g", 800, 800, Stream::Source).bidirectional();
        let shape = IterationShape::new(64, 10);
        let uni_t = forward_trace(&uni, shape);
        let bi_t = forward_trace(&bi, shape);
        assert_eq!(bi_t.len(), uni_t.len() * 2 + 1);
        assert!(bi_t.last().unwrap().name().starts_with("concat"));
        assert_eq!(bi.param_count(), uni.param_count() * 2);
    }

    #[test]
    fn lstm_has_four_gates_gru_three() {
        // Parameter counts encode the gate multiplicity.
        let lstm = Lstm::new("l", 1000, 1000, Stream::Source);
        let gru = Gru::new("g", 1000, 1000, Stream::Source);
        assert_eq!(lstm.param_count(), 4 * 1000 * 2000 + 8 * 1000);
        assert_eq!(gru.param_count(), 3 * 1000 * 2000 + 6 * 1000);
    }

    #[test]
    fn batched_input_gemm_scales_with_t_and_recurrent_does_not() {
        let lstm = Lstm::new("l", 512, 512, Stream::Source);
        let short = forward_trace(&lstm, IterationShape::new(32, 8));
        let long = forward_trace(&lstm, IterationShape::new(32, 64));
        // First kernel is the batched input GEMM: flops scale with T.
        assert!((long[0].flops() / short[0].flops() - 8.0).abs() < 1e-6);
        // Second kernel is a per-step recurrent GEMM: same shape either way.
        assert_eq!(short[1].flops(), long[1].flops());
    }

    #[test]
    fn backward_flops_about_twice_forward() {
        let lstm = Lstm::new("l", 1024, 1024, Stream::Source);
        let shape = IterationShape::new(64, 25);
        let f: f64 = forward_trace(&lstm, shape).iter().map(|k| k.flops()).sum();
        let b: f64 = backward_trace(&lstm, shape).iter().map(|k| k.flops()).sum();
        let ratio = b / f;
        assert!((1.5..2.5).contains(&ratio), "ratio = {ratio}");
    }

    #[test]
    fn target_stream_layers_follow_dst_len() {
        let dec = Lstm::new("dec", 256, 256, Stream::Target);
        let shape = IterationShape::with_lengths(16, 5, 40);
        let trace = forward_trace(&dec, shape);
        assert_eq!(trace.len(), 3 * 40 + 1);
    }
}
