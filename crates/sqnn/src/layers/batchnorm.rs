use crate::{IterationShape, Layer, Stream, TraceCtx};

/// Batch normalization over per-token activations, as DS2 applies between
/// its convolutional front-end and GRU stack.
#[derive(Debug, Clone)]
pub struct BatchNorm {
    name: String,
    channels: u64,
    elems_per_step: u64,
    stream: Stream,
}

impl BatchNorm {
    /// Normalize `elems_per_step` activations per token of `stream`
    /// across `channels` feature groups.
    pub fn new(
        name: impl Into<String>,
        channels: u64,
        elems_per_step: u64,
        stream: Stream,
    ) -> Self {
        BatchNorm {
            name: name.into(),
            channels: channels.max(1),
            elems_per_step: elems_per_step.max(1),
            stream,
        }
    }
}

impl Layer for BatchNorm {
    fn name(&self) -> &str {
        &self.name
    }

    fn param_count(&self) -> u64 {
        2 * self.channels // scale + shift
    }

    fn emit_forward(&self, shape: &IterationShape, ctx: &mut TraceCtx<'_>) {
        let elems = shape.tokens(self.stream) * self.elems_per_step;
        ctx.emit_batchnorm(elems, self.channels, false);
    }

    fn emit_backward(&self, shape: &IterationShape, ctx: &mut TraceCtx<'_>) {
        let elems = shape.tokens(self.stream) * self.elems_per_step;
        ctx.emit_batchnorm(elems, self.channels, true);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::{AutotuneTable, GpuConfig};

    #[test]
    fn emits_forward_and_backward_kernels() {
        let cfg = GpuConfig::vega_fe();
        let mut tuner = AutotuneTable::new();
        let mut ctx = TraceCtx::new(&cfg, &mut tuner);
        let bn = BatchNorm::new("bn", 32, 32 * 81, Stream::Source);
        let shape = IterationShape::new(64, 100);
        bn.emit_forward(&shape, &mut ctx);
        bn.emit_backward(&shape, &mut ctx);
        let trace = ctx.into_trace();
        assert_eq!(trace.len(), 2);
        assert_eq!(trace[0].name(), "bnorm_fwd");
        assert_eq!(trace[1].name(), "bnorm_bwd");
        assert_eq!(bn.param_count(), 64);
    }

    #[test]
    fn work_scales_with_sequence_length() {
        let cfg = GpuConfig::vega_fe();
        let mut tuner = AutotuneTable::new();
        let bn = BatchNorm::new("bn", 32, 100, Stream::Source);
        let mut short_ctx = TraceCtx::new(&cfg, &mut tuner);
        bn.emit_forward(&IterationShape::new(8, 10), &mut short_ctx);
        let short = short_ctx.into_trace();
        let mut tuner2 = AutotuneTable::new();
        let mut long_ctx = TraceCtx::new(&cfg, &mut tuner2);
        bn.emit_forward(&IterationShape::new(8, 100), &mut long_ctx);
        let long = long_ctx.into_trace();
        assert!(long[0].flops() > short[0].flops());
    }
}
