//! Section VI-F (closing observation) — larger datasets, larger
//! speedups.
//!
//! "Applying SeqPoint to larger datasets such as the LibriSpeech 500
//! hours and WMT16, which we observed to have similar SL ranges to the
//! evaluated shorter datasets, can lead to much higher speedups." The SL
//! *range* (and thus the SeqPoint count) barely grows with dataset size,
//! while the epoch cost grows linearly — so the profiling-reduction
//! factor scales with the dataset.

use gpu_sim::Device;
use seqpoint_core::SeqPointPipeline;
use sqnn_data::{BatchPolicy, Corpus, EpochPlan};
use sqnn_profiler::report::{fmt_f, Table};
use sqnn_profiler::Profiler;

use crate::{Net, Workloads};

/// One dataset's row.
#[derive(Debug, Clone)]
pub struct DatasetRow {
    /// Which network.
    pub net: Net,
    /// Dataset label.
    pub dataset: String,
    /// Samples in the corpus.
    pub samples: usize,
    /// Iterations per epoch.
    pub iterations: usize,
    /// SeqPoints identified.
    pub seqpoints: usize,
    /// Epoch time ÷ serial SeqPoint time.
    pub serial_speedup: f64,
}

/// Result of the larger-datasets experiment.
#[derive(Debug, Clone)]
pub struct LargerDatasets {
    /// Rows in (network, dataset-size) order.
    pub rows: Vec<DatasetRow>,
    /// Rendered table.
    pub table: Table,
}

/// Run the experiment. `dataset_scale` shrinks the large datasets
/// proportionally (1.0 = full size; the `repro` binary uses a reduced
/// scale to keep wall time sensible — the *ratio* between the small and
/// large dataset is preserved either way).
pub fn run(w: &mut Workloads, dataset_scale: f64) -> LargerDatasets {
    let seed = w.scale().seed;
    let base_gnmt = (w.scale().gnmt_sentences as f64 / 133_000.0).min(1.0);
    let base_ds2 = (w.scale().ds2_utterances as f64 / 28_539.0).min(1.0);
    let cases: Vec<(Net, String, Corpus, BatchPolicy)> = vec![
        (
            Net::Ds2,
            "librispeech-100h".to_owned(),
            Corpus::sampled(
                "librispeech100-like",
                &Corpus::librispeech_length_model(),
                w.scale().ds2_utterances,
                29,
                seed,
            ),
            BatchPolicy::sorted_first_epoch(64),
        ),
        (
            Net::Ds2,
            "librispeech-500h".to_owned(),
            // Never shrink below 2x the 100h corpus, or the size ratio
            // (the whole point of the comparison) would invert.
            Corpus::librispeech500_like((dataset_scale * base_ds2).max(0.4 * base_ds2), seed),
            BatchPolicy::sorted_first_epoch(64),
        ),
        (
            Net::Gnmt,
            "iwslt15".to_owned(),
            Corpus::iwslt15_like(w.scale().gnmt_sentences, seed),
            BatchPolicy::bucketed(64, 16),
        ),
        (
            Net::Gnmt,
            "wmt16".to_owned(),
            // WMT'16 is ~34x IWSLT'15; keep the same ratio at any scale.
            Corpus::wmt16_like(dataset_scale * base_gnmt, seed),
            BatchPolicy::bucketed(64, 64),
        ),
    ];
    let mut table = Table::new(
        "Section VI-F — larger datasets give larger profiling speedups",
        [
            "network",
            "dataset",
            "samples",
            "iterations",
            "seqpoints",
            "serial speedup",
        ],
    );
    let mut rows = Vec::new();
    for (net, dataset, corpus, policy) in cases {
        let plan = EpochPlan::new(&corpus, policy, seed).expect("corpus is non-empty");
        let device = Device::new(w.config(0).clone());
        let profiler = Profiler::new();
        let profile = profiler
            .profile_epoch(w.network(net), &plan, &device)
            .expect("plan is non-empty");
        let analysis = SeqPointPipeline::with_config(crate::identification_config())
            .run(&profile.to_epoch_log())
            .expect("log converges");
        let sls = analysis.seqpoints().seq_lens();
        let reprofiled =
            profiler.profile_seq_lens(w.network(net), plan.batch_size(), &sls, &device);
        let serial: f64 = reprofiled.iter().map(|p| p.time_s).sum();
        let row = DatasetRow {
            net,
            dataset: dataset.clone(),
            samples: corpus.len(),
            iterations: plan.iterations(),
            seqpoints: sls.len(),
            serial_speedup: profile.total_time_s() / serial,
        };
        table.push_row([
            net.label().to_owned(),
            dataset,
            row.samples.to_string(),
            row.iterations.to_string(),
            row.seqpoints.to_string(),
            format!("{}x", fmt_f(row.serial_speedup, 1)),
        ]);
        rows.push(row);
    }
    LargerDatasets { rows, table }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bigger_datasets_bigger_speedups() {
        let mut w = Workloads::quick();
        let r = run(&mut w, 1.0);
        assert_eq!(r.rows.len(), 4);
        for pair in r.rows.chunks(2) {
            let (small, large) = (&pair[0], &pair[1]);
            assert!(large.samples > small.samples);
            // SL ranges are similar, so the SeqPoint count barely moves …
            assert!(large.seqpoints <= small.seqpoints * 3);
            // … while the speedup grows with the dataset.
            assert!(
                large.serial_speedup > small.serial_speedup * 1.5,
                "{}: {} vs {}",
                large.dataset,
                large.serial_speedup,
                small.serial_speedup
            );
        }
    }
}
