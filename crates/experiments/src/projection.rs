//! Figs. 11–12 — error in projecting total training time.
//!
//! SeqPoints are identified **once on config #1**; every scheme then
//! projects each Table II configuration's total training time from
//! re-profiled iterations only, and is scored against the measured
//! full-epoch total. The paper's headline: SeqPoint geomean error 0.11%
//! (DS2) / 0.53% (GNMT) while single-iteration schemes reach 10–35% and
//! `worst` up to 85%+.

use std::collections::HashMap;

use seqpoint_core::stats::{geomean, relative_error_pct};
use seqpoint_core::SeqPointPipeline;
use sqnn_profiler::report::{fmt_f, Table};

use crate::{Net, Workloads};

/// Per-scheme projection errors across the five configurations.
#[derive(Debug, Clone)]
pub struct SchemeErrors {
    /// Scheme label (`worst`, `frequent`, `median`, `prior`, `seqpoint`).
    pub scheme: String,
    /// Error (%) per configuration (index 0 = config #1).
    pub errors: Vec<f64>,
    /// Geometric mean across configurations.
    pub geomean_pct: f64,
}

/// Result of the Fig. 11 (DS2) or Fig. 12 (GNMT) experiment.
#[derive(Debug, Clone)]
pub struct Projection {
    /// Which network.
    pub net: Net,
    /// Per-scheme error rows, in the paper's legend order (SeqPoint last).
    pub schemes: Vec<SchemeErrors>,
    /// Number of SeqPoints identified.
    pub seqpoint_count: usize,
    /// The `k` the refinement settled on.
    pub seqpoint_k: u32,
    /// Rendered table.
    pub table: Table,
}

impl Projection {
    /// The error row for a scheme label.
    pub fn scheme(&self, label: &str) -> Option<&SchemeErrors> {
        self.schemes.iter().find(|s| s.scheme == label)
    }
}

/// Run the experiment for one network.
pub fn run(w: &mut Workloads, net: Net) -> Projection {
    // 1. Profile one epoch on config #1 and identify SeqPoints.
    let log = w.profile(net, 0).to_epoch_log();
    let analysis = SeqPointPipeline::with_config(crate::identification_config())
        .run(&log)
        .expect("epoch logs are non-empty and defaults converge");
    let seqpoints = analysis.seqpoints().clone();

    // 2. Baseline selections on the same config #1 log.
    let baselines: Vec<_> = crate::paper_baselines(log.len())
        .into_iter()
        .map(|kind| (kind, kind.select(&log).expect("log is non-empty")))
        .collect();

    // 3. The union of SLs any scheme needs re-profiled.
    let mut needed: Vec<u32> = seqpoints.seq_lens();
    for (_, sel) in &baselines {
        needed.extend(sel.unique_seq_lens());
    }
    needed.sort_unstable();
    needed.dedup();

    // 4. Project every configuration from re-profiled iterations only.
    let mut scheme_errors: Vec<SchemeErrors> = baselines
        .iter()
        .map(|(kind, _)| SchemeErrors {
            scheme: kind.label().to_owned(),
            errors: Vec::new(),
            geomean_pct: 0.0,
        })
        .collect();
    scheme_errors.push(SchemeErrors {
        scheme: "seqpoint".to_owned(),
        errors: Vec::new(),
        geomean_pct: 0.0,
    });

    for idx in 0..w.configs().len() {
        let actual = w.profile(net, idx).training_time_s();
        let stats: HashMap<u32, f64> = w.reprofile_seq_lens(net, idx, &needed);
        for (row, (_, sel)) in scheme_errors.iter_mut().zip(&baselines) {
            let pred = sel.project_total_with(|sl| stats[&sl]);
            row.errors.push(relative_error_pct(pred, actual));
        }
        let pred = seqpoints.project_total_with(|sl| stats[&sl]);
        scheme_errors
            .last_mut()
            .expect("seqpoint row exists")
            .errors
            .push(relative_error_pct(pred, actual));
    }
    for row in &mut scheme_errors {
        row.geomean_pct = geomean(row.errors.iter().copied());
    }

    // 5. Render.
    let fig = match net {
        Net::Ds2 => "Fig. 11",
        Net::Gnmt => "Fig. 12",
    };
    let mut table = Table::new(
        format!(
            "{fig} — error (%) in total training-time projections for {}",
            net.label()
        ),
        [
            "scheme", "config#1", "config#2", "config#3", "config#4", "config#5", "geomean",
        ],
    );
    for row in &scheme_errors {
        let mut cells = vec![row.scheme.clone()];
        cells.extend(row.errors.iter().map(|&e| fmt_f(e, 2)));
        cells.push(fmt_f(row.geomean_pct, 2));
        table.push_row(cells);
    }
    Projection {
        net,
        schemes: scheme_errors,
        seqpoint_count: seqpoints.len(),
        seqpoint_k: analysis.k(),
        table,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check(net: Net) {
        let mut w = Workloads::quick();
        let r = run(&mut w, net);
        let seqpoint = r.scheme("seqpoint").unwrap();
        let worst = r.scheme("worst").unwrap();
        let frequent = r.scheme("frequent").unwrap();
        // The paper's headline ordering: SeqPoint ≲ 1% everywhere, far
        // better than the single-iteration schemes, with `worst` the
        // upper bound.
        // Quick scale projects a little looser than the paper's sub-1%
        // (fewer iterations per SL smooth the per-SL means less).
        assert!(
            seqpoint.geomean_pct < 2.5,
            "{}: seqpoint geomean = {}",
            net.label(),
            seqpoint.geomean_pct
        );
        assert!(worst.geomean_pct > 10.0 * seqpoint.geomean_pct.max(0.01));
        assert!(worst.geomean_pct >= frequent.geomean_pct);
        assert!(frequent.geomean_pct > seqpoint.geomean_pct);
        // Few SeqPoints suffice (paper: 8–15 at paper scale; the quick
        // scale can converge with as few as k₀'s non-empty bins).
        assert!(
            r.seqpoint_count >= 4 && r.seqpoint_count <= 40,
            "{}: {} seqpoints",
            net.label(),
            r.seqpoint_count
        );
        assert_eq!(r.table.row_count(), 5);
    }

    #[test]
    fn ds2_projection_ordering_holds() {
        check(Net::Ds2);
    }

    #[test]
    fn gnmt_projection_ordering_holds() {
        check(Net::Gnmt);
    }
}
