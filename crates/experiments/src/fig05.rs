//! Fig. 5 — the types of unique kernels differ based on sequence length.
//!
//! For pairs of iterations at different SLs, the paper breaks the union
//! of unique kernel names into `common`, `only-in-1`, and `only-in-2`
//! and finds up to ~20% of unique kernels present in only one iteration
//! (different GEMM tile variants, vectorization widths, softmax buckets).

use std::collections::BTreeSet;

use gpu_sim::{AutotuneTable, Device};
use sqnn::IterationShape;
use sqnn_profiler::report::Table;

use crate::{Net, Workloads};

/// Kernel-overlap breakdown for one iteration pair.
#[derive(Debug, Clone)]
pub struct OverlapRow {
    /// Which network.
    pub net: Net,
    /// The two sequence lengths compared.
    pub pair: (u32, u32),
    /// Share of the union present in both iterations, percent.
    pub common_pct: f64,
    /// Share present only in the first, percent.
    pub only_in_1_pct: f64,
    /// Share present only in the second, percent.
    pub only_in_2_pct: f64,
}

/// Result of the Fig. 5 experiment.
#[derive(Debug, Clone)]
pub struct Fig05 {
    /// One row per iteration pair.
    pub rows: Vec<OverlapRow>,
    /// Rendered table.
    pub table: Table,
}

fn kernel_names(w: &Workloads, net: Net, sl: u32) -> BTreeSet<String> {
    let device = Device::new(w.config(0).clone());
    let mut tuner = AutotuneTable::new();
    let trace =
        w.network(net)
            .iteration_trace(&IterationShape::new(64, sl), device.config(), &mut tuner);
    device
        .run_trace(&trace)
        .unique_kernels()
        .map(str::to_owned)
        .collect()
}

/// Run the experiment over the paper's style of pairs: two GNMT pairs and
/// two DS2 pairs spanning each network's SL range.
pub fn run(w: &mut Workloads) -> Fig05 {
    let pairs = [
        (Net::Gnmt, (24, 90)),
        (Net::Gnmt, (120, 190)),
        (Net::Ds2, (60, 210)),
        (Net::Ds2, (210, 400)),
    ];
    let mut table = Table::new(
        "Fig. 5 — unique-kernel overlap between iteration pairs (config #1)",
        [
            "network",
            "pair (SLs)",
            "common %",
            "only-in-1 %",
            "only-in-2 %",
        ],
    );
    let mut rows = Vec::new();
    for (net, (a, b)) in pairs {
        let ka = kernel_names(w, net, a);
        let kb = kernel_names(w, net, b);
        let union = ka.union(&kb).count() as f64;
        let common = ka.intersection(&kb).count() as f64;
        let only1 = ka.difference(&kb).count() as f64;
        let only2 = kb.difference(&ka).count() as f64;
        let row = OverlapRow {
            net,
            pair: (a, b),
            common_pct: common / union * 100.0,
            only_in_1_pct: only1 / union * 100.0,
            only_in_2_pct: only2 / union * 100.0,
        };
        table.push_row([
            net.label().to_owned(),
            format!("sl-{a} vs sl-{b}"),
            format!("{:.1}", row.common_pct),
            format!("{:.1}", row.only_in_1_pct),
            format!("{:.1}", row.only_in_2_pct),
        ]);
        rows.push(row);
    }
    Fig05 { rows, table }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn some_kernels_are_exclusive_to_one_iteration() {
        let mut w = Workloads::quick();
        let r = run(&mut w);
        assert_eq!(r.rows.len(), 4);
        for row in &r.rows {
            let sum = row.common_pct + row.only_in_1_pct + row.only_in_2_pct;
            assert!((sum - 100.0).abs() < 1e-9);
            // Most kernels are shared …
            assert!(row.common_pct > 50.0, "common = {}", row.common_pct);
        }
        // … but at least one pair shows exclusive kernels (the paper
        // reports up to ~20%).
        let max_excl = r
            .rows
            .iter()
            .map(|x| x.only_in_1_pct + x.only_in_2_pct)
            .fold(0.0, f64::max);
        assert!(max_excl > 3.0, "max exclusive share = {max_excl}");
    }
}
