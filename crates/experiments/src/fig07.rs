//! Fig. 7 — histogram of SQNN sequence lengths.
//!
//! The per-iteration SL histograms of one epoch: DS2/LibriSpeech-100h is
//! heavily skewed toward short utterances; GNMT/IWSLT'15 decays over
//! 1–200 tokens. These distributions are why "Frequent"/"Median" single
//! iterations misproject, and why DS2's skew accidentally helps "Prior".

use sqnn_profiler::report::Table;

use crate::{Net, Workloads};

/// Histogram of one network's epoch.
#[derive(Debug, Clone)]
pub struct Fig07Net {
    /// Which network.
    pub net: Net,
    /// `(bin_start, bin_end, iteration count)` rows.
    pub bins: Vec<(u32, u32, usize)>,
    /// Number of distinct SLs in the epoch.
    pub unique_sls: usize,
    /// Total iterations in the epoch.
    pub iterations: usize,
}

/// Result of the Fig. 7 experiment.
#[derive(Debug, Clone)]
pub struct Fig07 {
    /// Per-network histograms.
    pub nets: Vec<Fig07Net>,
    /// Rendered table.
    pub table: Table,
}

/// Number of histogram bars (the paper draws ~10).
pub const BINS: u32 = 10;

/// Run the experiment.
pub fn run(w: &mut Workloads) -> Fig07 {
    let mut table = Table::new(
        "Fig. 7 — histogram of per-iteration sequence lengths (one epoch)",
        ["network", "SL range", "iterations"],
    );
    let mut nets = Vec::new();
    for net in Net::both() {
        let freqs = w.plan(net).seq_len_frequencies();
        let lo = freqs.first().map(|&(sl, _)| sl).unwrap_or(0);
        let hi = freqs.last().map(|&(sl, _)| sl).unwrap_or(0);
        let width = ((hi - lo) / BINS + 1).max(1);
        let mut bins = vec![0usize; BINS as usize];
        for &(sl, n) in &freqs {
            let idx = (((sl - lo) / width) as usize).min(bins.len() - 1);
            bins[idx] += n;
        }
        let rows: Vec<(u32, u32, usize)> = bins
            .iter()
            .enumerate()
            .map(|(i, &n)| {
                let start = lo + i as u32 * width;
                (start, (start + width - 1).min(hi), n)
            })
            .collect();
        for &(start, end, n) in &rows {
            table.push_row([
                net.label().to_owned(),
                format!("{start}-{end}"),
                n.to_string(),
            ]);
        }
        nets.push(Fig07Net {
            net,
            bins: rows,
            unique_sls: freqs.len(),
            iterations: w.plan(net).iterations(),
        });
    }
    Fig07 { nets, table }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histograms_have_the_paper_shapes() {
        let mut w = Workloads::quick();
        let r = run(&mut w);
        let ds2 = r.nets.iter().find(|n| n.net == Net::Ds2).unwrap();
        let gnmt = r.nets.iter().find(|n| n.net == Net::Gnmt).unwrap();
        // All iterations are binned.
        for n in &r.nets {
            let total: usize = n.bins.iter().map(|&(_, _, c)| c).sum();
            assert_eq!(total, n.iterations);
        }
        // DS2: first two bins dominate (Fig. 7a's 193/104 spike).
        let ds2_head: usize = ds2.bins[..2].iter().map(|&(_, _, c)| c).sum();
        assert!(ds2_head * 2 > ds2.iterations, "head = {ds2_head}");
        // GNMT: decaying counts across the first few bins (Fig. 7b).
        assert!(gnmt.bins[0].2 >= gnmt.bins[1].2);
        assert!(gnmt.bins[1].2 >= gnmt.bins[2].2);
    }

    #[test]
    fn unique_sls_are_a_large_share_of_iterations() {
        // Section V-A: including all unique SLs can mean up to half of
        // all iterations — the motivation for binning.
        let mut w = Workloads::quick();
        let r = run(&mut w);
        for n in &r.nets {
            assert!(
                n.unique_sls * 20 > n.iterations,
                "{}: unique {} of {}",
                n.net.label(),
                n.unique_sls,
                n.iterations
            );
        }
    }
}
