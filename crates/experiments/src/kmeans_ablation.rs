//! Section VII-C — sophisticated clustering vs simple SL binning.
//!
//! The authors also clustered iterations' execution profiles with k-means
//! and found the simple SL-binning approach "performs as well". We
//! reproduce the comparison: SL binning (SeqPoint), k-means over
//! kernel-kind runtime-share features at the same cluster budget, and the
//! SimPoint-style auto-k front-end, all projecting total training time on
//! the identification configuration and on config #3.

use seqpoint_core::simpoint::{simpoint, SimPointOptions};
use seqpoint_core::stats::relative_error_pct;
use seqpoint_core::{kmeans::kmeans, SeqPointPipeline};
use sqnn_profiler::report::{fmt_f, Table};

use crate::{Net, Workloads};

/// One comparison row.
#[derive(Debug, Clone)]
pub struct AblationRow {
    /// Which network.
    pub net: Net,
    /// Scheme label.
    pub scheme: String,
    /// Representative iterations used.
    pub points: usize,
    /// Self-configuration (config #1) projection error, %.
    pub self_error_pct: f64,
    /// Cross-configuration (config #3) projection error, %.
    pub cross_error_pct: f64,
}

/// Result of the Section VII-C ablation.
#[derive(Debug, Clone)]
pub struct KmeansAblation {
    /// All rows.
    pub rows: Vec<AblationRow>,
    /// Rendered table.
    pub table: Table,
}

/// Run the ablation.
pub fn run(w: &mut Workloads) -> KmeansAblation {
    let mut table = Table::new(
        "Section VII-C — SL binning vs k-means vs SimPoint-style clustering",
        [
            "network",
            "scheme",
            "points",
            "self error %",
            "config#3 error %",
        ],
    );
    let mut rows = Vec::new();
    for net in Net::both() {
        let (log, features, iter_sls): (_, Vec<Vec<f64>>, Vec<u32>) = {
            let profile = w.profile(net, 0);
            let log = profile.to_epoch_log();
            // Feature vectors: kernel-kind runtime shares + normalized
            // runtime (what "execution profile" means in Section VII-C).
            let mut features = profile
                .feature_matrix()
                .expect("workloads profile with kernel detail");
            let max_t = profile
                .iterations()
                .iter()
                .map(|i| i.time_s)
                .fold(0.0, f64::max);
            for (f, it) in features.iter_mut().zip(profile.iterations()) {
                f.push(it.time_s / max_t);
            }
            let sls = profile.iterations().iter().map(|i| i.seq_len).collect();
            (log, features, sls)
        };
        let actual_self = log.actual_total();
        let actual_cross = w.profile(net, 2).training_time_s();

        // Scheme 1: SeqPoint SL binning.
        let analysis = SeqPointPipeline::with_config(crate::identification_config())
            .run(&log)
            .expect("epoch logs are non-empty and defaults converge");
        let set = analysis.seqpoints().clone();
        let k_budget = set.len();
        {
            let stats = w.reprofile_seq_lens(net, 2, &set.seq_lens());
            let cross = set.project_total_with(|sl| stats[&sl]);
            rows.push(AblationRow {
                net,
                scheme: "sl-binning (seqpoint)".to_owned(),
                points: set.len(),
                self_error_pct: analysis.self_error_pct(),
                cross_error_pct: relative_error_pct(cross, actual_cross),
            });
        }

        // Scheme 2: k-means on execution profiles at the same budget.
        {
            let km = kmeans(&features, k_budget.min(features.len()), w.scale().seed)
                .expect("features are non-empty");
            let reps = km.representatives(&features);
            let self_pred: f64 = reps
                .iter()
                .map(|&(idx, wt)| log.records()[idx].stat * wt as f64)
                .sum();
            let rep_sls: Vec<u32> = {
                let mut v: Vec<u32> = reps.iter().map(|&(idx, _)| iter_sls[idx]).collect();
                v.sort_unstable();
                v.dedup();
                v
            };
            let stats = w.reprofile_seq_lens(net, 2, &rep_sls);
            let cross_pred: f64 = reps
                .iter()
                .map(|&(idx, wt)| stats[&iter_sls[idx]] * wt as f64)
                .sum();
            rows.push(AblationRow {
                net,
                scheme: "k-means (profiles)".to_owned(),
                points: reps.len(),
                self_error_pct: relative_error_pct(self_pred, actual_self),
                cross_error_pct: relative_error_pct(cross_pred, actual_cross),
            });
        }

        // Scheme 3: SimPoint-style auto-k.
        {
            let sp = simpoint(
                &features,
                SimPointOptions {
                    max_k: (k_budget * 2).max(10),
                    seed: w.scale().seed,
                    ..SimPointOptions::default()
                },
            )
            .expect("features are non-empty");
            let self_pred = sp.project_total_with(|idx| log.records()[idx].stat);
            let rep_sls: Vec<u32> = {
                let mut v: Vec<u32> = sp
                    .representatives
                    .iter()
                    .map(|&(idx, _)| iter_sls[idx])
                    .collect();
                v.sort_unstable();
                v.dedup();
                v
            };
            let stats = w.reprofile_seq_lens(net, 2, &rep_sls);
            let cross_pred: f64 = sp
                .representatives
                .iter()
                .map(|&(idx, wt)| stats[&iter_sls[idx]] * wt as f64)
                .sum();
            rows.push(AblationRow {
                net,
                scheme: "simpoint (auto-k)".to_owned(),
                points: sp.representatives.len(),
                self_error_pct: relative_error_pct(self_pred, actual_self),
                cross_error_pct: relative_error_pct(cross_pred, actual_cross),
            });
        }
    }
    for r in &rows {
        table.push_row([
            r.net.label().to_owned(),
            r.scheme.clone(),
            r.points.to_string(),
            fmt_f(r.self_error_pct, 3),
            fmt_f(r.cross_error_pct, 3),
        ]);
    }
    KmeansAblation { rows, table }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sl_binning_matches_sophisticated_clustering() {
        let mut w = Workloads::quick();
        let r = run(&mut w);
        assert_eq!(r.rows.len(), 6);
        for net in Net::both() {
            let binning = r
                .rows
                .iter()
                .find(|x| x.net == net && x.scheme.starts_with("sl-binning"))
                .unwrap();
            let km = r
                .rows
                .iter()
                .find(|x| x.net == net && x.scheme.starts_with("k-means"))
                .unwrap();
            // Section VII-C's claim: the simple approach performs as well
            // (within a couple of percentage points either way).
            assert!(
                binning.cross_error_pct <= km.cross_error_pct + 2.0,
                "{}: binning {} vs k-means {}",
                net.label(),
                binning.cross_error_pct,
                km.cross_error_pct
            );
            assert!(binning.self_error_pct < 1.5);
        }
    }
}
