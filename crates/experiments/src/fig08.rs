//! Fig. 8 — execution profile with varying sequence length (GNMT).
//!
//! The key similarity observation: SLs close to each other (87 vs 89,
//! 192 vs 197) have nearly identical kernel runtime distributions, while
//! distant SLs differ — the basis for binning contiguous SL ranges.

use std::collections::BTreeMap;

use gpu_sim::{AutotuneTable, Device};
use sqnn::IterationShape;
use sqnn_profiler::report::Table;

use crate::{Net, Workloads};

/// The paper's four sequence lengths.
pub const SLS: [u32; 4] = [87, 89, 192, 197];

/// Result of the Fig. 8 experiment.
#[derive(Debug, Clone)]
pub struct Fig08 {
    /// Per-SL runtime share per kernel group (group → share% per SL).
    pub shares: BTreeMap<String, Vec<f64>>,
    /// L1 distance between the close pair (87, 89) share vectors.
    pub close_pair_distance: f64,
    /// L1 distance between the far pair (89, 192) share vectors.
    pub far_pair_distance: f64,
    /// Rendered table.
    pub table: Table,
}

/// Run the experiment.
pub fn run(w: &mut Workloads) -> Fig08 {
    let device = Device::new(w.config(0).clone());
    let mut tuner = AutotuneTable::new();
    let net = w.network(Net::Gnmt);

    // Collect kernel-group shares (top-2 GEMM kernels by global time,
    // plus scalar ops) for each SL.
    let mut per_sl: Vec<BTreeMap<String, f64>> = Vec::new();
    for &sl in &SLS {
        let trace = net.iteration_trace(&IterationShape::new(64, sl), device.config(), &mut tuner);
        let profile = device.run_trace(&trace);
        let total = profile.total_time_s();
        let mut groups: BTreeMap<String, f64> = BTreeMap::new();
        for (name, agg) in profile.by_kernel() {
            use gpu_sim::KernelKind as K;
            let group = match agg.kind {
                K::Gemm => format!("gemm:{name}"),
                K::Elementwise | K::Optimizer => "scalar-op".to_owned(),
                K::Reduce | K::Softmax => "reduce".to_owned(),
                _ => "other".to_owned(),
            };
            *groups.entry(group).or_insert(0.0) += agg.time_s / total * 100.0;
        }
        per_sl.push(groups);
    }

    // Keep the two globally largest GEMM groups; fold the rest.
    let mut gemm_totals: BTreeMap<String, f64> = BTreeMap::new();
    for groups in &per_sl {
        for (g, &v) in groups {
            if g.starts_with("gemm:") {
                *gemm_totals.entry(g.clone()).or_insert(0.0) += v;
            }
        }
    }
    let mut ranked: Vec<(String, f64)> = gemm_totals.into_iter().collect();
    ranked.sort_by(|a, b| b.1.total_cmp(&a.1));
    let top: Vec<String> = ranked.iter().take(2).map(|(g, _)| g.clone()).collect();

    let mut shares: BTreeMap<String, Vec<f64>> = BTreeMap::new();
    for groups in &per_sl {
        let mut folded: BTreeMap<String, f64> = BTreeMap::new();
        for (g, &v) in groups {
            let key = if g.starts_with("gemm:") {
                match top.iter().position(|t| t == g) {
                    Some(0) => "GEMM-group-1".to_owned(),
                    Some(_) => "GEMM-group-2".to_owned(),
                    None => "other".to_owned(),
                }
            } else {
                g.clone()
            };
            *folded.entry(key).or_insert(0.0) += v;
        }
        for key in [
            "GEMM-group-1",
            "GEMM-group-2",
            "scalar-op",
            "reduce",
            "other",
        ] {
            shares
                .entry(key.to_owned())
                .or_default()
                .push(folded.get(key).copied().unwrap_or(0.0));
        }
    }

    let l1 = |a: usize, b: usize| -> f64 { shares.values().map(|v| (v[a] - v[b]).abs()).sum() };
    let close = l1(0, 1);
    let far = l1(1, 2);

    let mut table = Table::new(
        "Fig. 8 — GNMT kernel-group runtime share (%) by sequence length",
        ["group", "SL 87", "SL 89", "SL 192", "SL 197"],
    );
    for (group, vals) in &shares {
        table.push_row([
            group.clone(),
            format!("{:.1}", vals[0]),
            format!("{:.1}", vals[1]),
            format!("{:.1}", vals[2]),
            format!("{:.1}", vals[3]),
        ]);
    }
    Fig08 {
        shares,
        close_pair_distance: close,
        far_pair_distance: far,
        table,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn close_sls_have_similar_profiles() {
        let mut w = Workloads::quick();
        let r = run(&mut w);
        // 87 vs 89 must be much closer than 89 vs 192.
        assert!(
            r.close_pair_distance < r.far_pair_distance / 2.0 + 1e-9,
            "close = {}, far = {}",
            r.close_pair_distance,
            r.far_pair_distance
        );
        assert!(
            r.close_pair_distance < 2.0,
            "close = {}",
            r.close_pair_distance
        );
        // Shares per SL sum to ~100%.
        for i in 0..4 {
            let total: f64 = r.shares.values().map(|v| v[i]).sum();
            assert!((total - 100.0).abs() < 0.5, "sum = {total}");
        }
    }
}
