//! Section VII extensions: SeqPoint beyond the two evaluation networks.
//!
//! * **VII-B (other SQNNs)** — any network whose computation varies with
//!   SL benefits; demonstrated on a Transformer.
//! * **VII-E (inference)** — the SL-binning methodology applied to a
//!   forward-only serving log.

use gpu_sim::{AutotuneTable, Device};
use seqpoint_core::{EpochLog, SeqPointPipeline};
use sqnn::models::{conv_s2s_with, seq2seq_with, transformer_base};
use sqnn::{IterationShape, Network};
use sqnn_data::{BatchPolicy, Corpus, EpochPlan};
use sqnn_profiler::report::{fmt_f, Table};
use sqnn_profiler::Profiler;

use crate::Workloads;

/// Result of one extension run.
#[derive(Debug, Clone)]
pub struct ExtensionRow {
    /// Workload label.
    pub workload: String,
    /// Iterations (or requests) in the profiled log.
    pub iterations: usize,
    /// SeqPoints selected.
    pub seqpoints: usize,
    /// Self projection error, %.
    pub self_error_pct: f64,
}

/// Result of the Section VII extensions.
#[derive(Debug, Clone)]
pub struct Extensions {
    /// One row per extension workload.
    pub rows: Vec<ExtensionRow>,
    /// Rendered table.
    pub table: Table,
}

/// Run both extensions.
pub fn run(w: &mut Workloads) -> Extensions {
    let mut rows = Vec::new();

    // VII-B: every network family the paper lists benefits — attention
    // (Transformer), convolution (ConvS2S), and plain RNN (Seq2Seq).
    let vii_b: Vec<(&str, Network)> = vec![
        ("transformer (training, VII-B)", transformer_base()),
        ("conv-s2s (training, VII-B)", conv_s2s_with(36_549, 512, 8)),
        ("seq2seq (training, VII-B)", seq2seq_with(36_549, 1_000, 4)),
    ];
    // ConvS2S's kernel-variant switch points make runtime vs SL locally
    // discontinuous, so the headline 0.05% target can need k beyond the
    // evaluation cap; 0.25% keeps the representative sets small while
    // still comfortably inside the paper's accuracy regime.
    let vii_b_config = seqpoint_core::SeqPointConfig {
        error_threshold_pct: 0.25,
        ..crate::identification_config()
    };
    for (label, net) in vii_b {
        let corpus = Corpus::iwslt15_like(w.scale().gnmt_sentences / 2, w.scale().seed + 1);
        let plan = EpochPlan::new(&corpus, BatchPolicy::bucketed(64, 16), w.scale().seed)
            .expect("corpus is non-empty");
        let device = Device::new(w.config(0).clone());
        let profile = Profiler::new()
            .profile_epoch(&net, &plan, &device)
            .expect("plan is non-empty");
        let log = profile.to_epoch_log();
        let analysis = SeqPointPipeline::with_config(vii_b_config)
            .run(&log)
            .expect("vii-b log converges");
        rows.push(ExtensionRow {
            workload: label.to_owned(),
            iterations: log.len(),
            seqpoints: analysis.seqpoints().len(),
            self_error_pct: analysis.self_error_pct(),
        });
    }

    // VII-E: GNMT inference serving log (forward-only, small batch).
    {
        let net = w.network(crate::Net::Gnmt);
        let corpus =
            Corpus::iwslt15_like((w.scale().gnmt_sentences / 8).max(200), w.scale().seed + 2);
        let device = Device::new(w.config(0).clone());
        let mut tuner = AutotuneTable::new();
        let mut log = EpochLog::new();
        // Requests with the same SL have identical latency (key
        // observation 4 applies to inference too): memoize per SL.
        let mut memo: std::collections::HashMap<u32, f64> = std::collections::HashMap::new();
        for &sl in corpus.lengths().iter() {
            let t = *memo.entry(sl).or_insert_with(|| {
                // Requests served one by one (batch 1), forward pass only.
                let trace =
                    net.inference_trace(&IterationShape::new(1, sl), device.config(), &mut tuner);
                device.run_trace(&trace).total_time_s()
            });
            log.push(sl, t);
        }
        let analysis = SeqPointPipeline::with_config(crate::identification_config())
            .run(&log)
            .expect("inference log converges");
        rows.push(ExtensionRow {
            workload: "gnmt (inference, VII-E)".to_owned(),
            iterations: log.len(),
            seqpoints: analysis.seqpoints().len(),
            self_error_pct: analysis.self_error_pct(),
        });
    }

    let mut table = Table::new(
        "Section VII — SeqPoint beyond the evaluation networks",
        ["workload", "iterations", "seqpoints", "self error %"],
    );
    for r in &rows {
        table.push_row([
            r.workload.clone(),
            r.iterations.to_string(),
            r.seqpoints.to_string(),
            fmt_f(r.self_error_pct, 3),
        ]);
    }
    Extensions { rows, table }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seqpoint_generalizes_beyond_rnns() {
        let mut w = Workloads::quick();
        let r = run(&mut w);
        assert_eq!(r.rows.len(), 4);
        for row in &r.rows {
            assert!(
                row.self_error_pct <= 1.0,
                "{}: error = {}",
                row.workload,
                row.self_error_pct
            );
            // Representatives stay a small fraction of the epoch even at
            // quick scale (47-iteration epochs for the VII-B rows).
            assert!(
                row.seqpoints * 3 < row.iterations,
                "{}: {} points for {} iterations",
                row.workload,
                row.seqpoints,
                row.iterations
            );
        }
        // All three VII-B families are covered.
        for family in ["transformer", "conv-s2s", "seq2seq"] {
            assert!(
                r.rows.iter().any(|x| x.workload.starts_with(family)),
                "missing {family}"
            );
        }
    }
}
