//! # seqpoint-experiments — regenerating every table and figure
//!
//! One module per artifact of the paper's evaluation (the table below is
//! the index). Each module exposes a `run(&mut Workloads)`
//! function returning a rendered [`sqnn_profiler::report::Table`] plus
//! the headline numbers the paper quotes, so the `repro` binary, the
//! integration tests, and the Criterion benches all share one
//! implementation.
//!
//! | Module | Paper artifact |
//! |---|---|
//! | [`fig03`] | Fig. 3 — CNN vs SQNN iteration homogeneity |
//! | [`fig04`] | Fig. 4 — architectural statistics across iterations |
//! | [`table1`] | Table I — GEMM dimensions across iterations |
//! | [`fig05`] | Fig. 5 — unique-kernel overlap between iterations |
//! | [`fig06`] | Fig. 6 — kernel runtime distribution by SL |
//! | [`fig07`] | Fig. 7 — sequence-length histograms |
//! | [`fig08`] | Fig. 8 — execution-profile similarity of close SLs |
//! | [`fig09`] | Fig. 9 — runtime vs SL linearity |
//! | [`table2`] | Table II — hardware configurations |
//! | [`projection`] | Figs. 11–12 — training-time projection errors |
//! | [`sensitivity`] | Figs. 13–14 — per-SL throughput-uplift sensitivity |
//! | [`speedup`] | Figs. 15–16 — speedup projection errors |
//! | [`profiling_speedup`] | §VI-F — profiling-time reduction factors |
//! | [`kmeans_ablation`] | §VII-C — k-means vs SL binning |
//! | [`extensions`] | §VII-B/E — Transformer and inference binning |
//! | [`streaming`] | extension — sharded online selection vs full epoch |

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod context;

pub mod extensions;
pub mod fig03;
pub mod fig04;
pub mod fig05;
pub mod fig06;
pub mod fig07;
pub mod fig08;
pub mod fig09;
pub mod kmeans_ablation;
pub mod larger_datasets;
pub mod profiling_speedup;
pub mod projection;
pub mod sensitivity;
pub mod speedup;
pub mod streaming;
pub mod table1;
pub mod table2;

pub use context::{identification_config, paper_baselines, prior_baseline, Net, Scale, Workloads};
