//! Fig. 9 — runtime vs sequence length (GNMT and DS2).
//!
//! Iteration runtime is near-linear in SL within the observed range —
//! the property that lets a bin's average-runtime SL stand for the whole
//! bin. We sweep each network's SL range and fit a least-squares line,
//! reporting the series and the fit's R².

use gpu_sim::Device;
use sqnn_profiler::{report::Table, Profiler};

use crate::{Net, Workloads};

/// Sweep result for one network.
#[derive(Debug, Clone)]
pub struct Fig09Net {
    /// Which network.
    pub net: Net,
    /// `(seq_len, normalized runtime)` series (normalized to the first).
    pub series: Vec<(u32, f64)>,
    /// Coefficient of determination of the linear fit.
    pub r_squared: f64,
    /// Intercept share: fitted runtime at SL 0 over runtime at max SL —
    /// the constant (optimizer/launch) component of iteration cost.
    pub intercept_share: f64,
}

/// Result of the Fig. 9 experiment.
#[derive(Debug, Clone)]
pub struct Fig09 {
    /// Both sweeps.
    pub nets: Vec<Fig09Net>,
    /// Rendered table.
    pub table: Table,
}

fn linear_fit(points: &[(f64, f64)]) -> (f64, f64, f64) {
    let n = points.len() as f64;
    let sx: f64 = points.iter().map(|p| p.0).sum();
    let sy: f64 = points.iter().map(|p| p.1).sum();
    let sxx: f64 = points.iter().map(|p| p.0 * p.0).sum();
    let sxy: f64 = points.iter().map(|p| p.0 * p.1).sum();
    let slope = (n * sxy - sx * sy) / (n * sxx - sx * sx);
    let intercept = (sy - slope * sx) / n;
    let mean_y = sy / n;
    let ss_tot: f64 = points.iter().map(|p| (p.1 - mean_y).powi(2)).sum();
    let ss_res: f64 = points
        .iter()
        .map(|p| (p.1 - (slope * p.0 + intercept)).powi(2))
        .sum();
    let r2 = if ss_tot > 0.0 {
        1.0 - ss_res / ss_tot
    } else {
        1.0
    };
    (slope, intercept, r2)
}

/// Run the experiment.
pub fn run(w: &mut Workloads) -> Fig09 {
    let mut table = Table::new(
        "Fig. 9 — iteration runtime vs sequence length (config #1, normalized)",
        ["network", "SL", "normalized runtime"],
    );
    let mut nets = Vec::new();
    for net in Net::both() {
        let sls: Vec<u32> = match net {
            Net::Gnmt => (1..=20).map(|i| i * 10).collect(),
            Net::Ds2 => (2..=18).map(|i| i * 25).collect(),
        };
        let device = Device::new(w.config(0).clone());
        let profiles = Profiler::new().profile_seq_lens(w.network(net), 64, &sls, &device);
        let base = profiles.first().expect("non-empty sweep").time_s;
        let series: Vec<(u32, f64)> = profiles
            .iter()
            .map(|p| (p.seq_len, p.time_s / base))
            .collect();
        for &(sl, t) in &series {
            table.push_row([net.label().to_owned(), sl.to_string(), format!("{t:.3}")]);
        }
        let pts: Vec<(f64, f64)> = series.iter().map(|&(sl, t)| (f64::from(sl), t)).collect();
        let (slope, intercept, r2) = linear_fit(&pts);
        let max_sl = f64::from(*sls.last().expect("non-empty"));
        nets.push(Fig09Net {
            net,
            series,
            r_squared: r2,
            intercept_share: intercept / (slope * max_sl + intercept),
        });
    }
    Fig09 { nets, table }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn runtime_is_near_linear_in_sl() {
        let mut w = Workloads::quick();
        let r = run(&mut w);
        for n in &r.nets {
            assert!(
                n.r_squared > 0.99,
                "{}: R² = {}",
                n.net.label(),
                n.r_squared
            );
            // Monotone increasing.
            for pair in n.series.windows(2) {
                assert!(pair[1].1 >= pair[0].1);
            }
            // There is a visible constant component but it does not
            // dominate (Fig. 9's positive intercept).
            assert!(
                n.intercept_share > 0.0 && n.intercept_share < 0.4,
                "{}: intercept share = {}",
                n.net.label(),
                n.intercept_share
            );
        }
    }
}
