//! Table I — dimensions of the same GEMM operation across two iterations.
//!
//! The classifier projection runs `M = vocab, K = hidden, N = batch·T`
//! forward (GEMM-a) and `M = hidden, K = vocab, N = batch·T` backward
//! (GEMM-b). The table regenerates the paper's numbers — GNMT
//! `36549×1024×{6016, 576}` and DS2 `29×1600×{25728, 3776}` — and
//! *verifies* each shape exists in the emitted iteration trace.

use gpu_sim::{AutotuneTable, Device};
use sqnn::IterationShape;
use sqnn_profiler::report::Table;

use crate::{Net, Workloads};

/// One row of Table I.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Table1Row {
    /// Which network.
    pub net: Net,
    /// `"GEMM-a"` (forward) or `"GEMM-b"` (backward-data).
    pub gemm: &'static str,
    /// M dimension.
    pub m: u64,
    /// K dimension.
    pub k: u64,
    /// N at the first sequence length.
    pub n_sl1: u64,
    /// N at the second sequence length.
    pub n_sl2: u64,
}

/// Result of the Table I experiment.
#[derive(Debug, Clone)]
pub struct Table1 {
    /// The four rows (two GEMMs × two networks).
    pub rows: Vec<Table1Row>,
    /// Rendered table.
    pub table: Table,
}

/// The paper's two iterations per network: GNMT SLs 94 and 9; DS2 SLs
/// 402 and 59 (chosen so `64·SL` reproduces the published N values).
pub const GNMT_SLS: (u32, u32) = (94, 9);
/// DS2's two sequence lengths.
pub const DS2_SLS: (u32, u32) = (402, 59);

fn classifier_dims(net: Net) -> (u64, u64) {
    match net {
        Net::Gnmt => (36_549, 1_024),
        Net::Ds2 => (29, 1_600),
    }
}

/// Assert that a GEMM with exactly `2·m·k·n` flops exists in the
/// iteration trace of `net` at `sl`.
fn verify_in_trace(w: &Workloads, net: Net, sl: u32, m: u64, k: u64, n: u64) -> bool {
    let device = Device::new(w.config(0).clone());
    let mut tuner = AutotuneTable::new();
    let trace =
        w.network(net)
            .iteration_trace(&IterationShape::new(64, sl), device.config(), &mut tuner);
    let expected = 2.0 * m as f64 * k as f64 * n as f64;
    trace.iter().any(|kd| (kd.flops() - expected).abs() < 0.5)
}

/// Run the experiment.
pub fn run(w: &mut Workloads) -> Table1 {
    let mut table = Table::new(
        "Table I — GEMM dimensions for the classifier across two iterations",
        ["network", "GEMM", "M", "K", "N (sl-1)", "N (sl-2)"],
    );
    let mut rows = Vec::new();
    for (net, (sl1, sl2)) in [(Net::Gnmt, GNMT_SLS), (Net::Ds2, DS2_SLS)] {
        let (vocab, hidden) = classifier_dims(net);
        let (n1, n2) = (64 * u64::from(sl1), 64 * u64::from(sl2));
        // GEMM-a: forward logits. GEMM-b: backward-data.
        for (label, m, k) in [("GEMM-a", vocab, hidden), ("GEMM-b", hidden, vocab)] {
            assert!(
                verify_in_trace(w, net, sl1, m, k, n1),
                "{} {label} {m}x{k}x{n1} missing from trace at SL {sl1}",
                net.label()
            );
            assert!(
                verify_in_trace(w, net, sl2, m, k, n2),
                "{} {label} {m}x{k}x{n2} missing from trace at SL {sl2}",
                net.label()
            );
            table.push_row([
                net.label().to_owned(),
                label.to_owned(),
                m.to_string(),
                k.to_string(),
                n1.to_string(),
                n2.to_string(),
            ]);
            rows.push(Table1Row {
                net,
                gemm: label,
                m,
                k,
                n_sl1: n1,
                n_sl2: n2,
            });
        }
    }
    Table1 { rows, table }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reproduces_the_published_dimensions() {
        let mut w = Workloads::quick();
        let r = run(&mut w);
        assert_eq!(r.rows.len(), 4);
        let gnmt_a = &r.rows[0];
        assert_eq!((gnmt_a.m, gnmt_a.k), (36_549, 1_024));
        assert_eq!((gnmt_a.n_sl1, gnmt_a.n_sl2), (6_016, 576));
        let gnmt_b = &r.rows[1];
        assert_eq!((gnmt_b.m, gnmt_b.k), (1_024, 36_549));
        let ds2_a = &r.rows[2];
        assert_eq!((ds2_a.m, ds2_a.k), (29, 1_600));
        assert_eq!((ds2_a.n_sl1, ds2_a.n_sl2), (25_728, 3_776));
        let ds2_b = &r.rows[3];
        assert_eq!((ds2_b.m, ds2_b.k), (1_600, 29));
    }
}
