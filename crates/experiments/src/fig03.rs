//! Fig. 3 — comparing iterations of CNNs and SQNNs.
//!
//! The paper's motivating contrast: per-iteration statistics are flat for
//! a CNN (fixed-size inputs; only hardware jitter moves them) but swing
//! widely for an SQNN (sequence-length-driven heterogeneity). We profile
//! a window of consecutive training iterations of the reference CNN and
//! of GNMT on config #1 with a ±2% jitter model, and report each
//! iteration's runtime normalized to the window mean, plus the
//! coefficient of variation.

use gpu_sim::{Device, GpuConfig, JitterModel};
use seqpoint_core::stats::coefficient_of_variation_pct;
use sqnn::models::cnn_reference;
use sqnn_data::{BatchPolicy, Corpus, EpochPlan};
use sqnn_profiler::{report::Table, Profiler};

use crate::{Net, Workloads};

/// Result of the Fig. 3 experiment.
#[derive(Debug, Clone)]
pub struct Fig03 {
    /// Normalized per-iteration runtimes, `(iteration, cnn, rnn)`.
    pub rows: Vec<(usize, f64, f64)>,
    /// Coefficient of variation of the CNN series, percent.
    pub cnn_cv_pct: f64,
    /// Coefficient of variation of the SQNN series, percent.
    pub rnn_cv_pct: f64,
    /// Rendered table.
    pub table: Table,
}

/// Number of consecutive iterations compared (the paper draws 12 bars).
pub const WINDOW: usize = 12;

/// Run the experiment.
pub fn run(w: &mut Workloads) -> Fig03 {
    let jitter = JitterModel::new(0.02, w.scale().seed);
    let device = Device::with_jitter(GpuConfig::vega_fe(), jitter);
    let profiler = Profiler::new();

    // CNN: a fixed-length "corpus" (every image scaled to one size).
    let cnn_corpus = Corpus::fixed_length("imagenet-like", 224, WINDOW * 64);
    let cnn_plan = EpochPlan::new(&cnn_corpus, BatchPolicy::shuffled(64), w.scale().seed)
        .expect("corpus is non-empty");
    // Jitter must differ per iteration: profile without memoization by
    // running each batch separately (memoization would copy one jittered
    // sample everywhere).
    let cnn_net = cnn_reference();
    let mut cnn_times = Vec::with_capacity(WINDOW);
    for (i, b) in cnn_plan.batches().iter().take(WINDOW).enumerate() {
        let d = Device::with_jitter(
            GpuConfig::vega_fe(),
            JitterModel::new(0.02, w.scale().seed.wrapping_add(i as u64)),
        );
        let shape = sqnn::IterationShape::new(b.samples, b.seq_len);
        cnn_times.push(profiler.profile_iteration(&cnn_net, &shape, &d).time_s);
    }

    // SQNN: consecutive GNMT iterations from the real (bucketed) plan.
    let gnmt_net = w.network(Net::Gnmt);
    let mut rnn_times = Vec::with_capacity(WINDOW);
    // Sample a stride across the plan so the window sees several buckets,
    // as consecutive iterations of a full training run would over time.
    let batches = w.plan(Net::Gnmt).batches();
    let stride = (batches.len() / WINDOW).max(1);
    for (i, b) in batches.iter().step_by(stride).take(WINDOW).enumerate() {
        let d = Device::with_jitter(
            GpuConfig::vega_fe(),
            JitterModel::new(0.02, w.scale().seed.wrapping_add(1000 + i as u64)),
        );
        let shape = sqnn::IterationShape::new(b.samples, b.seq_len);
        rnn_times.push(profiler.profile_iteration(gnmt_net, &shape, &d).time_s);
    }
    drop(device);

    let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
    let (cm, rm) = (mean(&cnn_times), mean(&rnn_times));
    let rows: Vec<(usize, f64, f64)> = (0..WINDOW)
        .map(|i| (i, cnn_times[i] / cm, rnn_times[i] / rm))
        .collect();

    let mut table = Table::new(
        "Fig. 3 — normalized per-iteration runtime, CNN vs SQNN (config #1, ±2% jitter)",
        ["iteration", "CNN (norm)", "RNN/GNMT (norm)"],
    );
    for &(i, c, r) in &rows {
        table.push_row([i.to_string(), format!("{c:.3}"), format!("{r:.3}")]);
    }
    Fig03 {
        cnn_cv_pct: coefficient_of_variation_pct(&cnn_times),
        rnn_cv_pct: coefficient_of_variation_pct(&rnn_times),
        rows,
        table,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sqnn_iterations_are_far_more_heterogeneous() {
        let mut w = Workloads::quick();
        let r = run(&mut w);
        assert_eq!(r.rows.len(), WINDOW);
        // CNN variation is jitter-scale; SQNN variation is structural.
        assert!(r.cnn_cv_pct < 3.0, "cnn cv = {}", r.cnn_cv_pct);
        assert!(r.rnn_cv_pct > 15.0, "rnn cv = {}", r.rnn_cv_pct);
        assert!(r.rnn_cv_pct > 5.0 * r.cnn_cv_pct);
        assert_eq!(r.table.row_count(), WINDOW);
    }
}
