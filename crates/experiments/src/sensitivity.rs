//! Figs. 13–14 — sensitivity of different sequence lengths to hardware
//! changes.
//!
//! For a sweep of SLs, the per-iteration throughput uplift of moving from
//! each degraded configuration back to config #1. The paper's point: the
//! uplift *varies with SL* (up to ~30% for GNMT, ~45% for DS2 across the
//! range), so a scheme that samples a narrow SL region (like `prior`'s
//! contiguous window, region O1 in Fig. 14) mispredicts speedups — most
//! visibly for config #4, whose uplift trends across the low-SL region.

use gpu_sim::Device;
use sqnn_profiler::{report::Table, Profiler};

use crate::{Net, Workloads};

/// The uplift series of one network.
#[derive(Debug, Clone)]
pub struct Sensitivity {
    /// Which network.
    pub net: Net,
    /// `(seq_len, [uplift% for configs #2→#1 … #5→#1])`.
    pub series: Vec<(u32, [f64; 4])>,
    /// Max − min uplift (percentage points) per config pair.
    pub variation_pp: [f64; 4],
    /// Max/min − 1 (relative variation, %) per config pair.
    pub variation_rel_pct: [f64; 4],
    /// Rendered table.
    pub table: Table,
}

/// Run the experiment for one network.
pub fn run(w: &mut Workloads, net: Net) -> Sensitivity {
    let sls: Vec<u32> = match net {
        Net::Gnmt => (1..=20).map(|i| i * 10).collect(),
        Net::Ds2 => (2..=18).map(|i| i * 25).collect(),
    };
    // Time each SL on every configuration.
    let mut times: Vec<Vec<f64>> = Vec::new(); // [config][sl]
    for cfg in w.configs() {
        let device = Device::new(cfg.clone());
        let profiles = Profiler::new().profile_seq_lens(w.network(net), 64, &sls, &device);
        times.push(profiles.into_iter().map(|p| p.time_s).collect());
    }
    let series: Vec<(u32, [f64; 4])> = sls
        .iter()
        .enumerate()
        .map(|(i, &sl)| {
            let mut uplift = [0.0; 4];
            for c in 1..5 {
                uplift[c - 1] = (times[c][i] / times[0][i] - 1.0) * 100.0;
            }
            (sl, uplift)
        })
        .collect();
    let mut variation_pp = [0.0; 4];
    let mut variation_rel = [0.0; 4];
    for c in 0..4 {
        let vals: Vec<f64> = series.iter().map(|&(_, u)| u[c]).collect();
        let min = vals.iter().copied().fold(f64::INFINITY, f64::min);
        let max = vals.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        variation_pp[c] = max - min;
        variation_rel[c] = if min > 0.0 {
            (max / min - 1.0) * 100.0
        } else {
            0.0
        };
    }
    let fig = match net {
        Net::Gnmt => "Fig. 13",
        Net::Ds2 => "Fig. 14",
    };
    let mut table = Table::new(
        format!(
            "{fig} — per-SL throughput uplift (%) to config #1 for {}",
            net.label()
        ),
        ["SL", "#2→#1", "#3→#1", "#4→#1", "#5→#1"],
    );
    for &(sl, u) in &series {
        table.push_row([
            sl.to_string(),
            format!("{:.1}", u[0]),
            format!("{:.1}", u[1]),
            format!("{:.1}", u[2]),
            format!("{:.1}", u[3]),
        ]);
    }
    Sensitivity {
        net,
        series,
        variation_pp,
        variation_rel_pct: variation_rel,
        table,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uplifts_vary_with_sequence_length() {
        let mut w = Workloads::quick();
        for net in Net::both() {
            let r = run(&mut w, net);
            // Every uplift is positive (config #1 dominates the others).
            for &(_, u) in &r.series {
                for v in u {
                    assert!(v > 0.0, "{}: uplift {v}", net.label());
                }
            }
            // At least one configuration's uplift varies noticeably with
            // SL (the figure's whole point).
            let max_rel = r.variation_rel_pct.iter().copied().fold(0.0, f64::max);
            assert!(
                max_rel > 5.0,
                "{}: max rel variation = {max_rel}",
                net.label()
            );
        }
    }

    #[test]
    fn config4_uplift_trends_in_the_low_sl_region_for_ds2() {
        // The paper's O1/O2 argument: in DS2's low-SL region the uplifts
        // are flat for all configs except #4 (L1 disabled), whose trend
        // is what breaks `prior` on the #4→#1 speedup.
        let mut w = Workloads::quick();
        let r = run(&mut w, Net::Ds2);
        let low: Vec<&(u32, [f64; 4])> = r.series.iter().filter(|&&(sl, _)| sl <= 150).collect();
        let rel_var = |c: usize| -> f64 {
            let vals: Vec<f64> = low.iter().map(|&&(_, u)| u[c]).collect();
            let min = vals.iter().copied().fold(f64::INFINITY, f64::min);
            let max = vals.iter().copied().fold(f64::NEG_INFINITY, f64::max);
            (max / min - 1.0) * 100.0
        };
        let l1_var = rel_var(2); // config #4
        for (c, label) in [(0usize, "#2"), (1, "#3"), (3, "#5")] {
            assert!(
                l1_var > rel_var(c),
                "config #4 rel variation {l1_var:.2}% should exceed {label}'s {:.2}%",
                rel_var(c)
            );
        }
    }
}
