//! `repro` — regenerate every table and figure of the SeqPoint paper.
//!
//! ```text
//! repro [--quick] [--out DIR] [--only LIST]
//!
//!   --quick      reduced dataset scale (default: paper scale)
//!   --out DIR    results directory (default: results)
//!   --only LIST  comma-separated subset, e.g. --only fig11,fig12,table1
//! ```
//!
//! Each experiment prints its table to stdout and archives it as CSV
//! under the results directory.

use std::collections::BTreeSet;
use std::time::Instant;

use seqpoint_experiments::{
    extensions, fig03, fig04, fig05, fig06, fig07, fig08, fig09, kmeans_ablation,
    larger_datasets, profiling_speedup, projection, sensitivity, speedup, table1, table2, Net,
    Workloads,
};
use sqnn_profiler::report::Table;

struct Args {
    quick: bool,
    out: String,
    only: Option<BTreeSet<String>>,
}

fn parse_args() -> Args {
    let mut args = Args {
        quick: false,
        out: "results".to_owned(),
        only: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--quick" => args.quick = true,
            "--out" => {
                args.out = it.next().unwrap_or_else(|| {
                    eprintln!("--out requires a directory");
                    std::process::exit(2);
                })
            }
            "--only" => {
                let list = it.next().unwrap_or_else(|| {
                    eprintln!("--only requires a comma-separated list");
                    std::process::exit(2);
                });
                args.only = Some(list.split(',').map(|s| s.trim().to_lowercase()).collect());
            }
            "--help" | "-h" => {
                println!("repro [--quick] [--out DIR] [--only LIST]");
                std::process::exit(0);
            }
            other => {
                eprintln!("unknown argument `{other}` (try --help)");
                std::process::exit(2);
            }
        }
    }
    args
}

fn main() {
    let args = parse_args();
    let wants = |id: &str| args.only.as_ref().is_none_or(|set| set.contains(id));
    let mut w = if args.quick {
        println!("# SeqPoint reproduction (QUICK scale)\n");
        Workloads::quick()
    } else {
        println!("# SeqPoint reproduction (paper scale)\n");
        Workloads::paper()
    };

    let emit = |id: &str, table: &Table, out: &str| {
        println!("{}", table.to_markdown());
        let path = format!("{out}/{id}.csv");
        if let Err(e) = table.write_csv(&path) {
            eprintln!("warning: {e}");
        }
    };

    let t0 = Instant::now();
    if wants("table2") {
        emit("table2", &table2::run(&w).table, &args.out);
    }
    if wants("fig03") {
        emit("fig03", &fig03::run(&mut w).table, &args.out);
    }
    if wants("fig04") {
        emit("fig04", &fig04::run(&mut w).table, &args.out);
    }
    if wants("table1") {
        emit("table1", &table1::run(&mut w).table, &args.out);
    }
    if wants("fig05") {
        emit("fig05", &fig05::run(&mut w).table, &args.out);
    }
    if wants("fig06") {
        emit("fig06", &fig06::run(&mut w).table, &args.out);
    }
    if wants("fig07") {
        emit("fig07", &fig07::run(&mut w).table, &args.out);
    }
    if wants("fig08") {
        emit("fig08", &fig08::run(&mut w).table, &args.out);
    }
    if wants("fig09") {
        emit("fig09", &fig09::run(&mut w).table, &args.out);
    }
    if wants("fig11") {
        emit("fig11", &projection::run(&mut w, Net::Ds2).table, &args.out);
    }
    if wants("fig12") {
        emit("fig12", &projection::run(&mut w, Net::Gnmt).table, &args.out);
    }
    if wants("fig13") {
        emit("fig13", &sensitivity::run(&mut w, Net::Gnmt).table, &args.out);
    }
    if wants("fig14") {
        emit("fig14", &sensitivity::run(&mut w, Net::Ds2).table, &args.out);
    }
    if wants("fig15") {
        emit("fig15", &speedup::run(&mut w, Net::Ds2).table, &args.out);
    }
    if wants("fig16") {
        emit("fig16", &speedup::run(&mut w, Net::Gnmt).table, &args.out);
    }
    if wants("profiling") {
        emit("profiling_speedup", &profiling_speedup::run(&mut w).table, &args.out);
    }
    if wants("larger") {
        // Large datasets are sampled at 1/8 scale to keep the run short;
        // the small:large ratio (and thus the speedup scaling) holds.
        let scale = if args.quick { 1.0 } else { 0.125 };
        emit("larger_datasets", &larger_datasets::run(&mut w, scale).table, &args.out);
    }
    if wants("kmeans") {
        emit("kmeans_ablation", &kmeans_ablation::run(&mut w).table, &args.out);
    }
    if wants("extensions") {
        emit("extensions", &extensions::run(&mut w).table, &args.out);
    }
    println!(
        "\n_All requested experiments regenerated in {:.1} s; CSVs under `{}/`._",
        t0.elapsed().as_secs_f64(),
        args.out
    );
}
