//! `repro` — regenerate every table and figure of the SeqPoint paper.
//!
//! ```text
//! repro [--quick] [--out DIR] [--only LIST] [--online] [--shards N] [--checkpoint]
//!
//!   --quick      reduced dataset scale (default: paper scale)
//!   --out DIR    results directory (default: results)
//!   --only LIST  comma-separated subset of artifact keys (see --help)
//!   --online     run only the streaming online-selection comparison
//!                (shorthand for --only streaming)
//!   --shards N   worker shards for the streaming runs (default 4)
//!   --checkpoint persist the streaming runs' state under
//!                DIR/checkpoints and verify the resume path
//! ```
//!
//! Each experiment prints its table to stdout and archives it as CSV
//! under the results directory.

use std::collections::BTreeSet;
use std::time::Instant;

use seqpoint_experiments::{
    extensions, fig03, fig04, fig05, fig06, fig07, fig08, fig09, kmeans_ablation, larger_datasets,
    profiling_speedup, projection, sensitivity, speedup, streaming, table1, table2, Net, Workloads,
};
use sqnn_profiler::report::Table;

/// Every artifact `repro` can emit: canonical key (also the CSV file
/// stem), accepted aliases, and what it regenerates.
const ARTIFACTS: &[(&str, &[&str], &str)] = &[
    ("table2", &[], "Table II — hardware configurations"),
    ("fig03", &[], "Fig. 3 — CNN vs SQNN iteration homogeneity"),
    (
        "fig04",
        &[],
        "Fig. 4 — architectural statistics across iterations",
    ),
    ("table1", &[], "Table I — GEMM dimensions across iterations"),
    (
        "fig05",
        &[],
        "Fig. 5 — unique-kernel overlap between iterations",
    ),
    ("fig06", &[], "Fig. 6 — kernel runtime distribution by SL"),
    ("fig07", &[], "Fig. 7 — sequence-length histograms"),
    (
        "fig08",
        &[],
        "Fig. 8 — execution-profile similarity of close SLs",
    ),
    ("fig09", &[], "Fig. 9 — runtime vs SL linearity"),
    (
        "fig11",
        &[],
        "Fig. 11 — DS2 training-time projection errors",
    ),
    (
        "fig12",
        &[],
        "Fig. 12 — GNMT training-time projection errors",
    ),
    ("fig13", &[], "Fig. 13 — GNMT per-SL sensitivity"),
    ("fig14", &[], "Fig. 14 — DS2 per-SL sensitivity"),
    ("fig15", &[], "Fig. 15 — DS2 speedup projection errors"),
    ("fig16", &[], "Fig. 16 — GNMT speedup projection errors"),
    (
        "profiling_speedup",
        &["profiling"],
        "§VI-F — profiling-time reduction factors",
    ),
    (
        "larger_datasets",
        &["larger"],
        "§VI-F — larger-dataset scaling",
    ),
    (
        "kmeans_ablation",
        &["kmeans"],
        "§VII-C — k-means vs SL binning",
    ),
    (
        "extensions",
        &[],
        "§VII-B/E — Transformer and inference binning",
    ),
    (
        "streaming",
        &["online"],
        "extension — sharded online selection vs full epoch",
    ),
];

fn canonical_key(key: &str) -> Option<&'static str> {
    ARTIFACTS
        .iter()
        .find(|(id, aliases, _)| *id == key || aliases.contains(&key))
        .map(|(id, _, _)| *id)
}

fn print_help() {
    println!(
        "repro [--quick] [--out DIR] [--only LIST] [--online] [--shards N] [--checkpoint]\n\n\
         --quick      reduced dataset scale (default: paper scale)\n\
         --out DIR    results directory (default: results)\n\
         --only LIST  comma-separated subset of the artifact keys below\n\
         --online     run only the streaming online-selection comparison\n\
         --shards N   worker shards for the streaming runs (default 4)\n\
         --checkpoint persist streaming-run state under DIR/checkpoints\n\
                      (atomic, resumable) and verify the resume path\n\n\
         Artifact keys:"
    );
    for (id, aliases, desc) in ARTIFACTS {
        let alias = if aliases.is_empty() {
            String::new()
        } else {
            format!(" (alias: {})", aliases.join(", "))
        };
        println!("  {id:<18}{desc}{alias}");
    }
}

struct Args {
    quick: bool,
    out: String,
    only: Option<BTreeSet<String>>,
    shards: usize,
    checkpoint: bool,
}

fn parse_args() -> Args {
    let mut args = Args {
        quick: false,
        out: "results".to_owned(),
        only: None,
        shards: 4,
        checkpoint: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--quick" => args.quick = true,
            "--out" => {
                args.out = it.next().unwrap_or_else(|| {
                    eprintln!("--out requires a directory");
                    std::process::exit(2);
                })
            }
            "--only" => {
                let list = it.next().unwrap_or_else(|| {
                    eprintln!("--only requires a comma-separated list");
                    std::process::exit(2);
                });
                let set = args.only.get_or_insert_with(BTreeSet::new);
                for key in list.split(',').map(|s| s.trim().to_lowercase()) {
                    match canonical_key(&key) {
                        Some(id) => {
                            set.insert(id.to_owned());
                        }
                        None => {
                            let known: Vec<&str> = ARTIFACTS.iter().map(|(id, _, _)| *id).collect();
                            eprintln!(
                                "unknown --only key `{key}`; valid keys are: {}",
                                known.join(", ")
                            );
                            std::process::exit(2);
                        }
                    }
                }
            }
            "--checkpoint" => args.checkpoint = true,
            "--online" => {
                args.only
                    .get_or_insert_with(BTreeSet::new)
                    .insert("streaming".to_owned());
            }
            "--shards" => {
                let value = it.next().unwrap_or_else(|| {
                    eprintln!("--shards requires a positive count");
                    std::process::exit(2);
                });
                args.shards = value.parse().ok().filter(|&n| n > 0).unwrap_or_else(|| {
                    eprintln!("--shards: cannot parse `{value}` as a positive count");
                    std::process::exit(2);
                });
            }
            "--help" | "-h" => {
                print_help();
                std::process::exit(0);
            }
            other => {
                eprintln!("unknown argument `{other}` (try --help)");
                std::process::exit(2);
            }
        }
    }
    args
}

fn main() {
    let args = parse_args();
    let wants = |id: &str| args.only.as_ref().is_none_or(|set| set.contains(id));
    let mut w = if args.quick {
        println!("# SeqPoint reproduction (QUICK scale)\n");
        Workloads::quick()
    } else {
        println!("# SeqPoint reproduction (paper scale)\n");
        Workloads::paper()
    };

    let emit = |id: &str, table: &Table, out: &str| {
        println!("{}", table.to_markdown());
        let path = format!("{out}/{id}.csv");
        if let Err(e) = table.write_csv(&path) {
            eprintln!("warning: {e}");
        }
    };

    let t0 = Instant::now();
    if wants("table2") {
        emit("table2", &table2::run(&w).table, &args.out);
    }
    if wants("fig03") {
        emit("fig03", &fig03::run(&mut w).table, &args.out);
    }
    if wants("fig04") {
        emit("fig04", &fig04::run(&mut w).table, &args.out);
    }
    if wants("table1") {
        emit("table1", &table1::run(&mut w).table, &args.out);
    }
    if wants("fig05") {
        emit("fig05", &fig05::run(&mut w).table, &args.out);
    }
    if wants("fig06") {
        emit("fig06", &fig06::run(&mut w).table, &args.out);
    }
    if wants("fig07") {
        emit("fig07", &fig07::run(&mut w).table, &args.out);
    }
    if wants("fig08") {
        emit("fig08", &fig08::run(&mut w).table, &args.out);
    }
    if wants("fig09") {
        emit("fig09", &fig09::run(&mut w).table, &args.out);
    }
    if wants("fig11") {
        emit("fig11", &projection::run(&mut w, Net::Ds2).table, &args.out);
    }
    if wants("fig12") {
        emit(
            "fig12",
            &projection::run(&mut w, Net::Gnmt).table,
            &args.out,
        );
    }
    if wants("fig13") {
        emit(
            "fig13",
            &sensitivity::run(&mut w, Net::Gnmt).table,
            &args.out,
        );
    }
    if wants("fig14") {
        emit(
            "fig14",
            &sensitivity::run(&mut w, Net::Ds2).table,
            &args.out,
        );
    }
    if wants("fig15") {
        emit("fig15", &speedup::run(&mut w, Net::Ds2).table, &args.out);
    }
    if wants("fig16") {
        emit("fig16", &speedup::run(&mut w, Net::Gnmt).table, &args.out);
    }
    if wants("profiling_speedup") {
        emit(
            "profiling_speedup",
            &profiling_speedup::run(&mut w).table,
            &args.out,
        );
    }
    if wants("larger_datasets") {
        // Large datasets are sampled at 1/8 scale to keep the run short;
        // the small:large ratio (and thus the speedup scaling) holds.
        let scale = if args.quick { 1.0 } else { 0.125 };
        emit(
            "larger_datasets",
            &larger_datasets::run(&mut w, scale).table,
            &args.out,
        );
    }
    if wants("kmeans_ablation") {
        emit(
            "kmeans_ablation",
            &kmeans_ablation::run(&mut w).table,
            &args.out,
        );
    }
    if wants("extensions") {
        emit("extensions", &extensions::run(&mut w).table, &args.out);
    }
    if wants("streaming") {
        let checkpoint_dir = args
            .checkpoint
            .then(|| std::path::PathBuf::from(&args.out).join("checkpoints"));
        emit(
            "streaming",
            &streaming::run(&mut w, args.shards, checkpoint_dir.as_deref()).table,
            &args.out,
        );
    }
    println!(
        "\n_All requested experiments regenerated in {:.1} s; CSVs under `{}/`._",
        t0.elapsed().as_secs_f64(),
        args.out
    );
}
