//! Streaming ablation — full-epoch vs early-stop (online) selection.
//!
//! The paper's mechanism logs one complete epoch before identifying
//! SeqPoints. The streaming path
//! ([`sqnn_profiler::stream::profile_epoch_streaming`]) shards the log
//! across workers and stops *measuring* once the SL space saturates,
//! counting the remainder as free shape metadata. This ablation runs
//! both paths on a steady-state (shuffled) epoch of each evaluation
//! network and compares: iterations measured vs skipped, the resulting
//! epoch-logging speedup, and whether the streamed selection matches the
//! full-epoch selection (it must — counts stay exact).

use std::path::Path;

use gpu_sim::Device;
use seqpoint_core::stream::StreamConfig;
use seqpoint_core::SeqPointPipeline;
use sqnn_profiler::pipeline::{StageId, StreamGraph, TallyMeter};
use sqnn_profiler::report::{fmt_f, Table};
use sqnn_profiler::stream::{
    profile_epoch_streaming_checkpointed, stream_fingerprint, CheckpointOptions, StreamOptions,
    StreamOutcome, ThreadExecutor,
};
use sqnn_profiler::Profiler;

use crate::{identification_config, Net, Workloads};

/// Steady-state batch size used by the ablation: small enough that even
/// the quick-scale corpora yield a few hundred iterations to stream.
pub const STREAM_BATCH: u32 = 16;

/// Streaming parameters of the ablation (and the `repro --online` run):
/// saturation window 128, Good–Turing threshold 5%, novelty at SL-bucket
/// width 8 (the granularity at which the paper's Fig. 8 calls close SLs
/// interchangeable).
pub fn stream_config() -> StreamConfig {
    StreamConfig {
        saturation_window: 128,
        unseen_threshold: 0.05,
        quantization: 8,
        pipeline: identification_config(),
    }
}

/// Streaming-vs-full comparison for one network.
#[derive(Debug, Clone)]
pub struct StreamingNet {
    /// Which network.
    pub net: Net,
    /// Iterations in the steady-state epoch.
    pub epoch_iterations: usize,
    /// Iterations the streaming path actually profiled.
    pub measured_iterations: u64,
    /// Iterations whose measurement the early stop skipped.
    pub skipped_iterations: u64,
    /// Epoch ÷ measured — the logging-cost reduction.
    pub logging_speedup: f64,
    /// Whether the early stop fired before the epoch ended.
    pub early_stopped: bool,
    /// Good–Turing unseen probability at the stop rule's granularity.
    pub unseen_probability: f64,
    /// SeqPoints from the full-epoch path.
    pub full_points: usize,
    /// SeqPoints from the streamed path.
    pub streamed_points: usize,
    /// Whether the streamed selection equals the full-epoch selection
    /// (same SLs, same weights).
    pub selection_matches: bool,
    /// Whether a checkpointed run resumed from its own file to the
    /// identical selection (`None` when checkpointing was off).
    pub resume_verified: Option<bool>,
}

/// Result of the streaming ablation.
#[derive(Debug, Clone)]
pub struct Streaming {
    /// Per-network comparisons.
    pub nets: Vec<StreamingNet>,
    /// Worker shards used by the streamed runs.
    pub shards: usize,
    /// Rendered table.
    pub table: Table,
}

/// Run the ablation with `shards` streaming workers.
///
/// `checkpoint_dir`, when set, makes each network's streamed run persist
/// its state to `<dir>/<net>.ckpt.json` (the `repro --online
/// --checkpoint` path) — and then *proves* the fault-tolerance claim by
/// re-invoking the run against its own completed checkpoint and
/// comparing the selections.
pub fn run(w: &mut Workloads, shards: usize, checkpoint_dir: Option<&Path>) -> Streaming {
    let shards = shards.max(1);
    let mut table = Table::new(
        "Streaming ablation — full-epoch vs early-stop selection (steady-state epoch)",
        [
            "network",
            "epoch iterations",
            "measured",
            "skipped",
            "logging speedup",
            "unseen probability",
            "seqpoints (full/streamed)",
            "selection matches",
            "checkpoint resume",
        ],
    );
    let mut nets = Vec::new();
    for net in Net::both() {
        let plan = w.steady_state_plan(net, STREAM_BATCH);
        let device = Device::new(w.config(0).clone());
        let profiler = Profiler::new();
        let full_log = profiler
            .profile_epoch(w.network(net), &plan, &device)
            .expect("steady-state plans are non-empty")
            .to_epoch_log();
        let full = SeqPointPipeline::with_config(identification_config())
            .run(&full_log)
            .expect("identification thresholds converge");
        let options = StreamOptions {
            shards,
            round_len: 32,
            stream: stream_config(),
            ..StreamOptions::default()
        };
        let (streamed, resume_verified) = match checkpoint_dir {
            None => {
                // Assemble the operator graph directly — a second
                // consumer of the pipeline API beyond the library entry
                // points, with the in-process meter standing in for the
                // service's metrics registry.
                let meter = TallyMeter::new();
                let net_ref = w.network(net);
                let fingerprint = stream_fingerprint(net_ref, &plan, &device, &options);
                let mut executor = ThreadExecutor::new(
                    &profiler,
                    net_ref,
                    device.clone(),
                    options.stat,
                    options.shards,
                );
                let profile = match StreamGraph::new(&mut executor, &plan, &options, fingerprint)
                    .with_meter(&meter)
                    .run()
                    .expect("streaming the same plan cannot fail")
                {
                    StreamOutcome::Complete(profile) => profile,
                    StreamOutcome::Paused(_) => {
                        unreachable!("no checkpoint policy, the run cannot pause")
                    }
                };
                // An early stop leaves the tail of the epoch undealt
                // (the replay phase covers it from the shape memo), but
                // every round the source did deal must have been folded.
                let dealt = meter.tally(StageId::Source).items_in;
                assert!(
                    dealt > 0 && dealt <= plan.iterations() as u64,
                    "the source dealt {dealt} of {} iterations",
                    plan.iterations()
                );
                assert_eq!(
                    meter.tally(StageId::Fold).items_in,
                    dealt,
                    "every dealt round is folded"
                );
                (profile, None)
            }
            Some(dir) => {
                std::fs::create_dir_all(dir).expect("checkpoint directory is creatable");
                let mut path = dir.to_path_buf();
                path.push(format!("{}.ckpt.json", net.label()));
                let _ = std::fs::remove_file(&path);
                let policy = CheckpointOptions::new(path);
                let run_once = |profiler: &Profiler, w: &Workloads| {
                    match profile_epoch_streaming_checkpointed(
                        profiler,
                        w.network(net),
                        &plan,
                        &device,
                        &options,
                        &policy,
                    )
                    .expect("checkpointed streaming cannot fail")
                    {
                        StreamOutcome::Complete(profile) => profile,
                        StreamOutcome::Paused(_) => {
                            unreachable!("no max_rounds configured, the run cannot pause")
                        }
                    }
                };
                let first = run_once(&profiler, w);
                // Resume path: the second invocation adopts the completed
                // checkpoint and must reproduce the selection exactly.
                let resumed = run_once(&profiler, w);
                let verified = resumed.selection == first.selection;
                (first, Some(verified))
            }
        };
        let selection = &streamed.selection;
        let selection_matches = selection.seqpoints().seq_lens() == full.seqpoints().seq_lens()
            && selection
                .seqpoints()
                .points()
                .iter()
                .zip(full.seqpoints().points())
                .all(|(s, f)| s.weight == f.weight);
        let row = StreamingNet {
            net,
            epoch_iterations: plan.iterations(),
            measured_iterations: selection.iterations_measured(),
            skipped_iterations: selection.iterations_skipped(),
            logging_speedup: selection.logging_speedup(),
            early_stopped: selection.early_stopped(),
            unseen_probability: selection.unseen_probability(),
            full_points: full.seqpoints().len(),
            streamed_points: selection.seqpoints().len(),
            selection_matches,
            resume_verified,
        };
        table.push_row([
            net.label().to_owned(),
            row.epoch_iterations.to_string(),
            row.measured_iterations.to_string(),
            row.skipped_iterations.to_string(),
            format!("{}x", fmt_f(row.logging_speedup, 2)),
            fmt_f(row.unseen_probability, 4),
            format!("{}/{}", row.full_points, row.streamed_points),
            if row.selection_matches { "yes" } else { "NO" }.to_owned(),
            match row.resume_verified {
                None => "off".to_owned(),
                Some(true) => "verified".to_owned(),
                Some(false) => "DIVERGED".to_owned(),
            },
        ]);
        nets.push(row);
    }
    Streaming {
        nets,
        shards,
        table,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn streamed_selection_matches_full_epoch_while_measuring_less() {
        let mut w = Workloads::quick();
        let r = run(&mut w, 4, None);
        assert_eq!(r.nets.len(), 2);
        for n in &r.nets {
            assert!(
                n.selection_matches,
                "{}: streamed selection diverged from the full epoch",
                n.net.label()
            );
            assert!(
                n.early_stopped,
                "{}: expected an early stop on the steady-state epoch",
                n.net.label()
            );
            assert!(
                (n.measured_iterations as usize) < n.epoch_iterations,
                "{}: measured {} of {}",
                n.net.label(),
                n.measured_iterations,
                n.epoch_iterations
            );
            assert!(n.logging_speedup > 1.5, "{}", n.logging_speedup);
            assert_eq!(n.full_points, n.streamed_points);
        }
        assert_eq!(r.table.row_count(), 2);
    }

    #[test]
    fn shard_count_does_not_affect_the_comparison() {
        let mut w = Workloads::quick();
        let a = run(&mut w, 1, None);
        let b = run(&mut w, 6, None);
        for (x, y) in a.nets.iter().zip(&b.nets) {
            assert_eq!(x.measured_iterations, y.measured_iterations);
            assert_eq!(x.selection_matches, y.selection_matches);
        }
    }

    #[test]
    fn checkpointed_ablation_verifies_the_resume_path() {
        let mut w = Workloads::quick();
        let mut dir = std::env::temp_dir();
        dir.push(format!("seqpoint-repro-ckpt-{}", std::process::id()));
        let r = run(&mut w, 3, Some(&dir));
        for n in &r.nets {
            assert_eq!(
                n.resume_verified,
                Some(true),
                "{}: checkpoint resume diverged",
                n.net.label()
            );
            // The same run without checkpointing is unaffected by the
            // persistence machinery.
            assert!(n.selection_matches, "{}", n.net.label());
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}
