//! Figs. 15–16 — error in performance-speedup projections.
//!
//! For each configuration pair #X→#1 the schemes predict the end-to-end
//! training throughput uplift; the error is the relative deviation from
//! the measured uplift. The paper's headline: SeqPoint geomean 0.13%
//! (DS2) / 1.50% (GNMT); `worst` up to 22–27%; `prior` fine everywhere
//! except DS2 #4→#1.

use std::collections::HashMap;

use seqpoint_core::stats::{geomean, relative_error_pct};
use seqpoint_core::SeqPointPipeline;
use sqnn_profiler::report::{fmt_f, Table};

use crate::{Net, Workloads};

/// Per-scheme speedup-projection errors across the four config pairs.
#[derive(Debug, Clone)]
pub struct SpeedupErrors {
    /// Scheme label.
    pub scheme: String,
    /// Error (%) per config pair (#2→#1 … #5→#1).
    pub errors: [f64; 4],
    /// Geometric mean across pairs.
    pub geomean_pct: f64,
}

/// Result of the Fig. 15 (DS2) / Fig. 16 (GNMT) experiment.
#[derive(Debug, Clone)]
pub struct Speedup {
    /// Which network.
    pub net: Net,
    /// Measured uplift (%) per config pair.
    pub actual_uplift_pct: [f64; 4],
    /// Per-scheme error rows (SeqPoint last).
    pub schemes: Vec<SpeedupErrors>,
    /// Rendered table.
    pub table: Table,
}

impl Speedup {
    /// The error row for a scheme label.
    pub fn scheme(&self, label: &str) -> Option<&SpeedupErrors> {
        self.schemes.iter().find(|s| s.scheme == label)
    }
}

/// Run the experiment for one network.
pub fn run(w: &mut Workloads, net: Net) -> Speedup {
    let log = w.profile(net, 0).to_epoch_log();
    let analysis = SeqPointPipeline::with_config(crate::identification_config())
        .run(&log)
        .expect("epoch logs are non-empty and defaults converge");
    let seqpoints = analysis.seqpoints().clone();
    let baselines: Vec<_> = crate::paper_baselines(log.len())
        .into_iter()
        .map(|kind| (kind, kind.select(&log).expect("log is non-empty")))
        .collect();

    let mut needed: Vec<u32> = seqpoints.seq_lens();
    for (_, sel) in &baselines {
        needed.extend(sel.unique_seq_lens());
    }
    needed.sort_unstable();
    needed.dedup();

    // Re-profiled per-SL times on every configuration.
    let stats: Vec<HashMap<u32, f64>> = (0..5)
        .map(|idx| w.reprofile_seq_lens(net, idx, &needed))
        .collect();

    // Measured uplift: throughput_1 / throughput_X − 1 = t_X / t_1 − 1
    // over the full epoch (sample counts cancel).
    let actual_times: Vec<f64> = (0..5)
        .map(|idx| w.profile(net, idx).training_time_s())
        .collect();
    let mut actual_uplift = [0.0; 4];
    for c in 1..5 {
        actual_uplift[c - 1] = (actual_times[c] / actual_times[0] - 1.0) * 100.0;
    }

    let mut schemes: Vec<SpeedupErrors> = Vec::new();
    // Baselines predict uplift from their own projected totals.
    for (kind, sel) in &baselines {
        let mut errors = [0.0; 4];
        let t1 = sel.project_total_with(|sl| stats[0][&sl]);
        for c in 1..5 {
            let tx = sel.project_total_with(|sl| stats[c][&sl]);
            let pred = (tx / t1 - 1.0) * 100.0;
            errors[c - 1] = relative_error_pct(pred, actual_uplift[c - 1]);
        }
        schemes.push(SpeedupErrors {
            scheme: kind.label().to_owned(),
            errors,
            geomean_pct: geomean(errors),
        });
    }
    // SeqPoint.
    {
        let mut errors = [0.0; 4];
        let t1 = seqpoints.project_total_with(|sl| stats[0][&sl]);
        for c in 1..5 {
            let tx = seqpoints.project_total_with(|sl| stats[c][&sl]);
            let pred = (tx / t1 - 1.0) * 100.0;
            errors[c - 1] = relative_error_pct(pred, actual_uplift[c - 1]);
        }
        schemes.push(SpeedupErrors {
            scheme: "seqpoint".to_owned(),
            errors,
            geomean_pct: geomean(errors),
        });
    }

    let fig = match net {
        Net::Ds2 => "Fig. 15",
        Net::Gnmt => "Fig. 16",
    };
    let mut table = Table::new(
        format!(
            "{fig} — error (%) in throughput-uplift projections for {}",
            net.label()
        ),
        ["scheme", "#2→#1", "#3→#1", "#4→#1", "#5→#1", "geomean"],
    );
    table.push_row([
        "(actual uplift %)".to_owned(),
        fmt_f(actual_uplift[0], 1),
        fmt_f(actual_uplift[1], 1),
        fmt_f(actual_uplift[2], 1),
        fmt_f(actual_uplift[3], 1),
        String::new(),
    ]);
    for row in &schemes {
        let mut cells = vec![row.scheme.clone()];
        cells.extend(row.errors.iter().map(|&e| fmt_f(e, 2)));
        cells.push(fmt_f(row.geomean_pct, 2));
        table.push_row(cells);
    }
    Speedup {
        net,
        actual_uplift_pct: actual_uplift,
        schemes,
        table,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seqpoint_projects_speedups_best() {
        let mut w = Workloads::quick();
        for net in Net::both() {
            let r = run(&mut w, net);
            let sp = r.scheme("seqpoint").unwrap();
            let worst = r.scheme("worst").unwrap();
            assert!(
                sp.geomean_pct < 3.0,
                "{}: seqpoint geomean = {}",
                net.label(),
                sp.geomean_pct
            );
            assert!(
                worst.geomean_pct > sp.geomean_pct,
                "{}: worst {} vs seqpoint {}",
                net.label(),
                worst.geomean_pct,
                sp.geomean_pct
            );
        }
    }

    #[test]
    fn prior_struggles_most_on_ds2_config4() {
        // The paper: "prior does as well as SeqPoint in all cases except
        // when predicting config #4 to #1 speedup for DS2."
        let mut w = Workloads::quick();
        let r = run(&mut w, Net::Ds2);
        let prior = r.scheme("prior").unwrap();
        let c4_err = prior.errors[2];
        let other_max = prior.errors[0].max(prior.errors[1]).max(prior.errors[3]);
        assert!(
            c4_err > other_max,
            "prior #4 error {c4_err} should exceed others (max {other_max})"
        );
    }
}
