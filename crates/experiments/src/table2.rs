//! Table II — the hardware configurations used to evaluate SeqPoint.

use sqnn_profiler::report::Table;

use crate::Workloads;

/// Result of the Table II listing.
#[derive(Debug, Clone)]
pub struct Table2 {
    /// Rendered table.
    pub table: Table,
}

/// Run (render) the table.
pub fn run(w: &Workloads) -> Table2 {
    let mut table = Table::new(
        "Table II — configurations used to evaluate SeqPoint",
        ["config", "GCLK", "#CU", "L1 $", "L2 $"],
    );
    for cfg in w.configs() {
        table.push_row([
            cfg.name().to_owned(),
            if cfg.gclk_ghz() >= 1.0 {
                format!("{:.1} GHz", cfg.gclk_ghz())
            } else {
                format!("{:.0} MHz", cfg.gclk_ghz() * 1000.0)
            },
            cfg.cu_count().to_string(),
            format!("{:.0} KB", cfg.l1_bytes() / 1024.0),
            format!("{:.0} MB", cfg.l2_bytes() / (1024.0 * 1024.0)),
        ]);
    }
    Table2 { table }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Workloads;

    #[test]
    fn renders_five_configs() {
        let w = Workloads::quick();
        let t = run(&w);
        assert_eq!(t.table.row_count(), 5);
        let md = t.table.to_markdown();
        assert!(md.contains("852 MHz"));
        assert!(md.contains("0 KB"));
        assert!(md.contains("0 MB"));
    }
}
