//! Section VI-F — profiling speedups.
//!
//! The payoff: instead of profiling a whole epoch, profile only the
//! SeqPoints. Serial speedup = epoch time ÷ Σ SeqPoint iteration times;
//! parallel speedup (one machine per SeqPoint) = epoch time ÷ max
//! SeqPoint iteration time. The paper reports 40×/72× serial and
//! 214×/345× parallel for GNMT/DS2, and 3–6× fewer iterations than
//! `prior`'s 50.

use gpu_sim::Device;
use seqpoint_core::SeqPointPipeline;
use sqnn_profiler::parallel::{profile_seq_lens_parallel, profiling_cost};
use sqnn_profiler::report::{fmt_duration, fmt_f, Table};
use sqnn_profiler::Profiler;

use crate::{Net, Workloads};

/// Profiling-cost summary for one network.
#[derive(Debug, Clone)]
pub struct ProfilingSpeedupNet {
    /// Which network.
    pub net: Net,
    /// SeqPoints identified.
    pub seqpoints: usize,
    /// Iterations in the epoch.
    pub epoch_iterations: usize,
    /// Full-epoch profiling cost (training + eval + autotune), seconds.
    pub epoch_time_s: f64,
    /// Serial SeqPoint profiling cost, seconds.
    pub serial_s: f64,
    /// Parallel SeqPoint profiling cost (max iteration), seconds.
    pub parallel_s: f64,
    /// Epoch ÷ serial.
    pub serial_speedup: f64,
    /// Epoch ÷ parallel.
    pub parallel_speedup: f64,
    /// `prior`'s 50 iterations ÷ SeqPoint count.
    pub iterations_vs_prior: f64,
}

/// Result of the Section VI-F experiment.
#[derive(Debug, Clone)]
pub struct ProfilingSpeedup {
    /// Per-network summaries.
    pub nets: Vec<ProfilingSpeedupNet>,
    /// Rendered table.
    pub table: Table,
}

/// Run the experiment.
pub fn run(w: &mut Workloads) -> ProfilingSpeedup {
    let mut table = Table::new(
        "Section VI-F — profiling speedups from SeqPoint",
        [
            "network",
            "seqpoints",
            "epoch time",
            "serial seqpoint time",
            "parallel seqpoint time",
            "serial speedup",
            "parallel speedup",
            "iterations vs prior(50)",
        ],
    );
    let mut nets = Vec::new();
    for net in Net::both() {
        let (epoch_time, iterations, log) = {
            let p = w.profile(net, 0);
            (p.total_time_s(), p.iteration_count(), p.to_epoch_log())
        };
        let analysis = SeqPointPipeline::with_config(crate::identification_config())
            .run(&log)
            .expect("epoch logs are non-empty and defaults converge");
        let sls = analysis.seqpoints().seq_lens();
        let device = Device::new(w.config(0).clone());
        let profiles = profile_seq_lens_parallel(
            &Profiler::new(),
            w.network(net),
            w.plan(net).batch_size(),
            &sls,
            &device,
        );
        let cost = profiling_cost(&profiles);
        let row = ProfilingSpeedupNet {
            net,
            seqpoints: sls.len(),
            epoch_iterations: iterations,
            epoch_time_s: epoch_time,
            serial_s: cost.serial_s,
            parallel_s: cost.parallel_s,
            serial_speedup: epoch_time / cost.serial_s,
            parallel_speedup: epoch_time / cost.parallel_s,
            iterations_vs_prior: 50.0 / sls.len() as f64,
        };
        table.push_row([
            net.label().to_owned(),
            row.seqpoints.to_string(),
            fmt_duration(row.epoch_time_s),
            fmt_duration(row.serial_s),
            fmt_duration(row.parallel_s),
            format!("{}x", fmt_f(row.serial_speedup, 1)),
            format!("{}x", fmt_f(row.parallel_speedup, 1)),
            format!("{}x fewer", fmt_f(row.iterations_vs_prior, 1)),
        ]);
        nets.push(row);
    }
    ProfilingSpeedup { nets, table }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profiling_reductions_are_order_of_magnitude() {
        let mut w = Workloads::quick();
        let r = run(&mut w);
        for n in &r.nets {
            // Tens of iterations stand in for the whole epoch.
            assert!(
                n.serial_speedup > 3.0,
                "{}: serial speedup = {}",
                n.net.label(),
                n.serial_speedup
            );
            assert!(n.parallel_speedup > n.serial_speedup);
            assert!(n.seqpoints < n.epoch_iterations);
            // The paper: 1/3 (GNMT) to 1/6 (DS2) of prior's iterations.
            assert!(n.iterations_vs_prior > 1.0);
        }
    }
}
