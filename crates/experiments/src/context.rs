use std::collections::HashMap;

use gpu_sim::{Device, GpuConfig};
use seqpoint_core::{BaselineKind, SeqPointConfig};
use sqnn::models::{ds2, gnmt};
use sqnn::Network;
use sqnn_data::{BatchPolicy, Corpus, EpochPlan};
use sqnn_profiler::{EpochProfile, Profiler};

/// The SeqPoint identification thresholds used by the evaluation: the
/// paper's `n = 10` and initial `k = 5`, with a 0.05% error target. The
/// paper does not publish its `e`; 0.05% lands the SeqPoint counts
/// closest to the published 8 (DS2) / 15 (GNMT) at paper scale (our
/// noise-free simulator converges faster than real-hardware profiles, so
/// the same counts need a tighter target).
pub fn identification_config() -> SeqPointConfig {
    SeqPointConfig {
        error_threshold_pct: 0.05,
        // Generous bin headroom: reduced-scale test epochs sometimes need
        // k beyond 64 to reach the 0.05% target (refinement stops as soon
        // as the threshold is met, so paper-scale counts are unaffected).
        max_k: 256,
        ..SeqPointConfig::default()
    }
}

/// The `prior` baseline as evaluated: 50 contiguous iterations after a
/// fixed warmup. The warmup stands for the first minutes of training
/// (data-pipeline spin-up plus the autotune pass) — 150 iterations at
/// paper scale, clamped to a third of short test epochs.
pub fn prior_baseline(epoch_iterations: usize) -> BaselineKind {
    BaselineKind::Prior {
        warmup: 150.min(epoch_iterations / 3),
        window: 50,
    }
}

/// The four baselines plus the order the paper's figures use.
pub fn paper_baselines(epoch_iterations: usize) -> Vec<BaselineKind> {
    vec![
        BaselineKind::Worst,
        BaselineKind::Frequent,
        BaselineKind::Median,
        prior_baseline(epoch_iterations),
    ]
}

/// Which evaluation network a result refers to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Net {
    /// Google's Neural Machine Translation on the IWSLT'15-like corpus.
    Gnmt,
    /// DeepSpeech2 on the LibriSpeech-100h-like corpus.
    Ds2,
}

impl Net {
    /// Display label.
    pub fn label(self) -> &'static str {
        match self {
            Net::Gnmt => "GNMT",
            Net::Ds2 => "DS2",
        }
    }

    /// Both evaluation networks.
    pub fn both() -> [Net; 2] {
        [Net::Ds2, Net::Gnmt]
    }
}

/// Experiment scale: dataset sizes and the RNG seed.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Scale {
    /// IWSLT'15-like sentence count (paper: ~133k).
    pub gnmt_sentences: usize,
    /// LibriSpeech-like utterance count (paper: ~28.5k).
    pub ds2_utterances: usize,
    /// Seed for corpora and batching.
    pub seed: u64,
}

impl Scale {
    /// The paper-equivalent scale.
    pub fn paper() -> Self {
        Scale {
            gnmt_sentences: 133_000,
            ds2_utterances: 28_539,
            seed: 20,
        }
    }

    /// A reduced scale for tests and quick runs (same SL ranges, fewer
    /// iterations). DS2 keeps enough utterances that its epoch is still
    /// several times larger than a SeqPoint set — the ratio the
    /// profiling-speedup experiment measures.
    pub fn quick() -> Self {
        Scale {
            gnmt_sentences: 6_000,
            ds2_utterances: 8_000,
            seed: 20,
        }
    }
}

/// Shared experiment state: the two networks, their epoch plans, the
/// Table II configurations, and a cache of epoch profiles keyed by
/// `(network, config)`.
///
/// Profiles are computed lazily — experiments only pay for the
/// configurations they actually touch — and with kernel detail, so every
/// figure can be derived from the same profile set.
#[derive(Debug)]
pub struct Workloads {
    scale: Scale,
    gnmt: Network,
    ds2: Network,
    gnmt_corpus: Corpus,
    ds2_corpus: Corpus,
    gnmt_plan: EpochPlan,
    ds2_plan: EpochPlan,
    configs: [GpuConfig; 5],
    profiles: HashMap<(Net, usize), EpochProfile>,
}

impl Workloads {
    /// Build workloads at the given scale.
    pub fn new(scale: Scale) -> Self {
        let gnmt_corpus = Corpus::iwslt15_like(scale.gnmt_sentences, scale.seed);
        let ds2_corpus = Corpus::sampled(
            "librispeech100-like",
            &Corpus::librispeech_length_model(),
            scale.ds2_utterances,
            29,
            scale.seed,
        );
        // GNMT uses length-bucketed batching; DS2 sorts its first epoch
        // (both per the paper's Section VI-E discussion).
        let gnmt_plan = EpochPlan::new(&gnmt_corpus, BatchPolicy::bucketed(64, 16), scale.seed)
            .expect("corpus is non-empty");
        let ds2_plan = EpochPlan::new(&ds2_corpus, BatchPolicy::sorted_first_epoch(64), scale.seed)
            .expect("corpus is non-empty");
        Workloads {
            scale,
            gnmt: gnmt(),
            ds2: ds2(),
            gnmt_corpus,
            ds2_corpus,
            gnmt_plan,
            ds2_plan,
            configs: GpuConfig::table2_configs(),
            profiles: HashMap::new(),
        }
    }

    /// Paper-scale workloads.
    pub fn paper() -> Self {
        Workloads::new(Scale::paper())
    }

    /// Quick-scale workloads for tests.
    pub fn quick() -> Self {
        Workloads::new(Scale::quick())
    }

    /// The scale in use.
    pub fn scale(&self) -> Scale {
        self.scale
    }

    /// The network model for `net`.
    pub fn network(&self, net: Net) -> &Network {
        match net {
            Net::Gnmt => &self.gnmt,
            Net::Ds2 => &self.ds2,
        }
    }

    /// The epoch plan for `net`.
    pub fn plan(&self, net: Net) -> &EpochPlan {
        match net {
            Net::Gnmt => &self.gnmt_plan,
            Net::Ds2 => &self.ds2_plan,
        }
    }

    /// The corpus behind `net`'s epoch plan.
    pub fn corpus(&self, net: Net) -> &Corpus {
        match net {
            Net::Gnmt => &self.gnmt_corpus,
            Net::Ds2 => &self.ds2_corpus,
        }
    }

    /// A steady-state epoch plan for `net`: uniformly shuffled batches
    /// of `batch_size`, as every epoch after the first looks (DS2 only
    /// sorts its first epoch; GNMT reshuffles bucket order). This is the
    /// regime the streaming/online selection path targets.
    pub fn steady_state_plan(&self, net: Net, batch_size: u32) -> EpochPlan {
        EpochPlan::new(
            self.corpus(net),
            BatchPolicy::shuffled(batch_size),
            self.scale.seed,
        )
        .expect("corpora are non-empty")
    }

    /// The Table II configurations (index 0 = config #1).
    pub fn configs(&self) -> &[GpuConfig; 5] {
        &self.configs
    }

    /// One Table II configuration by zero-based index.
    ///
    /// # Panics
    ///
    /// Panics if `idx >= 5`.
    pub fn config(&self, idx: usize) -> &GpuConfig {
        &self.configs[idx]
    }

    /// The (cached) full-epoch profile of `net` on configuration `idx`,
    /// with kernel detail.
    pub fn profile(&mut self, net: Net, idx: usize) -> &EpochProfile {
        let key = (net, idx);
        if !self.profiles.contains_key(&key) {
            let device = Device::new(self.configs[idx].clone());
            let profiler = Profiler::new().with_kernel_detail();
            let profile = profiler
                .profile_epoch(self.network(net), self.plan(net), &device)
                .expect("plans are non-empty");
            self.profiles.insert(key, profile);
        }
        self.profiles.get(&key).expect("just inserted")
    }

    /// Re-profile single iterations of the given sequence lengths on
    /// configuration `idx`, returning mean iteration time per SL.
    pub fn reprofile_seq_lens(&self, net: Net, idx: usize, seq_lens: &[u32]) -> HashMap<u32, f64> {
        let device = Device::new(self.configs[idx].clone());
        let batch = self.plan(net).batch_size();
        let profiles =
            Profiler::new().profile_seq_lens(self.network(net), batch, seq_lens, &device);
        profiles
            .into_iter()
            .map(|p| (p.seq_len, p.time_s))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_workloads_build_and_profile() {
        let mut w = Workloads::quick();
        assert_eq!(w.configs().len(), 5);
        let iterations = w.plan(Net::Ds2).iterations();
        let p = w.profile(Net::Ds2, 0);
        assert_eq!(p.iteration_count(), iterations);
        assert!(p.training_time_s() > 0.0);
        // Cached: second call returns the same profile.
        let t = w.profile(Net::Ds2, 0).training_time_s();
        assert_eq!(t, w.profile(Net::Ds2, 0).training_time_s());
    }

    #[test]
    fn reprofiling_matches_epoch_times_for_full_batches() {
        let mut w = Workloads::quick();
        let sl = {
            let p = w.profile(Net::Gnmt, 0);
            // Pick an SL whose every occurrence is a full batch (a partial
            // last batch at the same SL would skew the epoch mean).
            p.iterations()
                .iter()
                .find(|i| {
                    i.samples == 64
                        && p.iterations()
                            .iter()
                            .all(|j| j.seq_len != i.seq_len || j.samples == 64)
                })
                .expect("some SL with only full batches")
                .seq_len
        };
        let re = w.reprofile_seq_lens(Net::Gnmt, 0, &[sl]);
        let epoch_mean = w.profile(Net::Gnmt, 0).mean_time_of(sl).unwrap();
        let rel = ((re[&sl] - epoch_mean) / epoch_mean).abs();
        assert!(rel < 1e-9, "rel = {rel}");
    }
}
