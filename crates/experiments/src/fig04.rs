//! Fig. 4 — architectural statistics for four representative iterations.
//!
//! The paper shows memory-write stalls, VALU instruction counts, and load
//! data sizes (averaged per operation) differing by ~24–27% across four
//! iterations of DS2 and GNMT. We pick four iterations spread across each
//! network's SL range on config #1 and report the same three normalized
//! counters plus their max/min spreads.

use seqpoint_core::stats::spread_pct;
use sqnn_profiler::{report::Table, StatKind};

use crate::{Net, Workloads};

/// Per-network results: the normalized counter values of four iterations
/// and the spread of each counter.
#[derive(Debug, Clone)]
pub struct Fig04Net {
    /// Which network.
    pub net: Net,
    /// The four iterations' sequence lengths.
    pub seq_lens: [u32; 4],
    /// Spread (max/min − 1, %) of mem-write stalls across iterations.
    pub write_stall_spread_pct: f64,
    /// Spread of VALU instructions.
    pub valu_spread_pct: f64,
    /// Spread of load data size.
    pub load_spread_pct: f64,
}

/// Result of the Fig. 4 experiment.
#[derive(Debug, Clone)]
pub struct Fig04 {
    /// Per-network spreads.
    pub nets: Vec<Fig04Net>,
    /// Rendered table.
    pub table: Table,
}

/// Run the experiment.
pub fn run(w: &mut Workloads) -> Fig04 {
    let mut table = Table::new(
        "Fig. 4 — per-iteration counters (normalized to iteration 1, per operation)",
        [
            "network",
            "iteration (SL)",
            "mem write stalls",
            "VALU insts",
            "load data size",
        ],
    );
    let mut nets = Vec::new();
    for net in Net::both() {
        let profile = w.profile(net, 0);
        // Four iterations spread across the epoch's SL range.
        let lens = {
            let unique: Vec<u32> = profile
                .iterations()
                .iter()
                .map(|i| i.seq_len)
                .collect::<std::collections::BTreeSet<_>>()
                .into_iter()
                .collect();
            let n = unique.len();
            [
                unique[n / 8],
                unique[n * 3 / 8],
                unique[n * 5 / 8],
                unique[n * 7 / 8],
            ]
        };
        // Per-operation averages: counter totals divided by launches.
        let per_op = |sl: u32, kind: StatKind| -> f64 {
            let it = profile
                .iterations()
                .iter()
                .find(|i| i.seq_len == sl)
                .expect("SL came from this profile");
            it.stat(kind) / it.launches as f64
        };
        let stalls: Vec<f64> = lens
            .iter()
            .map(|&sl| per_op(sl, StatKind::MemWriteStalls))
            .collect();
        let valu: Vec<f64> = lens
            .iter()
            .map(|&sl| per_op(sl, StatKind::ValuInsts))
            .collect();
        let load: Vec<f64> = lens
            .iter()
            .map(|&sl| per_op(sl, StatKind::LoadBytes))
            .collect();
        for (i, &sl) in lens.iter().enumerate() {
            table.push_row([
                net.label().to_owned(),
                format!("iter-{} (SL {sl})", i + 1),
                format!("{:.3}", stalls[i] / stalls[0]),
                format!("{:.3}", valu[i] / valu[0]),
                format!("{:.3}", load[i] / load[0]),
            ]);
        }
        nets.push(Fig04Net {
            net,
            seq_lens: lens,
            write_stall_spread_pct: spread_pct(&stalls),
            valu_spread_pct: spread_pct(&valu),
            load_spread_pct: spread_pct(&load),
        });
    }
    Fig04 { nets, table }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_differ_meaningfully_across_iterations() {
        let mut w = Workloads::quick();
        let r = run(&mut w);
        assert_eq!(r.nets.len(), 2);
        for n in &r.nets {
            // The paper quotes ~24–27% differences; our substrate must at
            // least show double-digit swings for some counter.
            let max_spread = n
                .write_stall_spread_pct
                .max(n.valu_spread_pct)
                .max(n.load_spread_pct);
            assert!(
                max_spread > 10.0,
                "{}: spreads = {:.1}/{:.1}/{:.1}",
                n.net.label(),
                n.write_stall_spread_pct,
                n.valu_spread_pct,
                n.load_spread_pct
            );
        }
        assert_eq!(r.table.row_count(), 8);
    }
}
