//! Fig. 6 — kernel runtime distribution differs based on sequence length.
//!
//! For two iterations per network, the paper plots the runtime share of
//! the dominant GEMM kernels against the rest (GNMT: GEMM-1/GEMM-2/
//! scalar-op/reduce/others; DS2: GEMM-1/GEMM-2/rest) and shows the shares
//! shifting with SL.

use std::collections::BTreeMap;

use gpu_sim::{AutotuneTable, Device};
use sqnn::IterationShape;
use sqnn_profiler::report::Table;

use crate::{Net, Workloads};

/// Runtime shares of one iteration, grouped into the paper's categories.
#[derive(Debug, Clone)]
pub struct ShareRow {
    /// Which network.
    pub net: Net,
    /// The iteration's sequence length.
    pub seq_len: u32,
    /// Share of the single most expensive GEMM kernel, percent.
    pub gemm1_pct: f64,
    /// Share of the second most expensive GEMM kernel, percent.
    pub gemm2_pct: f64,
    /// Share of element-wise ("scalar-op") kernels, percent.
    pub scalar_pct: f64,
    /// Share of reduce/softmax kernels, percent.
    pub reduce_pct: f64,
    /// Everything else, percent.
    pub rest_pct: f64,
}

/// Result of the Fig. 6 experiment.
#[derive(Debug, Clone)]
pub struct Fig06 {
    /// Two rows per network.
    pub rows: Vec<ShareRow>,
    /// Rendered table.
    pub table: Table,
}

fn shares(w: &Workloads, net: Net, sl: u32) -> ShareRow {
    let device = Device::new(w.config(0).clone());
    let mut tuner = AutotuneTable::new();
    let trace =
        w.network(net)
            .iteration_trace(&IterationShape::new(64, sl), device.config(), &mut tuner);
    let profile = device.run_trace(&trace);
    let total = profile.total_time_s();
    // Rank GEMM kernels by time; group the rest by kind.
    let mut gemm_times: Vec<f64> = Vec::new();
    let mut scalar = 0.0;
    let mut reduce = 0.0;
    let mut rest = 0.0;
    let mut by_kind: BTreeMap<&str, f64> = BTreeMap::new();
    for (name, agg) in profile.by_kernel() {
        use gpu_sim::KernelKind as K;
        match agg.kind {
            K::Gemm | K::Conv => gemm_times.push(agg.time_s),
            K::Elementwise | K::Optimizer => scalar += agg.time_s,
            K::Reduce | K::Softmax | K::BatchNorm => reduce += agg.time_s,
            _ => rest += agg.time_s,
        }
        *by_kind.entry(name.as_str()).or_insert(0.0) += agg.time_s;
    }
    gemm_times.sort_by(|a, b| b.total_cmp(a));
    let gemm1 = gemm_times.first().copied().unwrap_or(0.0);
    let gemm2 = gemm_times.get(1).copied().unwrap_or(0.0);
    let gemm_rest: f64 = gemm_times.iter().skip(2).sum();
    ShareRow {
        net,
        seq_len: sl,
        gemm1_pct: gemm1 / total * 100.0,
        gemm2_pct: gemm2 / total * 100.0,
        scalar_pct: scalar / total * 100.0,
        reduce_pct: reduce / total * 100.0,
        rest_pct: (rest + gemm_rest) / total * 100.0,
    }
}

/// Run the experiment: GNMT at SLs 24/190 and DS2 at SLs 60/400.
pub fn run(w: &mut Workloads) -> Fig06 {
    let picks = [
        (Net::Gnmt, 24),
        (Net::Gnmt, 190),
        (Net::Ds2, 60),
        (Net::Ds2, 400),
    ];
    let mut table = Table::new(
        "Fig. 6 — kernel runtime distribution by sequence length (config #1)",
        [
            "network",
            "SL",
            "GEMM-1 %",
            "GEMM-2 %",
            "scalar-op %",
            "reduce %",
            "rest %",
        ],
    );
    let mut rows = Vec::new();
    for (net, sl) in picks {
        let row = shares(w, net, sl);
        table.push_row([
            net.label().to_owned(),
            sl.to_string(),
            format!("{:.1}", row.gemm1_pct),
            format!("{:.1}", row.gemm2_pct),
            format!("{:.1}", row.scalar_pct),
            format!("{:.1}", row.reduce_pct),
            format!("{:.1}", row.rest_pct),
        ]);
        rows.push(row);
    }
    Fig06 { rows, table }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shares_shift_with_sequence_length() {
        let mut w = Workloads::quick();
        let r = run(&mut w);
        assert_eq!(r.rows.len(), 4);
        for row in &r.rows {
            let sum =
                row.gemm1_pct + row.gemm2_pct + row.scalar_pct + row.reduce_pct + row.rest_pct;
            assert!((sum - 100.0).abs() < 0.5, "sum = {sum}");
        }
        // The distribution must differ between the two GNMT iterations
        // (the paper: "contributions … differ significantly based on SL").
        let (a, b) = (&r.rows[0], &r.rows[1]);
        let l1 = (a.gemm1_pct - b.gemm1_pct).abs()
            + (a.gemm2_pct - b.gemm2_pct).abs()
            + (a.scalar_pct - b.scalar_pct).abs()
            + (a.reduce_pct - b.reduce_pct).abs();
        assert!(l1 > 5.0, "distribution shift = {l1}");
    }
}
