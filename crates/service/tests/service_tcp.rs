//! Loopback end-to-end tests of the TCP transport: token auth gating,
//! concurrent TCP clients, TCP-vs-Unix-vs-offline byte-identity,
//! terminal-job retention, and the client-side timeout/connect_ready
//! regressions — all against an in-process `serve()`.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::path::PathBuf;
use std::time::{Duration, Instant};

use seqpoint_core::protocol::{
    decode_frame, encode_frame, JobSpec, Request, Response, PROTOCOL_VERSION,
};
use seqpoint_core::stream::StreamConfig;
use seqpoint_service::client::{Client, ClientOptions};
use seqpoint_service::spec::{render_streamed, resolve};
use seqpoint_service::{serve, Endpoint, ServeConfig, ServiceError};
use sqnn_profiler::stream::profile_epoch_streaming;
use sqnn_profiler::Profiler;

/// A unique scratch dir (sockets + state) removed on drop.
struct Scratch(PathBuf);

impl Scratch {
    fn new(tag: &str) -> Self {
        let dir = std::env::temp_dir().join(format!("seqpoint-tcp-{}-{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        Scratch(dir)
    }

    fn socket(&self) -> PathBuf {
        self.0.join("sock")
    }

    fn state(&self) -> PathBuf {
        self.0.join("state")
    }

    /// Poll the daemon's published TCP address file until it appears.
    fn tcp_addr(&self) -> String {
        let path = self.state().join("serve.tcp");
        let deadline = Instant::now() + Duration::from_secs(10);
        loop {
            if let Ok(addr) = std::fs::read_to_string(&path) {
                if !addr.trim().is_empty() {
                    return addr.trim().to_owned();
                }
            }
            assert!(Instant::now() < deadline, "serve.tcp never appeared");
            std::thread::sleep(Duration::from_millis(25));
        }
    }
}

impl Drop for Scratch {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

const TOKEN: &str = "tcp-suite-s3cret";

fn tcp_config(scratch: &Scratch) -> ServeConfig {
    ServeConfig {
        tcp: Some("127.0.0.1:0".to_owned()),
        token: Some(TOKEN.to_owned()),
        ..ServeConfig::new(scratch.socket(), scratch.state())
    }
}

fn tcp_options() -> ClientOptions {
    ClientOptions::default().with_token(TOKEN)
}

/// The standard quick-scale job of the smoke tests.
fn quick_spec(samples: u64, seed: u64) -> JobSpec {
    JobSpec {
        model: "gnmt".to_owned(),
        dataset: "iwslt15".to_owned(),
        samples,
        seed,
        batch: 16,
        shards: 3,
        round_len: 32,
        stream: StreamConfig {
            saturation_window: 128,
            unseen_threshold: 0.05,
            quantization: 8,
            ..StreamConfig::default()
        },
        ..JobSpec::default()
    }
}

/// What `seqpoint stream` would print for this spec — computed offline.
fn offline_reference(spec: &JobSpec) -> String {
    let resolved = resolve(spec).unwrap();
    let streamed = profile_epoch_streaming(
        &Profiler::new(),
        &resolved.network,
        &resolved.plan,
        &resolved.device,
        &resolved.options,
    )
    .unwrap();
    render_streamed(&spec.model, &spec.dataset, spec.config, &streamed)
}

fn start_server(config: ServeConfig) -> std::thread::JoinHandle<()> {
    std::thread::spawn(move || {
        serve(config).expect("serve failed");
    })
}

fn shutdown(socket: &std::path::Path) {
    if let Ok(mut client) = Client::connect(socket) {
        let _ = client.request(&Request::Shutdown);
    }
}

/// Write one raw frame line and read one raw response line on a bare
/// TCP stream (bypassing `Client`'s handshake).
fn raw_roundtrip(stream: &mut TcpStream, request: &Request) -> Response {
    let mut line = encode_frame(request);
    line.push('\n');
    stream.write_all(line.as_bytes()).unwrap();
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    let mut reply = String::new();
    let n = reader.read_line(&mut reply).unwrap();
    assert!(n > 0, "server closed before replying");
    decode_frame(&reply).unwrap()
}

#[test]
fn tcp_served_jobs_match_unix_and_offline_byte_for_byte() {
    let scratch = Scratch::new("identity");
    let config = ServeConfig {
        job_slots: 2,
        queue_cap: 8,
        ..tcp_config(&scratch)
    };
    let handle = start_server(config);
    let endpoint = Endpoint::tcp(scratch.tcp_addr());

    // Two concurrent TCP clients, two different corpora.
    let spec_a = quick_spec(6_000, 20);
    let spec_b = quick_spec(5_000, 21);
    let mut client =
        Client::open_ready(&endpoint, &tcp_options(), Duration::from_secs(10)).unwrap();
    client
        .submit(Some("tcp-a".to_owned()), spec_a.clone())
        .unwrap();
    let waiter = {
        let endpoint = endpoint.clone();
        let spec_b = spec_b.clone();
        std::thread::spawn(move || {
            let mut other = Client::open(&endpoint, &tcp_options()).unwrap();
            other.submit(Some("tcp-b".to_owned()), spec_b).unwrap();
            other.wait_result("tcp-b").unwrap()
        })
    };
    let out_a = client.wait_result("tcp-a").unwrap();
    let out_b = waiter.join().unwrap();
    assert_eq!(out_a, offline_reference(&spec_a));
    assert_eq!(out_b, offline_reference(&spec_b));
    assert_ne!(out_a, out_b);

    // The same result read back over the Unix socket is the same bytes:
    // one job store, two transports.
    let mut unix = Client::connect(&scratch.socket()).unwrap();
    assert_eq!(unix.wait_result("tcp-a").unwrap(), out_a);

    // And a fresh submission of spec_a over Unix renders identically.
    let id = unix.submit(None, spec_a).unwrap();
    assert_eq!(unix.wait_result(&id).unwrap(), out_a);

    shutdown(&scratch.socket());
    handle.join().unwrap();
}

#[test]
fn unauthenticated_tcp_connections_are_rejected_before_any_job_state() {
    let scratch = Scratch::new("auth");
    let handle = start_server(tcp_config(&scratch));
    let addr = scratch.tcp_addr();
    let endpoint = Endpoint::tcp(addr.clone());
    // Wait until the daemon answers authenticated pings.
    let mut good = Client::open_ready(&endpoint, &tcp_options(), Duration::from_secs(10)).unwrap();

    // 1. A frame before any handshake: one error line, then EOF — and
    //    the submit must not have created a job.
    let mut bare = TcpStream::connect(addr.as_str()).unwrap();
    let reply = raw_roundtrip(
        &mut bare,
        &Request::Submit {
            job: Some("intruder".to_owned()),
            spec: quick_spec(1_000, 1),
        },
    );
    match reply {
        Response::Error { reason } => assert!(reason.contains("authentication"), "{reason}"),
        other => panic!("expected an auth error, got {other:?}"),
    }
    let mut rest = Vec::new();
    bare.read_to_end(&mut rest).unwrap();
    assert!(
        rest.is_empty(),
        "connection must close after the error line"
    );

    // 2. A wrong token in the handshake is refused the same way.
    let mut wrong = TcpStream::connect(addr.as_str()).unwrap();
    let reply = raw_roundtrip(
        &mut wrong,
        &Request::Hello {
            version: PROTOCOL_VERSION,
            token: Some("not-the-token".to_owned()),
            client: None,
        },
    );
    assert!(matches!(reply, Response::Error { .. }), "{reply:?}");

    // 3. A missing token through the real client surfaces as Auth.
    let no_token = Client::open(&endpoint, &ClientOptions::default().with_io_timeout(None));
    assert!(matches!(no_token, Err(ServiceError::Auth(_))));

    // 4. A protocol version mismatch is refused before auth succeeds.
    let mut stale = TcpStream::connect(addr.as_str()).unwrap();
    let reply = raw_roundtrip(
        &mut stale,
        &Request::Hello {
            version: PROTOCOL_VERSION + 1,
            token: Some(TOKEN.to_owned()),
            client: None,
        },
    );
    match reply {
        Response::Error { reason } => assert!(reason.contains("version"), "{reason}"),
        other => panic!("expected a version error, got {other:?}"),
    }

    // No job state was touched by any of it.
    match good.request(&Request::Ping).unwrap() {
        Response::Pong {
            queued, running, ..
        } => {
            assert_eq!(queued, 0);
            assert_eq!(running, 0);
        }
        other => panic!("unexpected {other:?}"),
    }
    assert!(matches!(
        good.request(&Request::Status {
            job: "intruder".to_owned()
        })
        .unwrap(),
        Response::Error { .. }
    ));

    shutdown(&scratch.socket());
    handle.join().unwrap();
}

#[test]
fn serve_refuses_tcp_without_a_token_and_zero_retention() {
    let scratch = Scratch::new("badconfig");
    let tokenless = ServeConfig {
        tcp: Some("127.0.0.1:0".to_owned()),
        ..ServeConfig::new(scratch.socket(), scratch.state())
    };
    let err = serve(tokenless).unwrap_err();
    assert!(err.to_string().contains("token"), "{err}");

    let zero_retention = ServeConfig {
        retain_jobs: Some(0),
        ..ServeConfig::new(scratch.socket(), scratch.state())
    };
    let err = serve(zero_retention).unwrap_err();
    assert!(err.to_string().contains("retain"), "{err}");

    let zero_ttl = ServeConfig {
        retain_for: Some(Duration::ZERO),
        ..ServeConfig::new(scratch.socket(), scratch.state())
    };
    let err = serve(zero_ttl).unwrap_err();
    assert!(err.to_string().contains("retain_for"), "{err}");
}

#[test]
fn terminal_job_retention_evicts_oldest_first_and_survives_restart() {
    let scratch = Scratch::new("retention");
    let config = ServeConfig {
        job_slots: 1,
        retain_jobs: Some(2),
        ..ServeConfig::new(scratch.socket(), scratch.state())
    };
    let handle = start_server(config);
    let socket = scratch.socket();
    let mut client = Client::connect_ready(&socket, Duration::from_secs(10)).unwrap();

    // Four sequential jobs; with a bound of 2 the first two must be
    // gone — map entry, spec file, and result file alike.
    for (i, seed) in [1u64, 2, 3, 4].iter().enumerate() {
        let id = format!("ret-{i}");
        client
            .submit(Some(id.clone()), quick_spec(2_000, *seed))
            .unwrap();
        client.wait_result(&id).unwrap();
    }
    for gone in ["ret-0", "ret-1"] {
        assert!(
            matches!(
                client
                    .request(&Request::Status {
                        job: gone.to_owned()
                    })
                    .unwrap(),
                Response::Error { .. }
            ),
            "{gone} should have been evicted"
        );
        assert!(!scratch.state().join(format!("{gone}.spec.json")).exists());
        assert!(!scratch.state().join(format!("{gone}.result.txt")).exists());
    }
    for kept in ["ret-2", "ret-3"] {
        assert!(client.wait_result(kept).is_ok(), "{kept} should survive");
        assert!(scratch.state().join(format!("{kept}.result.txt")).exists());
    }

    shutdown(&socket);
    handle.join().unwrap();

    // Recovery applies the (tighter) bound too: restart retaining 1 and
    // only the newest job survives.
    let handle = start_server(ServeConfig {
        job_slots: 1,
        retain_jobs: Some(1),
        ..ServeConfig::new(scratch.socket(), scratch.state())
    });
    let mut client = Client::connect_ready(&socket, Duration::from_secs(10)).unwrap();
    assert!(client.wait_result("ret-3").is_ok());
    assert!(matches!(
        client
            .request(&Request::Status {
                job: "ret-2".to_owned()
            })
            .unwrap(),
        Response::Error { .. }
    ));
    assert!(!scratch.state().join("ret-2.result.txt").exists());

    shutdown(&socket);
    handle.join().unwrap();
}

#[test]
fn terminal_job_ttl_evicts_aged_jobs_without_new_traffic() {
    let scratch = Scratch::new("ttl");
    let config = ServeConfig {
        job_slots: 1,
        retain_for: Some(Duration::from_secs(1)),
        ..ServeConfig::new(scratch.socket(), scratch.state())
    };
    let handle = start_server(config);
    let socket = scratch.socket();
    let mut client = Client::connect_ready(&socket, Duration::from_secs(10)).unwrap();

    // Two sequential jobs; both exist the moment they finish (the TTL
    // has not elapsed yet), proving the bound is age-based rather than
    // evict-on-completion.
    for (i, seed) in [1u64, 2].iter().enumerate() {
        let id = format!("ttl-{i}");
        client
            .submit(Some(id.clone()), quick_spec(2_000, *seed))
            .unwrap();
        client.wait_result(&id).unwrap();
    }
    assert!(client.wait_result("ttl-0").is_ok());
    assert!(client.wait_result("ttl-1").is_ok());

    // With no further submissions, the accept loop's periodic sweep
    // must evict both once they age past the TTL — map entries and
    // state files alike.
    let deadline = Instant::now() + Duration::from_secs(15);
    loop {
        let evicted = ["ttl-0", "ttl-1"].iter().all(|id| {
            matches!(
                client
                    .request(&Request::Status {
                        job: (*id).to_owned()
                    })
                    .unwrap(),
                Response::Error { .. }
            )
        });
        if evicted {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "TTL-expired jobs were never evicted"
        );
        std::thread::sleep(Duration::from_millis(100));
    }
    for gone in ["ttl-0", "ttl-1"] {
        assert!(!scratch.state().join(format!("{gone}.spec.json")).exists());
        assert!(!scratch.state().join(format!("{gone}.result.txt")).exists());
    }

    shutdown(&socket);
    handle.join().unwrap();
}

#[test]
fn requests_time_out_against_a_server_that_accepts_but_never_replies() {
    // TCP flavor: the handshake read hits the timeout instead of
    // hanging `Client::open` forever.
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap().to_string();
    let hold = std::thread::spawn(move || {
        // Accept and hold the connections open without ever replying.
        let mut held = Vec::new();
        let deadline = Instant::now() + Duration::from_secs(10);
        listener.set_nonblocking(true).unwrap();
        while Instant::now() < deadline && held.len() < 2 {
            if let Ok((conn, _)) = listener.accept() {
                held.push(conn);
            }
            std::thread::sleep(Duration::from_millis(5));
        }
        std::thread::sleep(Duration::from_millis(1_500));
        drop(held);
    });
    let options = tcp_options().with_io_timeout(Some(Duration::from_millis(300)));
    let t0 = Instant::now();
    let err = Client::open(&Endpoint::tcp(addr.clone()), &options).unwrap_err();
    assert!(
        t0.elapsed() < Duration::from_secs(5),
        "client hung on a wedged TCP server"
    );
    assert!(matches!(err, ServiceError::Io { .. }), "{err:?}");

    // Unix flavor: connect succeeds (no handshake), the request itself
    // times out.
    let dir = std::env::temp_dir().join(format!("seqpoint-wedged-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let sock = dir.join("wedged.sock");
    let unix_listener = std::os::unix::net::UnixListener::bind(&sock).unwrap();
    let hold_unix = std::thread::spawn(move || {
        let conn = unix_listener.accept().map(|(c, _)| c);
        std::thread::sleep(Duration::from_millis(1_500));
        drop(conn);
    });
    let options = ClientOptions::default().with_io_timeout(Some(Duration::from_millis(300)));
    let mut client = Client::open(&Endpoint::unix(&sock), &options).unwrap();
    let t0 = Instant::now();
    let err = client.request(&Request::Ping).unwrap_err();
    assert!(
        t0.elapsed() < Duration::from_secs(5),
        "client hung on a wedged Unix server"
    );
    assert!(matches!(err, ServiceError::Io { .. }), "{err:?}");

    hold.join().unwrap();
    hold_unix.join().unwrap();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn connect_ready_reports_the_last_error_and_respects_its_deadline() {
    // Nothing listens here: every attempt fails fast with a connect
    // error that the final timeout message must carry.
    let missing = std::env::temp_dir().join(format!(
        "seqpoint-nosock-{}-connect-ready",
        std::process::id()
    ));
    let _ = std::fs::remove_file(&missing);
    let t0 = Instant::now();
    let err = Client::connect_ready(&missing, Duration::from_millis(300)).unwrap_err();
    let elapsed = t0.elapsed();
    assert!(
        elapsed < Duration::from_secs(3),
        "connect_ready overshot its deadline: {elapsed:?}"
    );
    let message = err.to_string();
    assert!(
        message.contains("last error"),
        "timeout must surface the underlying failure: {message}"
    );
    assert!(
        message.contains("connecting to"),
        "the real connect error is missing: {message}"
    );

    // A refused token fails immediately (no point retrying credentials).
    let scratch = Scratch::new("readyauth");
    let handle = start_server(tcp_config(&scratch));
    let endpoint = Endpoint::tcp(scratch.tcp_addr());
    let _warm = Client::open_ready(&endpoint, &tcp_options(), Duration::from_secs(10)).unwrap();
    let t0 = Instant::now();
    let err = Client::open_ready(
        &endpoint,
        &ClientOptions::default().with_token("wrong"),
        Duration::from_secs(30),
    )
    .unwrap_err();
    assert!(matches!(err, ServiceError::Auth(_)), "{err:?}");
    assert!(
        t0.elapsed() < Duration::from_secs(5),
        "a bad token must not be retried for the whole deadline"
    );

    shutdown(&scratch.socket());
    handle.join().unwrap();
}

#[test]
fn wait_result_outlives_its_read_timeout_via_server_heartbeats() {
    let scratch = Scratch::new("heartbeat");
    let config = ServeConfig {
        job_slots: 1,
        wait_heartbeat: Duration::from_millis(200),
        ..ServeConfig::new(scratch.socket(), scratch.state())
    };
    let handle = start_server(config);
    let socket = scratch.socket();

    // Client patience far below the job's duration: only the server's
    // heartbeat Status frames keep the blocking wait alive, so the
    // io_timeout measures connection liveness, not job length.
    let options = ClientOptions::default().with_io_timeout(Some(Duration::from_millis(800)));
    let mut client =
        Client::open_ready(&Endpoint::unix(&socket), &options, Duration::from_secs(10)).unwrap();
    let spec = JobSpec {
        throttle_ms: 400, // several seconds of runtime, several beats
        ..quick_spec(4_000, 20)
    };
    let reference = offline_reference(&spec);
    let id = client.submit(Some("slowpoke".to_owned()), spec).unwrap();
    let output = client.wait_result(&id).unwrap();
    assert_eq!(output, reference);

    shutdown(&socket);
    handle.join().unwrap();
}

#[test]
fn resilient_worker_outlives_its_retry_window_and_exits_cleanly_on_drain() {
    use seqpoint_service::worker::run_worker_resilient;

    // A fake daemon: welcome the worker, keep the registered session
    // open well past the worker's retry window, then close it and stop
    // answering — the worker must treat the close as a drain (it served
    // a session, so the window restarts from the close, not from the
    // session's beginning) and exit Ok instead of erroring out.
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap().to_string();
    let retry_window = Duration::from_millis(400);
    let session_len = Duration::from_millis(1_200); // ≫ retry_window
    let server = std::thread::spawn(move || {
        let (conn, _) = listener.accept().unwrap();
        let mut reader = BufReader::new(conn.try_clone().unwrap());
        let mut writer = conn;
        let mut line = String::new();
        reader.read_line(&mut line).unwrap(); // Hello
        let mut welcome = encode_frame(&Response::Welcome {
            version: PROTOCOL_VERSION,
        });
        welcome.push('\n');
        writer.write_all(welcome.as_bytes()).unwrap();
        line.clear();
        reader.read_line(&mut line).unwrap(); // Register
        assert!(line.contains("Register"), "{line}");
        std::thread::sleep(session_len);
        drop(writer); // close; further connects are refused once the
        drop(reader); // listener is dropped with this thread
    });

    let t0 = Instant::now();
    let outcome = run_worker_resilient(
        &Endpoint::tcp(addr),
        Some("irrelevant"),
        retry_window,
        Some(Duration::from_secs(2)),
    );
    assert!(
        outcome.is_ok(),
        "a drained worker must exit cleanly: {outcome:?}"
    );
    assert!(
        t0.elapsed() >= session_len,
        "worker gave up while its session was still live"
    );
    server.join().unwrap();

    // And with no server at all, the window bounds the failure.
    let t0 = Instant::now();
    let err = run_worker_resilient(
        &Endpoint::tcp("127.0.0.1:9".to_owned()),
        Some("irrelevant"),
        Duration::from_millis(300),
        Some(Duration::from_millis(500)),
    )
    .unwrap_err();
    assert!(matches!(err, ServiceError::Io { .. }), "{err:?}");
    assert!(
        t0.elapsed() < Duration::from_secs(10),
        "never-reachable server must fail within the window"
    );
}
