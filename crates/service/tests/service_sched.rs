//! Multi-tenant scheduler + result-cache tests against an in-process
//! `serve()`: cache-key semantics (scheduling metadata must hit, any
//! semantic corpus/config change must miss), single-flight duplicate
//! submissions, per-client quotas, promotion after a cancelled primary,
//! and restart recovery of cached results and in-flight groups.

use std::path::PathBuf;
use std::time::Duration;

use seqpoint_core::protocol::{JobClass, JobSpec, JobState, Request, Response};
use seqpoint_core::stream::StreamConfig;
use seqpoint_service::client::Client;
use seqpoint_service::spec::{render_streamed, resolve};
use seqpoint_service::{serve, ServeConfig};
use sqnn_profiler::stream::profile_epoch_streaming;
use sqnn_profiler::Profiler;

/// A unique scratch dir (sockets + state) removed on drop.
struct Scratch(PathBuf);

impl Scratch {
    fn new(tag: &str) -> Self {
        let dir = std::env::temp_dir().join(format!("seqpoint-sched-{}-{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        Scratch(dir)
    }

    fn socket(&self) -> PathBuf {
        self.0.join("sock")
    }

    fn state(&self) -> PathBuf {
        self.0.join("state")
    }
}

impl Drop for Scratch {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

/// The standard quick-scale job of the smoke tests.
fn quick_spec(samples: u64, seed: u64) -> JobSpec {
    JobSpec {
        model: "gnmt".to_owned(),
        dataset: "iwslt15".to_owned(),
        samples,
        seed,
        batch: 16,
        shards: 3,
        round_len: 32,
        stream: StreamConfig {
            saturation_window: 128,
            unseen_threshold: 0.05,
            quantization: 8,
            ..StreamConfig::default()
        },
        ..JobSpec::default()
    }
}

/// What `seqpoint stream` would print for this spec — computed offline.
fn offline_reference(spec: &JobSpec) -> String {
    let resolved = resolve(spec).unwrap();
    let streamed = profile_epoch_streaming(
        &Profiler::new(),
        &resolved.network,
        &resolved.plan,
        &resolved.device,
        &resolved.options,
    )
    .unwrap();
    render_streamed(&spec.model, &spec.dataset, spec.config, &streamed)
}

fn start_server(config: ServeConfig) -> std::thread::JoinHandle<()> {
    std::thread::spawn(move || {
        serve(config).expect("serve failed");
    })
}

fn shutdown(socket: &std::path::Path) {
    if let Ok(mut client) = Client::connect(socket) {
        let _ = client.request(&Request::Shutdown);
    }
}

/// `(state, detail, cache_hit)` of a job, via the protocol.
fn probe(client: &mut Client, job: &str) -> (JobState, String, bool) {
    match client
        .request(&Request::Status {
            job: job.to_owned(),
        })
        .unwrap()
    {
        Response::Status {
            state,
            detail,
            cache_hit,
            ..
        } => (state, detail, cache_hit),
        other => panic!("unexpected {other:?}"),
    }
}

/// `(cache_hits, cache_entries)` from a `Ping`.
fn cache_counters(client: &mut Client) -> (u64, u64) {
    match client.request(&Request::Ping).unwrap() {
        Response::Pong {
            cache_hits,
            cache_entries,
            ..
        } => (cache_hits, cache_entries),
        other => panic!("unexpected {other:?}"),
    }
}

#[test]
fn scheduling_metadata_hits_the_cache_but_semantic_changes_miss() {
    let scratch = Scratch::new("keys");
    let handle = start_server(ServeConfig {
        job_slots: 2,
        queue_cap: 16,
        ..ServeConfig::new(scratch.socket(), scratch.state())
    });
    let socket = scratch.socket();
    let mut client = Client::connect_ready(&socket, Duration::from_secs(10)).unwrap();

    let base = quick_spec(4_000, 20);
    let reference = offline_reference(&base);
    let first = client
        .submit(Some("seed-run".to_owned()), base.clone())
        .unwrap();
    assert_eq!(client.wait_result(&first).unwrap(), reference);
    let (_, _, hit) = probe(&mut client, &first);
    assert!(!hit, "the first flight is never a cache hit");
    assert_eq!(cache_counters(&mut client), (0, 1));

    // Scheduling metadata is NOT part of the experiment's identity:
    // each of these must be answered from the cache, byte-identically,
    // without a new profiling run.
    let metadata_variants: Vec<(&str, JobSpec)> = vec![
        (
            "throttled",
            JobSpec {
                throttle_ms: 250,
                ..base.clone()
            },
        ),
        (
            "preemptable",
            JobSpec {
                max_rounds: Some(1),
                ..base.clone()
            },
        ),
        (
            "batch-class",
            JobSpec {
                class: JobClass::Batch,
                ..base.clone()
            },
        ),
        (
            "other-tenant",
            JobSpec {
                client: "someone-else".to_owned(),
                ..base.clone()
            },
        ),
    ];
    let mut expected_hits = 0;
    for (id, spec) in metadata_variants {
        let job = client.submit(Some(id.to_owned()), spec).unwrap();
        // Served from the retained result: terminal instantly, marked
        // as a hit, byte-identical output.
        let (state, detail, hit) = probe(&mut client, &job);
        assert_eq!(state, JobState::Done, "`{job}` should be served instantly");
        assert!(hit, "`{job}` must be a cache hit ({detail})");
        assert!(detail.contains("cache"), "{detail}");
        assert_eq!(client.wait_result(&job).unwrap(), reference, "{job}");
        expected_hits += 1;
        assert_eq!(cache_counters(&mut client), (expected_hits, 1));
    }

    // Semantic changes ARE part of the identity: every one must miss
    // and run its own profiling.
    let semantic_variants: Vec<(&str, JobSpec)> = vec![
        (
            "more-samples",
            JobSpec {
                samples: 4_500,
                ..base.clone()
            },
        ),
        (
            "other-seed",
            JobSpec {
                seed: 21,
                ..base.clone()
            },
        ),
        (
            "resharded",
            JobSpec {
                shards: 2,
                ..base.clone()
            },
        ),
        (
            "longer-rounds",
            JobSpec {
                round_len: 48,
                ..base.clone()
            },
        ),
        (
            "stricter-stop",
            JobSpec {
                stream: StreamConfig {
                    saturation_window: 256,
                    ..base.stream
                },
                ..base.clone()
            },
        ),
    ];
    for (id, spec) in semantic_variants {
        let job = client.submit(Some(id.to_owned()), spec).unwrap();
        let output = client.wait_result(&job).unwrap();
        let (_, detail, hit) = probe(&mut client, &job);
        assert!(!hit, "`{job}` must NOT hit the cache ({detail})");
        // Sanity: the semantic change actually changed the experiment
        // (or at least ran fresh — resharding can render differently).
        let _ = output;
        let (hits, _) = cache_counters(&mut client);
        assert_eq!(hits, expected_hits, "`{job}` must not add a hit");
    }

    shutdown(&socket);
    handle.join().unwrap();
}

#[test]
fn duplicate_inflight_submissions_collapse_to_one_run() {
    let scratch = Scratch::new("singleflight");
    let handle = start_server(ServeConfig {
        job_slots: 2,
        queue_cap: 16,
        ..ServeConfig::new(scratch.socket(), scratch.state())
    });
    let socket = scratch.socket();
    let mut client = Client::connect_ready(&socket, Duration::from_secs(10)).unwrap();

    // Throttled so the primary is still running when the duplicates
    // arrive.
    let spec = JobSpec {
        throttle_ms: 120,
        ..quick_spec(4_000, 20)
    };
    let reference = offline_reference(&quick_spec(4_000, 20));
    let primary = client
        .submit(Some("dup-a".to_owned()), spec.clone())
        .unwrap();
    std::thread::sleep(Duration::from_millis(200));
    let follower = client
        .submit(Some("dup-b".to_owned()), spec.clone())
        .unwrap();

    // The duplicate attached instead of queueing its own run.
    let (state, detail, hit) = probe(&mut client, &follower);
    assert!(hit, "duplicate must be a single-flight hit ({detail})");
    if state == JobState::Queued {
        assert!(detail.contains(&primary), "{detail}");
    }

    // Both settle with byte-identical output...
    let waiter = {
        let socket = socket.clone();
        let follower = follower.clone();
        std::thread::spawn(move || {
            let mut client = Client::connect(&socket).unwrap();
            client.wait_result(&follower).unwrap()
        })
    };
    let out_primary = client.wait_result(&primary).unwrap();
    let out_follower = waiter.join().unwrap();
    assert_eq!(out_primary, reference);
    assert_eq!(out_follower, reference);

    // ...and the accounting shows exactly one profiling run: one hit,
    // one retained entry, and the follower's result file on disk for
    // recovery.
    assert_eq!(cache_counters(&mut client), (1, 1));
    assert!(scratch.state().join("dup-b.result.txt").exists());

    shutdown(&socket);
    handle.join().unwrap();
}

#[test]
fn cancelled_primary_promotes_its_follower() {
    let scratch = Scratch::new("promote");
    let handle = start_server(ServeConfig {
        job_slots: 1,
        queue_cap: 16,
        ..ServeConfig::new(scratch.socket(), scratch.state())
    });
    let socket = scratch.socket();
    let mut client = Client::connect_ready(&socket, Duration::from_secs(10)).unwrap();

    let spec = JobSpec {
        throttle_ms: 120,
        ..quick_spec(4_000, 20)
    };
    let reference = offline_reference(&quick_spec(4_000, 20));
    let primary = client.submit(Some("pma".to_owned()), spec.clone()).unwrap();
    std::thread::sleep(Duration::from_millis(200));
    let follower = client.submit(Some("pmb".to_owned()), spec.clone()).unwrap();

    // Cancel the running primary: the follower must be promoted to a
    // real run, not cancelled alongside it (nor stranded forever).
    assert!(matches!(
        client
            .request(&Request::Cancel {
                job: primary.clone()
            })
            .unwrap(),
        Response::Cancelled { .. } | Response::Error { .. }
    ));
    let output = client.wait_result(&follower).unwrap();
    assert_eq!(output, reference, "promoted follower must finish the run");
    let (_, detail, _) = probe(&mut client, &follower);
    assert!(
        detail.contains("promoted") || detail == "done",
        "unexpected detail: {detail}"
    );

    shutdown(&socket);
    handle.join().unwrap();
}

#[test]
fn per_client_quota_rejects_the_flooding_tenant_only() {
    let scratch = Scratch::new("quota");
    let handle = start_server(ServeConfig {
        job_slots: 1,
        queue_cap: 16,
        client_quota: Some(1),
        ..ServeConfig::new(scratch.socket(), scratch.state())
    });
    let socket = scratch.socket();
    let mut client = Client::connect_ready(&socket, Duration::from_secs(10)).unwrap();

    // Alice's slow job occupies her whole quota...
    let slow = JobSpec {
        throttle_ms: 150,
        client: "alice".to_owned(),
        ..quick_spec(4_000, 20)
    };
    client.submit(Some("alice-1".to_owned()), slow).unwrap();
    // ...so her second submission is rejected — even as a would-be
    // duplicate (a quota must not be laundered through the cache)...
    let rejected = client
        .request(&Request::Submit {
            job: Some("alice-2".to_owned()),
            spec: JobSpec {
                throttle_ms: 150,
                client: "alice".to_owned(),
                ..quick_spec(4_000, 20)
            },
        })
        .unwrap();
    match rejected {
        Response::Rejected { reason } => {
            assert!(reason.contains("quota"), "{reason}");
            assert!(reason.contains("alice"), "{reason}");
        }
        other => panic!("expected a quota rejection, got {other:?}"),
    }
    // ...while Bob is admitted untouched.
    let bob = client
        .submit(
            Some("bob-1".to_owned()),
            JobSpec {
                client: "bob".to_owned(),
                ..quick_spec(3_000, 5)
            },
        )
        .unwrap();
    assert!(client.wait_result(&bob).is_ok());
    // Once Alice's job settles, her next submission is admitted again.
    assert!(client.wait_result("alice-1").is_ok());
    let again = client.submit(
        Some("alice-3".to_owned()),
        JobSpec {
            client: "alice".to_owned(),
            ..quick_spec(3_000, 6)
        },
    );
    assert!(again.is_ok(), "{again:?}");

    shutdown(&socket);
    handle.join().unwrap();
}

#[test]
fn cached_results_survive_a_restart() {
    let scratch = Scratch::new("cacherestart");
    let socket = scratch.socket();
    let spec = quick_spec(4_000, 20);
    let reference = offline_reference(&spec);

    let handle = start_server(ServeConfig::new(&socket, scratch.state()));
    let mut client = Client::connect_ready(&socket, Duration::from_secs(10)).unwrap();
    let first = client
        .submit(Some("warm".to_owned()), spec.clone())
        .unwrap();
    assert_eq!(client.wait_result(&first).unwrap(), reference);
    let _ = client.request(&Request::Shutdown);
    handle.join().unwrap();

    // A restarted server rebuilds the cache index from its recovered
    // results: the duplicate is served instantly, no profiling run.
    let handle = start_server(ServeConfig::new(&socket, scratch.state()));
    let mut client = Client::connect_ready(&socket, Duration::from_secs(10)).unwrap();
    assert_eq!(cache_counters(&mut client), (0, 1), "recovered entry");
    let dup = client.submit(Some("warm-dup".to_owned()), spec).unwrap();
    let (state, _, hit) = probe(&mut client, &dup);
    assert_eq!(state, JobState::Done, "must be served instantly");
    assert!(hit);
    assert_eq!(client.wait_result(&dup).unwrap(), reference);
    assert_eq!(cache_counters(&mut client), (1, 1));

    shutdown(&socket);
    handle.join().unwrap();
}

#[test]
fn follower_attached_at_drain_gets_the_resumed_jobs_result() {
    let scratch = Scratch::new("drainfollow");
    let socket = scratch.socket();
    // Paced and never early-stopping, so the drain lands mid-run with
    // the follower still attached.
    let spec = JobSpec {
        throttle_ms: 40,
        stream: StreamConfig {
            saturation_window: u64::MAX,
            ..StreamConfig::default()
        },
        ..quick_spec(3_000, 20)
    };
    let reference = offline_reference(&spec);

    let handle = start_server(ServeConfig {
        job_slots: 1,
        ..ServeConfig::new(&socket, scratch.state())
    });
    let mut client = Client::connect_ready(&socket, Duration::from_secs(10)).unwrap();
    let primary = client
        .submit(Some("dr-a".to_owned()), spec.clone())
        .unwrap();
    std::thread::sleep(Duration::from_millis(300));
    let follower = client
        .submit(Some("dr-b".to_owned()), spec.clone())
        .unwrap();
    let (_, detail, hit) = probe(&mut client, &follower);
    assert!(hit, "{detail}");
    let _ = client.request(&Request::Shutdown);
    handle.join().unwrap();

    // Only the primary ran: it checkpointed; the follower never got a
    // checkpoint of its own.
    assert!(scratch.state().join("dr-a.ckpt.json").exists());
    assert!(!scratch.state().join("dr-b.ckpt.json").exists());

    // After restart, the group is rebuilt: one resumed run serves both
    // jobs the byte-identical selection.
    let handle = start_server(ServeConfig {
        job_slots: 1,
        ..ServeConfig::new(&socket, scratch.state())
    });
    let mut client = Client::connect_ready(&socket, Duration::from_secs(10)).unwrap();
    assert_eq!(client.wait_result(&follower).unwrap(), reference);
    assert_eq!(client.wait_result(&primary).unwrap(), reference);

    shutdown(&socket);
    handle.join().unwrap();
}
