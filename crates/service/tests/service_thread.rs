//! End-to-end service tests under thread placement (no subprocesses
//! needed): the full status/result/cancel vocabulary, concurrent jobs,
//! queue backpressure, and drain → restart → resume — all against an
//! in-process `serve()` on a temp socket.

use std::path::PathBuf;
use std::time::Duration;

use seqpoint_core::protocol::{JobSpec, JobState, Request, Response};
use seqpoint_core::stream::StreamConfig;
use seqpoint_service::client::Client;
use seqpoint_service::spec::{render_streamed, resolve};
use seqpoint_service::{serve, ServeConfig};
use sqnn_profiler::stream::profile_epoch_streaming;
use sqnn_profiler::Profiler;

/// A unique scratch dir (sockets + state) removed on drop.
struct Scratch(PathBuf);

impl Scratch {
    fn new(tag: &str) -> Self {
        let dir = std::env::temp_dir().join(format!("seqpoint-svc-{}-{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        Scratch(dir)
    }

    fn socket(&self) -> PathBuf {
        self.0.join("sock")
    }

    fn state(&self) -> PathBuf {
        self.0.join("state")
    }
}

impl Drop for Scratch {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

/// The standard quick-scale job of the smoke tests.
fn quick_spec(samples: u64, seed: u64) -> JobSpec {
    JobSpec {
        model: "gnmt".to_owned(),
        dataset: "iwslt15".to_owned(),
        samples,
        seed,
        batch: 16,
        shards: 3,
        round_len: 32,
        stream: StreamConfig {
            saturation_window: 128,
            unseen_threshold: 0.05,
            quantization: 8,
            ..StreamConfig::default()
        },
        ..JobSpec::default()
    }
}

/// What `seqpoint stream` would print for this spec — computed offline.
fn offline_reference(spec: &JobSpec) -> String {
    let resolved = resolve(spec).unwrap();
    let streamed = profile_epoch_streaming(
        &Profiler::new(),
        &resolved.network,
        &resolved.plan,
        &resolved.device,
        &resolved.options,
    )
    .unwrap();
    render_streamed(&spec.model, &spec.dataset, spec.config, &streamed)
}

fn start_server(config: ServeConfig) -> std::thread::JoinHandle<()> {
    std::thread::spawn(move || {
        serve(config).expect("serve failed");
    })
}

fn shutdown(socket: &std::path::Path) {
    if let Ok(mut client) = Client::connect(socket) {
        let _ = client.request(&Request::Shutdown);
    }
}

#[test]
fn concurrent_jobs_match_offline_stream_byte_for_byte() {
    let scratch = Scratch::new("concurrent");
    let config = ServeConfig {
        job_slots: 2,
        queue_cap: 8,
        ..ServeConfig::new(scratch.socket(), scratch.state())
    };
    let handle = start_server(config);
    let socket = scratch.socket();
    let mut client = Client::connect_ready(&socket, Duration::from_secs(10)).unwrap();

    // Two different corpora, submitted concurrently.
    let spec_a = quick_spec(6_000, 20);
    let spec_b = quick_spec(5_000, 21);
    let id_a = client
        .submit(Some("alpha".to_owned()), spec_a.clone())
        .unwrap();
    let id_b = client.submit(None, spec_b.clone()).unwrap();
    assert_eq!(id_a, "alpha");
    assert_eq!(id_b, "job-1");

    // Each served result is byte-identical to the offline run.
    let waiter = {
        let socket = socket.clone();
        let id_b = id_b.clone();
        std::thread::spawn(move || {
            let mut client = Client::connect(&socket).unwrap();
            client.wait_result(&id_b).unwrap()
        })
    };
    let out_a = client.wait_result(&id_a).unwrap();
    let out_b = waiter.join().unwrap();
    assert_eq!(out_a, offline_reference(&spec_a));
    assert_eq!(out_b, offline_reference(&spec_b));
    assert_ne!(out_a, out_b);

    // Status vocabulary on a terminal job.
    match client
        .request(&Request::Status { job: id_a.clone() })
        .unwrap()
    {
        Response::Status { state, .. } => assert_eq!(state, JobState::Done),
        other => panic!("unexpected {other:?}"),
    }
    // Unknown jobs error politely.
    assert!(matches!(
        client
            .request(&Request::Status {
                job: "nope".to_owned()
            })
            .unwrap(),
        Response::Error { .. }
    ));
    // Non-wait result on a done job returns immediately.
    match client
        .request(&Request::Result {
            job: id_a,
            wait: false,
        })
        .unwrap()
    {
        Response::Result { output, .. } => assert_eq!(output, out_a),
        other => panic!("unexpected {other:?}"),
    }

    shutdown(&socket);
    handle.join().unwrap();
}

#[test]
fn backpressure_rejects_when_the_queue_is_full() {
    let scratch = Scratch::new("backpressure");
    let config = ServeConfig {
        job_slots: 1,
        queue_cap: 1,
        ..ServeConfig::new(scratch.socket(), scratch.state())
    };
    let handle = start_server(config);
    let socket = scratch.socket();
    let mut client = Client::connect_ready(&socket, Duration::from_secs(10)).unwrap();

    // A slow job occupies the single slot...
    let slow = JobSpec {
        throttle_ms: 100,
        ..quick_spec(6_000, 20)
    };
    client.submit(Some("slow".to_owned()), slow).unwrap();
    // Give the runner a moment to claim it so the next submit queues.
    std::thread::sleep(Duration::from_millis(300));
    // ... one job fits the queue ...
    client
        .submit(Some("queued".to_owned()), quick_spec(3_000, 5))
        .unwrap();
    // ... and the next is rejected with backpressure, not an error.
    let rejected = client.request(&Request::Submit {
        job: Some("overflow".to_owned()),
        spec: quick_spec(3_000, 6),
    });
    match rejected.unwrap() {
        Response::Rejected { reason } => assert!(reason.contains("queue full"), "{reason}"),
        other => panic!("expected backpressure, got {other:?}"),
    }
    // Duplicate ids are rejected too.
    assert!(matches!(
        client
            .request(&Request::Submit {
                job: Some("queued".to_owned()),
                spec: quick_spec(3_000, 7),
            })
            .unwrap(),
        Response::Rejected { .. }
    ));

    shutdown(&socket);
    handle.join().unwrap();
}

#[test]
fn cancel_queued_and_running_jobs() {
    let scratch = Scratch::new("cancel");
    let config = ServeConfig {
        job_slots: 1,
        queue_cap: 8,
        ..ServeConfig::new(scratch.socket(), scratch.state())
    };
    let handle = start_server(config);
    let socket = scratch.socket();
    let mut client = Client::connect_ready(&socket, Duration::from_secs(10)).unwrap();

    // A throttled job holds the slot; the second job sits queued.
    let running = JobSpec {
        throttle_ms: 150,
        ..quick_spec(6_000, 20)
    };
    client.submit(Some("running".to_owned()), running).unwrap();
    client
        .submit(Some("waiting".to_owned()), quick_spec(3_000, 5))
        .unwrap();

    // Cancel the queued job: immediate.
    assert!(matches!(
        client
            .request(&Request::Cancel {
                job: "waiting".to_owned()
            })
            .unwrap(),
        Response::Cancelled { .. }
    ));
    match client
        .request(&Request::Status {
            job: "waiting".to_owned(),
        })
        .unwrap()
    {
        Response::Status { state, .. } => assert_eq!(state, JobState::Cancelled),
        other => panic!("unexpected {other:?}"),
    }

    // Cancel the running job: cooperative, lands within a few rounds.
    std::thread::sleep(Duration::from_millis(200));
    assert!(matches!(
        client
            .request(&Request::Cancel {
                job: "running".to_owned()
            })
            .unwrap(),
        Response::Cancelled { .. } | Response::Error { .. }
    ));
    let deadline = std::time::Instant::now() + Duration::from_secs(30);
    loop {
        match client
            .request(&Request::Status {
                job: "running".to_owned(),
            })
            .unwrap()
        {
            Response::Status { state, .. } if state.is_terminal() => {
                // Normally Cancelled; Done only if the job finished in
                // the race window before the flag was checked.
                assert!(
                    state == JobState::Cancelled || state == JobState::Done,
                    "unexpected terminal state {state:?}"
                );
                break;
            }
            Response::Status { .. } => std::thread::sleep(Duration::from_millis(100)),
            other => panic!("unexpected {other:?}"),
        }
        assert!(std::time::Instant::now() < deadline, "cancel never landed");
    }

    shutdown(&socket);
    handle.join().unwrap();
}

#[test]
fn drain_checkpoints_and_restart_resumes_identically() {
    let scratch = Scratch::new("drain");
    let socket = scratch.socket();
    let spec = JobSpec {
        // Never early-stops and paced at 40 ms/round: the drain lands
        // mid-run deterministically.
        throttle_ms: 40,
        stream: StreamConfig {
            saturation_window: u64::MAX,
            ..StreamConfig::default()
        },
        ..quick_spec(4_000, 20)
    };
    let reference = offline_reference(&spec);

    // First server: submit, let it run a little, then drain via the
    // protocol (the SIGTERM path is exercised by scripts/smoke_service.sh
    // against the real binary).
    let handle = start_server(ServeConfig {
        job_slots: 1,
        ..ServeConfig::new(&socket, scratch.state())
    });
    let mut client = Client::connect_ready(&socket, Duration::from_secs(10)).unwrap();
    client.submit(Some("longjob".to_owned()), spec).unwrap();
    std::thread::sleep(Duration::from_millis(400));
    let _ = client.request(&Request::Shutdown);
    handle.join().unwrap();

    // The drain checkpointed the in-flight job.
    assert!(scratch.state().join("longjob.ckpt.json").exists());
    assert!(scratch.state().join("longjob.spec.json").exists());
    assert!(!scratch.state().join("longjob.result.txt").exists());

    // Second server: recovery requeues the job; it resumes from the
    // checkpoint and completes byte-identically to the offline run.
    let handle = start_server(ServeConfig {
        job_slots: 1,
        ..ServeConfig::new(&socket, scratch.state())
    });
    let mut client = Client::connect_ready(&socket, Duration::from_secs(10)).unwrap();
    let output = client.wait_result("longjob").unwrap();
    assert_eq!(output, reference);

    shutdown(&socket);
    handle.join().unwrap();
}

#[test]
fn client_chosen_job_n_ids_do_not_collide_with_auto_ids() {
    let scratch = Scratch::new("autoid");
    let handle = start_server(ServeConfig::new(scratch.socket(), scratch.state()));
    let socket = scratch.socket();
    let mut client = Client::connect_ready(&socket, Duration::from_secs(10)).unwrap();

    // Claim `job-3` explicitly; the auto counter must skip past it.
    client
        .submit(Some("job-3".to_owned()), quick_spec(3_000, 1))
        .unwrap();
    let auto = client.submit(None, quick_spec(3_000, 2)).unwrap();
    assert_eq!(auto, "job-4", "auto id must not collide with job-3");
    assert!(client.wait_result("job-3").is_ok());
    assert!(client.wait_result(&auto).is_ok());

    shutdown(&socket);
    handle.join().unwrap();
}

#[test]
fn max_rounds_preemption_requeues_until_complete() {
    let scratch = Scratch::new("preempt");
    let config = ServeConfig {
        job_slots: 1,
        ..ServeConfig::new(scratch.socket(), scratch.state())
    };
    let handle = start_server(config);
    let socket = scratch.socket();
    let mut client = Client::connect_ready(&socket, Duration::from_secs(10)).unwrap();

    // A 2-round preemption budget forces many pause/requeue cycles —
    // which must not eat the worker-loss retry allowance, and must end
    // in the exact offline selection.
    let spec = JobSpec {
        max_rounds: Some(2),
        ..quick_spec(6_000, 20)
    };
    let reference = offline_reference(&quick_spec(6_000, 20));
    let id = client.submit(Some("yielding".to_owned()), spec).unwrap();
    let output = client.wait_result(&id).unwrap();
    assert_eq!(output, reference);

    shutdown(&socket);
    handle.join().unwrap();
}

#[test]
fn second_server_on_a_live_socket_is_refused() {
    let scratch = Scratch::new("hijack");
    let handle = start_server(ServeConfig::new(scratch.socket(), scratch.state()));
    let socket = scratch.socket();
    let _client = Client::connect_ready(&socket, Duration::from_secs(10)).unwrap();

    // A second daemon on the same socket must refuse, not hijack the
    // live server's socket (and its state dir's checkpoint files).
    let err = serve(ServeConfig::new(scratch.socket(), scratch.state())).unwrap_err();
    assert!(
        err.to_string().contains("already listening"),
        "unexpected error: {err}"
    );

    // The first server is unharmed.
    let mut client = Client::connect(&socket).unwrap();
    let id = client.submit(None, quick_spec(3_000, 9)).unwrap();
    assert!(client.wait_result(&id).is_ok());

    shutdown(&socket);
    handle.join().unwrap();
}

#[test]
fn bad_specs_fail_the_job_not_the_server() {
    let scratch = Scratch::new("badspec");
    let handle = start_server(ServeConfig::new(scratch.socket(), scratch.state()));
    let socket = scratch.socket();
    let mut client = Client::connect_ready(&socket, Duration::from_secs(10)).unwrap();

    let bad = JobSpec {
        model: "not-a-model".to_owned(),
        ..quick_spec(1_000, 1)
    };
    let id = client.submit(None, bad).unwrap();
    let err = client.wait_result(&id).unwrap_err();
    assert!(err.to_string().contains("unknown model"), "{err}");

    // The server is still healthy.
    let good = client.submit(None, quick_spec(3_000, 5)).unwrap();
    assert!(client.wait_result(&good).is_ok());

    shutdown(&socket);
    handle.join().unwrap();
}
