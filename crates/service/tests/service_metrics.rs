//! End-to-end tests of the metrics surface: counter monotonicity
//! across a served job, exact byte accounting against a transcript the
//! test records itself, the plaintext scrape endpoint, and the
//! registry restarting zeroed with the daemon.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::os::unix::net::UnixStream;
use std::path::PathBuf;
use std::time::Duration;

use seqpoint_core::protocol::{encode_frame, JobSpec, Request, Response, PROTOCOL_VERSION};
use seqpoint_core::stream::StreamConfig;
use seqpoint_service::client::Client;
use seqpoint_service::{serve, ServeConfig};

/// A unique scratch dir (sockets + state) removed on drop.
struct Scratch(PathBuf);

impl Scratch {
    fn new(tag: &str) -> Self {
        let dir = std::env::temp_dir().join(format!("seqpoint-met-{}-{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        Scratch(dir)
    }

    fn socket(&self) -> PathBuf {
        self.0.join("sock")
    }

    fn state(&self) -> PathBuf {
        self.0.join("state")
    }
}

impl Drop for Scratch {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

/// The standard quick-scale job of the smoke tests.
fn quick_spec(samples: u64, seed: u64) -> JobSpec {
    JobSpec {
        model: "gnmt".to_owned(),
        dataset: "iwslt15".to_owned(),
        samples,
        seed,
        batch: 16,
        shards: 3,
        round_len: 32,
        stream: StreamConfig {
            saturation_window: 128,
            unseen_threshold: 0.05,
            quantization: 8,
            ..StreamConfig::default()
        },
        ..JobSpec::default()
    }
}

fn start_server(config: ServeConfig) -> std::thread::JoinHandle<()> {
    std::thread::spawn(move || {
        serve(config).expect("serve failed");
    })
}

fn shutdown(socket: &std::path::Path) {
    if let Ok(mut client) = Client::connect(socket) {
        let _ = client.request(&Request::Shutdown);
    }
}

/// Fetch the live exposition over the protocol.
fn fetch_metrics(client: &mut Client) -> String {
    match client.request(&Request::Metrics).unwrap() {
        Response::Metrics { text } => text,
        other => panic!("unexpected {other:?}"),
    }
}

/// The value of one series: `series` is the full sample name including
/// any label set (`seqpoint_queue_depth{class="interactive"}`).
fn metric(text: &str, series: &str) -> u64 {
    for line in text.lines() {
        if line.starts_with('#') {
            continue;
        }
        if let Some(rest) = line.strip_prefix(series) {
            if let Some(value) = rest.strip_prefix(' ') {
                return value.trim().parse().unwrap();
            }
        }
    }
    panic!("series {series} not in exposition:\n{text}");
}

#[test]
fn counters_are_monotone_across_a_served_job() {
    let scratch = Scratch::new("monotone");
    let handle = start_server(ServeConfig::new(scratch.socket(), scratch.state()));
    let socket = scratch.socket();
    let mut client = Client::connect_ready(&socket, Duration::from_secs(10)).unwrap();

    let before = fetch_metrics(&mut client);
    let id = client.submit(None, quick_spec(3_000, 5)).unwrap();
    client.wait_result(&id).unwrap();
    let after = fetch_metrics(&mut client);

    // The job shows up in every layer it crossed: admission, cache,
    // scheduler, executor, terminal accounting.
    assert_eq!(
        metric(&after, "seqpoint_jobs_submitted_total"),
        metric(&before, "seqpoint_jobs_submitted_total") + 1
    );
    assert_eq!(
        metric(&after, "seqpoint_jobs_completed_total"),
        metric(&before, "seqpoint_jobs_completed_total") + 1
    );
    assert_eq!(
        metric(&after, "seqpoint_cache_misses_total"),
        metric(&before, "seqpoint_cache_misses_total") + 1
    );
    assert_eq!(
        metric(
            &after,
            "seqpoint_queue_dequeued_total{class=\"interactive\"}"
        ),
        metric(
            &before,
            "seqpoint_queue_dequeued_total{class=\"interactive\"}"
        ) + 1
    );
    assert!(metric(&after, "seqpoint_rounds_total") > metric(&before, "seqpoint_rounds_total"));
    assert!(metric(&after, "seqpoint_items_total") > metric(&before, "seqpoint_items_total"));

    // The job ran through the operator graph with the registry attached
    // as its per-stage meter, so every pipeline stage shows traffic.
    for stage in ["source", "fold", "merge", "gate"] {
        let series = format!("seqpoint_stage_items_in_total{{stage=\"{stage}\"}}");
        assert!(
            metric(&after, &series) > metric(&before, &series),
            "{series} did not move across a served job"
        );
    }
    assert!(
        metric(&after, "seqpoint_stage_wall_ms_total{stage=\"fold\"}")
            >= metric(&before, "seqpoint_stage_wall_ms_total{stage=\"fold\"}")
    );

    // Counters never move backwards, whatever else the daemon did.
    let final_view = fetch_metrics(&mut client);
    for series in [
        "seqpoint_connections_opened_total",
        "seqpoint_messages_in_total",
        "seqpoint_messages_out_total",
        "seqpoint_bytes_in_total",
        "seqpoint_bytes_out_total",
        "seqpoint_jobs_submitted_total",
        "seqpoint_jobs_completed_total",
        "seqpoint_rounds_total",
        "seqpoint_round_wall_ms_total",
        "seqpoint_items_total",
        "seqpoint_cache_misses_total",
    ] {
        assert!(
            metric(&final_view, series) >= metric(&after, series),
            "{series} went backwards"
        );
    }

    shutdown(&socket);
    handle.join().unwrap();
}

#[test]
fn byte_counts_match_a_recorded_transcript() {
    let scratch = Scratch::new("transcript");
    let handle = start_server(ServeConfig::new(scratch.socket(), scratch.state()));
    let socket = scratch.socket();
    // Wait for readiness with a throwaway connection, then speak raw
    // NDJSON so the test can record the exact bytes on the wire.
    drop(Client::connect_ready(&socket, Duration::from_secs(10)).unwrap());

    let mut stream = UnixStream::connect(&socket).unwrap();
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    let mut sent = 0u64; // request bytes after identity was announced
    let mut received = 0u64; // response bytes after identity was announced
    let exchange = |stream: &mut UnixStream,
                    reader: &mut BufReader<UnixStream>,
                    request: &Request|
     -> (String, u64, u64) {
        let line = format!("{}\n", encode_frame(request));
        stream.write_all(line.as_bytes()).unwrap();
        let mut response = String::new();
        reader.read_line(&mut response).unwrap();
        (response.clone(), line.len() as u64, response.len() as u64)
    };

    // The Hello itself arrives before the identity is known, so its
    // bytes land only in the global/per-connection series — but its
    // Welcome response is sent *after* and is attributed.
    let hello = Request::Hello {
        version: PROTOCOL_VERSION,
        token: None,
        client: Some("transcript".to_owned()),
    };
    let (welcome, _, welcome_len) = exchange(&mut stream, &mut reader, &hello);
    assert!(welcome.contains("Welcome"), "{welcome}");
    received += welcome_len;

    let (pong, ping_len, pong_len) = exchange(&mut stream, &mut reader, &Request::Ping);
    assert!(pong.contains("Pong"), "{pong}");
    sent += ping_len;
    received += pong_len;

    let (error, status_len, error_len) = exchange(
        &mut stream,
        &mut reader,
        &Request::Status {
            job: "nope".to_owned(),
        },
    );
    assert!(error.contains("Error"), "{error}");
    sent += status_len;
    received += error_len;

    // The Metrics request line is counted before the registry renders,
    // so it is part of the expected inbound bytes; the Metrics response
    // is rendered first and sent after, so it is not part of outbound.
    let metrics_line = format!("{}\n", encode_frame(&Request::Metrics));
    sent += metrics_line.len() as u64;
    stream.write_all(metrics_line.as_bytes()).unwrap();
    let mut response = String::new();
    reader.read_line(&mut response).unwrap();
    let text = match seqpoint_core::protocol::decode_frame::<Response>(&response).unwrap() {
        Response::Metrics { text } => text,
        other => panic!("unexpected {other:?}"),
    };

    let series = |name: &str| format!("{name}{{client=\"transcript\"}}");
    assert_eq!(
        metric(&text, &series("seqpoint_client_bytes_in_total")),
        sent
    );
    assert_eq!(
        metric(&text, &series("seqpoint_client_bytes_out_total")),
        received
    );
    // Frames after the identity was announced: Ping, Status, Metrics in;
    // Welcome, Pong, Error out.
    assert_eq!(
        metric(&text, &series("seqpoint_client_messages_in_total")),
        3
    );
    assert_eq!(
        metric(&text, &series("seqpoint_client_messages_out_total")),
        3
    );

    drop(stream);
    shutdown(&socket);
    handle.join().unwrap();
}

#[test]
fn scrape_endpoint_serves_get_and_rejects_garbage() {
    let scratch = Scratch::new("scrape");
    let config = ServeConfig {
        metrics_addr: Some("127.0.0.1:0".to_owned()),
        ..ServeConfig::new(scratch.socket(), scratch.state())
    };
    let handle = start_server(config);
    let socket = scratch.socket();
    let mut client = Client::connect_ready(&socket, Duration::from_secs(10)).unwrap();

    // The ephemeral port is published for scripts (and this test).
    let addr = std::fs::read_to_string(scratch.state().join("serve.metrics")).unwrap();
    let addr = addr.trim().to_owned();

    let scrape = |request: &str| -> String {
        let mut conn = TcpStream::connect(&addr).unwrap();
        conn.write_all(request.as_bytes()).unwrap();
        let mut response = String::new();
        conn.read_to_string(&mut response).unwrap();
        response
    };

    let ok = scrape("GET / HTTP/1.0\r\n\r\n");
    assert!(ok.starts_with("HTTP/1.0 200 OK\r\n"), "{ok}");
    assert!(ok.contains("Content-Type: text/plain"), "{ok}");
    for name in [
        "seqpoint_uptime_seconds",
        "seqpoint_connections_opened_total",
        "seqpoint_jobs_submitted_total",
        "seqpoint_rounds_total",
        "seqpoint_cache_misses_total",
        "seqpoint_fleet_idle",
        "seqpoint_stage_items_in_total{stage=\"source\"}",
        "seqpoint_stage_channel_depth{stage=\"merge\"}",
    ] {
        assert!(ok.contains(name), "scrape is missing {name}:\n{ok}");
    }

    // Anything that is not a GET gets a 400 and a hint, not a hang or
    // a crash — and the daemon keeps serving afterwards.
    let bad = scrape("POTATO / HTTP/1.0\r\n\r\n");
    assert!(bad.starts_with("HTTP/1.0 400 Bad Request\r\n"), "{bad}");
    let empty = scrape("\r\n");
    assert!(empty.starts_with("HTTP/1.0 400 Bad Request\r\n"), "{empty}");
    let again = scrape("GET /metrics HTTP/1.1\r\nHost: x\r\n\r\n");
    assert!(again.starts_with("HTTP/1.0 200 OK\r\n"), "{again}");

    // The protocol surface agrees with the scrape surface.
    let wire = fetch_metrics(&mut client);
    assert!(wire.contains("seqpoint_uptime_seconds"));

    shutdown(&socket);
    handle.join().unwrap();
    assert!(
        !scratch.state().join("serve.metrics").exists(),
        "drain must remove the published metrics address"
    );
}

#[test]
fn stale_metrics_address_from_a_crash_is_cleared_at_startup() {
    let scratch = Scratch::new("stalemet");
    std::fs::create_dir_all(scratch.state()).unwrap();
    let stale_path = scratch.state().join("serve.metrics");

    // A daemon killed with SIGKILL leaves its published metrics address
    // behind. A restart without a metrics endpoint must clear it before
    // serving, or scripts would keep discovering a dead (possibly
    // reused) port — the same hazard `serve.tcp` already guards.
    std::fs::write(&stale_path, "127.0.0.1:1\n").unwrap();
    let handle = start_server(ServeConfig::new(scratch.socket(), scratch.state()));
    let socket = scratch.socket();
    drop(Client::connect_ready(&socket, Duration::from_secs(10)).unwrap());
    assert!(
        !stale_path.exists(),
        "stale serve.metrics survived a metrics-less restart"
    );
    shutdown(&socket);
    handle.join().unwrap();

    // With a metrics endpoint configured, the stale address is replaced
    // by the freshly bound one — and that one actually answers.
    std::fs::write(&stale_path, "127.0.0.1:1\n").unwrap();
    let handle = start_server(ServeConfig {
        metrics_addr: Some("127.0.0.1:0".to_owned()),
        ..ServeConfig::new(scratch.socket(), scratch.state())
    });
    drop(Client::connect_ready(&socket, Duration::from_secs(10)).unwrap());
    let published = std::fs::read_to_string(&stale_path).unwrap();
    let published = published.trim();
    assert_ne!(published, "127.0.0.1:1", "stale address was republished");
    let mut conn = TcpStream::connect(published).unwrap();
    conn.write_all(b"GET / HTTP/1.0\r\n\r\n").unwrap();
    let mut response = String::new();
    conn.read_to_string(&mut response).unwrap();
    assert!(response.starts_with("HTTP/1.0 200 OK\r\n"), "{response}");

    shutdown(&socket);
    handle.join().unwrap();
}

#[test]
fn registry_restarts_zeroed_with_the_daemon() {
    let scratch = Scratch::new("restart");
    let socket = scratch.socket();

    // First daemon lifetime: serve one job to completion.
    let handle = start_server(ServeConfig::new(&socket, scratch.state()));
    let mut client = Client::connect_ready(&socket, Duration::from_secs(10)).unwrap();
    let id = client.submit(None, quick_spec(3_000, 5)).unwrap();
    client.wait_result(&id).unwrap();
    let first = fetch_metrics(&mut client);
    assert_eq!(metric(&first, "seqpoint_jobs_completed_total"), 1);
    assert!(metric(&first, "seqpoint_rounds_total") > 0);
    let _ = client.request(&Request::Shutdown);
    handle.join().unwrap();

    // Second lifetime over the same state dir: jobs are recovered, the
    // registry is not — counters are per-daemon-lifetime by design.
    let handle = start_server(ServeConfig::new(&socket, scratch.state()));
    let mut client = Client::connect_ready(&socket, Duration::from_secs(10)).unwrap();
    let second = fetch_metrics(&mut client);
    assert_eq!(metric(&second, "seqpoint_jobs_submitted_total"), 0);
    assert_eq!(metric(&second, "seqpoint_jobs_completed_total"), 0);
    assert_eq!(metric(&second, "seqpoint_rounds_total"), 0);
    assert_eq!(metric(&second, "seqpoint_items_total"), 0);
    // The recovered result is still served — from the rebuilt cache,
    // which counts in the *new* lifetime.
    let dup = client.submit(None, quick_spec(3_000, 5)).unwrap();
    client.wait_result(&dup).unwrap();
    let after = fetch_metrics(&mut client);
    assert_eq!(metric(&after, "seqpoint_cache_hits_total"), 1);
    assert_eq!(metric(&after, "seqpoint_jobs_submitted_total"), 1);

    shutdown(&socket);
    handle.join().unwrap();
}
