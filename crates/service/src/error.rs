use std::error::Error;
use std::fmt;

/// Errors surfaced by the profiling service.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ServiceError {
    /// Invalid configuration or request contents.
    Usage(String),
    /// Socket or filesystem failure.
    Io {
        /// What was being attempted.
        context: String,
        /// The underlying error message.
        message: String,
    },
    /// A malformed or unexpected protocol frame.
    Protocol(String),
    /// The server refused the connection handshake (missing or invalid
    /// token, protocol version mismatch).
    Auth(String),
    /// A job-level failure (unknown job, failed run, …).
    Job {
        /// The job id.
        job: String,
        /// What went wrong.
        message: String,
    },
}

impl ServiceError {
    pub(crate) fn io(context: impl Into<String>, e: &std::io::Error) -> Self {
        ServiceError::Io {
            context: context.into(),
            message: e.to_string(),
        }
    }
}

impl fmt::Display for ServiceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServiceError::Usage(msg) => write!(f, "{msg}"),
            ServiceError::Io { context, message } => write!(f, "{context}: {message}"),
            ServiceError::Protocol(msg) => write!(f, "protocol error: {msg}"),
            ServiceError::Auth(msg) => write!(f, "handshake refused: {msg}"),
            ServiceError::Job { job, message } => write!(f, "job `{job}`: {message}"),
        }
    }
}

impl Error for ServiceError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = ServiceError::Io {
            context: "binding socket".into(),
            message: "denied".into(),
        };
        assert!(e.to_string().contains("binding socket"));
        let j = ServiceError::Job {
            job: "job-3".into(),
            message: "lost".into(),
        };
        assert!(j.to_string().contains("job-3"));
    }
}
