//! The `seqpoint worker` process: connects to a `seqpoint serve`
//! socket, announces itself, and executes shard chunks until the server
//! closes the connection.
//!
//! The worker runs the exact same leaf as the in-process thread
//! executor — [`sqnn_profiler::stream::execute_chunk`] — over its own
//! per-`(model, config)` shape memo, and ships results back as
//! checkpoint-interchange-format payloads. Placement is therefore
//! invisible to the selection: thread and subprocess runs are
//! bit-identical.

use std::collections::HashMap;
use std::io::{BufRead, BufReader, Write};
use std::os::unix::net::UnixStream;
use std::path::Path;

use gpu_sim::Device;
use seqpoint_core::protocol::{decode_frame, encode_frame, Request, WorkerReply, WorkerTask};
use sqnn::{IterationShape, Network};
use sqnn_data::BatchShape;
use sqnn_profiler::stream::{execute_chunk, ShardChunk};
use sqnn_profiler::{IterationProfile, Profiler};

use crate::spec::{device_by_config, model_by_name, stat_by_label};
use crate::ServiceError;

/// Cached per-workload state: resolving a model/device per task would
/// dominate the round time.
struct WorkerCache {
    networks: HashMap<String, Network>,
    devices: HashMap<u32, Device>,
    memos: HashMap<(String, u32), HashMap<(u32, u32), IterationProfile>>,
}

impl WorkerCache {
    fn new() -> Self {
        WorkerCache {
            networks: HashMap::new(),
            devices: HashMap::new(),
            memos: HashMap::new(),
        }
    }

    fn network(&mut self, model: &str) -> Result<&Network, ServiceError> {
        if !self.networks.contains_key(model) {
            let network = model_by_name(model)?;
            self.networks.insert(model.to_owned(), network);
        }
        Ok(&self.networks[model])
    }

    fn device(&mut self, config: u32) -> Result<&Device, ServiceError> {
        if let std::collections::hash_map::Entry::Vacant(entry) = self.devices.entry(config) {
            entry.insert(device_by_config(config)?);
        }
        Ok(&self.devices[&config])
    }
}

fn execute(
    profiler: &Profiler,
    cache: &mut WorkerCache,
    task: WorkerTask,
) -> Result<Option<WorkerReply>, ServiceError> {
    match task {
        WorkerTask::Shutdown => Ok(None),
        WorkerTask::Round {
            model,
            config,
            stat,
            shard,
            batches,
        } => {
            let stat = stat_by_label(&stat)?;
            cache.network(&model)?;
            cache.device(config)?;
            let chunk = ShardChunk {
                shard: shard as usize,
                batches: batches
                    .into_iter()
                    .map(|(seq_len, samples)| BatchShape {
                        seq_len,
                        samples,
                        // The profiled computation is fully determined by
                        // (seq_len, samples); padding occupancy is stream
                        // metadata the executor path never reads.
                        payload_fraction: 1.0,
                    })
                    .collect(),
            };
            let network = &cache.networks[&model];
            let device = cache.devices[&config].clone();
            let memo = cache.memos.entry((model, config)).or_default();
            let report = execute_chunk(profiler, network, &device, stat, memo, &chunk);
            let tracker = serde::json::to_string(&report.tracker)
                .map_err(|e| ServiceError::Protocol(e.to_string()))?;
            let shapes = serde::json::to_string(&report.shapes)
                .map_err(|e| ServiceError::Protocol(e.to_string()))?;
            Ok(Some(WorkerReply::Round {
                shard,
                tracker,
                chunk_time_s: report.chunk_time_s,
                shapes,
            }))
        }
        WorkerTask::Profile {
            model,
            config,
            seq_len,
            samples,
        } => {
            cache.network(&model)?;
            cache.device(config)?;
            let network = &cache.networks[&model];
            let device = &cache.devices[&config];
            let shape = IterationShape::new(samples, seq_len);
            let profile = profiler.profile_iteration(network, &shape, device);
            let profile = serde::json::to_string(&profile)
                .map_err(|e| ServiceError::Protocol(e.to_string()))?;
            Ok(Some(WorkerReply::Profile { profile }))
        }
    }
}

/// Run a worker against the server at `socket` until the server closes
/// the connection (drain) or sends [`WorkerTask::Shutdown`].
///
/// # Errors
///
/// [`ServiceError::Io`] when the socket cannot be reached or breaks
/// mid-reply; [`ServiceError::Protocol`] on an undecodable task line.
pub fn run_worker(socket: &Path) -> Result<(), ServiceError> {
    let stream = UnixStream::connect(socket)
        .map_err(|e| ServiceError::io(format!("connecting to {}", socket.display()), &e))?;
    let mut writer = stream
        .try_clone()
        .map_err(|e| ServiceError::io("cloning socket", &e))?;
    let mut reader = BufReader::new(stream);

    let hello = Request::WorkerHello {
        pid: u64::from(std::process::id()),
    };
    let mut line = encode_frame(&hello);
    line.push('\n');
    writer
        .write_all(line.as_bytes())
        .map_err(|e| ServiceError::io("announcing worker", &e))?;

    let profiler = Profiler::new();
    let mut cache = WorkerCache::new();
    let mut line = String::new();
    loop {
        line.clear();
        let n = reader
            .read_line(&mut line)
            .map_err(|e| ServiceError::io("reading task", &e))?;
        if n == 0 {
            return Ok(()); // server closed: drain
        }
        let task: WorkerTask =
            decode_frame(&line).map_err(|e| ServiceError::Protocol(e.to_string()))?;
        let reply = match execute(&profiler, &mut cache, task) {
            Ok(None) => return Ok(()),
            Ok(Some(reply)) => reply,
            Err(e) => WorkerReply::Error {
                reason: e.to_string(),
            },
        };
        let mut out = encode_frame(&reply);
        out.push('\n');
        writer
            .write_all(out.as_bytes())
            .map_err(|e| ServiceError::io("sending reply", &e))?;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_task_reports_interchange_payloads() {
        let profiler = Profiler::new();
        let mut cache = WorkerCache::new();
        let task = WorkerTask::Round {
            model: "gnmt".to_owned(),
            config: 1,
            stat: "runtime".to_owned(),
            shard: 2,
            batches: vec![(20, 16), (30, 16), (20, 16)],
        };
        let Some(WorkerReply::Round {
            shard,
            tracker,
            chunk_time_s,
            shapes,
        }) = execute(&profiler, &mut cache, task).unwrap()
        else {
            panic!("expected a round reply");
        };
        assert_eq!(shard, 2);
        assert!(chunk_time_s > 0.0);
        let tracker: seqpoint_core::online::OnlineSlTracker =
            serde::json::from_str(&tracker).unwrap();
        assert_eq!(tracker.iterations(), 3);
        assert_eq!(tracker.unique_count(), 2);
        let shapes: Vec<IterationProfile> = serde::json::from_str(&shapes).unwrap();
        assert_eq!(shapes.len(), 2, "two distinct shapes in the chunk");
    }

    #[test]
    fn worker_report_is_bit_identical_to_the_thread_leaf() {
        // The same chunk through the worker's execute() and directly
        // through execute_chunk must produce identical payloads — the
        // bit-exactness the subprocess placement rests on.
        let profiler = Profiler::new();
        let mut cache = WorkerCache::new();
        let batches = vec![(25u32, 16u32), (40, 16), (25, 16), (55, 8)];
        let task = WorkerTask::Round {
            model: "gnmt".to_owned(),
            config: 1,
            stat: "runtime".to_owned(),
            shard: 0,
            batches: batches.clone(),
        };
        let Some(WorkerReply::Round {
            tracker, shapes, ..
        }) = execute(&profiler, &mut cache, task).unwrap()
        else {
            panic!("expected a round reply");
        };

        let network = model_by_name("gnmt").unwrap();
        let device = device_by_config(1).unwrap();
        let mut memo = HashMap::new();
        let chunk = ShardChunk {
            shard: 0,
            batches: batches
                .iter()
                .map(|&(seq_len, samples)| BatchShape {
                    seq_len,
                    samples,
                    payload_fraction: 1.0,
                })
                .collect(),
        };
        let direct = execute_chunk(
            &profiler,
            &network,
            &device,
            sqnn_profiler::StatKind::Runtime,
            &mut memo,
            &chunk,
        );
        assert_eq!(tracker, serde::json::to_string(&direct.tracker).unwrap());
        assert_eq!(shapes, serde::json::to_string(&direct.shapes).unwrap());
    }

    #[test]
    fn unknown_workloads_reply_with_errors() {
        let profiler = Profiler::new();
        let mut cache = WorkerCache::new();
        for task in [
            WorkerTask::Round {
                model: "nope".to_owned(),
                config: 1,
                stat: "runtime".to_owned(),
                shard: 0,
                batches: vec![],
            },
            WorkerTask::Round {
                model: "gnmt".to_owned(),
                config: 1,
                stat: "nope".to_owned(),
                shard: 0,
                batches: vec![],
            },
            WorkerTask::Profile {
                model: "gnmt".to_owned(),
                config: 99,
                seq_len: 10,
                samples: 4,
            },
        ] {
            assert!(execute(&profiler, &mut cache, task).is_err());
        }
    }
}
