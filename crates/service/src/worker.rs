//! The `seqpoint worker` process: connects to a `seqpoint serve`
//! socket — Unix or TCP — announces itself, and executes shard chunks
//! until the server closes the connection. Over TCP the worker first
//! authenticates with the shared-secret token in a `Hello` handshake,
//! which is what makes "a worker on another machine" a pure config
//! change (`--connect HOST:PORT --token-file FILE`).
//!
//! The worker runs the exact same leaf as the in-process thread
//! executor — [`sqnn_profiler::stream::execute_chunk`] — over its own
//! per-`(model, config)` shape memo, and ships results back as
//! checkpoint-interchange-format payloads. Placement is therefore
//! invisible to the selection: thread and subprocess runs are
//! bit-identical.

use std::collections::HashMap;
use std::io::{BufRead, BufReader, Write};
use std::path::Path;
use std::time::Duration;

use gpu_sim::Device;
use seqpoint_core::protocol::{decode_frame, encode_frame, Request, WorkerReply, WorkerTask};
use sqnn::{IterationShape, Network};
use sqnn_data::BatchShape;
use sqnn_profiler::stream::{execute_chunk, ShardChunk};
use sqnn_profiler::{IterationProfile, Profiler};

use crate::spec::{device_by_config, model_by_name, stat_by_label};
use crate::transport::{client_handshake, Endpoint};
use crate::ServiceError;

/// Cached per-workload state: resolving a model/device per task would
/// dominate the round time.
struct WorkerCache {
    networks: HashMap<String, Network>,
    devices: HashMap<u32, Device>,
    memos: HashMap<(String, u32), HashMap<(u32, u32), IterationProfile>>,
}

impl WorkerCache {
    fn new() -> Self {
        WorkerCache {
            networks: HashMap::new(),
            devices: HashMap::new(),
            memos: HashMap::new(),
        }
    }

    fn network(&mut self, model: &str) -> Result<&Network, ServiceError> {
        if !self.networks.contains_key(model) {
            let network = model_by_name(model)?;
            self.networks.insert(model.to_owned(), network);
        }
        self.networks
            .get(model)
            .ok_or_else(|| ServiceError::Usage(format!("unknown model `{model}`")))
    }

    fn device(&mut self, config: u32) -> Result<&Device, ServiceError> {
        if let std::collections::hash_map::Entry::Vacant(entry) = self.devices.entry(config) {
            entry.insert(device_by_config(config)?);
        }
        self.devices
            .get(&config)
            .ok_or_else(|| ServiceError::Usage(format!("unknown device config `{config}`")))
    }
}

/// Execute one **work** frame (round or profile). The control frames —
/// `Shutdown` and `Lease`, which carry no work and must not be answered
/// — are handled by the session loop before this is called.
fn execute(
    profiler: &Profiler,
    cache: &mut WorkerCache,
    task: WorkerTask,
) -> Result<WorkerReply, ServiceError> {
    match task {
        WorkerTask::Shutdown | WorkerTask::Lease { .. } => Err(ServiceError::Protocol(
            "control frame reached the worker's execute path".to_owned(),
        )),
        WorkerTask::Round {
            model,
            config,
            stat,
            shard,
            batches,
        } => {
            let stat = stat_by_label(&stat)?;
            cache.network(&model)?;
            cache.device(config)?;
            let chunk = ShardChunk {
                shard: shard as usize,
                batches: batches
                    .into_iter()
                    .map(|(seq_len, samples)| BatchShape {
                        seq_len,
                        samples,
                        // The profiled computation is fully determined by
                        // (seq_len, samples); padding occupancy is stream
                        // metadata the executor path never reads.
                        payload_fraction: 1.0,
                    })
                    .collect(),
            };
            let network = cache
                .networks
                .get(&model)
                .ok_or_else(|| ServiceError::Usage(format!("unknown model `{model}`")))?;
            let device =
                cache.devices.get(&config).cloned().ok_or_else(|| {
                    ServiceError::Usage(format!("unknown device config `{config}`"))
                })?;
            let memo = cache.memos.entry((model, config)).or_default();
            let report = execute_chunk(profiler, network, &device, stat, memo, &chunk);
            let tracker = serde::json::to_string(&report.tracker)
                .map_err(|e| ServiceError::Protocol(e.to_string()))?;
            let shapes = serde::json::to_string(&report.shapes)
                .map_err(|e| ServiceError::Protocol(e.to_string()))?;
            Ok(WorkerReply::Round {
                shard,
                tracker,
                chunk_time_s: report.chunk_time_s,
                shapes,
            })
        }
        WorkerTask::Profile {
            model,
            config,
            seq_len,
            samples,
        } => {
            cache.network(&model)?;
            cache.device(config)?;
            let network = cache
                .networks
                .get(&model)
                .ok_or_else(|| ServiceError::Usage(format!("unknown model `{model}`")))?;
            let device = cache
                .devices
                .get(&config)
                .ok_or_else(|| ServiceError::Usage(format!("unknown device config `{config}`")))?;
            let shape = IterationShape::new(samples, seq_len);
            let profile = profiler.profile_iteration(network, &shape, device);
            let profile = serde::json::to_string(&profile)
                .map_err(|e| ServiceError::Protocol(e.to_string()))?;
            Ok(WorkerReply::Profile { profile })
        }
    }
}

/// The default patience for the connect-phase handshake read.
pub const DEFAULT_HANDSHAKE_TIMEOUT: Duration = Duration::from_secs(10);

/// Why one worker session ended without a fatal error.
enum SessionEnd {
    /// The server sent an explicit [`WorkerTask::Shutdown`].
    Shutdown,
    /// The server closed the connection while the worker was idle —
    /// either a drain, or the executor poisoning a round it was part
    /// of. Indistinguishable from here; a resilient worker reconnects
    /// and lets the connect attempt decide.
    Closed,
    /// The connection broke *after* the worker had registered (a reply
    /// write or task read failed mid-flight). The server was provably
    /// alive and reachable, so a resilient worker reconnects with a
    /// fresh patience window regardless of how long the session ran.
    Broken(ServiceError),
}

/// Run a worker against the server at `socket` (a Unix socket path)
/// until the server closes the connection (drain) or sends
/// [`WorkerTask::Shutdown`]. One session, no reconnection — the shape
/// the local supervisor expects (it respawns the process itself).
///
/// # Errors
///
/// As [`run_worker_at`].
pub fn run_worker(socket: &Path) -> Result<(), ServiceError> {
    run_worker_at(&Endpoint::unix(socket), None)
}

/// Run a single worker session against the server at `endpoint`. A TCP
/// endpoint (or any endpoint with a token) first authenticates with a
/// `Hello` handshake.
///
/// # Errors
///
/// [`ServiceError::Io`] when the endpoint cannot be reached or breaks
/// mid-reply; [`ServiceError::Auth`] when the server refuses the
/// handshake; [`ServiceError::Protocol`] on an undecodable task line.
pub fn run_worker_at(endpoint: &Endpoint, token: Option<&str>) -> Result<(), ServiceError> {
    let profiler = Profiler::new();
    let mut cache = WorkerCache::new();
    match run_session(
        endpoint,
        token,
        Some(DEFAULT_HANDSHAKE_TIMEOUT),
        &profiler,
        &mut cache,
    )? {
        SessionEnd::Broken(e) => Err(e),
        SessionEnd::Shutdown | SessionEnd::Closed => Ok(()),
    }
}

/// Run a worker that **reconnects**: the remote (TCP) entry point.
///
/// The executor deliberately closes every connection it had acquired
/// when a round is poisoned (a sibling worker died mid-round), and a
/// drain closes idle connections too — so for a worker on another
/// machine, a closed or broken connection is routine, not fatal. This
/// loop serves sessions back to back; any session that got as far as
/// registering resets the patience window, and connect/handshake
/// attempts are retried for up to `retry_window` before giving up. An
/// explicit [`WorkerTask::Shutdown`] still exits immediately.
/// `handshake_timeout` bounds each attempt's handshake read (`None`
/// blocks; the task loop itself never times out — an idle worker
/// legitimately waits indefinitely, and a dead server surfaces as a
/// closed connection).
///
/// # Errors
///
/// [`ServiceError::Auth`]/[`ServiceError::Protocol`] immediately (a bad
/// token or incompatible server will not heal by retrying);
/// [`ServiceError::Io`] when no server was ever reached within the
/// window. Once at least one session was served, an unreachable server
/// is treated as a drain and the worker exits cleanly.
pub fn run_worker_resilient(
    endpoint: &Endpoint,
    token: Option<&str>,
    retry_window: Duration,
    handshake_timeout: Option<Duration>,
) -> Result<(), ServiceError> {
    let profiler = Profiler::new();
    let mut cache = WorkerCache::new();
    let mut window_start = std::time::Instant::now();
    let mut served_once = false;
    loop {
        match run_session(endpoint, token, handshake_timeout, &profiler, &mut cache) {
            Ok(SessionEnd::Shutdown) => return Ok(()),
            Ok(SessionEnd::Closed) => {
                // A healthy session ended; reconnect with a fresh
                // patience window (the shape memo in `cache` carries
                // over, so a reconnected worker is warm).
                window_start = std::time::Instant::now();
                served_once = true;
            }
            Ok(SessionEnd::Broken(e)) => {
                // Same, minus the clean goodbye: the server was alive
                // when the connection died, so keep serving it.
                eprintln!("seqpoint worker: connection broke ({e}); reconnecting");
                window_start = std::time::Instant::now();
                served_once = true;
            }
            // Credentials and protocol compatibility do not improve
            // with retries.
            Err(e @ (ServiceError::Auth(_) | ServiceError::Protocol(_))) => return Err(e),
            Err(e) => {
                if window_start.elapsed() >= retry_window {
                    if served_once {
                        eprintln!("seqpoint worker: server gone ({e}); exiting after drain");
                        return Ok(());
                    }
                    return Err(e);
                }
            }
        }
        std::thread::sleep(Duration::from_millis(250));
    }
}

/// One connect → handshake → announce → serve-tasks session. Failures
/// before the worker registers are hard `Err`s (the resilient loop's
/// retry window counts them down); failures after registration return
/// [`SessionEnd::Broken`] so the caller knows the server was reachable.
fn run_session(
    endpoint: &Endpoint,
    token: Option<&str>,
    handshake_timeout: Option<Duration>,
    profiler: &Profiler,
    cache: &mut WorkerCache,
) -> Result<SessionEnd, ServiceError> {
    let stream = endpoint
        .connect_timeout(handshake_timeout)
        .map_err(|e| ServiceError::io(format!("connecting to {endpoint}"), &e))?;
    let mut writer = stream
        .try_clone()
        .map_err(|e| ServiceError::io("cloning socket", &e))?;
    let mut reader = BufReader::new(stream);

    if endpoint.is_tcp() || token.is_some() {
        // Handshake under a finite timeout — a wedged server must not
        // hang the worker before it even registers. Cleared afterwards:
        // the task loop legitimately idles between rounds.
        let _ = reader.get_ref().set_read_timeout(handshake_timeout);
        client_handshake(&mut writer, &mut reader, token, None)?;
        let _ = reader.get_ref().set_read_timeout(None);
    }

    let mut line = encode_frame(&Request::Register {
        pid: u64::from(std::process::id()),
    });
    line.push('\n');
    if let Err(e) = writer.write_all(line.as_bytes()) {
        return Ok(SessionEnd::Broken(ServiceError::io(
            "announcing worker",
            &e,
        )));
    }

    let mut line = String::new();
    let mut lease: Option<String> = None;
    loop {
        line.clear();
        let n = match reader.read_line(&mut line) {
            Ok(n) => n,
            Err(e) => return Ok(SessionEnd::Broken(ServiceError::io("reading task", &e))),
        };
        if n == 0 {
            return Ok(SessionEnd::Closed); // drain or poisoned round
        }
        if !line.ends_with('\n') {
            // A line without its newline means EOF mid-frame: the server
            // died while writing. That is a broken connection (retry),
            // not a protocol violation (fatal).
            return Ok(SessionEnd::Broken(ServiceError::Io {
                context: "reading task".to_owned(),
                message: "connection closed mid-line".to_owned(),
            }));
        }
        let task: WorkerTask =
            decode_frame(&line).map_err(|e| ServiceError::Protocol(e.to_string()))?;
        let reply = match task {
            WorkerTask::Shutdown => return Ok(SessionEnd::Shutdown),
            // A lease announcement: the rounds that follow belong to
            // this job. Informational only — recorded for diagnostics,
            // never answered (a reply would desync the round FIFO).
            WorkerTask::Lease { job } => {
                lease = Some(job);
                continue;
            }
            task => match execute(profiler, cache, task) {
                Ok(reply) => reply,
                Err(e) => WorkerReply::Error {
                    reason: e.to_string(),
                },
            },
        };
        let mut out = encode_frame(&reply);
        out.push('\n');
        if let Err(e) = writer.write_all(out.as_bytes()) {
            let context = match &lease {
                Some(job) => format!("sending reply (leased to {job})"),
                None => "sending reply".to_owned(),
            };
            return Ok(SessionEnd::Broken(ServiceError::io(context, &e)));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_task_reports_interchange_payloads() {
        let profiler = Profiler::new();
        let mut cache = WorkerCache::new();
        let task = WorkerTask::Round {
            model: "gnmt".to_owned(),
            config: 1,
            stat: "runtime".to_owned(),
            shard: 2,
            batches: vec![(20, 16), (30, 16), (20, 16)],
        };
        let WorkerReply::Round {
            shard,
            tracker,
            chunk_time_s,
            shapes,
        } = execute(&profiler, &mut cache, task).unwrap()
        else {
            panic!("expected a round reply");
        };
        assert_eq!(shard, 2);
        assert!(chunk_time_s > 0.0);
        let tracker: seqpoint_core::online::OnlineSlTracker =
            serde::json::from_str(&tracker).unwrap();
        assert_eq!(tracker.iterations(), 3);
        assert_eq!(tracker.unique_count(), 2);
        let shapes: Vec<IterationProfile> = serde::json::from_str(&shapes).unwrap();
        assert_eq!(shapes.len(), 2, "two distinct shapes in the chunk");
    }

    #[test]
    fn worker_report_is_bit_identical_to_the_thread_leaf() {
        // The same chunk through the worker's execute() and directly
        // through execute_chunk must produce identical payloads — the
        // bit-exactness the subprocess placement rests on.
        let profiler = Profiler::new();
        let mut cache = WorkerCache::new();
        let batches = vec![(25u32, 16u32), (40, 16), (25, 16), (55, 8)];
        let task = WorkerTask::Round {
            model: "gnmt".to_owned(),
            config: 1,
            stat: "runtime".to_owned(),
            shard: 0,
            batches: batches.clone(),
        };
        let WorkerReply::Round {
            tracker, shapes, ..
        } = execute(&profiler, &mut cache, task).unwrap()
        else {
            panic!("expected a round reply");
        };

        let network = model_by_name("gnmt").unwrap();
        let device = device_by_config(1).unwrap();
        let mut memo = HashMap::new();
        let chunk = ShardChunk {
            shard: 0,
            batches: batches
                .iter()
                .map(|&(seq_len, samples)| BatchShape {
                    seq_len,
                    samples,
                    payload_fraction: 1.0,
                })
                .collect(),
        };
        let direct = execute_chunk(
            &profiler,
            &network,
            &device,
            sqnn_profiler::StatKind::Runtime,
            &mut memo,
            &chunk,
        );
        assert_eq!(tracker, serde::json::to_string(&direct.tracker).unwrap());
        assert_eq!(shapes, serde::json::to_string(&direct.shapes).unwrap());
    }

    #[test]
    fn unknown_workloads_reply_with_errors() {
        let profiler = Profiler::new();
        let mut cache = WorkerCache::new();
        for task in [
            WorkerTask::Round {
                model: "nope".to_owned(),
                config: 1,
                stat: "runtime".to_owned(),
                shard: 0,
                batches: vec![],
            },
            WorkerTask::Round {
                model: "gnmt".to_owned(),
                config: 1,
                stat: "nope".to_owned(),
                shard: 0,
                batches: vec![],
            },
            WorkerTask::Profile {
                model: "gnmt".to_owned(),
                config: 99,
                seq_len: 10,
                samples: 4,
            },
        ] {
            assert!(execute(&profiler, &mut cache, task).is_err());
        }
        // Control frames never reach execute(); defensively they error
        // rather than fabricating a reply.
        assert!(execute(&profiler, &mut cache, WorkerTask::Shutdown).is_err());
        let lease = WorkerTask::Lease {
            job: "j".to_owned(),
        };
        assert!(execute(&profiler, &mut cache, lease).is_err());
    }
}
