//! Lock-light metrics registry for the profiling service.
//!
//! One [`MetricsRegistry`] lives in the server's shared state and is
//! threaded through every subsystem: the connection loop counts
//! messages and bytes per direction (globally, per client, and per
//! connection), the scheduler tracks queue depth and wait time per
//! fairness class, the cache admission path counts hits, misses, and
//! followers, the worker pool counts leases and reclaims plus worker
//! wire traffic, and the round loop records round boundaries with
//! their wall time and item counts.
//!
//! Design constraints, in order:
//!
//! 1. **Hot-path cost ~zero.** Every per-message / per-round update is
//!    a handful of `Relaxed` atomic adds — no locks, no allocation, no
//!    clock reads beyond one `Instant::elapsed` for the time buckets.
//! 2. **One leaf lock.** The only mutex guards the per-client /
//!    per-connection maps and is taken at connection open/close,
//!    client-identity resolution, and render time — never per message.
//!    It is registered last in `analysis/lock_order.toml`, so holding
//!    any other service lock while touching a counter is legal, and
//!    nothing may be acquired while holding it.
//! 3. **No drift.** [`CATALOG`] is the single source of truth for
//!    metric names; [`MetricsRegistry::render`] iterates it, a unit
//!    test asserts every catalog entry produces a sample, and another
//!    asserts every entry is documented in `docs/metrics.md`.
//!
//! The rendered form is Prometheus-style text exposition; the same
//! string is served by the `Request::Metrics` protocol frame, the
//! `seqpoint submit --stats` view, and the optional
//! `serve --metrics-addr` scrape endpoint.

use std::collections::HashMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

use seqpoint_core::protocol::JobClass;
use sqnn_profiler::pipeline::{StageId, StageMeter, StageSample};

use crate::sync::LockExt;

/// Exposition type of a metric family.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MetricKind {
    /// Monotonically non-decreasing count since daemon start.
    Counter,
    /// Point-in-time value that can go up and down.
    Gauge,
}

impl MetricKind {
    /// The Prometheus `# TYPE` keyword.
    pub fn keyword(self) -> &'static str {
        match self {
            MetricKind::Counter => "counter",
            MetricKind::Gauge => "gauge",
        }
    }
}

/// One documented entry of the metric catalog.
#[derive(Clone, Copy, Debug)]
pub struct MetricDef {
    /// Exposition name (all names share the `seqpoint_` prefix).
    pub name: &'static str,
    /// Counter or gauge.
    pub kind: MetricKind,
    /// Comma-separated label names; empty for unlabeled families.
    pub labels: &'static str,
    /// One-line meaning, emitted verbatim as the `# HELP` text.
    pub help: &'static str,
}

const fn counter(name: &'static str, labels: &'static str, help: &'static str) -> MetricDef {
    MetricDef {
        name,
        kind: MetricKind::Counter,
        labels,
        help,
    }
}

const fn gauge(name: &'static str, labels: &'static str, help: &'static str) -> MetricDef {
    MetricDef {
        name,
        kind: MetricKind::Gauge,
        labels,
        help,
    }
}

/// Every metric family the registry exports, in exposition order.
///
/// `docs/metrics.md` documents exactly this list; a test fails when a
/// name is added here without a matching row there (or vice versa).
pub const CATALOG: &[MetricDef] = &[
    gauge(
        "seqpoint_uptime_seconds",
        "",
        "Seconds since this daemon process started.",
    ),
    counter(
        "seqpoint_connections_opened_total",
        "",
        "Client connections accepted (Unix socket and TCP).",
    ),
    counter(
        "seqpoint_connections_closed_total",
        "",
        "Client connections that have ended.",
    ),
    gauge(
        "seqpoint_connections_open",
        "",
        "Client connections currently open.",
    ),
    counter(
        "seqpoint_messages_in_total",
        "",
        "Protocol frames received from clients.",
    ),
    counter(
        "seqpoint_messages_out_total",
        "",
        "Protocol frames sent to clients.",
    ),
    counter(
        "seqpoint_bytes_in_total",
        "",
        "Wire bytes received from clients (NDJSON lines incl. newline).",
    ),
    counter(
        "seqpoint_bytes_out_total",
        "",
        "Wire bytes sent to clients (NDJSON lines incl. newline).",
    ),
    counter(
        "seqpoint_client_messages_in_total",
        "client",
        "Protocol frames received, by announced client identity.",
    ),
    counter(
        "seqpoint_client_messages_out_total",
        "client",
        "Protocol frames sent, by announced client identity.",
    ),
    counter(
        "seqpoint_client_bytes_in_total",
        "client",
        "Wire bytes received, by announced client identity.",
    ),
    counter(
        "seqpoint_client_bytes_out_total",
        "client",
        "Wire bytes sent, by announced client identity.",
    ),
    counter(
        "seqpoint_client_jobs_submitted_total",
        "client",
        "Jobs accepted into the queue, by announced client identity.",
    ),
    counter(
        "seqpoint_conn_messages_in_total",
        "conn,client",
        "Protocol frames received on each currently open connection.",
    ),
    counter(
        "seqpoint_conn_messages_out_total",
        "conn,client",
        "Protocol frames sent on each currently open connection.",
    ),
    counter(
        "seqpoint_conn_bytes_in_total",
        "conn,client",
        "Wire bytes received on each currently open connection.",
    ),
    counter(
        "seqpoint_conn_bytes_out_total",
        "conn,client",
        "Wire bytes sent on each currently open connection.",
    ),
    counter(
        "seqpoint_jobs_submitted_total",
        "",
        "Jobs accepted into the queue (cache followers included).",
    ),
    counter(
        "seqpoint_jobs_completed_total",
        "",
        "Jobs that reached the Done state.",
    ),
    counter(
        "seqpoint_jobs_failed_total",
        "",
        "Jobs that reached the Failed state.",
    ),
    counter(
        "seqpoint_jobs_cancelled_total",
        "",
        "Jobs that reached the Cancelled state.",
    ),
    gauge(
        "seqpoint_jobs_running",
        "",
        "Jobs executing rounds right now (sampled at render time).",
    ),
    counter(
        "seqpoint_rounds_total",
        "",
        "Profiling rounds completed across all jobs.",
    ),
    counter(
        "seqpoint_round_wall_ms_total",
        "",
        "Cumulative wall-clock milliseconds spent executing rounds.",
    ),
    gauge(
        "seqpoint_round_wall_ms_last",
        "",
        "Wall-clock milliseconds of the most recently completed round.",
    ),
    counter(
        "seqpoint_items_total",
        "",
        "Iterations (batch items) measured across all completed rounds.",
    ),
    counter(
        "seqpoint_stage_items_in_total",
        "stage",
        "Items consumed per streaming-pipeline stage (operator-graph runs).",
    ),
    counter(
        "seqpoint_stage_items_out_total",
        "stage",
        "Items produced per streaming-pipeline stage (operator-graph runs).",
    ),
    counter(
        "seqpoint_stage_wall_ms_total",
        "stage",
        "Wall milliseconds spent per streaming-pipeline stage.",
    ),
    gauge(
        "seqpoint_stage_channel_depth",
        "stage",
        "High-water input-channel depth observed per pipeline stage.",
    ),
    gauge(
        "seqpoint_queue_depth",
        "class",
        "Jobs waiting in the scheduler queue, per fairness class.",
    ),
    counter(
        "seqpoint_queue_wait_ms_total",
        "class",
        "Cumulative milliseconds jobs waited in queue, per class.",
    ),
    counter(
        "seqpoint_queue_dequeued_total",
        "class",
        "Jobs dispatched from the queue to a runner, per class.",
    ),
    counter(
        "seqpoint_cache_hits_total",
        "",
        "Submissions answered from a retained result (Admission::Ready).",
    ),
    counter(
        "seqpoint_cache_misses_total",
        "",
        "Submissions that had to run as a cache primary.",
    ),
    counter(
        "seqpoint_cache_followers_total",
        "",
        "Submissions attached to an in-flight primary (single-flight).",
    ),
    gauge(
        "seqpoint_cache_entries",
        "",
        "Retained ready results in the cache (sampled at render time).",
    ),
    counter(
        "seqpoint_fleet_leases_total",
        "",
        "Worker leases granted to rounds by the fleet pool.",
    ),
    counter(
        "seqpoint_fleet_reclaims_total",
        "",
        "Dead worker connections reclaimed by the fleet pool.",
    ),
    gauge(
        "seqpoint_fleet_idle",
        "",
        "Idle workers in the fleet pool (sampled at render time).",
    ),
    counter(
        "seqpoint_worker_messages_in_total",
        "",
        "Round replies received from leased workers.",
    ),
    counter(
        "seqpoint_worker_messages_out_total",
        "",
        "Round tasks sent to leased workers.",
    ),
    counter(
        "seqpoint_worker_bytes_in_total",
        "",
        "Wire bytes received from leased workers.",
    ),
    counter(
        "seqpoint_worker_bytes_out_total",
        "",
        "Wire bytes sent to leased workers.",
    ),
    gauge(
        "seqpoint_messages_in_60s",
        "",
        "Client frames received in the trailing 60-second window.",
    ),
    gauge(
        "seqpoint_messages_out_60s",
        "",
        "Client frames sent in the trailing 60-second window.",
    ),
    gauge(
        "seqpoint_bytes_in_60s",
        "",
        "Client bytes received in the trailing 60-second window.",
    ),
    gauge(
        "seqpoint_bytes_out_60s",
        "",
        "Client bytes sent in the trailing 60-second window.",
    ),
    gauge(
        "seqpoint_rounds_60s",
        "",
        "Rounds completed in the trailing 60-second window.",
    ),
];

/// Directional message/byte counters shared by the global, per-client,
/// and per-connection scopes.
#[derive(Debug, Default)]
struct WireCounters {
    messages_in: AtomicU64,
    messages_out: AtomicU64,
    bytes_in: AtomicU64,
    bytes_out: AtomicU64,
}

impl WireCounters {
    fn record_in(&self, bytes: u64) {
        self.messages_in.fetch_add(1, Ordering::Relaxed);
        self.bytes_in.fetch_add(bytes, Ordering::Relaxed);
    }

    fn record_out(&self, bytes: u64) {
        self.messages_out.fetch_add(1, Ordering::Relaxed);
        self.bytes_out.fetch_add(bytes, Ordering::Relaxed);
    }
}

/// Number of one-second buckets in a [`Window`].
const WINDOW_SLOTS: u64 = 60;

#[derive(Debug, Default)]
struct WindowSlot {
    /// Absolute second-since-start **plus one** (0 = never written).
    tag: AtomicU64,
    value: AtomicU64,
}

/// A fixed 60-second ring of one-second buckets. Writers tag the
/// current slot with the absolute second and add to it; readers sum
/// the slots whose tags fall inside the trailing window. A write that
/// races a second rollover can be attributed to the wrong bucket —
/// the window is an operator signal, not an invoice — but the total
/// counters it accompanies are always exact.
#[derive(Debug)]
struct Window {
    slots: Vec<WindowSlot>,
}

impl Default for Window {
    fn default() -> Self {
        let mut slots = Vec::with_capacity(WINDOW_SLOTS as usize);
        slots.resize_with(WINDOW_SLOTS as usize, WindowSlot::default);
        Window { slots }
    }
}

impl Window {
    fn record(&self, now_s: u64, value: u64) {
        let tag = now_s + 1;
        let idx = (now_s % WINDOW_SLOTS) as usize;
        if let Some(slot) = self.slots.get(idx) {
            if slot.tag.swap(tag, Ordering::Relaxed) != tag {
                // First write of this second: retire the stale bucket.
                slot.value.store(0, Ordering::Relaxed);
            }
            slot.value.fetch_add(value, Ordering::Relaxed);
        }
    }

    fn sum(&self, now_s: u64) -> u64 {
        let newest = now_s + 1;
        let oldest = newest.saturating_sub(WINDOW_SLOTS - 1);
        self.slots
            .iter()
            .map(|slot| {
                let tag = slot.tag.load(Ordering::Relaxed);
                if tag >= oldest && tag <= newest {
                    slot.value.load(Ordering::Relaxed)
                } else {
                    0
                }
            })
            .sum()
    }
}

/// Per-fairness-class queue counters, updated by the scheduler.
#[derive(Debug, Default)]
pub struct ClassCounters {
    queue_depth: AtomicU64,
    queue_wait_ms_total: AtomicU64,
    dequeued_total: AtomicU64,
}

impl ClassCounters {
    /// A job entered this class's queue.
    pub fn enqueued(&self) {
        self.queue_depth.fetch_add(1, Ordering::Relaxed);
    }

    /// A job left the queue for a runner after waiting `wait_ms`.
    pub fn dequeued(&self, wait_ms: u64) {
        let _ = self
            .queue_depth
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |v| {
                Some(v.saturating_sub(1))
            });
        self.queue_wait_ms_total
            .fetch_add(wait_ms, Ordering::Relaxed);
        self.dequeued_total.fetch_add(1, Ordering::Relaxed);
    }

    /// A queued job was removed without dispatch (cancel, drain).
    pub fn removed(&self) {
        let _ = self
            .queue_depth
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |v| {
                Some(v.saturating_sub(1))
            });
    }
}

/// Per-pipeline-stage accumulation, fed by the [`StageMeter`] hook the
/// round runner attaches at operator construction.
#[derive(Debug, Default)]
struct StageCounters {
    items_in: AtomicU64,
    items_out: AtomicU64,
    wall_ms: AtomicU64,
    /// High-water input-channel depth (backpressure indicator).
    depth: AtomicU64,
}

/// Per-client accumulation (wire traffic + job submissions).
#[derive(Debug, Default)]
struct ClientScope {
    wire: WireCounters,
    jobs_submitted: AtomicU64,
}

/// A currently open connection, as the registry tracks it.
#[derive(Debug)]
struct ConnEntry {
    wire: Arc<WireCounters>,
    client: Option<String>,
}

/// The maps behind the registry's single (leaf) lock.
#[derive(Debug, Default)]
struct Dynamic {
    clients: HashMap<String, Arc<ClientScope>>,
    conns: HashMap<u64, ConnEntry>,
}

/// Point-in-time values sampled from the other subsystems immediately
/// before rendering (never while holding any metrics lock).
#[derive(Clone, Copy, Debug, Default)]
pub struct RenderGauges {
    /// Jobs currently executing rounds.
    pub jobs_running: u64,
    /// Retained ready results in the cache.
    pub cache_entries: u64,
    /// Idle workers in the fleet pool.
    pub fleet_idle: u64,
}

/// The service-wide metrics registry. See the module docs for the
/// design; construct one per daemon with [`MetricsRegistry::new`] and
/// share it via `Arc`.
#[derive(Debug)]
pub struct MetricsRegistry {
    start: Instant,
    next_conn: AtomicU64,
    connections_opened: AtomicU64,
    connections_closed: AtomicU64,
    wire: WireCounters,
    worker_wire: WireCounters,
    jobs_submitted: AtomicU64,
    jobs_completed: AtomicU64,
    jobs_failed: AtomicU64,
    jobs_cancelled: AtomicU64,
    rounds_total: AtomicU64,
    round_wall_ms_total: AtomicU64,
    round_wall_ms_last: AtomicU64,
    items_total: AtomicU64,
    stages: [StageCounters; 5],
    cache_hits: AtomicU64,
    cache_misses: AtomicU64,
    cache_followers: AtomicU64,
    fleet_leases: AtomicU64,
    fleet_reclaims: AtomicU64,
    interactive: ClassCounters,
    batch: ClassCounters,
    window_messages_in: Window,
    window_messages_out: Window,
    window_bytes_in: Window,
    window_bytes_out: Window,
    window_rounds: Window,
    inner: Mutex<Dynamic>,
}

impl MetricsRegistry {
    /// A fresh registry; all counters start at zero and the 60-second
    /// windows are empty. Metrics are in-memory only and deliberately
    /// do **not** survive a daemon restart.
    pub fn new() -> Arc<MetricsRegistry> {
        Arc::new(MetricsRegistry {
            start: Instant::now(),
            next_conn: AtomicU64::new(1),
            connections_opened: AtomicU64::new(0),
            connections_closed: AtomicU64::new(0),
            wire: WireCounters::default(),
            worker_wire: WireCounters::default(),
            jobs_submitted: AtomicU64::new(0),
            jobs_completed: AtomicU64::new(0),
            jobs_failed: AtomicU64::new(0),
            jobs_cancelled: AtomicU64::new(0),
            rounds_total: AtomicU64::new(0),
            round_wall_ms_total: AtomicU64::new(0),
            round_wall_ms_last: AtomicU64::new(0),
            items_total: AtomicU64::new(0),
            stages: Default::default(),
            cache_hits: AtomicU64::new(0),
            cache_misses: AtomicU64::new(0),
            cache_followers: AtomicU64::new(0),
            fleet_leases: AtomicU64::new(0),
            fleet_reclaims: AtomicU64::new(0),
            interactive: ClassCounters::default(),
            batch: ClassCounters::default(),
            window_messages_in: Window::default(),
            window_messages_out: Window::default(),
            window_bytes_in: Window::default(),
            window_bytes_out: Window::default(),
            window_rounds: Window::default(),
            inner: Mutex::new(Dynamic::default()),
        })
    }

    fn now_s(&self) -> u64 {
        self.start.elapsed().as_secs()
    }

    /// Register a new client connection; the returned handle counts
    /// wire traffic for it and unregisters on drop.
    pub fn conn_opened(self: &Arc<MetricsRegistry>) -> ConnMetrics {
        let id = self.next_conn.fetch_add(1, Ordering::Relaxed);
        self.connections_opened.fetch_add(1, Ordering::Relaxed);
        let wire = Arc::new(WireCounters::default());
        self.inner.lock_recover().conns.insert(
            id,
            ConnEntry {
                wire: Arc::clone(&wire),
                client: None,
            },
        );
        ConnMetrics {
            registry: Arc::clone(self),
            id,
            conn: wire,
            client: OnceLock::new(),
        }
    }

    /// The per-class counter block the scheduler updates.
    pub fn class(&self, class: JobClass) -> &ClassCounters {
        match class {
            JobClass::Interactive => &self.interactive,
            JobClass::Batch => &self.batch,
        }
    }

    /// A job was accepted into the queue, attributed to `client`.
    pub fn job_submitted(&self, client: &str) {
        self.jobs_submitted.fetch_add(1, Ordering::Relaxed);
        self.client_scope(client)
            .jobs_submitted
            .fetch_add(1, Ordering::Relaxed);
    }

    /// A job reached the Done state.
    pub fn job_completed(&self) {
        self.jobs_completed.fetch_add(1, Ordering::Relaxed);
    }

    /// A job reached the Failed state.
    pub fn job_failed(&self) {
        self.jobs_failed.fetch_add(1, Ordering::Relaxed);
    }

    /// A job reached the Cancelled state.
    pub fn job_cancelled(&self) {
        self.jobs_cancelled.fetch_add(1, Ordering::Relaxed);
    }

    /// A submission was answered from a retained cached result.
    pub fn cache_hit(&self) {
        self.cache_hits.fetch_add(1, Ordering::Relaxed);
    }

    /// A submission missed the cache and runs as a primary.
    pub fn cache_miss(&self) {
        self.cache_misses.fetch_add(1, Ordering::Relaxed);
    }

    /// A submission attached to an in-flight primary.
    pub fn cache_follower(&self) {
        self.cache_followers.fetch_add(1, Ordering::Relaxed);
    }

    /// A profiling round completed in `wall_ms`, measuring `items`
    /// iterations.
    pub fn round_completed(&self, wall_ms: u64, items: u64) {
        self.rounds_total.fetch_add(1, Ordering::Relaxed);
        self.round_wall_ms_total
            .fetch_add(wall_ms, Ordering::Relaxed);
        self.round_wall_ms_last.store(wall_ms, Ordering::Relaxed);
        self.items_total.fetch_add(items, Ordering::Relaxed);
        self.window_rounds.record(self.now_s(), 1);
    }

    /// The fleet pool granted `n` worker leases.
    pub fn fleet_leased(&self, n: u64) {
        self.fleet_leases.fetch_add(n, Ordering::Relaxed);
    }

    /// The fleet pool reclaimed `n` dead worker connections.
    pub fn fleet_reclaimed(&self, n: u64) {
        self.fleet_reclaims.fetch_add(n, Ordering::Relaxed);
    }

    /// A reply of `bytes` arrived from a leased worker.
    pub fn worker_in(&self, bytes: u64) {
        self.worker_wire.record_in(bytes);
    }

    /// A task of `bytes` was sent to a leased worker.
    pub fn worker_out(&self, bytes: u64) {
        self.worker_wire.record_out(bytes);
    }

    fn client_scope(&self, name: &str) -> Arc<ClientScope> {
        let mut inner = self.inner.lock_recover();
        match inner.clients.get(name) {
            Some(scope) => Arc::clone(scope),
            None => {
                let scope = Arc::new(ClientScope::default());
                inner.clients.insert(name.to_owned(), Arc::clone(&scope));
                scope
            }
        }
    }

    fn conn_closed(&self, id: u64) {
        self.connections_closed.fetch_add(1, Ordering::Relaxed);
        self.inner.lock_recover().conns.remove(&id);
    }

    fn label_conn(&self, id: u64, client: &str) {
        if let Some(entry) = self.inner.lock_recover().conns.get_mut(&id) {
            entry.client = Some(client.to_owned());
        }
    }

    /// Render the full Prometheus-style text exposition. `gauges`
    /// carries the point-in-time values owned by other subsystems;
    /// sample them **before** calling (this method takes the registry
    /// lock briefly and must stay a lock-order leaf).
    pub fn render(&self, gauges: &RenderGauges) -> String {
        let now_s = self.now_s();
        // Snapshot the dynamic maps once, in stable order, then render
        // without the lock.
        let (clients, conns) = {
            let inner = self.inner.lock_recover();
            let mut clients: Vec<(String, Arc<ClientScope>)> = inner
                .clients
                .iter()
                .map(|(k, v)| (k.clone(), Arc::clone(v)))
                .collect();
            clients.sort_by(|a, b| a.0.cmp(&b.0));
            let mut conns: Vec<(u64, Option<String>, Arc<WireCounters>)> = inner
                .conns
                .iter()
                .map(|(id, e)| (*id, e.client.clone(), Arc::clone(&e.wire)))
                .collect();
            conns.sort_by_key(|c| c.0);
            (clients, conns)
        };
        let load = |a: &AtomicU64| a.load(Ordering::Relaxed);
        let mut out = String::new();
        for def in CATALOG {
            let _ = writeln!(out, "# HELP {} {}", def.name, def.help);
            let _ = writeln!(out, "# TYPE {} {}", def.name, def.kind.keyword());
            let plain = |out: &mut String, v: u64| {
                let _ = writeln!(out, "{} {v}", def.name);
            };
            let by_class = |out: &mut String, pick: fn(&ClassCounters) -> &AtomicU64| {
                for class in [JobClass::Interactive, JobClass::Batch] {
                    let _ = writeln!(
                        out,
                        "{}{{class=\"{}\"}} {}",
                        def.name,
                        class.label(),
                        load(pick(self.class(class)))
                    );
                }
            };
            let by_client = |out: &mut String, pick: fn(&ClientScope) -> &AtomicU64| {
                for (name, scope) in &clients {
                    let _ = writeln!(
                        out,
                        "{}{{client=\"{}\"}} {}",
                        def.name,
                        escape_label(name),
                        load(pick(scope))
                    );
                }
            };
            let by_stage = |out: &mut String, pick: fn(&StageCounters) -> &AtomicU64| {
                for (stage, slot) in StageId::ALL.iter().zip(&self.stages) {
                    let _ = writeln!(
                        out,
                        "{}{{stage=\"{}\"}} {}",
                        def.name,
                        stage.label(),
                        load(pick(slot))
                    );
                }
            };
            let by_conn = |out: &mut String, pick: fn(&WireCounters) -> &AtomicU64| {
                for (id, client, wire) in &conns {
                    let who = client.as_deref().unwrap_or("");
                    let _ = writeln!(
                        out,
                        "{}{{conn=\"{id}\",client=\"{}\"}} {}",
                        def.name,
                        escape_label(who),
                        load(pick(wire))
                    );
                }
            };
            match def.name {
                "seqpoint_uptime_seconds" => plain(&mut out, now_s),
                "seqpoint_connections_opened_total" => {
                    plain(&mut out, load(&self.connections_opened));
                }
                "seqpoint_connections_closed_total" => {
                    plain(&mut out, load(&self.connections_closed));
                }
                "seqpoint_connections_open" => plain(
                    &mut out,
                    load(&self.connections_opened).saturating_sub(load(&self.connections_closed)),
                ),
                "seqpoint_messages_in_total" => plain(&mut out, load(&self.wire.messages_in)),
                "seqpoint_messages_out_total" => plain(&mut out, load(&self.wire.messages_out)),
                "seqpoint_bytes_in_total" => plain(&mut out, load(&self.wire.bytes_in)),
                "seqpoint_bytes_out_total" => plain(&mut out, load(&self.wire.bytes_out)),
                "seqpoint_client_messages_in_total" => {
                    by_client(&mut out, |s| &s.wire.messages_in);
                }
                "seqpoint_client_messages_out_total" => {
                    by_client(&mut out, |s| &s.wire.messages_out);
                }
                "seqpoint_client_bytes_in_total" => by_client(&mut out, |s| &s.wire.bytes_in),
                "seqpoint_client_bytes_out_total" => by_client(&mut out, |s| &s.wire.bytes_out),
                "seqpoint_client_jobs_submitted_total" => {
                    by_client(&mut out, |s| &s.jobs_submitted);
                }
                "seqpoint_conn_messages_in_total" => by_conn(&mut out, |w| &w.messages_in),
                "seqpoint_conn_messages_out_total" => by_conn(&mut out, |w| &w.messages_out),
                "seqpoint_conn_bytes_in_total" => by_conn(&mut out, |w| &w.bytes_in),
                "seqpoint_conn_bytes_out_total" => by_conn(&mut out, |w| &w.bytes_out),
                "seqpoint_jobs_submitted_total" => plain(&mut out, load(&self.jobs_submitted)),
                "seqpoint_jobs_completed_total" => plain(&mut out, load(&self.jobs_completed)),
                "seqpoint_jobs_failed_total" => plain(&mut out, load(&self.jobs_failed)),
                "seqpoint_jobs_cancelled_total" => plain(&mut out, load(&self.jobs_cancelled)),
                "seqpoint_jobs_running" => plain(&mut out, gauges.jobs_running),
                "seqpoint_rounds_total" => plain(&mut out, load(&self.rounds_total)),
                "seqpoint_round_wall_ms_total" => {
                    plain(&mut out, load(&self.round_wall_ms_total));
                }
                "seqpoint_round_wall_ms_last" => plain(&mut out, load(&self.round_wall_ms_last)),
                "seqpoint_items_total" => plain(&mut out, load(&self.items_total)),
                "seqpoint_stage_items_in_total" => by_stage(&mut out, |s| &s.items_in),
                "seqpoint_stage_items_out_total" => by_stage(&mut out, |s| &s.items_out),
                "seqpoint_stage_wall_ms_total" => by_stage(&mut out, |s| &s.wall_ms),
                "seqpoint_stage_channel_depth" => by_stage(&mut out, |s| &s.depth),
                "seqpoint_queue_depth" => by_class(&mut out, |c| &c.queue_depth),
                "seqpoint_queue_wait_ms_total" => by_class(&mut out, |c| &c.queue_wait_ms_total),
                "seqpoint_queue_dequeued_total" => by_class(&mut out, |c| &c.dequeued_total),
                "seqpoint_cache_hits_total" => plain(&mut out, load(&self.cache_hits)),
                "seqpoint_cache_misses_total" => plain(&mut out, load(&self.cache_misses)),
                "seqpoint_cache_followers_total" => plain(&mut out, load(&self.cache_followers)),
                "seqpoint_cache_entries" => plain(&mut out, gauges.cache_entries),
                "seqpoint_fleet_leases_total" => plain(&mut out, load(&self.fleet_leases)),
                "seqpoint_fleet_reclaims_total" => plain(&mut out, load(&self.fleet_reclaims)),
                "seqpoint_fleet_idle" => plain(&mut out, gauges.fleet_idle),
                "seqpoint_worker_messages_in_total" => {
                    plain(&mut out, load(&self.worker_wire.messages_in));
                }
                "seqpoint_worker_messages_out_total" => {
                    plain(&mut out, load(&self.worker_wire.messages_out));
                }
                "seqpoint_worker_bytes_in_total" => {
                    plain(&mut out, load(&self.worker_wire.bytes_in));
                }
                "seqpoint_worker_bytes_out_total" => {
                    plain(&mut out, load(&self.worker_wire.bytes_out));
                }
                "seqpoint_messages_in_60s" => {
                    plain(&mut out, self.window_messages_in.sum(now_s));
                }
                "seqpoint_messages_out_60s" => {
                    plain(&mut out, self.window_messages_out.sum(now_s));
                }
                "seqpoint_bytes_in_60s" => plain(&mut out, self.window_bytes_in.sum(now_s)),
                "seqpoint_bytes_out_60s" => plain(&mut out, self.window_bytes_out.sum(now_s)),
                "seqpoint_rounds_60s" => plain(&mut out, self.window_rounds.sum(now_s)),
                // Unreachable while the catalog and this match agree;
                // the `render_covers_every_catalog_entry` test pins it.
                _ => {}
            }
        }
        out
    }
}

/// The registry doubles as the streaming pipeline's per-stage meter:
/// `run_job` attaches it at operator construction, so every served
/// round's source/fold/merge/gate/sink work lands in the `stage`-labeled
/// families — atomic adds only, preserving the hot-path-cost rule.
impl StageMeter for MetricsRegistry {
    fn record(&self, stage: StageId, sample: StageSample) {
        if let Some(slot) = self.stages.get(stage.index()) {
            slot.items_in.fetch_add(sample.items_in, Ordering::Relaxed);
            slot.items_out
                .fetch_add(sample.items_out, Ordering::Relaxed);
            slot.wall_ms.fetch_add(sample.wall_ms, Ordering::Relaxed);
            slot.depth
                .fetch_max(sample.channel_depth, Ordering::Relaxed);
        }
    }
}

/// Escape a label value for the text exposition (`\`, `"`, newline).
fn escape_label(value: &str) -> String {
    let mut out = String::with_capacity(value.len());
    for c in value.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            other => out.push(other),
        }
    }
    out
}

/// Wire-accounting handle for one client connection. Created by
/// [`MetricsRegistry::conn_opened`]; dropping it marks the connection
/// closed and retires its per-connection series.
#[derive(Debug)]
pub struct ConnMetrics {
    registry: Arc<MetricsRegistry>,
    id: u64,
    conn: Arc<WireCounters>,
    client: OnceLock<Arc<ClientScope>>,
}

impl ConnMetrics {
    /// Attribute this connection (and its traffic from here on) to the
    /// announced client identity. First call wins; later calls only
    /// relabel the per-connection series.
    pub fn set_client(&self, name: &str) {
        let scope = self.registry.client_scope(name);
        let _ = self.client.set(scope);
        self.registry.label_conn(self.id, name);
    }

    /// One protocol frame of `bytes` arrived on this connection.
    pub fn record_in(&self, bytes: u64) {
        self.registry.wire.record_in(bytes);
        self.registry
            .window_messages_in
            .record(self.registry.now_s(), 1);
        self.registry
            .window_bytes_in
            .record(self.registry.now_s(), bytes);
        self.conn.record_in(bytes);
        if let Some(scope) = self.client.get() {
            scope.wire.record_in(bytes);
        }
    }

    /// One protocol frame of `bytes` was sent on this connection.
    pub fn record_out(&self, bytes: u64) {
        self.registry.wire.record_out(bytes);
        self.registry
            .window_messages_out
            .record(self.registry.now_s(), 1);
        self.registry
            .window_bytes_out
            .record(self.registry.now_s(), bytes);
        self.conn.record_out(bytes);
        if let Some(scope) = self.client.get() {
            scope.wire.record_out(bytes);
        }
    }
}

impl Drop for ConnMetrics {
    fn drop(&mut self) {
        self.registry.conn_closed(self.id);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_registry() -> Arc<MetricsRegistry> {
        let registry = MetricsRegistry::new();
        let conn = registry.conn_opened();
        conn.record_in(64);
        conn.set_client("tester");
        conn.record_in(100);
        conn.record_out(500);
        registry.job_submitted("tester");
        registry.job_completed();
        registry.job_failed();
        registry.job_cancelled();
        registry.cache_hit();
        registry.cache_miss();
        registry.cache_follower();
        registry.round_completed(12, 96);
        registry.fleet_leased(3);
        registry.fleet_reclaimed(1);
        registry.worker_in(40);
        registry.worker_out(80);
        registry.class(JobClass::Interactive).enqueued();
        registry.class(JobClass::Interactive).dequeued(7);
        registry.class(JobClass::Batch).enqueued();
        registry.class(JobClass::Batch).removed();
        registry.record(
            StageId::Fold,
            StageSample {
                items_in: 64,
                items_out: 3,
                wall_ms: 9,
                channel_depth: 0,
            },
        );
        std::mem::forget(conn); // keep the per-conn series alive
        registry
    }

    /// Stage samples accumulate into the `stage`-labeled families, and
    /// every stage renders a series even before it has recorded work.
    #[test]
    fn stage_samples_land_in_labeled_families() {
        let registry = MetricsRegistry::new();
        registry.record(
            StageId::Merge,
            StageSample {
                items_in: 4,
                items_out: 1,
                wall_ms: 2,
                channel_depth: 0,
            },
        );
        registry.record(
            StageId::Merge,
            StageSample {
                items_in: 0,
                items_out: 0,
                wall_ms: 0,
                channel_depth: 1,
            },
        );
        // Depth is a high-water mark: a later zero sample keeps it.
        registry.record(
            StageId::Merge,
            StageSample {
                items_in: 4,
                items_out: 1,
                wall_ms: 1,
                channel_depth: 0,
            },
        );
        let text = registry.render(&RenderGauges::default());
        assert!(text.contains("seqpoint_stage_items_in_total{stage=\"merge\"} 8"));
        assert!(text.contains("seqpoint_stage_items_out_total{stage=\"merge\"} 2"));
        assert!(text.contains("seqpoint_stage_wall_ms_total{stage=\"merge\"} 3"));
        assert!(text.contains("seqpoint_stage_channel_depth{stage=\"merge\"} 1"));
        // Idle stages still expose their series at zero.
        assert!(text.contains("seqpoint_stage_items_in_total{stage=\"sink\"} 0"));
    }

    /// Every catalog entry must produce at least one sample line when
    /// every scope has data — i.e. the render match can't silently
    /// drop a documented metric.
    #[test]
    fn render_covers_every_catalog_entry() {
        let registry = sample_registry();
        let text = registry.render(&RenderGauges {
            jobs_running: 2,
            cache_entries: 5,
            fleet_idle: 1,
        });
        for def in CATALOG {
            let has_sample = text.lines().any(|l| {
                l.strip_prefix(def.name)
                    .is_some_and(|rest| rest.starts_with(' ') || rest.starts_with('{'))
            });
            assert!(has_sample, "no sample rendered for {}", def.name);
            assert!(
                text.contains(&format!("# TYPE {} {}", def.name, def.kind.keyword())),
                "no TYPE line for {}",
                def.name
            );
        }
    }

    /// Catalog names are unique and uniformly prefixed.
    #[test]
    fn catalog_names_are_unique_and_prefixed() {
        let mut seen = std::collections::HashSet::new();
        for def in CATALOG {
            assert!(def.name.starts_with("seqpoint_"), "{}", def.name);
            assert!(seen.insert(def.name), "duplicate catalog name {}", def.name);
            assert!(!def.help.is_empty(), "{} has no help text", def.name);
        }
    }

    /// `docs/metrics.md` documents exactly the catalog: every exported
    /// name appears in the doc, and every `seqpoint_`-prefixed name
    /// the doc mentions exists in the catalog. An undocumented counter
    /// (or a stale doc row) fails here.
    #[test]
    fn docs_metrics_md_matches_the_catalog() {
        let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../docs/metrics.md");
        let doc =
            std::fs::read_to_string(path).unwrap_or_else(|e| panic!("cannot read {path}: {e}"));
        for def in CATALOG {
            assert!(
                doc.contains(def.name),
                "{} is exported but not documented in docs/metrics.md",
                def.name
            );
        }
        let known: std::collections::HashSet<&str> = CATALOG.iter().map(|d| d.name).collect();
        for token in doc.split(|c: char| !(c.is_ascii_alphanumeric() || c == '_')) {
            if let Some(rest) = token.strip_prefix("seqpoint_") {
                // Skip non-metric identifiers (binary name etc.): a
                // metric token is exactly a catalog-style name.
                if rest.is_empty() {
                    continue;
                }
                assert!(
                    known.contains(token),
                    "docs/metrics.md mentions unknown metric `{token}`"
                );
            }
        }
    }

    #[test]
    fn window_sums_only_the_trailing_sixty_seconds() {
        let w = Window::default();
        w.record(0, 5);
        w.record(1, 7);
        assert_eq!(w.sum(1), 12);
        // 59 seconds later both are still visible...
        assert_eq!(w.sum(59), 12);
        // ...at 60 the second-0 bucket ages out...
        assert_eq!(w.sum(60), 7);
        // ...and a wrapped write retires the stale bucket it lands on.
        w.record(60, 1);
        assert_eq!(w.sum(60), 8);
        // One second on, the second-1 bucket ages out too.
        assert_eq!(w.sum(61), 1);
        assert_eq!(w.sum(200), 0);
    }

    #[test]
    fn conn_drop_retires_the_connection_series() {
        let registry = MetricsRegistry::new();
        let conn = registry.conn_opened();
        conn.record_in(10);
        let live = registry.render(&RenderGauges::default());
        assert!(live.contains("seqpoint_conn_bytes_in_total{conn=\"1\""));
        drop(conn);
        let gone = registry.render(&RenderGauges::default());
        assert!(!gone.contains("seqpoint_conn_bytes_in_total{conn=\"1\""));
        assert!(gone.contains("seqpoint_connections_closed_total 1"));
    }

    #[test]
    fn client_attribution_starts_at_set_client() {
        let registry = MetricsRegistry::new();
        let conn = registry.conn_opened();
        conn.record_in(100); // pre-identity: global + conn only
        conn.set_client("c1");
        conn.record_in(11);
        conn.record_out(22);
        let text = registry.render(&RenderGauges::default());
        assert!(text.contains("seqpoint_client_bytes_in_total{client=\"c1\"} 11"));
        assert!(text.contains("seqpoint_client_bytes_out_total{client=\"c1\"} 22"));
        assert!(text.contains("seqpoint_bytes_in_total 111"));
        assert!(text.contains("seqpoint_conn_bytes_in_total{conn=\"1\",client=\"c1\"} 111"));
    }

    #[test]
    fn label_values_are_escaped() {
        assert_eq!(escape_label("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
    }
}
