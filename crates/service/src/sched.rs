//! Multi-tenant job scheduler: weighted-fair queueing across
//! [`JobClass`]es with round-robin service among clients inside a
//! class, plus a plain FIFO mode (`--fair` off) that reproduces the
//! original bounded-queue behavior bit for bit.
//!
//! # Fairness model
//!
//! Each class keeps a **virtual time** that advances by `SCALE /
//! class.weight()` per dispatched job. The scheduler always serves the
//! backlogged class with the smallest virtual time, so under contention
//! a weight-4 `interactive` class gets four slots for every one a
//! weight-1 `batch` class gets — a batch flood delays interactive work
//! by a bounded factor instead of starving it behind the whole flood.
//! When a class goes from idle to backlogged its virtual time is caught
//! up to the minimum of the other active classes, so accumulated idle
//! credit cannot let it monopolize slots afterwards.
//!
//! Within a class, clients are served round-robin (one job per turn),
//! so one client's burst cannot starve another client in the same
//! class; within a client, jobs stay FIFO by arrival.
//!
//! The scheduler owns its own lock, acquired strictly **after** the
//! server's `jobs` lock (never the other way around).

use std::collections::{HashMap, VecDeque};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::time::{Duration, Instant};

use seqpoint_core::protocol::JobClass;

use crate::metrics::MetricsRegistry;
use crate::sync::{CondvarExt, LockExt};

/// Fixed-point scale for class virtual time; divisible by every class
/// weight so the arithmetic stays exact.
const SCALE: u64 = 840;

/// Service order across classes when virtual times tie (and the
/// iteration order for deterministic scans).
const CLASSES: [JobClass; 2] = [JobClass::Interactive, JobClass::Batch];

/// One queued job and the arrival stamp that orders FIFO mode.
struct QueuedJob {
    seq: u64,
    id: String,
    /// Arrival instant, for the queue-wait metric at dispatch.
    queued_at: Instant,
}

/// A class's backlog: one FIFO per client, served round-robin.
struct ClassQueue {
    /// Virtual time (scaled); smallest backlogged class is served next.
    vtime: u64,
    /// Round-robin ring of clients with pending jobs.
    ring: VecDeque<String>,
    /// Per-client FIFO backlogs.
    by_client: HashMap<String, VecDeque<QueuedJob>>,
}

impl ClassQueue {
    fn new() -> Self {
        ClassQueue {
            vtime: 0,
            ring: VecDeque::new(),
            by_client: HashMap::new(),
        }
    }

    fn is_empty(&self) -> bool {
        self.ring.is_empty()
    }

    fn push(&mut self, client: &str, job: QueuedJob) {
        let backlog = self.by_client.entry(client.to_owned()).or_default();
        if backlog.is_empty() {
            self.ring.push_back(client.to_owned());
        }
        backlog.push_back(job);
    }

    /// Pop the next job round-robin across clients.
    fn pop_fair(&mut self) -> Option<QueuedJob> {
        let client = self.ring.pop_front()?;
        let backlog = self.by_client.get_mut(&client)?;
        let job = backlog.pop_front();
        if backlog.is_empty() {
            self.by_client.remove(&client);
        } else {
            self.ring.push_back(client);
        }
        job
    }

    /// Arrival stamp of the oldest job in this class (FIFO mode).
    fn oldest_seq(&self) -> Option<u64> {
        self.by_client
            .values()
            .filter_map(|q| q.front().map(|j| j.seq))
            .min()
    }

    /// Pop the oldest job by arrival (FIFO mode).
    fn pop_oldest(&mut self) -> Option<QueuedJob> {
        let client = self
            .by_client
            .iter()
            .filter_map(|(c, q)| q.front().map(|j| (j.seq, c.clone())))
            .min()?
            .1;
        let backlog = self.by_client.get_mut(&client)?;
        let job = backlog.pop_front();
        if backlog.is_empty() {
            self.by_client.remove(&client);
            self.ring.retain(|c| *c != client);
        }
        job
    }

    fn remove(&mut self, id: &str) -> bool {
        let mut found = false;
        let mut emptied: Option<String> = None;
        for (client, backlog) in self.by_client.iter_mut() {
            let before = backlog.len();
            backlog.retain(|j| j.id != id);
            if backlog.len() != before {
                found = true;
                if backlog.is_empty() {
                    emptied = Some(client.clone());
                }
                break;
            }
        }
        if let Some(client) = emptied {
            self.by_client.remove(&client);
            self.ring.retain(|c| *c != client);
        }
        found
    }
}

struct SchedInner {
    classes: HashMap<JobClass, ClassQueue>,
    arrivals: u64,
    len: usize,
    /// Server virtual clock: the virtual time of the last class served.
    /// A class waking from idle catches up to it (no banked credit for
    /// idle periods, in either direction).
    vclock: u64,
}

/// The shared scheduler: a bounded multi-tenant queue the runner
/// threads pop from. See the module docs for the fairness model.
pub struct Scheduler {
    fair: bool,
    cap: usize,
    inner: Mutex<SchedInner>,
    cv: Condvar,
    /// Attached by the daemon after construction; absent in library
    /// tests, where queue metrics are simply not recorded.
    metrics: OnceLock<Arc<MetricsRegistry>>,
}

impl Scheduler {
    /// A scheduler bounded at `cap` queued jobs. `fair` selects
    /// weighted-fair queueing; otherwise service is global FIFO.
    pub fn new(fair: bool, cap: usize) -> Self {
        Scheduler {
            fair,
            cap,
            inner: Mutex::new(SchedInner {
                classes: HashMap::new(),
                arrivals: 0,
                len: 0,
                vclock: 0,
            }),
            cv: Condvar::new(),
            metrics: OnceLock::new(),
        }
    }

    /// Attach the daemon's metrics registry: from here on the scheduler
    /// records per-class queue depth, wait time, and dispatch counts.
    /// First call wins.
    pub fn attach_metrics(&self, metrics: Arc<MetricsRegistry>) {
        let _ = self.metrics.set(metrics);
    }

    /// Enqueue a new submission. Returns `false` when the queue is at
    /// capacity (admission control: the caller rejects the submission).
    pub fn push(&self, id: &str, class: JobClass, client: &str) -> bool {
        let mut inner = self.inner.lock_recover();
        if inner.len >= self.cap {
            return false;
        }
        self.enqueue(&mut inner, id, class, client);
        drop(inner);
        self.cv.notify_all();
        true
    }

    /// Re-enqueue a preempted/retrying/recovered job, bypassing the
    /// capacity bound — the job was already admitted once; dropping it
    /// now would strand a client that was told `Submitted`.
    pub fn requeue(&self, id: &str, class: JobClass, client: &str) {
        let mut inner = self.inner.lock_recover();
        self.enqueue(&mut inner, id, class, client);
        drop(inner);
        self.cv.notify_all();
    }

    fn enqueue(&self, inner: &mut SchedInner, id: &str, class: JobClass, client: &str) {
        inner.arrivals += 1;
        let seq = inner.arrivals;
        // A class waking from idle catches up to the server's virtual
        // clock: it gets no credit for time it had nothing to run, and
        // is not penalized for the work others did meanwhile.
        let vclock = inner.vclock;
        let queue = inner.classes.entry(class).or_insert_with(ClassQueue::new);
        if queue.is_empty() {
            queue.vtime = queue.vtime.max(vclock);
        }
        queue.push(
            client,
            QueuedJob {
                seq,
                id: id.to_owned(),
                queued_at: Instant::now(),
            },
        );
        inner.len += 1;
        if let Some(metrics) = self.metrics.get() {
            metrics.class(class).enqueued();
        }
    }

    /// Pop the next job to run, waiting up to `timeout` for one to
    /// arrive. Returns `None` on timeout; the runner loop re-checks its
    /// drain flag and calls again.
    pub fn pop_timeout(&self, timeout: Duration) -> Option<String> {
        let deadline = Instant::now() + timeout;
        let mut inner = self.inner.lock_recover();
        loop {
            if let Some(id) = self.pop_locked(&mut inner) {
                return Some(id);
            }
            let now = Instant::now();
            if now >= deadline {
                return None;
            }
            let (guard, _) = self.cv.wait_timeout_recover(inner, deadline - now);
            inner = guard;
        }
    }

    fn pop_locked(&self, inner: &mut SchedInner) -> Option<String> {
        let pick = if self.fair {
            // Smallest virtual time among backlogged classes; CLASSES
            // order breaks ties (interactive first) because min_by_key
            // keeps the first of equal minima.
            CLASSES
                .iter()
                .copied()
                .filter_map(|c| {
                    inner
                        .classes
                        .get(&c)
                        .filter(|q| !q.is_empty())
                        .map(|q| (c, q.vtime))
                })
                .min_by_key(|(_, vtime)| *vtime)
                .map(|(c, _)| c)?
        } else {
            // Global FIFO: the class holding the oldest arrival.
            // Ties on seq (impossible — seq is unique) would break by
            // CLASSES order, as above.
            CLASSES
                .iter()
                .copied()
                .filter_map(|c| {
                    inner
                        .classes
                        .get(&c)
                        .and_then(ClassQueue::oldest_seq)
                        .map(|s| (c, s))
                })
                .min_by_key(|(_, seq)| *seq)
                .map(|(c, _)| c)?
        };
        let queue = inner.classes.get_mut(&pick)?;
        let vclock = queue.vtime;
        let job = if self.fair {
            let job = queue.pop_fair();
            queue.vtime += SCALE / pick.weight();
            job
        } else {
            queue.pop_oldest()
        }?;
        inner.vclock = vclock;
        inner.len -= 1;
        if let Some(metrics) = self.metrics.get() {
            metrics
                .class(pick)
                .dequeued(job.queued_at.elapsed().as_millis() as u64);
        }
        Some(job.id)
    }

    /// Remove a queued job (cancellation). Returns whether it was
    /// queued.
    pub fn remove(&self, id: &str) -> bool {
        let mut inner = self.inner.lock_recover();
        for class in CLASSES {
            if let Some(queue) = inner.classes.get_mut(&class) {
                if queue.remove(id) {
                    inner.len -= 1;
                    if let Some(metrics) = self.metrics.get() {
                        metrics.class(class).removed();
                    }
                    return true;
                }
            }
        }
        false
    }

    /// Queued jobs across all classes and clients.
    pub fn len(&self) -> usize {
        self.inner.lock_recover().len
    }

    /// Whether no jobs are queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Wake every blocked `pop_timeout` (drain: the runners observe the
    /// drain flag and exit).
    pub fn notify_all(&self) {
        self.cv.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drain_order(sched: &Scheduler) -> Vec<String> {
        let mut order = Vec::new();
        while let Some(id) = sched.pop_timeout(Duration::from_millis(1)) {
            order.push(id);
        }
        order
    }

    #[test]
    fn fifo_mode_preserves_arrival_order_across_classes_and_clients() {
        let sched = Scheduler::new(false, 16);
        assert!(sched.push("a1", JobClass::Batch, "a"));
        assert!(sched.push("b1", JobClass::Interactive, "b"));
        assert!(sched.push("a2", JobClass::Batch, "a"));
        assert!(sched.push("c1", JobClass::Interactive, "c"));
        assert_eq!(drain_order(&sched), vec!["a1", "b1", "a2", "c1"]);
    }

    #[test]
    fn capacity_is_enforced_on_push_but_not_requeue() {
        let sched = Scheduler::new(true, 2);
        assert!(sched.push("j1", JobClass::Batch, "a"));
        assert!(sched.push("j2", JobClass::Batch, "a"));
        assert!(!sched.push("j3", JobClass::Batch, "a"), "over capacity");
        sched.requeue("j3", JobClass::Batch, "a");
        assert_eq!(sched.len(), 3, "requeue bypasses the bound");
    }

    #[test]
    fn interactive_overtakes_a_batch_flood() {
        let sched = Scheduler::new(true, 64);
        for i in 0..10 {
            assert!(sched.push(&format!("b{i}"), JobClass::Batch, "bulk"));
        }
        assert!(sched.push("urgent", JobClass::Interactive, "human"));
        let order = drain_order(&sched);
        let pos = order.iter().position(|id| id == "urgent").unwrap();
        assert!(
            pos <= 1,
            "interactive job waited behind {pos} batch jobs: {order:?}"
        );
    }

    #[test]
    fn weights_ration_slots_under_sustained_contention() {
        let sched = Scheduler::new(true, 64);
        for i in 0..20 {
            assert!(sched.push(&format!("i{i}"), JobClass::Interactive, "x"));
            assert!(sched.push(&format!("b{i}"), JobClass::Batch, "y"));
        }
        // In the first 10 dispatches, interactive (weight 4) should get
        // ~4 of every 5 slots.
        let mut interactive = 0;
        for _ in 0..10 {
            let id = sched.pop_timeout(Duration::from_millis(1)).unwrap();
            if id.starts_with('i') {
                interactive += 1;
            }
        }
        assert!(
            (7..=9).contains(&interactive),
            "expected ~8/10 interactive dispatches, got {interactive}"
        );
    }

    #[test]
    fn clients_within_a_class_are_served_round_robin() {
        let sched = Scheduler::new(true, 64);
        for i in 0..3 {
            assert!(sched.push(&format!("a{i}"), JobClass::Batch, "alice"));
        }
        assert!(sched.push("b0", JobClass::Batch, "bob"));
        let order = drain_order(&sched);
        let pos = order.iter().position(|id| id == "b0").unwrap();
        assert!(
            pos <= 1,
            "bob's first job waited behind alice's whole burst: {order:?}"
        );
    }

    #[test]
    fn idle_class_gets_no_retroactive_credit() {
        let sched = Scheduler::new(true, 64);
        // Batch runs alone for a while, advancing its vtime.
        for i in 0..8 {
            assert!(sched.push(&format!("b{i}"), JobClass::Batch, "y"));
        }
        for _ in 0..8 {
            sched.pop_timeout(Duration::from_millis(1)).unwrap();
        }
        // Interactive wakes up: it must not be starved later when batch
        // returns, nor may batch bank its head start.
        assert!(sched.push("i0", JobClass::Interactive, "x"));
        assert!(sched.push("b8", JobClass::Batch, "y"));
        let first = sched.pop_timeout(Duration::from_millis(1)).unwrap();
        assert_eq!(first, "i0");
    }

    #[test]
    fn remove_unlinks_a_queued_job() {
        let sched = Scheduler::new(true, 16);
        assert!(sched.push("j1", JobClass::Batch, "a"));
        assert!(sched.push("j2", JobClass::Batch, "a"));
        assert!(sched.remove("j1"));
        assert!(!sched.remove("j1"), "already removed");
        assert!(!sched.remove("nope"));
        assert_eq!(drain_order(&sched), vec!["j2"]);
        assert!(sched.is_empty());
    }
}
