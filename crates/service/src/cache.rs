//! Selection result cache with single-flight deduplication.
//!
//! SeqPoint's premise is that profiling work is massively redundant —
//! and the same insight applies one level up: two submissions of the
//! same corpus/config are the *same experiment* and should cost one
//! profiling run. The cache keys on [`CacheKey`]: the
//! `stream_fingerprint` (model, dataset-derived batch shapes, device,
//! stat, round length, early-stop thresholds) plus the shard count
//! (rendered output states it) and the corpus seed (the fingerprint
//! only sees the seed through the shuffled batch order, which a
//! uniform-length corpus can make seed-invariant — the key makes seed
//! identity explicit). Scheduling metadata — class, client, throttle,
//! preemption budget — is deliberately *not* part of the key.
//!
//! Two maps implement single-flight:
//!
//! * `ready`: key → the job id holding a retained rendered result. A
//!   hit is answered immediately, byte-identical to a fresh run.
//! * `inflight`: key → the **primary** job id currently queued or
//!   running for that key. A hit attaches the submission as a follower
//!   of the primary: it gets the primary's result (or failure) the
//!   moment the primary finishes, without its own profiling run. When a
//!   primary is cancelled, the server promotes a follower to primary
//!   and the map is repointed here.
//!
//! The cache has its own lock, acquired strictly **after** the server's
//! `jobs` lock. Eviction is driven by the server's `--retain-jobs` GC:
//! when the job holding a `ready` entry is evicted, the mapping goes
//! with it.

use std::collections::HashMap;
use std::sync::Mutex;

use crate::sync::LockExt;

/// Identity of one selection experiment (see the module docs for why
/// shards and seed ride alongside the fingerprint).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CacheKey {
    /// `sqnn_profiler::stream::stream_fingerprint` of the resolved job.
    pub fingerprint: u64,
    /// Worker shard count (part of the rendered output).
    pub shards: u32,
    /// Corpus/shuffle seed (semantic corpus identity).
    pub seed: u64,
}

/// How a submission relates to the work already known for its key.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Admission {
    /// A retained result exists on this job: answer immediately.
    Ready(String),
    /// This key is being profiled by this primary job right now:
    /// attach as a follower.
    InFlight(String),
    /// First flight: the candidate was registered as the key's primary
    /// and must be scheduled.
    Miss,
}

#[derive(Default)]
struct CacheInner {
    ready: HashMap<CacheKey, String>,
    inflight: HashMap<CacheKey, String>,
    hits: u64,
}

/// The shared result cache (see the module docs).
#[derive(Default)]
pub struct ResultCache {
    inner: Mutex<CacheInner>,
}

impl ResultCache {
    /// An empty cache.
    pub fn new() -> Self {
        ResultCache::default()
    }

    /// Admit one submission: a `Ready`/`InFlight` hit (counted), or a
    /// `Miss` that registers `candidate` as the key's in-flight
    /// primary.
    pub fn admit(&self, key: CacheKey, candidate: &str) -> Admission {
        let mut inner = self.inner.lock_recover();
        if let Some(done) = inner.ready.get(&key) {
            let done = done.clone();
            inner.hits += 1;
            return Admission::Ready(done);
        }
        if let Some(primary) = inner.inflight.get(&key) {
            let primary = primary.clone();
            inner.hits += 1;
            return Admission::InFlight(primary);
        }
        inner.inflight.insert(key, candidate.to_owned());
        Admission::Miss
    }

    /// Register `id` as a key's in-flight primary without hit
    /// accounting (recovery).
    pub fn register_inflight(&self, key: CacheKey, id: &str) {
        let mut inner = self.inner.lock_recover();
        inner.inflight.entry(key).or_insert_with(|| id.to_owned());
    }

    /// Register `id` as a key's retained result without hit accounting
    /// (recovery of a finished job).
    pub fn register_ready(&self, key: CacheKey, id: &str) {
        let mut inner = self.inner.lock_recover();
        inner.ready.entry(key).or_insert_with(|| id.to_owned());
    }

    /// The job id holding a retained result for `key`, if any.
    pub fn lookup_ready(&self, key: CacheKey) -> Option<String> {
        let inner = self.inner.lock_recover();
        inner.ready.get(&key).cloned()
    }

    /// The primary `id` finished with a result: retire its in-flight
    /// registration and retain the result mapping.
    pub fn complete(&self, key: CacheKey, id: &str) {
        let mut inner = self.inner.lock_recover();
        if inner.inflight.get(&key).is_some_and(|p| p == id) {
            inner.inflight.remove(&key);
        }
        inner.ready.insert(key, id.to_owned());
    }

    /// The primary `id` ended without a reusable result (failure, or
    /// cancellation with no follower to promote): drop its in-flight
    /// registration so the next submission profiles fresh.
    pub fn abandon(&self, key: CacheKey, id: &str) {
        let mut inner = self.inner.lock_recover();
        if inner.inflight.get(&key).is_some_and(|p| p == id) {
            inner.inflight.remove(&key);
        }
    }

    /// Repoint a key's in-flight registration from a cancelled primary
    /// to the follower promoted in its place.
    pub fn promote(&self, key: CacheKey, old: &str, new: &str) {
        let mut inner = self.inner.lock_recover();
        if inner.inflight.get(&key).is_none_or(|p| p == old) {
            inner.inflight.insert(key, new.to_owned());
        }
    }

    /// The retention GC evicted job `id`: drop the retained mapping if
    /// it still points at that job.
    pub fn evict(&self, key: CacheKey, id: &str) {
        let mut inner = self.inner.lock_recover();
        if inner.ready.get(&key).is_some_and(|p| p == id) {
            inner.ready.remove(&key);
        }
    }

    /// `(hits so far, retained results)` for `Ping` accounting.
    pub fn stats(&self) -> (u64, u64) {
        let inner = self.inner.lock_recover();
        (inner.hits, inner.ready.len() as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(n: u64) -> CacheKey {
        CacheKey {
            fingerprint: n,
            shards: 3,
            seed: 7,
        }
    }

    #[test]
    fn single_flight_admission_sequence() {
        let cache = ResultCache::new();
        assert_eq!(cache.admit(key(1), "j1"), Admission::Miss);
        assert_eq!(cache.admit(key(1), "j2"), Admission::InFlight("j1".into()));
        assert_eq!(cache.admit(key(2), "j3"), Admission::Miss, "other key");
        cache.complete(key(1), "j1");
        assert_eq!(cache.admit(key(1), "j4"), Admission::Ready("j1".into()));
        let (hits, entries) = cache.stats();
        assert_eq!((hits, entries), (2, 1));
    }

    #[test]
    fn keys_differ_by_fingerprint_shards_and_seed() {
        let cache = ResultCache::new();
        assert_eq!(cache.admit(key(1), "a"), Admission::Miss);
        let resharded = CacheKey {
            shards: 4,
            ..key(1)
        };
        let reseeded = CacheKey { seed: 8, ..key(1) };
        assert_eq!(cache.admit(resharded, "b"), Admission::Miss);
        assert_eq!(cache.admit(reseeded, "c"), Admission::Miss);
        assert_eq!(cache.stats().0, 0, "no hits across distinct keys");
    }

    #[test]
    fn abandon_and_promote_manage_the_inflight_slot() {
        let cache = ResultCache::new();
        assert_eq!(cache.admit(key(1), "j1"), Admission::Miss);
        cache.promote(key(1), "j1", "j2");
        assert_eq!(cache.admit(key(1), "x"), Admission::InFlight("j2".into()));
        cache.abandon(key(1), "j1");
        assert_eq!(
            cache.admit(key(1), "y"),
            Admission::InFlight("j2".into()),
            "abandon by a stale primary is a no-op"
        );
        cache.abandon(key(1), "j2");
        assert_eq!(cache.admit(key(1), "j3"), Admission::Miss);
    }

    #[test]
    fn evict_only_drops_the_matching_job() {
        let cache = ResultCache::new();
        cache.register_ready(key(1), "old");
        cache.evict(key(1), "other");
        assert_eq!(cache.lookup_ready(key(1)), Some("old".into()));
        cache.evict(key(1), "old");
        assert_eq!(cache.lookup_ready(key(1)), None);
    }
}
