//! Subprocess shard placement: an elastic fleet of registered
//! `seqpoint worker` connections and a [`RoundExecutor`] that ships
//! shard chunks to them.
//!
//! Workers connect to the server socket (Unix or TCP), announce
//! [`seqpoint_core::protocol::Request::Register`] (or the legacy
//! `WorkerHello`), and join the shared pool. They are **leased
//! per-round** to whichever job the scheduler picked: at lease time the
//! pool probes the connection's liveness and sends a
//! [`WorkerTask::Lease`] frame naming the holder, then the executor's
//! [`WorkerTask`] round frames follow, answered by [`WorkerReply`]
//! frames. Per-shard round results travel as serialized
//! `OnlineSlTracker` state and `Vec<IterationProfile>` payloads in the
//! checkpoint interchange format (round-trip-exact floats), so a
//! subprocess round merges bit-identically to an in-process one.
//!
//! Failure model: a worker that dies mid-round poisons the whole round —
//! the executor closes every connection it had acquired (their reply
//! streams can no longer be trusted to stay in sync) and reports
//! [`ProfileError::Executor`]. The job runner then re-queues the job,
//! which resumes from its last per-round checkpoint; the supervisor
//! respawns the worker in the background. Nothing measured before the
//! lost round is repeated, and the selection is unchanged — the
//! "reassign from the last shard checkpoint" story the kill-a-worker
//! test pins end to end.

use std::io::{BufRead, BufReader, Read, Write};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::time::{Duration, Instant};

use seqpoint_core::online::OnlineSlTracker;
use seqpoint_core::protocol::{decode_frame, encode_frame, WorkerReply, WorkerTask};
use sqnn::IterationShape;
use sqnn_profiler::stream::{RoundExecutor, ShardChunk, ShardReport};
use sqnn_profiler::{IterationProfile, ProfileError};

use crate::metrics::MetricsRegistry;
use crate::sync::{CondvarExt, LockExt};
use crate::transport::Stream;

/// One registered worker connection (the server side of a `seqpoint
/// worker` socket — Unix or TCP; the pool does not care which).
pub struct WorkerConn {
    writer: Stream,
    reader: BufReader<Stream>,
    /// The worker's process id, as announced in its hello.
    pub pid: u64,
    /// Registry snapshot taken at registration time; `None` in library
    /// tests, where worker wire traffic is simply not recorded.
    metrics: Option<Arc<MetricsRegistry>>,
}

impl WorkerConn {
    fn send(&mut self, task: &WorkerTask) -> std::io::Result<()> {
        let mut line = encode_frame(task);
        line.push('\n');
        if let Some(metrics) = &self.metrics {
            metrics.worker_out(line.len() as u64);
        }
        self.writer.write_all(line.as_bytes())
    }

    fn recv(&mut self) -> std::io::Result<WorkerReply> {
        let mut line = String::new();
        let n = self.reader.read_line(&mut line)?;
        if n == 0 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "worker closed the connection",
            ));
        }
        if let Some(metrics) = &self.metrics {
            metrics.worker_in(n as u64);
        }
        decode_frame(&line)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))
    }

    /// Whether the worker behind this pooled connection is still there.
    /// An idle worker never sends unsolicited bytes and its reader
    /// buffer is empty between rounds, so a nonblocking 1-byte read
    /// distinguishes the cases exactly: `WouldBlock` means alive and
    /// idle; EOF, stray bytes, or any other error mean the connection
    /// is dead or desynced and must be reclaimed, not leased.
    fn is_alive(&mut self) -> bool {
        if self.writer.set_nonblocking(true).is_err() {
            return false;
        }
        let mut probe = [0u8; 1];
        let verdict = match self.writer.read(&mut probe) {
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => true,
            Ok(_) | Err(_) => false,
        };
        verdict && self.writer.set_nonblocking(false).is_ok()
    }
}

struct PoolInner {
    idle: Vec<WorkerConn>,
    draining: bool,
    /// Per-round leases granted over the pool's lifetime.
    leases: u64,
    /// Connections found dead at lease time (or unable to take the
    /// lease frame) and reclaimed from the pool.
    reclaimed: u64,
}

/// A blocking pool of registered worker connections, shared by every
/// concurrent job under subprocess placement.
pub struct WorkerPool {
    inner: Mutex<PoolInner>,
    cv: Condvar,
    /// Attached by the daemon after construction; absent in library
    /// tests, where fleet metrics are simply not recorded.
    metrics: OnceLock<Arc<MetricsRegistry>>,
}

impl Default for WorkerPool {
    fn default() -> Self {
        WorkerPool::new()
    }
}

/// Upper bound on waiting for one shard-chunk reply. Replies normally
/// arrive in well under a minute; the bound exists so a worker host
/// that vanishes *silently* (power loss, network partition — no FIN or
/// RST ever arrives, unlike a local SIGKILL) cannot wedge a runner slot
/// and the daemon's drain forever. Hitting it poisons the round like
/// any other worker loss: the job retries from its last checkpoint.
const ROUND_RECV_TIMEOUT: Duration = Duration::from_secs(600);

impl WorkerPool {
    /// An empty pool.
    pub fn new() -> Self {
        WorkerPool {
            inner: Mutex::new(PoolInner {
                idle: Vec::new(),
                draining: false,
                leases: 0,
                reclaimed: 0,
            }),
            cv: Condvar::new(),
            metrics: OnceLock::new(),
        }
    }

    /// Attach the daemon's metrics registry: from here on the pool
    /// records lease/reclaim events and worker wire traffic. First
    /// call wins.
    pub fn attach_metrics(&self, metrics: Arc<MetricsRegistry>) {
        let _ = self.metrics.set(metrics);
    }

    /// Register a connection that announced itself as a worker. Returns
    /// `false` (and closes the connection) when the pool is draining.
    pub fn register(&self, stream: Stream, pid: u64) -> bool {
        // The server only reads from a worker connection while a round
        // reply is owed, so a permanent receive timeout is purely a
        // liveness bound (see [`ROUND_RECV_TIMEOUT`]); idle pooled
        // connections are never read.
        let _ = stream.set_read_timeout(Some(ROUND_RECV_TIMEOUT));
        let reader = match stream.try_clone() {
            Ok(clone) => BufReader::new(clone),
            Err(_) => return false,
        };
        let mut inner = self.inner.lock_recover();
        if inner.draining {
            return false;
        }
        inner.idle.push(WorkerConn {
            writer: stream,
            reader,
            pid,
            metrics: self.metrics.get().cloned(),
        });
        self.cv.notify_all();
        true
    }

    /// Lease up to `want` idle workers to `job` for one round, blocking
    /// until at least one is available. Every candidate is liveness-
    /// probed first and sent a [`WorkerTask::Lease`] frame; a
    /// connection that fails either is **reclaimed** (dropped and
    /// counted) instead of handed to the executor — so a worker that
    /// was SIGKILLed while idle in the pool costs nothing, and one
    /// killed mid-round costs the holding job at most that round.
    /// Returns `None` when draining or after `timeout` with no live
    /// worker (lost pool).
    pub fn lease(&self, want: usize, timeout: Duration, job: &str) -> Option<Vec<WorkerConn>> {
        let deadline = Instant::now() + timeout;
        let mut inner = self.inner.lock_recover();
        loop {
            if inner.draining {
                return None;
            }
            if !inner.idle.is_empty() {
                let take = want.clamp(1, inner.idle.len());
                let candidates: Vec<WorkerConn> = inner.idle.drain(..take).collect();
                let mut leased = Vec::new();
                for mut conn in candidates {
                    let lease = WorkerTask::Lease {
                        job: job.to_owned(),
                    };
                    if conn.is_alive() && conn.send(&lease).is_ok() {
                        leased.push(conn);
                    } else {
                        // Dead registration: drop the connection. The
                        // supervisor (or the remote operator) brings a
                        // replacement; nothing here blocks on it.
                        inner.reclaimed += 1;
                        if let Some(metrics) = self.metrics.get() {
                            metrics.fleet_reclaimed(1);
                        }
                    }
                }
                if !leased.is_empty() {
                    inner.leases += leased.len() as u64;
                    if let Some(metrics) = self.metrics.get() {
                        metrics.fleet_leased(leased.len() as u64);
                    }
                    return Some(leased);
                }
                // Every candidate was dead; retry immediately — more
                // registrations may be idle or arriving.
                continue;
            }
            let now = Instant::now();
            if now >= deadline {
                return None;
            }
            let (guard, _) = self.cv.wait_timeout_recover(inner, deadline - now);
            inner = guard;
        }
    }

    /// `(leases granted, connections reclaimed dead)` over the pool's
    /// lifetime, for `Ping` accounting.
    pub fn fleet_stats(&self) -> (u64, u64) {
        let inner = self.inner.lock_recover();
        (inner.leases, inner.reclaimed)
    }

    /// Return healthy connections to the pool (dropped when draining).
    pub fn release(&self, conns: Vec<WorkerConn>) {
        let mut inner = self.inner.lock_recover();
        if !inner.draining {
            inner.idle.extend(conns);
            self.cv.notify_all();
        }
    }

    /// Pids of the currently idle workers (busy ones are with their
    /// executor).
    pub fn idle_pids(&self) -> Vec<u64> {
        let inner = self.inner.lock_recover();
        inner.idle.iter().map(|c| c.pid).collect()
    }

    /// Stop handing out workers and close every idle connection; workers
    /// observe EOF and exit.
    pub fn drain(&self) {
        let mut inner = self.inner.lock_recover();
        inner.draining = true;
        inner.idle.clear();
        self.cv.notify_all();
    }
}

fn executor_error(message: impl Into<String>) -> ProfileError {
    ProfileError::Executor {
        message: message.into(),
    }
}

/// A [`RoundExecutor`] that places shard chunks on pooled `seqpoint
/// worker` subprocesses, exchanging checkpoint-format shard state over
/// the socket.
///
/// In the operator graph (`sqnn_profiler::pipeline`) this executor *is*
/// the `ShardFold` stage's placement: workers are leased when the fold
/// runs a round and released when its reports are collected, so the
/// scheduler's per-round lease points sit exactly at the fold stage
/// boundary — never across a merge, gate, or checkpoint write.
pub struct SubprocessExecutor<'p> {
    pool: &'p WorkerPool,
    job: String,
    model: String,
    config: u32,
    stat: &'static str,
    acquire_timeout: Duration,
}

impl<'p> SubprocessExecutor<'p> {
    /// An executor for one job's rounds; `job` names the lease holder
    /// in the [`WorkerTask::Lease`] frames sent to leased workers.
    pub fn new(
        pool: &'p WorkerPool,
        job: impl Into<String>,
        model: impl Into<String>,
        config: u32,
        stat: &'static str,
    ) -> Self {
        SubprocessExecutor {
            pool,
            job: job.into(),
            model: model.into(),
            config,
            stat,
            acquire_timeout: Duration::from_secs(30),
        }
    }

    /// Lower the acquire timeout (tests).
    pub fn with_acquire_timeout(mut self, timeout: Duration) -> Self {
        self.acquire_timeout = timeout;
        self
    }

    fn acquire(&self, want: usize) -> Result<Vec<WorkerConn>, ProfileError> {
        self.pool
            .lease(want, self.acquire_timeout, &self.job)
            .ok_or_else(|| executor_error("no workers available (pool drained or lost)"))
    }
}

impl RoundExecutor for SubprocessExecutor<'_> {
    fn execute_round(&mut self, chunks: &[ShardChunk]) -> Result<Vec<ShardReport>, ProfileError> {
        if chunks.is_empty() {
            return Ok(Vec::new());
        }
        let mut conns = self.acquire(chunks.len())?;
        if conns.is_empty() {
            return Err(executor_error("no workers acquired for the round"));
        }
        let workers = conns.len();
        // Deal chunk i to worker i % workers, then collect each worker's
        // replies FIFO. A single failure abandons the round and every
        // acquired connection: replies still in flight would desync any
        // reuse, and dropping the sockets lets dead workers be respawned
        // and live ones exit/reconnect... (live ones are closed too —
        // the supervisor keeps the worker population at target).
        let result = (|| -> Result<Vec<ShardReport>, ProfileError> {
            for (i, chunk) in chunks.iter().enumerate() {
                let task = WorkerTask::Round {
                    model: self.model.clone(),
                    config: self.config,
                    stat: self.stat.to_owned(),
                    shard: chunk.shard as u32,
                    batches: chunk
                        .batches
                        .iter()
                        .map(|b| (b.seq_len, b.samples))
                        .collect(),
                };
                conns
                    .get_mut(i % workers)
                    .ok_or_else(|| executor_error("worker connection vanished mid-round"))?
                    .send(&task)
                    .map_err(|e| executor_error(format!("sending round task: {e}")))?;
            }
            let mut reports: Vec<Option<ShardReport>> = (0..chunks.len()).map(|_| None).collect();
            for (i, _) in chunks.iter().enumerate() {
                let reply = conns
                    .get_mut(i % workers)
                    .ok_or_else(|| executor_error("worker connection vanished mid-round"))?
                    .recv()
                    .map_err(|e| executor_error(format!("collecting round reply: {e}")))?;
                let WorkerReply::Round {
                    shard,
                    tracker,
                    chunk_time_s,
                    shapes,
                } = reply
                else {
                    if let WorkerReply::Error { reason } = reply {
                        return Err(executor_error(format!("worker rejected task: {reason}")));
                    }
                    return Err(executor_error("unexpected reply to a round task"));
                };
                let tracker: OnlineSlTracker = serde::json::from_str(&tracker)
                    .map_err(|e| executor_error(format!("bad tracker payload: {e}")))?;
                tracker
                    .validate()
                    .map_err(|reason| executor_error(format!("inconsistent tracker: {reason}")))?;
                let shapes: Vec<IterationProfile> = serde::json::from_str(&shapes)
                    .map_err(|e| executor_error(format!("bad shapes payload: {e}")))?;
                let slot = reports
                    .get_mut(shard as usize)
                    .ok_or_else(|| executor_error(format!("reply for unknown shard {shard}")))?;
                if slot.is_some() {
                    return Err(executor_error(format!("duplicate reply for shard {shard}")));
                }
                *slot = Some(ShardReport {
                    tracker,
                    chunk_time_s,
                    shapes,
                });
            }
            reports
                .into_iter()
                .enumerate()
                .map(|(shard, report)| {
                    report.ok_or_else(|| executor_error(format!("no reply for shard {shard}")))
                })
                .collect()
        })();
        match result {
            Ok(reports) => {
                self.pool.release(conns);
                Ok(reports)
            }
            Err(e) => {
                drop(conns); // close all: the round is poisoned
                Err(e)
            }
        }
    }

    fn profile_shape(&mut self, shape: IterationShape) -> Result<IterationProfile, ProfileError> {
        let mut conns = self.acquire(1)?;
        let Some(conn) = conns.first_mut() else {
            return Err(executor_error("no worker acquired for the profile task"));
        };
        let task = WorkerTask::Profile {
            model: self.model.clone(),
            config: self.config,
            seq_len: shape.src_len,
            samples: shape.batch,
        };
        let result = (|| -> Result<IterationProfile, ProfileError> {
            conn.send(&task)
                .map_err(|e| executor_error(format!("sending profile task: {e}")))?;
            match conn
                .recv()
                .map_err(|e| executor_error(format!("collecting profile reply: {e}")))?
            {
                WorkerReply::Profile { profile } => serde::json::from_str(&profile)
                    .map_err(|e| executor_error(format!("bad profile payload: {e}"))),
                WorkerReply::Error { reason } => {
                    Err(executor_error(format!("worker rejected task: {reason}")))
                }
                WorkerReply::Round { .. } => Err(executor_error("unexpected round reply")),
            }
        })();
        match result {
            Ok(profile) => {
                self.pool.release(conns);
                Ok(profile)
            }
            Err(e) => {
                drop(conns);
                Err(e)
            }
        }
    }
}

/// A pacing wrapper: sleeps `throttle_ms` before every round (checking
/// the interrupt flag so drains stay responsive), then delegates. Used
/// for [`seqpoint_core::protocol::JobSpec::throttle_ms`].
pub struct ThrottledExecutor<'e> {
    inner: &'e mut dyn RoundExecutor,
    throttle: Duration,
    interrupted: &'e dyn Fn() -> bool,
}

impl<'e> ThrottledExecutor<'e> {
    /// Wrap `inner`, sleeping `throttle_ms` before each round unless
    /// `interrupted` reports true.
    pub fn new(
        inner: &'e mut dyn RoundExecutor,
        throttle_ms: u64,
        interrupted: &'e dyn Fn() -> bool,
    ) -> Self {
        ThrottledExecutor {
            inner,
            throttle: Duration::from_millis(throttle_ms),
            interrupted,
        }
    }
}

impl RoundExecutor for ThrottledExecutor<'_> {
    fn execute_round(&mut self, chunks: &[ShardChunk]) -> Result<Vec<ShardReport>, ProfileError> {
        let mut remaining = self.throttle;
        let slice = Duration::from_millis(20);
        while !remaining.is_zero() && !(self.interrupted)() {
            let nap = remaining.min(slice);
            std::thread::sleep(nap);
            remaining -= nap;
        }
        self.inner.execute_round(chunks)
    }

    fn profile_shape(&mut self, shape: IterationShape) -> Result<IterationProfile, ProfileError> {
        self.inner.profile_shape(shape)
    }

    fn seed_shapes(&mut self, shapes: &[IterationProfile]) {
        self.inner.seed_shapes(shapes);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn acquire_times_out_on_an_empty_pool() {
        let pool = WorkerPool::new();
        let t0 = Instant::now();
        assert!(pool.lease(2, Duration::from_millis(50), "job").is_none());
        assert!(t0.elapsed() >= Duration::from_millis(50));
    }

    #[test]
    fn drained_pool_rejects_registration_and_acquire() {
        let pool = WorkerPool::new();
        pool.drain();
        assert!(pool.lease(1, Duration::from_millis(10), "job").is_none());
        let (a, _b) = std::os::unix::net::UnixStream::pair().unwrap();
        assert!(!pool.register(Stream::from(a), 1));
        assert!(pool.idle_pids().is_empty());
    }

    #[test]
    fn register_lease_release_cycle() {
        let pool = WorkerPool::new();
        let (a, _keep_a) = std::os::unix::net::UnixStream::pair().unwrap();
        let (b, _keep_b) = std::os::unix::net::UnixStream::pair().unwrap();
        assert!(pool.register(Stream::from(a), 11));
        assert!(pool.register(Stream::from(b), 22));
        assert_eq!(pool.idle_pids(), vec![11, 22]);
        let conns = pool.lease(5, Duration::from_millis(10), "job").unwrap();
        assert_eq!(conns.len(), 2, "lease caps at availability");
        assert!(pool.idle_pids().is_empty());
        pool.release(conns);
        assert_eq!(pool.idle_pids().len(), 2);
        assert_eq!(pool.fleet_stats(), (2, 0));
    }

    #[test]
    fn dead_registrations_are_reclaimed_at_lease_time() {
        let pool = WorkerPool::new();
        let (dead, hangup) = std::os::unix::net::UnixStream::pair().unwrap();
        let (live, _keep_live) = std::os::unix::net::UnixStream::pair().unwrap();
        assert!(pool.register(Stream::from(dead), 11));
        assert!(pool.register(Stream::from(live), 22));
        drop(hangup); // pid 11's peer vanishes (SIGKILL while idle)
        let conns = pool.lease(2, Duration::from_millis(50), "job").unwrap();
        assert_eq!(conns.len(), 1, "dead connection is not leased");
        assert_eq!(conns[0].pid, 22);
        let (leases, reclaimed) = pool.fleet_stats();
        assert_eq!(leases, 1);
        assert_eq!(reclaimed, 1);
    }

    #[test]
    fn leased_worker_receives_the_lease_frame() {
        let pool = WorkerPool::new();
        let (server_side, worker_side) = std::os::unix::net::UnixStream::pair().unwrap();
        assert!(pool.register(Stream::from(server_side), 7));
        let conns = pool.lease(1, Duration::from_millis(50), "job-42").unwrap();
        let mut reader = BufReader::new(worker_side);
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        let task: WorkerTask = decode_frame(&line).unwrap();
        assert_eq!(
            task,
            WorkerTask::Lease {
                job: "job-42".to_owned()
            }
        );
        pool.release(conns);
    }
}
