//! Poison-recovering lock helpers.
//!
//! Every mutex in this crate guards state that is re-validated under
//! the lock on each use (job maps keyed by id, scheduler queues, cache
//! entries with their own state machines), and job panics are already
//! caught by `catch_unwind` in the runner loop. A poisoned mutex here
//! therefore signals "a thread died mid-update", not "the data is
//! unusable" — and propagating the `PoisonError` with `expect()` turns
//! one dead thread into a cascade that takes down every connection
//! handler. These helpers recover the guard instead; callers keep the
//! plain method-call syntax (`self.inner.lock_recover()`), which also
//! keeps the receiver-based lock mapping in `seqpoint-lint`'s
//! lock-order pass working unchanged.
//!
//! A bare `self.lock()` receiver only ever appears inside these wrapper
//! impls; `analysis/lock_order.toml` ignores the `self` receiver for
//! exactly that reason.

use std::sync::{Condvar, Mutex, MutexGuard, PoisonError, WaitTimeoutResult};
use std::time::Duration;

/// `Mutex::lock` that recovers from poisoning instead of panicking.
pub trait LockExt<T> {
    /// Lock, recovering the guard if a previous holder panicked.
    fn lock_recover(&self) -> MutexGuard<'_, T>;
}

impl<T> LockExt<T> for Mutex<T> {
    fn lock_recover(&self) -> MutexGuard<'_, T> {
        self.lock().unwrap_or_else(PoisonError::into_inner)
    }
}

/// Condvar waits that recover the guard from poisoning instead of
/// panicking, mirroring [`LockExt`].
pub trait CondvarExt {
    /// `Condvar::wait_timeout`, recovering the guard from poisoning.
    fn wait_timeout_recover<'a, T>(
        &self,
        guard: MutexGuard<'a, T>,
        dur: Duration,
    ) -> (MutexGuard<'a, T>, WaitTimeoutResult);
}

impl CondvarExt for Condvar {
    fn wait_timeout_recover<'a, T>(
        &self,
        guard: MutexGuard<'a, T>,
        dur: Duration,
    ) -> (MutexGuard<'a, T>, WaitTimeoutResult) {
        self.wait_timeout(guard, dur)
            .unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn lock_recover_returns_data_after_poison() {
        let m = Arc::new(Mutex::new(7u32));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock().unwrap();
            panic!("poison it");
        })
        .join();
        assert!(m.is_poisoned());
        assert_eq!(*m.lock_recover(), 7);
    }

    #[test]
    fn wait_timeout_recover_round_trips_the_guard() {
        let m = Mutex::new(1u32);
        let cv = Condvar::new();
        let g = m.lock_recover();
        let (g, res) = cv.wait_timeout_recover(g, Duration::from_millis(1));
        assert!(res.timed_out());
        assert_eq!(*g, 1);
    }
}
