//! # seqpoint-service — the async profiling service
//!
//! Turns the streaming SeqPoint selection library into a deployable
//! system: a long-running daemon (`seqpoint serve`) accepts
//! profiling/selection jobs over a Unix domain socket — and, with
//! `--tcp HOST:PORT` plus a shared-secret token, over TCP — as
//! newline-delimited JSON ([`seqpoint_core::protocol`], framed by the
//! [`transport`] abstraction), holds them in a bounded queue with
//! backpressure, and dispatches epoch rounds to a pool of
//! placement-abstracted executors:
//!
//! * **thread placement** — rounds run on
//!   [`sqnn_profiler::stream::ThreadExecutor`], one scoped thread per
//!   shard, in the server process;
//! * **subprocess placement** — rounds ship to `seqpoint worker`
//!   processes ([`worker`]) over the same socket, each shard chunk's
//!   result returning as serialized per-shard tracker state in the
//!   **checkpoint interchange format**. Workers may connect over the
//!   Unix socket (spawned and supervised locally) *or* over TCP from
//!   another machine (`seqpoint worker --connect HOST:PORT
//!   --token-file FILE`) — placement is invisible to the selection.
//!
//! Jobs are crash- and drain-safe: every round persists a
//! [`sqnn_profiler::stream::StreamCheckpoint`], SIGTERM checkpoints
//! in-flight jobs and exits (graceful drain), and a restarted server
//! resumes unfinished jobs from their checkpoints — the served
//! selection is asserted byte-identical to an offline `seqpoint stream`
//! run of the same spec.

#![warn(missing_docs)]

pub mod cache;
pub mod client;
mod error;
pub mod executor;
pub mod metrics;
pub mod sched;
pub mod server;
pub mod spec;
pub mod sync;
pub mod transport;
pub mod worker;

pub use error::ServiceError;
pub use server::{serve, Placement, ServeConfig};
pub use transport::Endpoint;
