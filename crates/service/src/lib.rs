//! # seqpoint-service — the async profiling service
//!
//! Turns the streaming SeqPoint selection library into a deployable
//! system: a long-running daemon (`seqpoint serve`) accepts
//! profiling/selection jobs over a Unix domain socket as
//! newline-delimited JSON ([`seqpoint_core::protocol`]), holds them in a
//! bounded queue with backpressure, and dispatches epoch rounds to a
//! pool of placement-abstracted executors:
//!
//! * **thread placement** — rounds run on
//!   [`sqnn_profiler::stream::ThreadExecutor`], one scoped thread per
//!   shard, in the server process;
//! * **subprocess placement** — rounds ship to `seqpoint worker`
//!   processes ([`worker`]) over the same socket, each shard chunk's
//!   result returning as serialized per-shard tracker state in the
//!   **checkpoint interchange format** — the end-to-end proof of the
//!   multi-node story on one machine (a TCP transport swaps in under
//!   the same frames).
//!
//! Jobs are crash- and drain-safe: every round persists a
//! [`sqnn_profiler::stream::StreamCheckpoint`], SIGTERM checkpoints
//! in-flight jobs and exits (graceful drain), and a restarted server
//! resumes unfinished jobs from their checkpoints — the served
//! selection is asserted byte-identical to an offline `seqpoint stream`
//! run of the same spec.

#![warn(missing_docs)]

pub mod client;
mod error;
pub mod executor;
pub mod server;
pub mod spec;
pub mod worker;

pub use error::ServiceError;
pub use server::{serve, Placement, ServeConfig};
