//! Resolving a wire-level [`JobSpec`] into a runnable workload, and
//! rendering a finished run.
//!
//! The rendering here is *the* rendering: `seqpoint stream` calls
//! [`render_streamed`] too, so a served job's output is byte-identical
//! to the offline command for the same spec — which is what the service
//! smoke test asserts with a plain `diff`.

use std::fmt::Write as _;

use gpu_sim::{Device, GpuConfig};
use seqpoint_core::protocol::JobSpec;
use sqnn::{models, Network};
use sqnn_data::{BatchPolicy, Corpus, EpochPlan};
use sqnn_profiler::stream::{StreamOptions, StreamedEpochProfile};
use sqnn_profiler::StatKind;

use crate::ServiceError;

/// Resolve a bundled model by name.
///
/// # Errors
///
/// [`ServiceError::Usage`] for an unknown name.
pub fn model_by_name(name: &str) -> Result<Network, ServiceError> {
    match name {
        "gnmt" => Ok(models::gnmt()),
        "ds2" => Ok(models::ds2()),
        "cnn" => Ok(models::cnn_reference()),
        "transformer" => Ok(models::transformer_base()),
        "convs2s" => Ok(models::conv_s2s()),
        "seq2seq" => Ok(models::seq2seq()),
        other => Err(ServiceError::Usage(format!(
            "unknown model `{other}` (expected gnmt|ds2|cnn|transformer|convs2s|seq2seq)"
        ))),
    }
}

/// Resolve a bundled dataset by name at the given sample count.
///
/// # Errors
///
/// [`ServiceError::Usage`] for an unknown name.
pub fn corpus_by_name(name: &str, samples: usize, seed: u64) -> Result<Corpus, ServiceError> {
    match name {
        "iwslt15" => Ok(Corpus::iwslt15_like(samples, seed)),
        "wmt16" => Ok(Corpus::wmt16_like(samples as f64 / 4_500_000.0, seed)),
        "librispeech100" => {
            let full = Corpus::librispeech100_like(seed);
            let n = samples.min(full.len());
            Ok(Corpus::from_lengths(
                "librispeech100-like",
                full.lengths().iter().take(n).copied().collect::<Vec<_>>(),
                full.vocab_size(),
            ))
        }
        other => Err(ServiceError::Usage(format!(
            "unknown dataset `{other}` (expected iwslt15|wmt16|librispeech100)"
        ))),
    }
}

/// Resolve a statistic by its report label (the wire encoding
/// [`seqpoint_core::protocol::WorkerTask`] uses).
///
/// # Errors
///
/// [`ServiceError::Usage`] for an unknown label.
pub fn stat_by_label(label: &str) -> Result<StatKind, ServiceError> {
    for kind in [
        StatKind::Runtime,
        StatKind::ValuInsts,
        StatKind::LoadBytes,
        StatKind::MemWriteStalls,
        StatKind::DramBytes,
        StatKind::EnergyJ,
    ] {
        if kind.label() == label {
            return Ok(kind);
        }
    }
    Err(ServiceError::Usage(format!("unknown statistic `{label}`")))
}

/// Resolve a Table II hardware configuration (1..=5) into a device.
///
/// # Errors
///
/// [`ServiceError::Usage`] for an out-of-range number.
pub fn device_by_config(config: u32) -> Result<Device, ServiceError> {
    let cfg = (1..=5)
        .contains(&config)
        .then(|| {
            GpuConfig::table2_configs()
                .get(config as usize - 1)
                .cloned()
        })
        .flatten()
        .ok_or_else(|| ServiceError::Usage("config must be 1..=5 (Table II)".to_owned()))?;
    Ok(Device::new(cfg))
}

/// A [`JobSpec`] resolved into the concrete workload the streaming
/// harness runs.
pub struct ResolvedJob {
    /// The network model.
    pub network: Network,
    /// The steady-state (shuffled) epoch plan.
    pub plan: EpochPlan,
    /// The simulated device.
    pub device: Device,
    /// Sharding, pacing, and early-stop options.
    pub options: StreamOptions,
}

/// Resolve a (normalized) spec into its workload. This is the same
/// construction as `seqpoint stream`: every epoch after the first is
/// shuffled, so the service batches the corpus uniformly.
///
/// # Errors
///
/// [`ServiceError::Usage`] for unknown names, an out-of-range config, a
/// zero batch size, or an unplannable corpus.
pub fn resolve(spec: &JobSpec) -> Result<ResolvedJob, ServiceError> {
    if spec.batch == 0 {
        return Err(ServiceError::Usage("batch must be positive".to_owned()));
    }
    let network = model_by_name(&spec.model)?;
    let corpus = corpus_by_name(&spec.dataset, spec.samples as usize, spec.seed)?;
    let device = device_by_config(spec.config)?;
    let plan = EpochPlan::new(&corpus, BatchPolicy::shuffled(spec.batch), spec.seed)
        .map_err(|e| ServiceError::Usage(e.to_string()))?;
    Ok(ResolvedJob {
        network,
        plan,
        device,
        options: StreamOptions {
            shards: spec.shards as usize,
            round_len: spec.round_len as usize,
            stat: StatKind::Runtime,
            stream: spec.stream,
        },
    })
}

/// Render a streamed selection as the `seqpoint stream` report: the
/// early-stop accounting block followed by the SeqPoints. Shared by the
/// CLI and the service so served results diff clean against offline
/// runs.
pub fn render_streamed(
    model: &str,
    dataset: &str,
    config_no: u32,
    streamed: &StreamedEpochProfile,
) -> String {
    let selection = &streamed.selection;
    let analysis = selection.analysis();
    let mut out = String::new();
    let _ = writeln!(
        out,
        "# streaming selection: {model} on {dataset} (config {config_no}), {} shards",
        streamed.shards
    );
    let _ = writeln!(out, "iterations_total,{}", selection.iterations_total());
    let _ = writeln!(
        out,
        "iterations_measured,{}",
        selection.iterations_measured()
    );
    let _ = writeln!(out, "iterations_skipped,{}", selection.iterations_skipped());
    let _ = writeln!(out, "rounds,{}", selection.rounds());
    let _ = writeln!(out, "logging_speedup,{:.2}", selection.logging_speedup());
    let _ = writeln!(out, "early_stopped,{}", selection.early_stopped());
    let _ = writeln!(
        out,
        "unseen_probability,{:.4}",
        selection.unseen_probability()
    );
    let _ = writeln!(out, "profiled_serial_s,{:.6}", streamed.profiled_serial_s);
    let _ = writeln!(out, "profiled_wall_s,{:.6}", streamed.profiled_wall_s);
    let _ = writeln!(out, "shard_speedup,{:.2}", streamed.shard_speedup());
    let _ = writeln!(
        out,
        "# {} SeqPoints for {} iterations ({} unique SLs), k={}, self error {:.4}%",
        analysis.seqpoints().len(),
        analysis.iterations(),
        analysis.unique_sls(),
        analysis.k(),
        analysis.self_error_pct()
    );
    let _ = writeln!(out, "seq_len,weight,stat");
    for p in analysis.seqpoints().points() {
        let _ = writeln!(out, "{},{},{}", p.seq_len, p.weight, p.stat);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_spec() -> JobSpec {
        JobSpec {
            model: "gnmt".to_owned(),
            dataset: "iwslt15".to_owned(),
            samples: 1_500,
            batch: 16,
            shards: 2,
            round_len: 32,
            ..JobSpec::default()
        }
    }

    #[test]
    fn resolve_builds_the_stream_workload() {
        let job = resolve(&quick_spec()).unwrap();
        assert_eq!(job.plan.iterations(), 1_500usize.div_ceil(16));
        assert_eq!(job.options.shards, 2);
        assert_eq!(job.options.round_len, 32);
    }

    #[test]
    fn resolve_rejects_bad_specs() {
        for broken in [
            JobSpec {
                model: "nope".to_owned(),
                ..quick_spec()
            },
            JobSpec {
                dataset: "nope".to_owned(),
                ..quick_spec()
            },
            JobSpec {
                config: 9,
                ..quick_spec()
            },
            JobSpec {
                batch: 0,
                ..quick_spec()
            },
        ] {
            assert!(matches!(resolve(&broken), Err(ServiceError::Usage(_))));
        }
    }

    #[test]
    fn stat_labels_round_trip() {
        for kind in [
            StatKind::Runtime,
            StatKind::ValuInsts,
            StatKind::LoadBytes,
            StatKind::MemWriteStalls,
            StatKind::DramBytes,
            StatKind::EnergyJ,
        ] {
            assert_eq!(stat_by_label(kind.label()).unwrap(), kind);
        }
        assert!(stat_by_label("nope").is_err());
    }
}
