//! Transport abstraction under the NDJSON protocol: the same
//! [`seqpoint_core::protocol`] frames served over a Unix domain socket
//! *or* a TCP socket.
//!
//! The protocol vocabulary was transport-agnostic from the start; this
//! module supplies the three missing pieces so the daemon, clients, and
//! shard workers can all speak over the network:
//!
//! * [`Stream`] — a connected byte stream (Unix or TCP) implementing
//!   `Read`/`Write`, cloneable into a reader/writer pair, with
//!   per-direction timeouts;
//! * [`Listener`] — a bound accept socket, pollable in the daemon's
//!   nonblocking accept loop alongside listeners of the other flavor;
//! * [`Endpoint`] — a connect target (`--socket PATH` or
//!   `--connect HOST:PORT`) clients and workers dial.
//!
//! # Security model
//!
//! A Unix socket is guarded by filesystem permissions, so local
//! connections are trusted as before. A TCP listener has no such guard:
//! every TCP connection must authenticate with a shared-secret token
//! ([`token_matches`], constant-time) presented in a `Hello` frame
//! before any other request is honored. The NDJSON itself is plaintext —
//! the trust boundary is "hosts that hold the token file, on a network
//! you trust"; put TLS or an SSH tunnel in front for anything wider.

use std::fmt;
use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::{Path, PathBuf};
use std::time::Duration;

use seqpoint_core::protocol::{decode_frame, encode_frame, Request, Response, PROTOCOL_VERSION};

use crate::ServiceError;

/// A connected protocol stream: one client, worker, or server-side
/// connection, over either transport.
#[derive(Debug)]
pub enum Stream {
    /// A Unix-domain connection (local, trusted by file permissions).
    Unix(UnixStream),
    /// A TCP connection (gated by token auth on the server).
    Tcp(TcpStream),
}

impl Stream {
    /// Clone the handle so one half can read while the other writes.
    ///
    /// # Errors
    ///
    /// Propagates the OS `dup` failure.
    pub fn try_clone(&self) -> io::Result<Stream> {
        match self {
            Stream::Unix(s) => s.try_clone().map(Stream::Unix),
            Stream::Tcp(s) => s.try_clone().map(Stream::Tcp),
        }
    }

    /// Set the read timeout (`None` blocks forever).
    ///
    /// # Errors
    ///
    /// Propagates the OS setsockopt failure (e.g. a zero duration).
    pub fn set_read_timeout(&self, timeout: Option<Duration>) -> io::Result<()> {
        match self {
            Stream::Unix(s) => s.set_read_timeout(timeout),
            Stream::Tcp(s) => s.set_read_timeout(timeout),
        }
    }

    /// Set the write timeout (`None` blocks forever).
    ///
    /// # Errors
    ///
    /// Propagates the OS setsockopt failure (e.g. a zero duration).
    pub fn set_write_timeout(&self, timeout: Option<Duration>) -> io::Result<()> {
        match self {
            Stream::Unix(s) => s.set_write_timeout(timeout),
            Stream::Tcp(s) => s.set_write_timeout(timeout),
        }
    }

    /// Switch the stream between blocking and nonblocking I/O. The
    /// worker pool uses a nonblocking 1-byte read to probe a pooled
    /// connection's liveness before leasing it out.
    ///
    /// # Errors
    ///
    /// Propagates the OS failure.
    pub fn set_nonblocking(&self, nonblocking: bool) -> io::Result<()> {
        match self {
            Stream::Unix(s) => s.set_nonblocking(nonblocking),
            Stream::Tcp(s) => s.set_nonblocking(nonblocking),
        }
    }

    /// Whether this connection arrived over TCP (and therefore crossed
    /// the network trust boundary).
    pub fn is_tcp(&self) -> bool {
        matches!(self, Stream::Tcp(_))
    }
}

impl Read for Stream {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        match self {
            Stream::Unix(s) => s.read(buf),
            Stream::Tcp(s) => s.read(buf),
        }
    }
}

impl Write for Stream {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        match self {
            Stream::Unix(s) => s.write(buf),
            Stream::Tcp(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        match self {
            Stream::Unix(s) => s.flush(),
            Stream::Tcp(s) => s.flush(),
        }
    }
}

impl From<UnixStream> for Stream {
    fn from(s: UnixStream) -> Self {
        Stream::Unix(s)
    }
}

impl From<TcpStream> for Stream {
    fn from(s: TcpStream) -> Self {
        // One request/response line at a time: Nagle would add tens of
        // milliseconds to every round trip for nothing.
        let _ = s.set_nodelay(true);
        Stream::Tcp(s)
    }
}

/// A bound accept socket of either flavor. The daemon polls several of
/// these (nonblocking) in one accept loop.
#[derive(Debug)]
pub enum Listener {
    /// A bound Unix-domain listener.
    Unix(UnixListener),
    /// A bound TCP listener.
    Tcp(TcpListener),
}

impl Listener {
    /// Accept one pending connection. The accepted stream is switched
    /// back to blocking regardless of the listener's mode (inheritance
    /// is platform-dependent).
    ///
    /// # Errors
    ///
    /// `WouldBlock` when nonblocking with nothing pending; otherwise the
    /// OS accept failure.
    pub fn accept(&self) -> io::Result<Stream> {
        match self {
            Listener::Unix(l) => {
                let (stream, _addr) = l.accept()?;
                stream.set_nonblocking(false)?;
                Ok(Stream::Unix(stream))
            }
            Listener::Tcp(l) => {
                let (stream, _addr) = l.accept()?;
                stream.set_nonblocking(false)?;
                Ok(Stream::from(stream))
            }
        }
    }

    /// Switch the listener between blocking and nonblocking accepts.
    ///
    /// # Errors
    ///
    /// Propagates the OS failure.
    pub fn set_nonblocking(&self, nonblocking: bool) -> io::Result<()> {
        match self {
            Listener::Unix(l) => l.set_nonblocking(nonblocking),
            Listener::Tcp(l) => l.set_nonblocking(nonblocking),
        }
    }

    /// The actual bound TCP address (resolves `:0` to the real port);
    /// `None` for Unix listeners.
    pub fn tcp_addr(&self) -> Option<SocketAddr> {
        match self {
            Listener::Unix(_) => None,
            Listener::Tcp(l) => l.local_addr().ok(),
        }
    }

    /// Whether connections accepted here crossed the network trust
    /// boundary and must authenticate before anything else.
    pub fn requires_auth(&self) -> bool {
        matches!(self, Listener::Tcp(_))
    }
}

/// A connect target: where a client or worker dials the daemon.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Endpoint {
    /// A Unix socket path (`--socket PATH`).
    Unix(PathBuf),
    /// A TCP `host:port` (`--connect HOST:PORT`).
    Tcp(String),
}

impl Endpoint {
    /// A Unix-socket endpoint.
    pub fn unix(path: impl Into<PathBuf>) -> Self {
        Endpoint::Unix(path.into())
    }

    /// A TCP endpoint (`host:port`).
    pub fn tcp(addr: impl Into<String>) -> Self {
        Endpoint::Tcp(addr.into())
    }

    /// Whether this endpoint crosses the network trust boundary (and so
    /// needs a token).
    pub fn is_tcp(&self) -> bool {
        matches!(self, Endpoint::Tcp(_))
    }

    /// Open a connection to this endpoint with no connect bound (the OS
    /// default, which on a SYN-blackholed host can be minutes).
    ///
    /// # Errors
    ///
    /// The OS connect failure (missing socket file, refused, unresolvable
    /// host, …).
    pub fn connect(&self) -> io::Result<Stream> {
        self.connect_timeout(None)
    }

    /// Open a connection, bounding the TCP connect itself by `timeout` —
    /// without this, a firewalled host that silently drops SYNs would
    /// hang the caller for the OS default (~2 minutes) before any
    /// read/write timeout could apply. Unix connects are local and
    /// effectively immediate, so the bound is a no-op there.
    ///
    /// # Errors
    ///
    /// As [`Endpoint::connect`]; additionally `TimedOut` when no
    /// resolved address answers within `timeout`.
    pub fn connect_timeout(&self, timeout: Option<Duration>) -> io::Result<Stream> {
        match self {
            Endpoint::Unix(path) => UnixStream::connect(path).map(Stream::Unix),
            Endpoint::Tcp(addr) => {
                let Some(limit) = timeout else {
                    return TcpStream::connect(addr.as_str()).map(Stream::from);
                };
                use std::net::ToSocketAddrs;
                let mut last = io::Error::new(
                    io::ErrorKind::InvalidInput,
                    format!("`{addr}` resolved to no addresses"),
                );
                for resolved in addr.as_str().to_socket_addrs()? {
                    match TcpStream::connect_timeout(&resolved, limit) {
                        Ok(stream) => return Ok(Stream::from(stream)),
                        Err(e) => last = e,
                    }
                }
                Err(last)
            }
        }
    }
}

impl fmt::Display for Endpoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Endpoint::Unix(path) => write!(f, "{}", path.display()),
            Endpoint::Tcp(addr) => write!(f, "{addr}"),
        }
    }
}

/// Run the client side of the `Hello`/`Welcome` handshake on a freshly
/// connected stream: present the protocol version and the token, and
/// interpret the server's one-line verdict. Shared by [`crate::client`]
/// and [`crate::worker`] so the two can never drift apart.
///
/// # Errors
///
/// [`ServiceError::Io`] when the transport breaks mid-handshake;
/// [`ServiceError::Auth`] when the server refuses (or closes without a
/// verdict); [`ServiceError::Protocol`] on an undecodable response.
pub fn client_handshake(
    writer: &mut Stream,
    reader: &mut BufReader<Stream>,
    token: Option<&str>,
    client: Option<&str>,
) -> Result<(), ServiceError> {
    let mut line = encode_frame(&Request::Hello {
        version: PROTOCOL_VERSION,
        token: token.map(str::to_owned),
        client: client.map(str::to_owned),
    });
    line.push('\n');
    writer
        .write_all(line.as_bytes())
        .map_err(|e| ServiceError::io("sending handshake", &e))?;
    let mut reply = String::new();
    let n = reader
        .read_line(&mut reply)
        .map_err(|e| ServiceError::io("reading handshake response", &e))?;
    if n == 0 {
        return Err(ServiceError::Auth(
            "server closed the connection during the handshake".to_owned(),
        ));
    }
    match decode_frame::<Response>(&reply).map_err(|e| ServiceError::Protocol(e.to_string()))? {
        Response::Welcome { .. } => Ok(()),
        Response::Error { reason } => Err(ServiceError::Auth(reason)),
        other => Err(ServiceError::Protocol(format!(
            "unexpected handshake response: {other:?}"
        ))),
    }
}

/// Compare a presented token against the expected one in time
/// independent of where they first differ, so the comparison leaks
/// nothing an attacker can use to guess the token byte by byte. (Length
/// is folded into the accumulator rather than short-circuited.)
pub fn token_matches(expected: &str, presented: &str) -> bool {
    let a = expected.as_bytes();
    let b = presented.as_bytes();
    let mut diff = a.len() ^ b.len();
    for i in 0..a.len().max(b.len()) {
        let x = a.get(i).copied().unwrap_or(0);
        let y = b.get(i).copied().unwrap_or(0);
        diff |= usize::from(x ^ y);
    }
    diff == 0
}

/// Read a shared-secret token from a file (`--token-file`). Surrounding
/// whitespace — in particular the trailing newline every editor adds —
/// is not part of the secret.
///
/// # Errors
///
/// [`ServiceError::Io`] when the file is unreadable;
/// [`ServiceError::Usage`] when it holds no token or the token spans
/// lines (an NDJSON frame could not carry it).
pub fn load_token(path: &Path) -> Result<String, ServiceError> {
    let raw = std::fs::read_to_string(path)
        .map_err(|e| ServiceError::io(format!("reading token file {}", path.display()), &e))?;
    let token = raw.trim();
    if token.is_empty() {
        return Err(ServiceError::Usage(format!(
            "token file {} is empty",
            path.display()
        )));
    }
    if token.lines().count() != 1 {
        return Err(ServiceError::Usage(format!(
            "token file {} must hold a single-line token",
            path.display()
        )));
    }
    Ok(token.to_owned())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn token_comparison_is_exact() {
        assert!(token_matches("s3cret", "s3cret"));
        assert!(!token_matches("s3cret", "s3cres"));
        assert!(!token_matches("s3cret", "s3cre"));
        assert!(!token_matches("s3cret", "s3crets"));
        assert!(!token_matches("s3cret", ""));
        assert!(token_matches("", ""));
    }

    #[test]
    fn load_token_trims_and_validates() {
        let dir = std::env::temp_dir().join(format!("seqpoint-token-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("tok");
        std::fs::write(&path, "  hunter2\n").unwrap();
        assert_eq!(load_token(&path).unwrap(), "hunter2");
        std::fs::write(&path, "\n \n").unwrap();
        assert!(matches!(load_token(&path), Err(ServiceError::Usage(_))));
        std::fs::write(&path, "a\nb\n").unwrap();
        assert!(matches!(load_token(&path), Err(ServiceError::Usage(_))));
        assert!(load_token(&dir.join("missing")).is_err());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn endpoints_render_and_connect_errors_are_io() {
        let unix = Endpoint::unix("/tmp/nope.sock");
        assert_eq!(unix.to_string(), "/tmp/nope.sock");
        assert!(!unix.is_tcp());
        assert!(unix.connect().is_err());
        let tcp = Endpoint::tcp("127.0.0.1:9");
        assert_eq!(tcp.to_string(), "127.0.0.1:9");
        assert!(tcp.is_tcp());
    }

    #[test]
    fn tcp_listener_round_trips_a_line() {
        let listener = Listener::Tcp(TcpListener::bind("127.0.0.1:0").unwrap());
        let addr = listener.tcp_addr().unwrap();
        assert!(listener.requires_auth());
        let endpoint = Endpoint::tcp(addr.to_string());
        let join = std::thread::spawn(move || {
            let mut conn = listener.accept().unwrap();
            let mut buf = [0u8; 5];
            conn.read_exact(&mut buf).unwrap();
            conn.write_all(&buf).unwrap();
        });
        let mut stream = endpoint.connect().unwrap();
        stream.write_all(b"hello").unwrap();
        let mut echo = [0u8; 5];
        stream.read_exact(&mut echo).unwrap();
        assert_eq!(&echo, b"hello");
        join.join().unwrap();
    }
}
