//! The `seqpoint serve` daemon: socket accept loop (Unix and optional
//! token-gated TCP), bounded job queue, runner pool, worker
//! supervision, terminal-job retention, and graceful drain.
//!
//! # Lifecycle
//!
//! * Startup scans the state directory and **recovers** every persisted
//!   job: finished jobs reload their rendered output, unfinished ones
//!   re-enter the queue and resume from their per-round checkpoints.
//!   The retention bound ([`ServeConfig::retain_jobs`]) is applied to
//!   recovered terminal jobs too.
//! * Clients connect — over the Unix socket or, authenticated by a
//!   `Hello` token handshake, over TCP — and speak
//!   [`Request`]/[`Response`] NDJSON; workers announce
//!   [`Request::WorkerHello`] and their connection moves into the
//!   [`WorkerPool`].
//! * `job_slots` runner threads pop the queue and assemble the
//!   streaming operator graph ([`sqnn_profiler::pipeline::StreamGraph`])
//!   with the metrics registry attached as its per-stage meter, with a
//!   checkpoint written **every round** — so at most one round of work
//!   can ever be lost.
//! * SIGTERM (or a [`Request::Shutdown`] line) **drains**: in-flight
//!   jobs pause at the next round boundary and checkpoint, queued jobs
//!   stay persisted, workers are released, and the process exits;
//!   restarting with the same `--state-dir` finishes everything with
//!   bit-identical results.

use std::collections::HashMap;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpListener;
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::{Path, PathBuf};
use std::process::{Command, Stdio};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant, SystemTime};

use seqpoint_core::protocol::{
    decode_frame, encode_frame, JobClass, JobSpec, JobState, Request, Response, PROTOCOL_VERSION,
};
use sqnn::IterationShape;
use sqnn_profiler::pipeline::StreamGraph;
use sqnn_profiler::stream::{
    stream_fingerprint, CheckpointOptions, RoundExecutor, ShardChunk, ShardReport, StreamOutcome,
    ThreadExecutor,
};
use sqnn_profiler::{IterationProfile, ProfileError, Profiler};

use crate::cache::{Admission, CacheKey, ResultCache};
use crate::executor::{SubprocessExecutor, ThrottledExecutor, WorkerPool};
use crate::metrics::{ConnMetrics, MetricsRegistry, RenderGauges};
use crate::sched::Scheduler;
use crate::spec::{render_streamed, resolve, ResolvedJob};
use crate::sync::{CondvarExt, LockExt};
use crate::transport::{token_matches, Listener, Stream};
use crate::ServiceError;

/// Process-wide SIGTERM/SIGINT latch. A handler may only do
/// async-signal-safe work; storing a relaxed atomic flag qualifies, and
/// the accept loop polls it.
mod sig {
    use std::sync::atomic::{AtomicBool, Ordering};

    pub static TERM: AtomicBool = AtomicBool::new(false);

    extern "C" fn on_term(_signum: i32) {
        TERM.store(true, Ordering::Relaxed);
    }

    #[cfg(unix)]
    pub fn install() {
        // No `libc` crate in the offline workspace; declare the two
        // symbols we need. `signal(2)` with a plain flag-setting handler
        // is bulletproof for this use.
        extern "C" {
            fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
        }
        const SIGINT: i32 = 2;
        const SIGTERM: i32 = 15;
        unsafe {
            signal(SIGTERM, on_term);
            signal(SIGINT, on_term);
        }
    }

    #[cfg(not(unix))]
    pub fn install() {}
}

/// Where a job's rounds execute.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Placement {
    /// In-process scoped threads
    /// ([`sqnn_profiler::stream::ThreadExecutor`]).
    Threads,
    /// `seqpoint worker` subprocesses connected over the socket, shard
    /// state exchanged as checkpoints — the single-machine proof of
    /// multi-node placement.
    Subprocess {
        /// Worker processes to spawn and supervise.
        workers: usize,
    },
}

/// Daemon configuration.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Unix socket path to listen on (created, removed on drain).
    pub socket: PathBuf,
    /// Additional TCP listener (`host:port`; port 0 picks an ephemeral
    /// port, written to `<state_dir>/serve.tcp` for scripts to read).
    /// Requires `token`: every TCP connection must authenticate.
    pub tcp: Option<String>,
    /// Shared-secret token TCP connections must present in their
    /// `Hello`/handshake (constant-time compared). Mandatory when `tcp`
    /// is set; ignored for Unix-socket connections, which filesystem
    /// permissions already gate.
    pub token: Option<String>,
    /// Directory for job specs, checkpoints, and results.
    pub state_dir: PathBuf,
    /// Concurrent jobs (runner threads).
    pub job_slots: usize,
    /// Bounded queue capacity; submissions beyond it are rejected
    /// (backpressure).
    pub queue_cap: usize,
    /// While a client blocks in `Result { wait: true }`, emit a
    /// heartbeat `Status` frame this often so the client's read timeout
    /// measures *connection* liveness, not job duration — a healthy
    /// multi-hour job never trips a waiting client's timeout.
    pub wait_heartbeat: Duration,
    /// Keep at most this many terminal (done/failed/cancelled) jobs;
    /// older ones are garbage-collected — in-memory entry, spec, and
    /// result/error files — oldest-finished first. `None` retains
    /// everything (the pre-retention behavior); recovery applies the
    /// same bound before serving.
    pub retain_jobs: Option<usize>,
    /// Evict terminal jobs older than this, age measured from the
    /// moment the job turned terminal (recovery rebuilds the age from
    /// the result/error file's mtime). Composes with `retain_jobs`:
    /// whichever bound trips first evicts. `None` retains indefinitely.
    pub retain_for: Option<Duration>,
    /// Shard placement for every job.
    pub placement: Placement,
    /// Binary to spawn for subprocess workers (defaults to the current
    /// executable, which is the `seqpoint` binary under `serve`).
    pub worker_exe: Option<PathBuf>,
    /// Weighted-fair queueing across [`JobClass`]es with round-robin
    /// service among clients (see [`crate::sched`]). With one client
    /// and one class this degenerates to FIFO, so it is on by default;
    /// `false` restores strict global FIFO.
    pub fair: bool,
    /// At most this many non-terminal jobs per client identity;
    /// submissions beyond it are rejected (admission error) instead of
    /// queueing unboundedly. `None` is unlimited.
    pub client_quota: Option<usize>,
    /// Optional plaintext metrics scrape endpoint (`host:port`; port 0
    /// picks an ephemeral port, written to `<state_dir>/serve.metrics`
    /// for scripts to read). Serves the registry's Prometheus-style
    /// text exposition to any `GET` request. **Unauthenticated** —
    /// bind it to loopback or a trusted network only.
    pub metrics_addr: Option<String>,
}

impl ServeConfig {
    /// A thread-placement server with 2 job slots and a 16-job queue,
    /// Unix socket only, unbounded retention.
    pub fn new(socket: impl Into<PathBuf>, state_dir: impl Into<PathBuf>) -> Self {
        ServeConfig {
            socket: socket.into(),
            tcp: None,
            token: None,
            state_dir: state_dir.into(),
            job_slots: 2,
            queue_cap: 16,
            wait_heartbeat: Duration::from_secs(15),
            retain_jobs: None,
            retain_for: None,
            placement: Placement::Threads,
            worker_exe: None,
            fair: true,
            client_quota: None,
            metrics_addr: None,
        }
    }
}

struct JobEntry {
    spec: JobSpec,
    state: JobState,
    detail: String,
    output: Option<String>,
    reason: Option<String>,
    cancel: Arc<AtomicBool>,
    attempts: u32,
    /// Consecutive executor (worker-loss) failures — NOT ordinary
    /// scheduling attempts, so max_rounds preemptions never eat into
    /// the retry budget.
    executor_failures: u32,
    /// Monotonic completion order stamp (0 = not terminal yet); the
    /// retention GC evicts the lowest stamps first.
    finish_seq: u64,
    /// When the job turned terminal (`None` until then); the TTL bound
    /// ([`ServeConfig::retain_for`]) measures age from here. Recovery
    /// seeds it from the result/error file's mtime.
    finished_at: Option<SystemTime>,
    /// Clients currently blocked in a `Result { wait: true }` on this
    /// job. The retention GC never evicts a job someone is waiting on —
    /// otherwise a burst of completions could delete a result between
    /// the job finishing and its waiter waking, turning success into
    /// `unknown job`.
    waiters: u32,
    /// Scheduling class (copied out of the spec at admission).
    class: JobClass,
    /// Submitting client identity (copied out of the spec).
    client: String,
    /// The result-cache key, when the spec resolved. `None` means the
    /// job is uncacheable (it will fail at run time with the real
    /// resolution error).
    key: Option<CacheKey>,
    /// Single-flight: the primary job this entry is a follower of. A
    /// follower is never scheduled; it is settled when its primary
    /// reaches a terminal state (or promoted if the primary cancels).
    follows: Option<String>,
    /// Single-flight: follower jobs settled by this entry's outcome.
    followers: Vec<String>,
    /// Whether this job was (or will be) answered from the result cache
    /// rather than its own profiling run.
    cache_hit: bool,
}

impl JobEntry {
    fn new(spec: JobSpec, state: JobState, detail: impl Into<String>) -> Self {
        let class = spec.class;
        let client = spec.client.clone();
        JobEntry {
            spec,
            state,
            detail: detail.into(),
            output: None,
            reason: None,
            cancel: Arc::new(AtomicBool::new(false)),
            attempts: 0,
            executor_failures: 0,
            finish_seq: 0,
            finished_at: None,
            waiters: 0,
            class,
            client,
            key: None,
            follows: None,
            followers: Vec::new(),
            cache_hit: false,
        }
    }
}

struct Shared {
    config: ServeConfig,
    jobs: Mutex<HashMap<String, JobEntry>>,
    jobs_cv: Condvar,
    sched: Scheduler,
    cache: ResultCache,
    draining: AtomicBool,
    next_job: AtomicU64,
    /// Source of [`JobEntry::finish_seq`] stamps (terminal-order clock).
    finish_counter: AtomicU64,
    pool: WorkerPool,
    worker_pids: Mutex<Vec<u64>>,
    metrics: Arc<MetricsRegistry>,
}

impl Shared {
    fn is_draining(&self) -> bool {
        self.draining.load(Ordering::Relaxed) || sig::TERM.load(Ordering::Relaxed)
    }

    fn start_drain(&self) {
        self.draining.store(true, Ordering::Relaxed);
        self.sched.notify_all();
        self.jobs_cv.notify_all();
        self.pool.drain();
    }

    /// The result-cache key of a resolved job: the stream fingerprint
    /// plus the two semantic fields it does not pin down on its own
    /// (shard count — part of the rendered output — and corpus seed,
    /// which the fingerprint only sees through the shuffled batch
    /// order).
    fn cache_key(resolved: &ResolvedJob, spec: &JobSpec) -> CacheKey {
        CacheKey {
            fingerprint: stream_fingerprint(
                &resolved.network,
                &resolved.plan,
                &resolved.device,
                &resolved.options,
            ),
            shards: resolved.options.shards as u32,
            seed: spec.seed,
        }
    }

    fn spec_path(&self, id: &str) -> PathBuf {
        self.config.state_dir.join(format!("{id}.spec.json"))
    }

    fn ckpt_path(&self, id: &str) -> PathBuf {
        self.config.state_dir.join(format!("{id}.ckpt.json"))
    }

    fn result_path(&self, id: &str) -> PathBuf {
        self.config.state_dir.join(format!("{id}.result.txt"))
    }

    fn error_path(&self, id: &str) -> PathBuf {
        self.config.state_dir.join(format!("{id}.error.txt"))
    }

    fn set_state(&self, id: &str, state: JobState, detail: impl Into<String>) {
        let mut jobs = self.jobs.lock_recover();
        if let Some(entry) = jobs.get_mut(id) {
            entry.state = state;
            entry.detail = detail.into();
        }
        if state.is_terminal() {
            self.stamp_terminal(&mut jobs, id);
        }
        drop(jobs);
        self.jobs_cv.notify_all();
    }

    /// Stamp a job that just reached a terminal state with its
    /// completion-order sequence number, settle its single-flight
    /// followers, then apply the retention bound. Must run under the
    /// `jobs` lock (the caller passes the guard's map) — the single
    /// funnel every terminal transition goes through.
    fn stamp_terminal(&self, jobs: &mut HashMap<String, JobEntry>, id: &str) {
        let newly_terminal = match jobs.get_mut(id) {
            Some(entry) if entry.state.is_terminal() && entry.finish_seq == 0 => {
                entry.finish_seq = self.finish_counter.fetch_add(1, Ordering::Relaxed) + 1;
                entry.finished_at = Some(SystemTime::now());
                match entry.state {
                    JobState::Done => self.metrics.job_completed(),
                    JobState::Failed => self.metrics.job_failed(),
                    JobState::Cancelled => self.metrics.job_cancelled(),
                    _ => {}
                }
                true
            }
            _ => false,
        };
        if newly_terminal {
            self.settle_followers(jobs, id);
        }
        self.gc_terminal(jobs);
    }

    /// Settle the single-flight followers of a primary that just turned
    /// terminal: `Done` fans the result out to every follower
    /// (byte-identical, persisted like a real result), `Failed`
    /// propagates the failure, and `Cancelled` promotes the oldest
    /// follower into a scheduled primary so the group still gets its
    /// one profiling run. Runs under the `jobs` lock.
    fn settle_followers(&self, jobs: &mut HashMap<String, JobEntry>, id: &str) {
        let (state, key, output, reason, mut followers) = {
            let Some(entry) = jobs.get_mut(id) else {
                return;
            };
            (
                entry.state,
                entry.key,
                entry.output.clone(),
                entry.reason.clone(),
                std::mem::take(&mut entry.followers),
            )
        };
        match state {
            JobState::Done => {
                if let Some(key) = key {
                    self.cache.complete(key, id);
                }
                let output = output.unwrap_or_default();
                for fid in followers {
                    let _ = write_atomic(&self.result_path(&fid), &output);
                    if let Some(f) = jobs.get_mut(&fid) {
                        f.state = JobState::Done;
                        f.detail = format!("done (served by job `{id}`)");
                        f.output = Some(output.clone());
                        f.follows = None;
                        if f.finish_seq == 0 {
                            f.finish_seq = self.finish_counter.fetch_add(1, Ordering::Relaxed) + 1;
                            f.finished_at = Some(SystemTime::now());
                            self.metrics.job_completed();
                        }
                    }
                }
            }
            JobState::Failed => {
                if let Some(key) = key {
                    self.cache.abandon(key, id);
                }
                let reason = format!("primary job `{id}` failed: {}", reason.unwrap_or_default());
                for fid in followers {
                    let _ = write_atomic(&self.error_path(&fid), &reason);
                    if let Some(f) = jobs.get_mut(&fid) {
                        f.state = JobState::Failed;
                        f.detail = "failed with its single-flight primary".to_owned();
                        f.reason = Some(reason.clone());
                        f.follows = None;
                        if f.finish_seq == 0 {
                            f.finish_seq = self.finish_counter.fetch_add(1, Ordering::Relaxed) + 1;
                            f.finished_at = Some(SystemTime::now());
                            self.metrics.job_failed();
                        }
                    }
                }
            }
            JobState::Cancelled => {
                // Oldest follower (sorted id order is deterministic)
                // takes over; any follower cancelled meanwhile is gone
                // from the list already, but stay defensive.
                followers.sort();
                followers.retain(|fid| jobs.get(fid).is_some_and(|f| !f.state.is_terminal()));
                let Some(new_primary) = followers.first().cloned() else {
                    if let Some(key) = key {
                        self.cache.abandon(key, id);
                    }
                    return;
                };
                followers.remove(0);
                // Filtered as live just above, but if the entry vanished
                // anyway, give the cache slot back instead of panicking
                // mid-settle with the jobs lock held.
                let Some(f) = jobs.get_mut(&new_primary) else {
                    if let Some(key) = key {
                        self.cache.abandon(key, id);
                    }
                    return;
                };
                f.follows = None;
                f.followers = followers.clone();
                f.cache_hit = false;
                f.detail = format!("promoted to primary (job `{id}` cancelled)");
                let (class, client) = (f.class, f.client.clone());
                if let Some(key) = key {
                    self.cache.promote(key, id, &new_primary);
                }
                for fid in &followers {
                    if let Some(f) = jobs.get_mut(fid) {
                        f.follows = Some(new_primary.clone());
                        f.detail = format!("single-flight: attached to job `{new_primary}`");
                    }
                }
                // jobs → sched lock order, as everywhere.
                self.sched.requeue(&new_primary, class, &client);
            }
            _ => {}
        }
    }

    /// Evict terminal jobs past either retention bound — beyond the
    /// `retain_jobs` count cap (oldest-finished first) or older than
    /// the `retain_for` TTL; whichever bound trips first evicts. The
    /// in-memory entry (with its rendered output) and every persisted
    /// file go together, so neither the map nor the state dir grows
    /// without bound under sustained traffic. Non-terminal jobs are
    /// never touched.
    fn gc_terminal(&self, jobs: &mut HashMap<String, JobEntry>) {
        let cap = self.config.retain_jobs;
        let ttl = self.config.retain_for;
        if cap.is_none() && ttl.is_none() {
            return;
        }
        let now = SystemTime::now();
        let expired = |e: &JobEntry| {
            ttl.is_some_and(|ttl| {
                e.finished_at
                    .and_then(|at| now.duration_since(at).ok())
                    .is_some_and(|age| age >= ttl)
            })
        };
        // Every terminal job counts toward the bounds, but a job someone
        // is blocked waiting on is never the victim — the next-oldest
        // waiter-free job is evicted instead, so a completion burst
        // cannot delete a result between a job finishing and its waiter
        // waking to read it.
        let mut terminal: Vec<(u64, String, bool, bool)> = jobs
            .iter()
            .filter(|(_, e)| e.state.is_terminal())
            .map(|(id, e)| (e.finish_seq, id.clone(), e.waiters > 0, expired(e)))
            .collect();
        terminal.sort();
        // Evictions still owed to the count cap; any eviction (cap or
        // TTL) shrinks the terminal set, so both pay it down.
        let mut over_cap = cap.map_or(0, |cap| terminal.len().saturating_sub(cap));
        for (_, id, waited_on, expired) in terminal {
            if over_cap == 0 && !expired {
                continue;
            }
            if waited_on {
                continue;
            }
            if let Some(entry) = jobs.remove(&id) {
                // A retained-result mapping goes with the entry that
                // held the output.
                if entry.state == JobState::Done {
                    if let Some(key) = entry.key {
                        self.cache.evict(key, &id);
                    }
                }
            }
            let _ = std::fs::remove_file(self.spec_path(&id));
            let _ = std::fs::remove_file(self.result_path(&id));
            let _ = std::fs::remove_file(self.error_path(&id));
            let _ = std::fs::remove_file(self.ckpt_path(&id));
            over_cap = over_cap.saturating_sub(1);
        }
    }
}

/// Atomic write (`<path>.tmp` + rename), so a crash never leaves a torn
/// spec/result file for recovery to trip on.
fn write_atomic(path: &Path, contents: &str) -> Result<(), ServiceError> {
    let mut tmp = path.as_os_str().to_owned();
    tmp.push(".tmp");
    let tmp = PathBuf::from(tmp);
    std::fs::write(&tmp, contents)
        .map_err(|e| ServiceError::io(format!("writing {}", tmp.display()), &e))?;
    std::fs::rename(&tmp, path)
        .map_err(|e| ServiceError::io(format!("renaming {}", path.display()), &e))?;
    Ok(())
}

fn valid_job_id(id: &str) -> bool {
    !id.is_empty()
        && id.len() <= 64
        && id
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || c == '-' || c == '_')
}

/// Scan the state directory and rebuild the job table: done/failed jobs
/// reload their outcome, everything else re-enters the queue (resuming
/// from its checkpoint when one exists). Stale `*.tmp` siblings from a
/// writer killed between write and rename are swept first, and a job
/// whose spec no longer parses is surfaced as Failed rather than
/// silently vanishing. Returns the recovered-unfinished job ids, sorted
/// for a deterministic queue order.
fn recover(shared: &Shared) -> Result<Vec<String>, ServiceError> {
    let dir = std::fs::read_dir(&shared.config.state_dir)
        .map_err(|e| ServiceError::io("reading state dir", &e))?;
    let mut queued = Vec::new();
    let mut max_auto = 0u64;
    // Terminal recovered jobs, with the mtime of the file that made them
    // terminal: the best completion-order evidence a restart has, so the
    // retention GC still evicts oldest-first across restarts.
    let mut terminal: Vec<(SystemTime, String)> = Vec::new();
    let mut jobs = shared.jobs.lock_recover();
    for entry in dir.flatten() {
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        // Atomic-write leftovers (spec/result/error/checkpoint temps)
        // are dead weight, possibly torn; nothing may ever read them.
        if name.contains(".tmp") {
            let _ = std::fs::remove_file(entry.path());
            continue;
        }
        let Some(id) = name.strip_suffix(".spec.json") else {
            continue;
        };
        if let Some(n) = id.strip_prefix("job-").and_then(|n| n.parse::<u64>().ok()) {
            max_auto = max_auto.max(n);
        }
        let spec = match std::fs::read_to_string(entry.path())
            .map_err(|e| e.to_string())
            .and_then(|text| decode_frame::<JobSpec>(&text).map_err(|e| e.to_string()))
        {
            Ok(spec) => spec,
            Err(reason) => {
                // The client was told `Submitted`; it must be able to
                // learn the job's fate, not get `unknown job` forever.
                eprintln!("seqpoint serve: job `{id}` spec unreadable at recovery: {reason}");
                let mut failed = JobEntry::new(
                    JobSpec::default(),
                    JobState::Failed,
                    "recovered with an unreadable spec",
                );
                failed.reason = Some(format!("spec unreadable at recovery: {reason}"));
                jobs.insert(id.to_owned(), failed);
                terminal.push((SystemTime::UNIX_EPOCH, id.to_owned()));
                continue;
            }
        };
        let file_mtime = |path: PathBuf| {
            std::fs::metadata(path)
                .and_then(|m| m.modified())
                .unwrap_or(SystemTime::UNIX_EPOCH)
        };
        if let Ok(output) = std::fs::read_to_string(shared.result_path(id)) {
            let mut done = JobEntry::new(spec, JobState::Done, "recovered finished job");
            done.output = Some(output);
            jobs.insert(id.to_owned(), done);
            terminal.push((file_mtime(shared.result_path(id)), id.to_owned()));
        } else if let Ok(reason) = std::fs::read_to_string(shared.error_path(id)) {
            let mut failed = JobEntry::new(spec, JobState::Failed, "recovered failed job");
            failed.reason = Some(reason);
            jobs.insert(id.to_owned(), failed);
            terminal.push((file_mtime(shared.error_path(id)), id.to_owned()));
        } else {
            jobs.insert(
                id.to_owned(),
                JobEntry::new(spec, JobState::Queued, "recovered; waiting for a slot"),
            );
            queued.push(id.to_owned());
        }
    }
    // Seed completion-order stamps from the observed mtimes (ties break
    // on id for determinism), then apply the retention bound exactly as
    // a running server would — a restart must not resurrect jobs the
    // bound would have evicted, nor exceed it with recovered ones.
    terminal.sort();
    for (seq, (mtime, id)) in terminal.iter().enumerate() {
        if let Some(entry) = jobs.get_mut(id) {
            entry.finish_seq = seq as u64 + 1;
            entry.finished_at = Some(*mtime);
        }
    }
    shared
        .finish_counter
        .store(terminal.len() as u64, Ordering::Relaxed);
    // Rebuild the result cache and single-flight groups (before the GC,
    // which needs the keys to keep the cache index consistent under
    // eviction). Sorted-id iteration keeps recovery deterministic.
    let mut ids: Vec<String> = jobs.keys().cloned().collect();
    ids.sort();
    for id in &ids {
        let Some(entry) = jobs.get_mut(id) else {
            continue;
        };
        if entry.spec.model.is_empty() {
            continue; // unreadable-spec placeholder
        }
        entry.key = resolve(&entry.spec)
            .ok()
            .map(|r| Shared::cache_key(&r, &entry.spec));
    }
    for id in &ids {
        let Some(entry) = jobs.get(id) else { continue };
        if entry.state == JobState::Done {
            if let Some(key) = entry.key {
                shared.cache.register_ready(key, id);
            }
        }
    }
    // Unfinished jobs sharing a key collapse back into one primary plus
    // followers; a key whose result is already retained settles its
    // recovered duplicates outright. This is what makes a waiter that
    // was attached to an in-flight job at SIGTERM receive the resumed
    // run's result instead of triggering a second profiling run.
    queued.sort();
    let mut requeue_ids = Vec::new();
    let mut primaries: HashMap<CacheKey, String> = HashMap::new();
    for id in &queued {
        let Some(key) = jobs.get(id).and_then(|e| e.key) else {
            requeue_ids.push(id.clone());
            continue;
        };
        if let Some(done) = shared.cache.lookup_ready(key) {
            if let Some(output) = jobs.get(&done).and_then(|p| p.output.clone()) {
                let _ = write_atomic(&shared.result_path(id), &output);
                if let Some(entry) = jobs.get_mut(id) {
                    entry.state = JobState::Done;
                    entry.detail = format!("recovered: served from cache (job `{done}`)");
                    entry.output = Some(output);
                    entry.cache_hit = true;
                    entry.finish_seq = shared.finish_counter.fetch_add(1, Ordering::Relaxed) + 1;
                    entry.finished_at = Some(SystemTime::now());
                }
                continue;
            }
        }
        if let Some(primary) = primaries.get(&key) {
            let primary = primary.clone();
            if let Some(entry) = jobs.get_mut(id) {
                entry.follows = Some(primary.clone());
                entry.cache_hit = true;
                entry.detail = format!("single-flight: attached to job `{primary}`");
            }
            if let Some(p) = jobs.get_mut(&primary) {
                p.followers.push(id.clone());
            }
        } else {
            primaries.insert(key, id.clone());
            shared.cache.register_inflight(key, id);
            requeue_ids.push(id.clone());
        }
    }
    shared.gc_terminal(&mut jobs);
    drop(jobs);
    shared.next_job.store(max_auto + 1, Ordering::Relaxed);
    Ok(requeue_ids)
}

fn submit(
    shared: &Shared,
    requested: Option<String>,
    spec: JobSpec,
    conn_client: &Option<String>,
) -> Response {
    if shared.is_draining() {
        return Response::Error {
            reason: "server is draining".to_owned(),
        };
    }
    let mut spec = spec.normalize();
    // The connection's identity (TCP `Hello` handshake, or a Unix-socket
    // `Hello` with a client tag) is authoritative: a peer that announced
    // itself as `alice` cannot submit jobs accounted to `bob`.
    if let Some(client) = conn_client {
        spec.client = client.clone();
    }
    if spec.model.is_empty() || spec.dataset.is_empty() {
        return Response::Rejected {
            reason: "spec needs model and dataset".to_owned(),
        };
    }
    let client = spec.client.clone();
    let id = match requested {
        Some(id) => {
            if !valid_job_id(&id) {
                return Response::Rejected {
                    reason: "job ids are 1-64 chars of [A-Za-z0-9_-]".to_owned(),
                };
            }
            // A client-chosen `job-<n>` must not collide with a later
            // auto-assigned id, so bump the counter past it.
            if let Some(n) = id.strip_prefix("job-").and_then(|n| n.parse::<u64>().ok()) {
                shared
                    .next_job
                    .fetch_max(n.saturating_add(1), Ordering::Relaxed);
            }
            id
        }
        None => format!("job-{}", shared.next_job.fetch_add(1, Ordering::Relaxed)),
    };
    // Resolve the spec outside every lock to derive the result-cache
    // key. A spec that does not resolve is admitted uncached and fails
    // at run time with the real resolution error, exactly as before.
    let key = resolve(&spec).ok().map(|r| Shared::cache_key(&r, &spec));
    // Persist the spec to a connection-unique temp file *before* taking
    // any lock: the slow filesystem write must not stall runners and
    // status queries behind the mutexes.
    static SPEC_TMP: AtomicU64 = AtomicU64::new(0);
    let spec_path = shared.spec_path(&id);
    let tmp = shared.config.state_dir.join(format!(
        "{id}.spec.json.tmp-{}",
        SPEC_TMP.fetch_add(1, Ordering::Relaxed)
    ));
    if let Err(e) = std::fs::write(&tmp, encode_frame(&spec)) {
        return Response::Error {
            reason: format!("persisting spec: {e}"),
        };
    }
    // Duplicate check, quota check, cache admission, capacity check,
    // rename-into-place, and insertion are one critical section (jobs →
    // sched/cache lock order, as everywhere): two racing submissions of
    // the same id or key must not both pass the checks. Rename is a
    // metadata operation, cheap enough to hold locks over.
    let mut jobs = shared.jobs.lock_recover();
    if jobs.contains_key(&id) {
        drop(jobs);
        let _ = std::fs::remove_file(&tmp);
        return Response::Rejected {
            reason: format!("job `{id}` already exists"),
        };
    }
    // Per-client admission quota, checked before the cache: a client at
    // its in-flight bound is rejected even for would-be cache hits, so
    // a quota cannot be laundered through duplicate submissions.
    if let Some(quota) = shared.config.client_quota {
        let open = jobs
            .values()
            .filter(|e| e.client == spec.client && !e.state.is_terminal())
            .count();
        if open >= quota {
            drop(jobs);
            let _ = std::fs::remove_file(&tmp);
            return Response::Rejected {
                reason: format!(
                    "client `{}` has {open} job(s) in flight (quota {quota}); retry later",
                    spec.client
                ),
            };
        }
    }
    let persist = |jobs: std::sync::MutexGuard<'_, HashMap<String, JobEntry>>,
                   e: std::io::Error|
     -> Response {
        drop(jobs);
        let _ = std::fs::remove_file(&tmp);
        Response::Error {
            reason: format!("persisting spec: {e}"),
        }
    };
    let admission = match key {
        Some(key) => shared.cache.admit(key, &id),
        None => Admission::Miss,
    };
    if let Admission::Ready(primary) = &admission {
        // Retained result: answer immediately, byte-identical, without
        // a profiling run.
        if let Some(output) = jobs.get(primary.as_str()).and_then(|p| p.output.clone()) {
            if let Err(e) = std::fs::rename(&tmp, &spec_path) {
                return persist(jobs, e);
            }
            let _ = write_atomic(&shared.result_path(&id), &output);
            let mut entry = JobEntry::new(
                spec,
                JobState::Done,
                format!("served from cache (job `{primary}`)"),
            );
            entry.key = key;
            entry.cache_hit = true;
            entry.output = Some(output);
            jobs.insert(id.clone(), entry);
            shared.stamp_terminal(&mut jobs, &id);
            drop(jobs);
            shared.metrics.cache_hit();
            shared.metrics.job_submitted(&client);
            shared.jobs_cv.notify_all();
            return Response::Submitted { job: id };
        }
        // The entry the index pointed at lost its output (evicted out
        // from under the cache): heal by taking over as the in-flight
        // primary and profiling fresh. A Ready admission implies a key;
        // if it is somehow absent, skip the healing and just reprofile.
        if let Some(key) = key {
            shared.cache.evict(key, primary);
            shared.cache.register_inflight(key, &id);
        }
    } else if let Admission::InFlight(primary) = &admission {
        if jobs
            .get(primary.as_str())
            .is_some_and(|p| !p.state.is_terminal())
        {
            // Single-flight: attach as a follower of the queued/running
            // primary. Never scheduled — settled by the primary's
            // outcome.
            if let Err(e) = std::fs::rename(&tmp, &spec_path) {
                return persist(jobs, e);
            }
            let mut entry = JobEntry::new(
                spec,
                JobState::Queued,
                format!("single-flight: attached to job `{primary}`"),
            );
            entry.key = key;
            entry.cache_hit = true;
            entry.follows = Some(primary.clone());
            let primary = primary.clone();
            jobs.insert(id.clone(), entry);
            // Checked non-terminal at the top of this branch and the
            // lock has been held since, so the primary is still there.
            if let Some(p) = jobs.get_mut(&primary) {
                p.followers.push(id.clone());
            }
            drop(jobs);
            shared.metrics.cache_follower();
            shared.metrics.job_submitted(&client);
            shared.jobs_cv.notify_all();
            return Response::Submitted { job: id };
        }
        // Stale in-flight record (its primary is gone): take over. An
        // InFlight admission implies a key; nothing to fix up if not.
        if let Some(key) = key {
            shared.cache.promote(key, primary, &id);
        }
    }
    // Miss (or a healed stale hit): schedule a real profiling run.
    if !shared.sched.push(&id, spec.class, &spec.client) {
        if let Some(key) = key {
            shared.cache.abandon(key, &id);
        }
        drop(jobs);
        let _ = std::fs::remove_file(&tmp);
        return Response::Rejected {
            reason: format!("queue full (cap {}); retry later", shared.config.queue_cap),
        };
    }
    if let Err(e) = std::fs::rename(&tmp, &spec_path) {
        shared.sched.remove(&id);
        if let Some(key) = key {
            shared.cache.abandon(key, &id);
        }
        return persist(jobs, e);
    }
    let mut entry = JobEntry::new(spec, JobState::Queued, "queued");
    entry.key = key;
    jobs.insert(id.clone(), entry);
    drop(jobs);
    shared.metrics.cache_miss();
    shared.metrics.job_submitted(&client);
    Response::Submitted { job: id }
}

fn cancel(shared: &Shared, id: &str) -> Response {
    let mut jobs = shared.jobs.lock_recover();
    let Some(entry) = jobs.get_mut(id) else {
        return Response::Error {
            reason: format!("unknown job `{id}`"),
        };
    };
    match entry.state {
        JobState::Done | JobState::Failed | JobState::Cancelled => Response::Error {
            reason: format!("job `{id}` is already {}", entry.state.label()),
        },
        JobState::Running => {
            // Cooperative: the runner pauses at the next round boundary
            // and finalizes the cancellation.
            entry.cancel.store(true, Ordering::Relaxed);
            entry.detail = "cancellation requested".to_owned();
            Response::Cancelled { job: id.to_owned() }
        }
        JobState::Queued | JobState::Paused => {
            entry.state = JobState::Cancelled;
            entry.detail = "cancelled before running".to_owned();
            entry.cancel.store(true, Ordering::Relaxed);
            // A follower detaches from its primary before settlement so
            // the primary's outcome no longer touches it; a primary's
            // own followers are settled (promoted) by stamp_terminal.
            if let Some(primary) = entry.follows.take() {
                if let Some(p) = jobs.get_mut(&primary) {
                    p.followers.retain(|f| f != id);
                }
            } else {
                shared.sched.remove(id);
            }
            shared.stamp_terminal(&mut jobs, id);
            drop(jobs);
            let _ = std::fs::remove_file(shared.spec_path(id));
            let _ = std::fs::remove_file(shared.ckpt_path(id));
            shared.jobs_cv.notify_all();
            Response::Cancelled { job: id.to_owned() }
        }
    }
}

fn status(shared: &Shared, id: &str) -> Response {
    let jobs = shared.jobs.lock_recover();
    match jobs.get(id) {
        None => Response::Error {
            reason: format!("unknown job `{id}`"),
        },
        Some(entry) => Response::Status {
            job: id.to_owned(),
            state: entry.state,
            detail: entry.detail.clone(),
            cache_hit: entry.cache_hit,
        },
    }
}

/// The terminal response for a job, or `None` while it is still in
/// flight. Caller holds the jobs lock.
fn terminal_response(jobs: &HashMap<String, JobEntry>, id: &str) -> Option<Response> {
    match jobs.get(id) {
        None => Some(Response::Error {
            reason: format!("unknown job `{id}`"),
        }),
        Some(entry) => match entry.state {
            JobState::Done => Some(Response::Result {
                job: id.to_owned(),
                output: entry.output.clone().unwrap_or_default(),
            }),
            JobState::Failed => Some(Response::Failed {
                job: id.to_owned(),
                reason: entry.reason.clone().unwrap_or_default(),
            }),
            JobState::Cancelled => Some(Response::Cancelled { job: id.to_owned() }),
            _ => None,
        },
    }
}

/// Non-blocking result fetch (`Result { wait: false }`).
fn result(shared: &Shared, id: &str) -> Response {
    let jobs = shared.jobs.lock_recover();
    match terminal_response(&jobs, id) {
        Some(response) => response,
        None => {
            let state = jobs.get(id).map(|e| e.state).unwrap_or(JobState::Queued);
            Response::Error {
                reason: format!("job `{id}` is {} (use wait)", state.label()),
            }
        }
    }
}

/// Blocking result fetch (`Result { wait: true }`): wait until the job
/// is terminal, writing the final response — and, while waiting, a
/// heartbeat `Status` frame every [`ServeConfig::wait_heartbeat`] so
/// the client's read timeout bounds connection liveness rather than job
/// duration (waiting clients skip `Status` frames).
///
/// # Errors
///
/// The write failure when the client goes away mid-wait (the caller
/// closes the connection).
fn result_wait(
    shared: &Shared,
    stream: &mut Stream,
    metrics: &ConnMetrics,
    id: &str,
) -> std::io::Result<()> {
    let mut last_beat = std::time::Instant::now();
    let mut jobs = shared.jobs.lock_recover();
    loop {
        if let Some(response) = terminal_response(&jobs, id) {
            drop(jobs);
            return respond(stream, metrics, &response);
        }
        if shared.is_draining() {
            drop(jobs);
            return respond(
                stream,
                metrics,
                &Response::Error {
                    reason: "server is draining; job state is checkpointed".to_owned(),
                },
            );
        }
        if last_beat.elapsed() >= shared.config.wait_heartbeat {
            // Stay registered as a waiter across the unlocked write:
            // the GC must not treat the heartbeat window as "nobody is
            // waiting" and evict the job right as it finishes.
            let beat = jobs.get_mut(id).map(|entry| {
                entry.waiters += 1;
                Response::Status {
                    job: id.to_owned(),
                    state: entry.state,
                    detail: entry.detail.clone(),
                    cache_hit: entry.cache_hit,
                }
            });
            drop(jobs);
            let written = match &beat {
                Some(beat) => respond(stream, metrics, beat),
                None => Ok(()),
            };
            last_beat = std::time::Instant::now();
            jobs = shared.jobs.lock_recover();
            if beat.is_some() {
                if let Some(entry) = jobs.get_mut(id) {
                    entry.waiters = entry.waiters.saturating_sub(1);
                }
            }
            written?;
            continue;
        }
        // Registered under the lock for the duration of the wait, so
        // the retention GC cannot evict the job in the gap between it
        // finishing and this waiter waking to read the result.
        if let Some(entry) = jobs.get_mut(id) {
            entry.waiters += 1;
        }
        let (guard, _) = shared
            .jobs_cv
            .wait_timeout_recover(jobs, Duration::from_millis(250));
        jobs = guard;
        if let Some(entry) = jobs.get_mut(id) {
            entry.waiters = entry.waiters.saturating_sub(1);
        }
    }
}

/// Run one job to completion, pause, cancellation, or failure.
fn run_job(shared: &Arc<Shared>, id: &str) {
    let (spec, cancel, attempt) = {
        let mut jobs = shared.jobs.lock_recover();
        let Some(entry) = jobs.get_mut(id) else {
            return;
        };
        if entry.state != JobState::Queued && entry.state != JobState::Paused {
            return; // cancelled while queued
        }
        if entry.follows.is_some() {
            return; // single-flight follower; settled by its primary
        }
        entry.state = JobState::Running;
        entry.detail = "resolving workload".to_owned();
        entry.attempts = entry.attempts.saturating_add(1);
        (entry.spec.clone(), entry.cancel.clone(), entry.attempts)
    };
    shared.jobs_cv.notify_all();

    let fail = |message: String| {
        let _ = write_atomic(&shared.error_path(id), &message);
        let mut jobs = shared.jobs.lock_recover();
        if let Some(entry) = jobs.get_mut(id) {
            entry.state = JobState::Failed;
            entry.detail = "failed".to_owned();
            entry.reason = Some(message);
        }
        shared.stamp_terminal(&mut jobs, id);
        drop(jobs);
        shared.jobs_cv.notify_all();
    };

    let resolved = match resolve(&spec) {
        Ok(resolved) => resolved,
        Err(e) => return fail(e.to_string()),
    };
    let interrupted = || shared.is_draining() || cancel.load(Ordering::Relaxed);
    let policy = CheckpointOptions {
        path: shared.ckpt_path(id),
        every_rounds: 1,
        max_rounds: spec.max_rounds,
    };
    let fingerprint = stream_fingerprint(
        &resolved.network,
        &resolved.plan,
        &resolved.device,
        &resolved.options,
    );
    shared.set_state(
        id,
        JobState::Running,
        format!(
            "running ({} iterations, attempt {attempt})",
            resolved.plan.iterations()
        ),
    );

    let run = |executor: &mut dyn RoundExecutor| {
        // Innermost wrapper, so the recorded wall time is the round's
        // actual execution — tenancy throttling sleeps are excluded.
        let mut metered = MeteredExecutor {
            inner: executor,
            metrics: &shared.metrics,
        };
        // One canonical operator-graph assembly per attempt, with the
        // shared registry attached as the per-stage meter: source/fold/
        // merge/gate/sink items, wall time, and channel backpressure
        // land in the `stage`-labeled scrape families.
        let assemble = |executor: &mut dyn RoundExecutor| {
            StreamGraph::new(executor, &resolved.plan, &resolved.options, fingerprint)
                .with_checkpoint(&policy)
                .with_interrupt(&interrupted)
                .with_meter(shared.metrics.as_ref())
                .run()
        };
        if spec.throttle_ms > 0 {
            let mut throttled =
                ThrottledExecutor::new(&mut metered, spec.throttle_ms, &interrupted);
            assemble(&mut throttled)
        } else {
            assemble(&mut metered)
        }
    };
    let profiler = Profiler::new();
    let outcome = match &shared.config.placement {
        Placement::Threads => {
            let mut executor = ThreadExecutor::new(
                &profiler,
                &resolved.network,
                resolved.device.clone(),
                resolved.options.stat,
                resolved.options.shards,
            );
            run(&mut executor)
        }
        Placement::Subprocess { .. } => {
            let mut executor = SubprocessExecutor::new(
                &shared.pool,
                id,
                spec.model.clone(),
                spec.config,
                resolved.options.stat.label(),
            );
            run(&mut executor)
        }
    };

    match outcome {
        Ok(StreamOutcome::Complete(profile)) => {
            if cancel.load(Ordering::Relaxed) {
                return finalize_cancel(shared, id);
            }
            let output = render_streamed(&spec.model, &spec.dataset, spec.config, &profile);
            if let Err(e) = write_atomic(&shared.result_path(id), &output) {
                return fail(format!("persisting result: {e}"));
            }
            // The checkpoint is redundant once the result exists (a
            // restart reloads Done from the result file), so reclaim it
            // instead of letting the state dir grow per finished job.
            let _ = std::fs::remove_file(shared.ckpt_path(id));
            let mut jobs = shared.jobs.lock_recover();
            if let Some(entry) = jobs.get_mut(id) {
                entry.state = JobState::Done;
                entry.detail = "done".to_owned();
                entry.output = Some(output);
            }
            shared.stamp_terminal(&mut jobs, id);
            drop(jobs);
            shared.jobs_cv.notify_all();
        }
        Ok(StreamOutcome::Paused(pause)) => {
            if cancel.load(Ordering::Relaxed) {
                return finalize_cancel(shared, id);
            }
            if shared.is_draining() {
                shared.set_state(
                    id,
                    JobState::Paused,
                    format!(
                        "drained at {}/{} iterations; resumes on restart",
                        pause.iterations_consumed, pause.iterations_total
                    ),
                );
            } else {
                // Preemption budget (max_rounds): yield the slot and
                // requeue, round-robin fairness across jobs. A clean
                // pause is forward progress, so the worker-loss retry
                // budget resets.
                {
                    let mut jobs = shared.jobs.lock_recover();
                    if let Some(entry) = jobs.get_mut(id) {
                        entry.executor_failures = 0;
                    }
                }
                shared.set_state(
                    id,
                    JobState::Paused,
                    format!(
                        "preempted at {}/{} iterations; requeued",
                        pause.iterations_consumed, pause.iterations_total
                    ),
                );
                requeue(shared, id);
            }
        }
        Err(ProfileError::Executor { message }) => {
            // Budget counts consecutive worker losses only — a job that
            // was preempted by max_rounds many times keeps its full
            // retry allowance.
            let failures = {
                let mut jobs = shared.jobs.lock_recover();
                match jobs.get_mut(id) {
                    Some(entry) => {
                        entry.executor_failures = entry.executor_failures.saturating_add(1);
                        entry.executor_failures
                    }
                    None => 1,
                }
            };
            if shared.is_draining() {
                shared.set_state(id, JobState::Paused, "drained; resumes on restart");
            } else if failures <= 5 {
                // The round was lost with a worker; the per-round
                // checkpoint still holds everything before it. Requeue:
                // the next attempt reassigns the job to the (respawned)
                // workers from that checkpoint.
                shared.set_state(
                    id,
                    JobState::Paused,
                    format!("worker lost ({message}); retrying from last checkpoint"),
                );
                requeue(shared, id);
            } else {
                fail(format!(
                    "executor failed {failures} consecutive times: {message}"
                ));
            }
        }
        Err(e) => fail(e.to_string()),
    }
}

/// [`RoundExecutor`] shim that meters round boundaries — wall time per
/// round and items measured — into the shared registry. Placement-
/// agnostic: it wraps whichever executor `run_job` picked.
struct MeteredExecutor<'a> {
    inner: &'a mut dyn RoundExecutor,
    metrics: &'a MetricsRegistry,
}

impl RoundExecutor for MeteredExecutor<'_> {
    fn execute_round(&mut self, chunks: &[ShardChunk]) -> Result<Vec<ShardReport>, ProfileError> {
        let started = Instant::now();
        let reports = self.inner.execute_round(chunks)?;
        let items: u64 = chunks
            .iter()
            .flat_map(|c| c.batches.iter())
            .map(|b| u64::from(b.samples))
            .sum();
        self.metrics
            .round_completed(started.elapsed().as_millis() as u64, items);
        Ok(reports)
    }

    fn profile_shape(&mut self, shape: IterationShape) -> Result<IterationProfile, ProfileError> {
        self.inner.profile_shape(shape)
    }

    fn seed_shapes(&mut self, shapes: &[IterationProfile]) {
        self.inner.seed_shapes(shapes);
    }
}

fn finalize_cancel(shared: &Shared, id: &str) {
    let _ = std::fs::remove_file(shared.spec_path(id));
    let _ = std::fs::remove_file(shared.ckpt_path(id));
    shared.set_state(id, JobState::Cancelled, "cancelled");
}

fn requeue(shared: &Shared, id: &str) {
    let (class, client) = {
        let jobs = shared.jobs.lock_recover();
        match jobs.get(id) {
            Some(entry) => (entry.class, entry.client.clone()),
            None => return,
        }
    };
    shared.sched.requeue(id, class, &client);
}

fn runner_loop(shared: Arc<Shared>) {
    loop {
        if shared.is_draining() {
            return;
        }
        let Some(id) = shared.sched.pop_timeout(Duration::from_millis(200)) else {
            continue;
        };
        // A panic inside a job (a poisoned lock, a shard-thread panic)
        // must cost that job, not the runner slot: an unwinding runner
        // thread would silently halve the daemon's capacity and leave
        // the job stuck in Running with waiters blocked forever.
        let outcome =
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| run_job(&shared, &id)));
        if outcome.is_err() {
            eprintln!("seqpoint serve: job `{id}` panicked; marking it failed");
            let _ = write_atomic(&shared.error_path(&id), "internal panic while running");
            shared.set_state(&id, JobState::Failed, "internal panic while running");
        }
    }
}

fn respond(stream: &mut Stream, metrics: &ConnMetrics, response: &Response) -> std::io::Result<()> {
    let mut line = encode_frame(response);
    line.push('\n');
    metrics.record_out(line.len() as u64);
    stream.write_all(line.as_bytes())
}

/// How long an unauthenticated TCP connection gets to deliver its
/// `Hello` line before the server reclaims the handler thread.
const AUTH_DEADLINE: Duration = Duration::from_secs(10);

/// Longest `Hello` line an unauthenticated connection may send — ample
/// for any real handshake, small enough that a peer streaming garbage
/// without newlines cannot grow the read buffer unboundedly.
const AUTH_LINE_CAP: u64 = 8 * 1024;

/// The auth gate on a just-accepted TCP connection: the **first** line
/// must be a valid `Hello` with the right version and token, read under
/// [`AUTH_DEADLINE`] and capped at [`AUTH_LINE_CAP`] bytes. Anything
/// else — garbage, a blank line, a non-`Hello` frame, a wrong token —
/// gets at most one error line and the connection is closed, before any
/// job state is touched. Returns the reader back on success, plus the
/// client identity the `Hello` announced (if any).
fn authenticate(
    shared: &Shared,
    stream: &mut Stream,
    reader: BufReader<Stream>,
    metrics: &ConnMetrics,
) -> Option<(BufReader<Stream>, Option<String>)> {
    if stream.set_read_timeout(Some(AUTH_DEADLINE)).is_err() {
        return None;
    }
    let mut limited = reader.take(AUTH_LINE_CAP);
    let mut line = String::new();
    match limited.read_line(&mut line) {
        // Silent, vanished, over-long, or empty: nothing is owed.
        Ok(0) | Err(_) => return None,
        Ok(_) => {}
    }
    let reader = limited.into_inner();
    // Counted pre-identity (global + connection scope only): client
    // attribution starts once the Hello below actually authenticates,
    // so an unauthenticated peer cannot mint per-client label series.
    metrics.record_in(line.len() as u64);
    let refuse = |stream: &mut Stream, reason: &str| {
        let _ = respond(
            stream,
            metrics,
            &Response::Error {
                reason: reason.to_owned(),
            },
        );
        None
    };
    let Ok(Request::Hello {
        version,
        token,
        client,
    }) = decode_frame::<Request>(&line)
    else {
        return refuse(stream, "authentication required");
    };
    if version != PROTOCOL_VERSION {
        return refuse(
            stream,
            &format!(
                "protocol version mismatch: server speaks {PROTOCOL_VERSION}, \
                 client sent {version}"
            ),
        );
    }
    let presented = token.as_deref().unwrap_or("");
    let expected = shared.config.token.as_deref().unwrap_or("");
    if expected.is_empty() || !token_matches(expected, presented) {
        return refuse(stream, "invalid or missing token");
    }
    // Authenticated: lift the handshake deadline (clients legitimately
    // idle between requests) and welcome the peer.
    if stream.set_read_timeout(None).is_err() {
        return None;
    }
    if respond(
        stream,
        metrics,
        &Response::Welcome {
            version: PROTOCOL_VERSION,
        },
    )
    .is_err()
    {
        return None;
    }
    if let Some(client) = &client {
        metrics.set_client(client);
    }
    Some((reader, client))
}

fn handle_connection(shared: Arc<Shared>, mut stream: Stream, requires_auth: bool) {
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    // Wire accounting for this connection; dropping the handle (every
    // return path) retires the per-connection series.
    let conn_metrics = shared.metrics.conn_opened();
    let mut reader = BufReader::new(read_half);
    // The identity this connection submits jobs under: set by the TCP
    // auth handshake, or by any `Hello` with a client tag (Unix-socket
    // clients use `submit --client`).
    let mut conn_client: Option<String> = None;
    if requires_auth {
        match authenticate(&shared, &mut stream, reader, &conn_metrics) {
            Some((r, client)) => {
                reader = r;
                conn_client = client;
            }
            None => return,
        }
    }
    let mut line = String::new();
    loop {
        line.clear();
        match reader.read_line(&mut line) {
            Ok(0) | Err(_) => return,
            Ok(_) => {}
        }
        if line.trim().is_empty() {
            continue;
        }
        conn_metrics.record_in(line.len() as u64);
        let request = match decode_frame::<Request>(&line) {
            Ok(request) => request,
            Err(e) => {
                let _ = respond(
                    &mut stream,
                    &conn_metrics,
                    &Response::Error {
                        reason: format!("bad request: {e}"),
                    },
                );
                continue;
            }
        };
        let response = match request {
            // A Hello on an already-authenticated (or Unix) connection:
            // version check, adopt the announced identity, welcome.
            Request::Hello {
                version, client, ..
            } => {
                if version != PROTOCOL_VERSION {
                    let _ = respond(
                        &mut stream,
                        &conn_metrics,
                        &Response::Error {
                            reason: format!(
                                "protocol version mismatch: server speaks {PROTOCOL_VERSION}, \
                                 client sent {version}"
                            ),
                        },
                    );
                    return;
                }
                if let Some(client) = client {
                    conn_metrics.set_client(&client);
                    conn_client = Some(client);
                }
                Response::Welcome {
                    version: PROTOCOL_VERSION,
                }
            }
            Request::Register { pid } | Request::WorkerHello { pid } => {
                // Hand the connection to the fleet pool; nothing else
                // arrives on it from the worker until it is leased, so
                // the handler's read buffer is empty and can be dropped.
                if !shared.pool.register(stream, pid) {
                    // draining: dropping the stream tells the worker to
                    // exit.
                }
                return;
            }
            Request::Ping => {
                let queued = shared.sched.len() as u64;
                let running = {
                    let jobs = shared.jobs.lock_recover();
                    jobs.values()
                        .filter(|e| e.state == JobState::Running)
                        .count() as u64
                };
                let (cache_hits, cache_entries) = shared.cache.stats();
                let (fleet_leases, fleet_reclaimed) = shared.pool.fleet_stats();
                Response::Pong {
                    version: PROTOCOL_VERSION,
                    queued,
                    running,
                    workers: shared.worker_pids.lock_recover().clone(),
                    cache_hits,
                    cache_entries,
                    fleet_idle: shared.pool.idle_pids(),
                    fleet_leases,
                    fleet_reclaimed,
                }
            }
            Request::Metrics => Response::Metrics {
                text: metrics_text(&shared),
            },
            Request::Submit { job, spec } => submit(&shared, job, spec, &conn_client),
            Request::Status { job } => status(&shared, &job),
            Request::Result { job, wait } => {
                if wait {
                    // Streams its own heartbeat + final frames.
                    if result_wait(&shared, &mut stream, &conn_metrics, &job).is_err() {
                        return;
                    }
                    continue;
                }
                result(&shared, &job)
            }
            Request::Cancel { job } => cancel(&shared, &job),
            Request::Shutdown => {
                let _ = respond(&mut stream, &conn_metrics, &Response::ShuttingDown);
                shared.start_drain();
                return;
            }
        };
        if respond(&mut stream, &conn_metrics, &response).is_err() {
            return;
        }
    }
}

/// Render the live metrics exposition: sample the point-in-time gauges
/// owned by other subsystems (running jobs, cache entries, idle fleet)
/// and hand them to the registry's renderer — so the wire frame, the
/// `submit --stats` view, and the scrape endpoint all serve the
/// identical text.
fn metrics_text(shared: &Shared) -> String {
    let jobs_running = {
        let jobs = shared.jobs.lock_recover();
        jobs.values()
            .filter(|e| e.state == JobState::Running)
            .count() as u64
    };
    let (_, cache_entries) = shared.cache.stats();
    let fleet_idle = shared.pool.idle_pids().len() as u64;
    shared.metrics.render(&RenderGauges {
        jobs_running,
        cache_entries,
        fleet_idle,
    })
}

/// Accept loop for the plaintext metrics endpoint: one short-lived
/// connection per scrape, polled nonblocking so a drain is noticed
/// within one poll interval, exactly like the RPC accept loop.
fn metrics_scrape_loop(shared: &Arc<Shared>, listener: &TcpListener) {
    while !shared.is_draining() {
        match listener.accept() {
            Ok((stream, _)) => {
                // A failed scrape (slow peer, vanished peer) costs that
                // scrape only.
                let _ = serve_scrape(shared, stream);
            }
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::Interrupted =>
            {
                std::thread::sleep(Duration::from_millis(15));
            }
            Err(e) => {
                eprintln!("seqpoint serve: metrics accept failed: {e}");
                std::thread::sleep(Duration::from_millis(15));
            }
        }
    }
}

/// Answer one scrape connection: any request whose first line is a
/// `GET` gets the full text exposition as an HTTP/1.0 response;
/// anything else is refused with a 400. Hand-rolled on purpose — the
/// daemon takes no HTTP dependency for a protocol this small.
fn serve_scrape(shared: &Shared, mut stream: std::net::TcpStream) -> std::io::Result<()> {
    // The accepted socket must block (with a bound) so one slow or
    // silent scraper cannot wedge the endpoint thread forever.
    stream.set_nonblocking(false)?;
    stream.set_read_timeout(Some(Duration::from_secs(2)))?;
    stream.set_write_timeout(Some(Duration::from_secs(2)))?;
    let mut line = String::new();
    let mut limited = BufReader::new(stream.try_clone()?).take(AUTH_LINE_CAP);
    let _ = limited.read_line(&mut line);
    let (status, body) = if line.starts_with("GET ") {
        ("200 OK", metrics_text(shared))
    } else {
        (
            "400 Bad Request",
            "seqpoint metrics endpoint: send `GET / HTTP/1.0`\n".to_owned(),
        )
    };
    let head = format!(
        "HTTP/1.0 {status}\r\nContent-Type: text/plain; charset=utf-8\r\n\
         Content-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(body.as_bytes())
}

/// Spawn-and-respawn supervision of one subprocess worker slot. The
/// worker population stays at the configured size until drain; a killed
/// worker (the chaos-test case) is replaced within ~100 ms.
fn supervise_worker(shared: Arc<Shared>) {
    let exe = shared
        .config
        .worker_exe
        .clone()
        .or_else(|| std::env::current_exe().ok());
    let Some(exe) = exe else {
        eprintln!("seqpoint serve: cannot locate worker executable");
        return;
    };
    while !shared.is_draining() {
        let child = Command::new(&exe)
            .arg("worker")
            .arg("--socket")
            .arg(&shared.config.socket)
            .stdin(Stdio::null())
            .stdout(Stdio::null())
            .stderr(Stdio::null())
            .spawn();
        let mut child = match child {
            Ok(child) => child,
            Err(e) => {
                eprintln!("seqpoint serve: spawning worker failed: {e}");
                std::thread::sleep(Duration::from_millis(500));
                continue;
            }
        };
        let pid = u64::from(child.id());
        shared.worker_pids.lock_recover().push(pid);
        loop {
            match child.try_wait() {
                Ok(Some(_)) => break,
                Ok(None) => {
                    if shared.is_draining() {
                        let _ = child.kill();
                        let _ = child.wait();
                        break;
                    }
                    std::thread::sleep(Duration::from_millis(50));
                }
                Err(_) => break,
            }
        }
        shared.worker_pids.lock_recover().retain(|p| *p != pid);
        if !shared.is_draining() {
            std::thread::sleep(Duration::from_millis(100));
        }
    }
}

/// Run the daemon until a drain (SIGTERM, SIGINT, or a
/// [`Request::Shutdown`] line). In-flight jobs are checkpointed before
/// this returns; re-invoking with the same configuration resumes them.
///
/// # Errors
///
/// [`ServiceError::Usage`] for a degenerate configuration;
/// [`ServiceError::Io`] when the state dir or socket cannot be set up.
pub fn serve(config: ServeConfig) -> Result<(), ServiceError> {
    if config.job_slots == 0 || config.queue_cap == 0 {
        return Err(ServiceError::Usage(
            "job_slots and queue_cap must be positive".to_owned(),
        ));
    }
    // `Subprocess { workers: 0 }` is legitimate now: it means "spawn no
    // local workers; externally started `seqpoint worker --connect`
    // processes will register over the socket" — the multi-node shape.
    if config.wait_heartbeat.is_zero() {
        return Err(ServiceError::Usage(
            "wait_heartbeat must be positive (a zero interval would spin)".to_owned(),
        ));
    }
    if config.retain_jobs == Some(0) {
        return Err(ServiceError::Usage(
            "retain_jobs must keep at least 1 terminal job (a waiting client \
             must be able to read the result it just produced)"
                .to_owned(),
        ));
    }
    if config.retain_for == Some(Duration::ZERO) {
        return Err(ServiceError::Usage(
            "retain_for must be a positive duration (use None to retain \
             terminal jobs indefinitely)"
                .to_owned(),
        ));
    }
    if config.client_quota == Some(0) {
        return Err(ServiceError::Usage(
            "client quota must admit at least 1 job per client".to_owned(),
        ));
    }
    if config.tcp.is_some() && config.token.as_deref().is_none_or(str::is_empty) {
        return Err(ServiceError::Usage(
            "a TCP listener requires a token (--token-file): every TCP \
             connection must authenticate"
                .to_owned(),
        ));
    }
    std::fs::create_dir_all(&config.state_dir)
        .map_err(|e| ServiceError::io("creating state dir", &e))?;
    // Two daemons must never share a state dir (they would race on the
    // same checkpoint/result files and job ids), regardless of which
    // sockets they listen on. A pidfile in the state dir is the claim:
    // refuse when its owner is still alive, replace it when stale.
    let pidfile = config.state_dir.join("serve.pid");
    if let Ok(text) = std::fs::read_to_string(&pidfile) {
        let owner = text.trim().parse::<u32>().ok();
        let alive = owner.is_some_and(|pid| {
            pid != std::process::id() && Path::new(&format!("/proc/{pid}")).exists()
        });
        if alive {
            return Err(ServiceError::Usage(format!(
                "state dir {} is owned by a live server (pid {})",
                config.state_dir.display(),
                owner.unwrap_or(0)
            )));
        }
    }
    write_atomic(&pidfile, &std::process::id().to_string())?;
    // A crash never removed the published TCP address; clear it before
    // binding so nothing can discover a stale (possibly reused) port.
    // Rewritten below once the new listener is actually bound. Same for
    // the published metrics address.
    let _ = std::fs::remove_file(config.state_dir.join("serve.tcp"));
    let _ = std::fs::remove_file(config.state_dir.join("serve.metrics"));
    // A stale socket file from a previous (killed) server blocks bind —
    // but a *live* server must not be hijacked either. Probe first; only
    // a dead socket (connection refused / not found) is removed.
    if config.socket.exists() {
        if UnixStream::connect(&config.socket).is_ok() {
            return Err(ServiceError::Usage(format!(
                "a server is already listening on {}",
                config.socket.display()
            )));
        }
        let _ = std::fs::remove_file(&config.socket);
    }
    let unix_listener = UnixListener::bind(&config.socket)
        .map_err(|e| ServiceError::io(format!("binding {}", config.socket.display()), &e))?;
    let mut listeners = vec![Listener::Unix(unix_listener)];
    let mut tcp_bound = None;
    if let Some(addr) = &config.tcp {
        let tcp = TcpListener::bind(addr.as_str())
            .map_err(|e| ServiceError::io(format!("binding tcp {addr}"), &e))?;
        let listener = Listener::Tcp(tcp);
        // Publish the *actual* bound address (`:0` requests an ephemeral
        // port) so scripts and remote workers can find it.
        if let Some(local) = listener.tcp_addr() {
            write_atomic(&config.state_dir.join("serve.tcp"), &local.to_string())?;
            tcp_bound = Some(local);
        }
        listeners.push(listener);
    }
    for listener in &listeners {
        listener
            .set_nonblocking(true)
            .map_err(|e| ServiceError::io("setting nonblocking", &e))?;
    }
    // The optional metrics scrape endpoint gets its own TCP listener —
    // plaintext, read-only — with the actual bound address published
    // like the RPC one, so scripts can discover an ephemeral port.
    let mut metrics_listener = None;
    let mut metrics_bound = None;
    if let Some(addr) = &config.metrics_addr {
        let listener = TcpListener::bind(addr.as_str())
            .map_err(|e| ServiceError::io(format!("binding metrics {addr}"), &e))?;
        listener
            .set_nonblocking(true)
            .map_err(|e| ServiceError::io("setting nonblocking", &e))?;
        let local = listener
            .local_addr()
            .map_err(|e| ServiceError::io("reading metrics listener address", &e))?;
        write_atomic(&config.state_dir.join("serve.metrics"), &local.to_string())?;
        metrics_bound = Some(local);
        metrics_listener = Some(listener);
    }
    sig::TERM.store(false, Ordering::Relaxed);
    sig::install();

    let metrics = MetricsRegistry::new();
    let sched = Scheduler::new(config.fair, config.queue_cap);
    sched.attach_metrics(Arc::clone(&metrics));
    let pool = WorkerPool::new();
    pool.attach_metrics(Arc::clone(&metrics));
    let shared = Arc::new(Shared {
        config,
        jobs: Mutex::new(HashMap::new()),
        jobs_cv: Condvar::new(),
        sched,
        cache: ResultCache::new(),
        draining: AtomicBool::new(false),
        next_job: AtomicU64::new(1),
        finish_counter: AtomicU64::new(0),
        pool,
        worker_pids: Mutex::new(Vec::new()),
        metrics,
    });

    // Recovery: reload finished jobs, requeue unfinished primaries
    // (with their recovered class/client identity).
    let recovered = recover(&shared)?;
    for id in &recovered {
        requeue(&shared, id);
    }
    let tcp_note = match tcp_bound {
        Some(addr) => format!(" + tcp {addr} (token auth)"),
        None => String::new(),
    };
    let metrics_note = match metrics_bound {
        Some(addr) => format!(" + metrics {addr}"),
        None => String::new(),
    };
    eprintln!(
        "seqpoint serve: listening on {}{tcp_note}{metrics_note} \
         ({} job slot(s), queue cap {}, {} recovered)",
        shared.config.socket.display(),
        shared.config.job_slots,
        shared.config.queue_cap,
        recovered.len()
    );

    let mut supervisors = Vec::new();
    if let Placement::Subprocess { workers } = shared.config.placement {
        for _ in 0..workers {
            let shared = shared.clone();
            supervisors.push(std::thread::spawn(move || supervise_worker(shared)));
        }
    }
    let mut runners = Vec::new();
    for _ in 0..shared.config.job_slots {
        let shared = shared.clone();
        runners.push(std::thread::spawn(move || runner_loop(shared)));
    }
    let mut scraper = None;
    if let Some(listener) = metrics_listener {
        let shared = shared.clone();
        scraper = Some(std::thread::spawn(move || {
            metrics_scrape_loop(&shared, &listener);
        }));
    }

    // Accept loop: every listener nonblocking, polled in turn, so
    // SIGTERM is noticed promptly regardless of EINTR semantics and one
    // transport cannot starve the other.
    let mut last_ttl_sweep = Instant::now();
    loop {
        if shared.is_draining() {
            break;
        }
        let mut accepted_any = false;
        for listener in &listeners {
            match listener.accept() {
                Ok(stream) => {
                    accepted_any = true;
                    let requires_auth = listener.requires_auth();
                    let shared = shared.clone();
                    std::thread::spawn(move || handle_connection(shared, stream, requires_auth));
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {}
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(e) => {
                    eprintln!("seqpoint serve: accept failed: {e}");
                }
            }
        }
        // The TTL bound fires by clock, not by event, so the accept
        // loop doubles as its sweeper: a terminal job is evicted within
        // about a second of its age crossing `retain_for` even when no
        // new completion triggers the GC.
        if shared.config.retain_for.is_some() && last_ttl_sweep.elapsed() >= Duration::from_secs(1)
        {
            last_ttl_sweep = Instant::now();
            let mut jobs = shared.jobs.lock_recover();
            shared.gc_terminal(&mut jobs);
        }
        if !accepted_any {
            std::thread::sleep(Duration::from_millis(15));
        }
    }

    // Drain: checkpoint in-flight jobs (runners pause at the next round
    // boundary), release workers, persist everything.
    shared.start_drain();
    eprintln!("seqpoint serve: draining (in-flight jobs checkpoint and resume on restart)");
    for runner in runners {
        let _ = runner.join();
    }
    for supervisor in supervisors {
        let _ = supervisor.join();
    }
    if let Some(scraper) = scraper {
        let _ = scraper.join();
    }
    let _ = std::fs::remove_file(&shared.config.socket);
    let _ = std::fs::remove_file(shared.config.state_dir.join("serve.pid"));
    let _ = std::fs::remove_file(shared.config.state_dir.join("serve.tcp"));
    let _ = std::fs::remove_file(shared.config.state_dir.join("serve.metrics"));
    let paused = {
        let jobs = shared.jobs.lock_recover();
        jobs.values().filter(|e| !e.state.is_terminal()).count()
    };
    eprintln!("seqpoint serve: drained ({paused} unfinished job(s) checkpointed)");
    Ok(())
}
