//! Client side of the service protocol: what `seqpoint submit` (and the
//! tests) use to talk to a running `seqpoint serve`, over a Unix socket
//! or TCP.
//!
//! Every connection carries read/write timeouts (generous by default,
//! configurable via [`ClientOptions::io_timeout`]) so a stalled or
//! wedged daemon fails a request with an error instead of hanging the
//! caller forever. TCP connections (and any connection given a token)
//! open with a `Hello` handshake that presents the shared secret and
//! checks protocol versions before the first real request.

use std::io::{BufRead, BufReader, Write};
use std::path::Path;
use std::time::{Duration, Instant};

use seqpoint_core::protocol::{decode_frame, encode_frame, JobSpec, Request, Response};

use crate::transport::{client_handshake, Endpoint, Stream};
use crate::ServiceError;

/// How a [`Client`] connects: credentials and patience.
#[derive(Debug, Clone)]
pub struct ClientOptions {
    /// Shared-secret token presented in the `Hello` handshake. Required
    /// for TCP endpoints (the server refuses unauthenticated TCP
    /// connections); optional and ignored by the server on Unix
    /// sockets.
    pub token: Option<String>,
    /// Per-operation socket read/write timeout. `None` blocks forever
    /// (the pre-timeout behavior). The default is deliberately generous
    /// — a blocking `wait_result` legitimately idles until the job
    /// finishes — but finite, so a wedged daemon cannot hang a script
    /// indefinitely.
    pub io_timeout: Option<Duration>,
    /// Client identity announced in the `Hello` handshake. The server
    /// accounts every submission on this connection to it (per-client
    /// fairness and quotas); setting it forces a handshake even on a
    /// Unix socket.
    pub client: Option<String>,
}

impl Default for ClientOptions {
    fn default() -> Self {
        ClientOptions {
            token: None,
            io_timeout: Some(Duration::from_secs(600)),
            client: None,
        }
    }
}

impl ClientOptions {
    /// Options with a specific I/O timeout (`None` = block forever).
    pub fn with_io_timeout(mut self, timeout: Option<Duration>) -> Self {
        self.io_timeout = timeout;
        self
    }

    /// Options presenting a token in the handshake.
    pub fn with_token(mut self, token: impl Into<String>) -> Self {
        self.token = Some(token.into());
        self
    }

    /// Options announcing a client identity in the handshake.
    pub fn with_client(mut self, client: impl Into<String>) -> Self {
        self.client = Some(client.into());
        self
    }
}

/// A connected protocol client (one request in flight at a time).
pub struct Client {
    writer: Stream,
    reader: BufReader<Stream>,
}

impl std::fmt::Debug for Client {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Client")
            .field("stream", &self.writer)
            .finish()
    }
}

impl Client {
    /// Connect to a server's Unix socket with default options — the
    /// local, tokenless fast path.
    ///
    /// # Errors
    ///
    /// [`ServiceError::Io`] when the socket does not exist or refuses.
    pub fn connect(socket: &Path) -> Result<Self, ServiceError> {
        Client::open(&Endpoint::unix(socket), &ClientOptions::default())
    }

    /// Connect to any endpoint, run the `Hello` handshake where one is
    /// called for (TCP always; Unix when a token is supplied), and
    /// return the ready client.
    ///
    /// # Errors
    ///
    /// [`ServiceError::Io`] on connect/handshake transport failures,
    /// [`ServiceError::Auth`] when the server refuses the token or the
    /// protocol versions mismatch.
    pub fn open(endpoint: &Endpoint, options: &ClientOptions) -> Result<Self, ServiceError> {
        let stream = endpoint
            .connect_timeout(options.io_timeout)
            .map_err(|e| ServiceError::io(format!("connecting to {endpoint}"), &e))?;
        stream
            .set_read_timeout(options.io_timeout)
            .map_err(|e| ServiceError::io("setting read timeout", &e))?;
        stream
            .set_write_timeout(options.io_timeout)
            .map_err(|e| ServiceError::io("setting write timeout", &e))?;
        let reader = BufReader::new(
            stream
                .try_clone()
                .map_err(|e| ServiceError::io("cloning socket", &e))?,
        );
        let mut client = Client {
            writer: stream,
            reader,
        };
        if endpoint.is_tcp() || options.token.is_some() || options.client.is_some() {
            client_handshake(
                &mut client.writer,
                &mut client.reader,
                options.token.as_deref(),
                options.client.as_deref(),
            )?;
        }
        Ok(client)
    }

    /// Connect to a Unix socket, retrying until the server answers a
    /// ping or `timeout` elapses — for scripts that just started the
    /// daemon.
    ///
    /// # Errors
    ///
    /// [`ServiceError::Io`] when no server comes up in time; the message
    /// carries the last underlying failure, not a bare "timed out".
    pub fn connect_ready(socket: &Path, timeout: Duration) -> Result<Self, ServiceError> {
        Client::open_ready(&Endpoint::unix(socket), &ClientOptions::default(), timeout)
    }

    /// [`Client::open`] with retry: keep attempting connect + ping until
    /// the server answers or `timeout` elapses. The deadline is checked
    /// *before* each attempt (no attempt-sized overshoot), each
    /// attempt's socket timeout is clamped to the time remaining (a
    /// wedged server cannot pin the loop past its deadline), and the
    /// error reports the last real failure.
    ///
    /// # Errors
    ///
    /// [`ServiceError::Auth`] immediately on a refused token (retrying
    /// cannot fix credentials); [`ServiceError::Io`] with the last
    /// underlying error once the deadline passes.
    pub fn open_ready(
        endpoint: &Endpoint,
        options: &ClientOptions,
        timeout: Duration,
    ) -> Result<Self, ServiceError> {
        let deadline = Instant::now() + timeout;
        let mut last_error: Option<ServiceError> = None;
        loop {
            // At least one attempt always runs; after that, never start
            // another past the deadline.
            if let Some(err) = &last_error {
                if Instant::now() >= deadline {
                    return Err(ServiceError::Io {
                        context: format!("waiting for server at {endpoint}"),
                        message: format!("timed out after {timeout:?}; last error: {err}"),
                    });
                }
            }
            // Cap this attempt's socket patience at the time remaining,
            // so one wedged connect/ping cannot blow through the
            // deadline.
            let remaining = deadline
                .saturating_duration_since(Instant::now())
                .max(Duration::from_millis(50));
            let attempt_options = ClientOptions {
                token: options.token.clone(),
                io_timeout: Some(match options.io_timeout {
                    Some(limit) => limit.min(remaining),
                    None => remaining,
                }),
                client: options.client.clone(),
            };
            match Client::open(endpoint, &attempt_options) {
                Ok(mut client) => match client.request(&Request::Ping) {
                    Ok(Response::Pong { .. }) => {
                        // Restore the caller's configured patience for
                        // the client's working life.
                        let _ = client.writer.set_read_timeout(options.io_timeout);
                        let _ = client.writer.set_write_timeout(options.io_timeout);
                        return Ok(client);
                    }
                    Ok(other) => {
                        last_error = Some(ServiceError::Protocol(format!(
                            "unexpected pong: {other:?}"
                        )));
                    }
                    Err(e) => last_error = Some(e),
                },
                // A refused token will not become valid by retrying.
                Err(ServiceError::Auth(reason)) => return Err(ServiceError::Auth(reason)),
                Err(e) => last_error = Some(e),
            }
            std::thread::sleep(Duration::from_millis(50));
        }
    }

    /// Send one request and read its response line.
    ///
    /// # Errors
    ///
    /// [`ServiceError::Io`] on a broken or timed-out connection,
    /// [`ServiceError::Protocol`] on an undecodable response.
    pub fn request(&mut self, request: &Request) -> Result<Response, ServiceError> {
        self.send(request)?;
        self.read_response()
    }

    fn send(&mut self, request: &Request) -> Result<(), ServiceError> {
        let mut line = encode_frame(request);
        line.push('\n');
        self.writer
            .write_all(line.as_bytes())
            .map_err(|e| ServiceError::io("sending request", &e))
    }

    fn read_response(&mut self) -> Result<Response, ServiceError> {
        let mut reply = String::new();
        let n = self
            .reader
            .read_line(&mut reply)
            .map_err(|e| ServiceError::io("reading response", &e))?;
        if n == 0 {
            return Err(ServiceError::Io {
                context: "reading response".to_owned(),
                message: "server closed the connection".to_owned(),
            });
        }
        decode_frame(&reply).map_err(|e| ServiceError::Protocol(e.to_string()))
    }

    /// Submit a job and return its id.
    ///
    /// # Errors
    ///
    /// [`ServiceError::Job`] when the server rejects the submission
    /// (backpressure, duplicate id, bad spec).
    pub fn submit(&mut self, job: Option<String>, spec: JobSpec) -> Result<String, ServiceError> {
        match self.request(&Request::Submit { job, spec })? {
            Response::Submitted { job } => Ok(job),
            Response::Rejected { reason } | Response::Error { reason } => Err(ServiceError::Job {
                job: "<submit>".to_owned(),
                message: reason,
            }),
            other => Err(ServiceError::Protocol(format!(
                "unexpected submit response: {other:?}"
            ))),
        }
    }

    /// Block until the job is terminal and return its rendered output.
    ///
    /// While the job runs, the server emits heartbeat `Status` frames
    /// (every [`crate::ServeConfig::wait_heartbeat`]) that this loop
    /// skips — so `io_timeout` bounds connection liveness, and a
    /// healthy job of any duration never trips it.
    ///
    /// # Errors
    ///
    /// [`ServiceError::Job`] when the job failed, was cancelled, or the
    /// server drained mid-wait.
    pub fn wait_result(&mut self, job: &str) -> Result<String, ServiceError> {
        self.send(&Request::Result {
            job: job.to_owned(),
            wait: true,
        })?;
        let response = loop {
            match self.read_response()? {
                // Heartbeat: the job is alive, keep waiting.
                Response::Status { .. } => continue,
                other => break other,
            }
        };
        match response {
            Response::Result { output, .. } => Ok(output),
            Response::Failed { reason, .. } => Err(ServiceError::Job {
                job: job.to_owned(),
                message: format!("failed: {reason}"),
            }),
            Response::Cancelled { .. } => Err(ServiceError::Job {
                job: job.to_owned(),
                message: "cancelled".to_owned(),
            }),
            Response::Error { reason } => Err(ServiceError::Job {
                job: job.to_owned(),
                message: reason,
            }),
            other => Err(ServiceError::Protocol(format!(
                "unexpected result response: {other:?}"
            ))),
        }
    }
}
