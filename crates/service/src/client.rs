//! Client side of the service protocol: what `seqpoint submit` (and the
//! tests) use to talk to a running `seqpoint serve`.

use std::io::{BufRead, BufReader, Write};
use std::os::unix::net::UnixStream;
use std::path::Path;
use std::time::{Duration, Instant};

use seqpoint_core::protocol::{decode_frame, encode_frame, JobSpec, Request, Response};

use crate::ServiceError;

/// A connected protocol client (one request in flight at a time).
pub struct Client {
    writer: UnixStream,
    reader: BufReader<UnixStream>,
}

impl Client {
    /// Connect to a server socket.
    ///
    /// # Errors
    ///
    /// [`ServiceError::Io`] when the socket does not exist or refuses.
    pub fn connect(socket: &Path) -> Result<Self, ServiceError> {
        let stream = UnixStream::connect(socket)
            .map_err(|e| ServiceError::io(format!("connecting to {}", socket.display()), &e))?;
        let reader = BufReader::new(
            stream
                .try_clone()
                .map_err(|e| ServiceError::io("cloning socket", &e))?,
        );
        Ok(Client {
            writer: stream,
            reader,
        })
    }

    /// Connect, retrying until the server answers a ping or `timeout`
    /// elapses — for scripts that just started the daemon.
    ///
    /// # Errors
    ///
    /// [`ServiceError::Io`] when no server comes up in time.
    pub fn connect_ready(socket: &Path, timeout: Duration) -> Result<Self, ServiceError> {
        let deadline = Instant::now() + timeout;
        loop {
            if let Ok(mut client) = Client::connect(socket) {
                if matches!(client.request(&Request::Ping), Ok(Response::Pong { .. })) {
                    return Ok(client);
                }
            }
            if Instant::now() >= deadline {
                return Err(ServiceError::Io {
                    context: format!("waiting for server at {}", socket.display()),
                    message: "timed out".to_owned(),
                });
            }
            std::thread::sleep(Duration::from_millis(50));
        }
    }

    /// Send one request and read its response line.
    ///
    /// # Errors
    ///
    /// [`ServiceError::Io`] on a broken connection,
    /// [`ServiceError::Protocol`] on an undecodable response.
    pub fn request(&mut self, request: &Request) -> Result<Response, ServiceError> {
        let mut line = encode_frame(request);
        line.push('\n');
        self.writer
            .write_all(line.as_bytes())
            .map_err(|e| ServiceError::io("sending request", &e))?;
        let mut reply = String::new();
        let n = self
            .reader
            .read_line(&mut reply)
            .map_err(|e| ServiceError::io("reading response", &e))?;
        if n == 0 {
            return Err(ServiceError::Io {
                context: "reading response".to_owned(),
                message: "server closed the connection".to_owned(),
            });
        }
        decode_frame(&reply).map_err(|e| ServiceError::Protocol(e.to_string()))
    }

    /// Submit a job and return its id.
    ///
    /// # Errors
    ///
    /// [`ServiceError::Job`] when the server rejects the submission
    /// (backpressure, duplicate id, bad spec).
    pub fn submit(&mut self, job: Option<String>, spec: JobSpec) -> Result<String, ServiceError> {
        match self.request(&Request::Submit { job, spec })? {
            Response::Submitted { job } => Ok(job),
            Response::Rejected { reason } | Response::Error { reason } => Err(ServiceError::Job {
                job: "<submit>".to_owned(),
                message: reason,
            }),
            other => Err(ServiceError::Protocol(format!(
                "unexpected submit response: {other:?}"
            ))),
        }
    }

    /// Block until the job is terminal and return its rendered output.
    ///
    /// # Errors
    ///
    /// [`ServiceError::Job`] when the job failed, was cancelled, or the
    /// server drained mid-wait.
    pub fn wait_result(&mut self, job: &str) -> Result<String, ServiceError> {
        match self.request(&Request::Result {
            job: job.to_owned(),
            wait: true,
        })? {
            Response::Result { output, .. } => Ok(output),
            Response::Failed { reason, .. } => Err(ServiceError::Job {
                job: job.to_owned(),
                message: format!("failed: {reason}"),
            }),
            Response::Cancelled { .. } => Err(ServiceError::Job {
                job: job.to_owned(),
                message: "cancelled".to_owned(),
            }),
            Response::Error { reason } => Err(ServiceError::Job {
                job: job.to_owned(),
                message: reason,
            }),
            other => Err(ServiceError::Protocol(format!(
                "unexpected result response: {other:?}"
            ))),
        }
    }
}
