//! Property-based invariants of the GPU timing model.
//!
//! These protect the relationships every experiment depends on: more
//! hardware never makes a kernel slower, caches never hurt, traffic never
//! drops below the compulsory footprint, and timing is deterministic.

use gpu_sim::gemm::{self, GemmShape};
use gpu_sim::{kernel_time, AutotuneTable, CacheModel, Device, GpuConfig, KernelDesc, KernelKind};
use proptest::prelude::*;

fn arb_kernel() -> impl Strategy<Value = KernelDesc> {
    (
        0u8..8,
        1.0e3..1.0e12_f64,
        0.0..1.0e9_f64,
        0.0..1.0e9_f64,
        0.0..1.0_f64,
        1.0..1.0e7_f64,
        0.0..1.0_f64,
        1.0..1.0e8_f64,
        1.0..1.0e5_f64,
        0.05..1.0_f64,
    )
        .prop_map(
            |(kind_idx, flops, reads, writes, l1_loc, l1_ws, l2_loc, l2_ws, wgs, eff)| {
                let kind = KernelKind::all()[kind_idx as usize % KernelKind::all().len()];
                KernelDesc::builder(format!("prop_{}", kind.label()), kind)
                    .flops(flops)
                    .read_bytes(reads)
                    .write_bytes(writes)
                    .l1_reuse(l1_loc, l1_ws)
                    .l2_reuse(l2_loc, l2_ws)
                    .workgroups(wgs)
                    .efficiency(eff)
                    .build()
            },
        )
}

fn arb_gemm_shape() -> impl Strategy<Value = GemmShape> {
    (1u64..8192, 1u64..8192, 1u64..65536).prop_map(|(m, k, n)| GemmShape::new(m, k, n))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn time_is_positive_and_finite(k in arb_kernel()) {
        for cfg in GpuConfig::table2_configs() {
            let t = kernel_time(&cfg, &k);
            prop_assert!(t.time_s.is_finite());
            prop_assert!(t.time_s >= cfg.launch_overhead_s());
        }
    }

    #[test]
    fn faster_clock_never_slower(k in arb_kernel()) {
        let base = GpuConfig::vega_fe();
        let slow = GpuConfig::builder("slow").gclk_ghz(0.852).build().unwrap();
        prop_assert!(kernel_time(&slow, &k).time_s >= kernel_time(&base, &k).time_s - 1e-15);
    }

    #[test]
    fn more_cus_never_slower(k in arb_kernel()) {
        let base = GpuConfig::vega_fe();
        let few = GpuConfig::builder("cu16").cu_count(16).build().unwrap();
        prop_assert!(kernel_time(&few, &k).time_s >= kernel_time(&base, &k).time_s - 1e-15);
    }

    #[test]
    fn disabling_caches_never_faster(k in arb_kernel()) {
        let base = GpuConfig::vega_fe();
        let no_l1 = GpuConfig::builder("nl1").l1_kib_per_cu(0).build().unwrap();
        let no_l2 = GpuConfig::builder("nl2").l2_mib(0).build().unwrap();
        let t = kernel_time(&base, &k).time_s;
        prop_assert!(kernel_time(&no_l1, &k).time_s >= t - 1e-15);
        prop_assert!(kernel_time(&no_l2, &k).time_s >= t - 1e-15);
    }

    #[test]
    fn dram_traffic_at_least_footprint(k in arb_kernel()) {
        for cfg in GpuConfig::table2_configs() {
            let cm = CacheModel::evaluate(&cfg, &k);
            prop_assert!(cm.dram_bytes + 1e-9 >= k.footprint_bytes());
            prop_assert!(cm.dram_bytes <= k.read_bytes() + k.write_bytes() + 1e-9);
            prop_assert!((0.0..=1.0).contains(&cm.l1_hit_rate));
            prop_assert!((0.0..=1.0).contains(&cm.l2_hit_rate));
        }
    }

    #[test]
    fn trace_time_is_sum_of_kernels(k in arb_kernel(), copies in 1usize..20) {
        let device = Device::new(GpuConfig::vega_fe());
        let trace: Vec<KernelDesc> = std::iter::repeat_with(|| k.clone()).take(copies).collect();
        let profile = device.run_trace(&trace);
        let single = device.run_kernel(&k).0.time_s;
        prop_assert!((profile.total_time_s() - single * copies as f64).abs()
                     <= 1e-9 * profile.total_time_s().max(1e-30));
        prop_assert_eq!(profile.launches(), copies as u64);
    }

    #[test]
    fn gemm_flops_preserved_by_every_variant(shape in arb_gemm_shape()) {
        for v in gemm::VARIANTS {
            let k = gemm::kernel_for(shape, "nn", v);
            prop_assert!((k.flops() - shape.flops()).abs() < 1e-6 * shape.flops().max(1.0));
            prop_assert!(k.footprint_bytes() <= k.read_bytes() + k.write_bytes() + 1e-9);
        }
    }

    #[test]
    fn autotune_is_idempotent(shape in arb_gemm_shape()) {
        let cfg = GpuConfig::vega_fe();
        let mut tuner = AutotuneTable::new();
        let first = tuner.gemm(&cfg, shape);
        let cost = tuner.tuning_cost_s();
        let second = tuner.gemm(&cfg, shape);
        prop_assert_eq!(first, second);
        prop_assert_eq!(tuner.tuning_cost_s(), cost);
    }

    #[test]
    fn gemm_runtime_monotone_in_n(m in 1u64..4096, k in 1u64..4096, n in 1u64..16384) {
        // Same layer at a longer sequence length (larger N) never runs
        // faster — the basis of the paper's Fig. 9 linearity.
        let cfg = GpuConfig::vega_fe();
        let mut tuner = AutotuneTable::new();
        let small = tuner.gemm(&cfg, GemmShape::new(m, k, n));
        let large = tuner.gemm(&cfg, GemmShape::new(m, k, n * 2));
        prop_assert!(kernel_time(&cfg, &large).time_s
                     >= kernel_time(&cfg, &small).time_s - 1e-12);
    }
}
