use std::error::Error;
use std::fmt;

/// Errors produced when constructing simulator configurations.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum SimError {
    /// A configuration field was outside its valid range.
    InvalidConfig {
        /// The offending field name.
        field: &'static str,
        /// Human-readable description of the constraint that was violated.
        reason: String,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::InvalidConfig { field, reason } => {
                write!(f, "invalid gpu config field `{field}`: {reason}")
            }
        }
    }
}

impl Error for SimError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_field() {
        let err = SimError::InvalidConfig {
            field: "gclk_ghz",
            reason: "must be positive".to_owned(),
        };
        let msg = err.to_string();
        assert!(msg.contains("gclk_ghz"));
        assert!(msg.contains("must be positive"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<SimError>();
    }
}
