use serde::{Deserialize, Serialize};

use crate::{kernel_time, GpuConfig, KernelCounters, KernelDesc, KernelTiming, TraceProfile};

/// A deterministic model of real-hardware run-to-run variation.
///
/// Real GPUs show small timing jitter (clock ramping, DVFS, contention).
/// The paper's motivation figures (Figs. 3–4) rely on the contrast between
/// CNNs — whose iteration-to-iteration variation is only this noise — and
/// SQNNs, whose variation is dominated by sequence length. Jitter lets
/// experiments show that contrast without sacrificing reproducibility:
/// the perturbation is a pure function of `(seed, kernel name, index)`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct JitterModel {
    /// Maximum relative perturbation (e.g. `0.02` for ±2%).
    pub amplitude: f64,
    /// Seed for the deterministic hash.
    pub seed: u64,
}

impl JitterModel {
    /// Create a jitter model with the given relative `amplitude` and `seed`.
    pub fn new(amplitude: f64, seed: u64) -> Self {
        JitterModel {
            amplitude: amplitude.clamp(0.0, 0.5),
            seed,
        }
    }

    /// Multiplicative factor in `[1 - amplitude, 1 + amplitude]` for the
    /// `index`-th launch of kernel `name`.
    pub fn factor(&self, name: &str, index: u64) -> f64 {
        let mut h = self.seed ^ 0x9e37_79b9_7f4a_7c15;
        for &b in name.as_bytes() {
            h = splitmix64(h ^ u64::from(b));
        }
        h = splitmix64(h ^ index);
        // Map to [0, 1) then to [1-a, 1+a].
        let unit = (h >> 11) as f64 / (1u64 << 53) as f64;
        1.0 + self.amplitude * (2.0 * unit - 1.0)
    }
}

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// A simulated GPU: a [`GpuConfig`] plus an optional [`JitterModel`].
///
/// The device executes kernel traces serially (one queue, as in the
/// paper's profiled TensorFlow/ROCm stack) and produces a [`TraceProfile`]
/// with per-kernel and total runtimes plus performance counters.
///
/// ```
/// use gpu_sim::{Device, GpuConfig, KernelDesc, KernelKind};
///
/// let device = Device::new(GpuConfig::vega_fe());
/// let trace = vec![
///     KernelDesc::builder("ew_relu_v4", KernelKind::Elementwise)
///         .flops(1e6).read_bytes(4e6).write_bytes(4e6).workgroups(512.0)
///         .build(),
/// ];
/// let profile = device.run_trace(&trace);
/// assert_eq!(profile.launches(), 1);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Device {
    config: GpuConfig,
    jitter: Option<JitterModel>,
}

impl Device {
    /// Create a noise-free device for `config`.
    pub fn new(config: GpuConfig) -> Self {
        Device {
            config,
            jitter: None,
        }
    }

    /// Create a device whose kernel times are perturbed by `jitter`.
    pub fn with_jitter(config: GpuConfig, jitter: JitterModel) -> Self {
        Device {
            config,
            jitter: Some(jitter),
        }
    }

    /// The device's hardware configuration.
    pub fn config(&self) -> &GpuConfig {
        &self.config
    }

    /// The jitter model, if any.
    pub fn jitter(&self) -> Option<&JitterModel> {
        self.jitter.as_ref()
    }

    /// Time a single kernel (without jitter), returning the timing
    /// breakdown and derived counters.
    pub fn run_kernel(&self, kernel: &KernelDesc) -> (KernelTiming, KernelCounters) {
        let timing = kernel_time(&self.config, kernel);
        let counters = KernelCounters::from_timing(&self.config, kernel, &timing);
        (timing, counters)
    }

    /// Execute a kernel trace serially and aggregate the results.
    pub fn run_trace(&self, trace: &[KernelDesc]) -> TraceProfile {
        let mut profile = TraceProfile::new();
        for (idx, kernel) in trace.iter().enumerate() {
            let (timing, counters) = self.run_kernel(kernel);
            let factor = match &self.jitter {
                Some(j) => j.factor(kernel.name(), idx as u64),
                None => 1.0,
            };
            profile.record(kernel, timing.time_s * factor, counters);
        }
        profile
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::KernelKind;

    fn trace() -> Vec<KernelDesc> {
        (0..10)
            .map(|i| {
                KernelDesc::builder(format!("k{}", i % 3), KernelKind::Elementwise)
                    .flops(1e7)
                    .read_bytes(4e6)
                    .write_bytes(4e6)
                    .workgroups(256.0)
                    .build()
            })
            .collect()
    }

    #[test]
    fn run_trace_is_deterministic() {
        let d = Device::new(GpuConfig::vega_fe());
        let t = trace();
        assert_eq!(d.run_trace(&t), d.run_trace(&t));
    }

    #[test]
    fn jitter_is_deterministic_and_bounded() {
        let j = JitterModel::new(0.02, 42);
        let t = trace();
        let d1 = Device::with_jitter(GpuConfig::vega_fe(), j);
        let d2 = Device::with_jitter(GpuConfig::vega_fe(), j);
        let p1 = d1.run_trace(&t);
        let p2 = d2.run_trace(&t);
        assert_eq!(p1, p2);
        let clean = Device::new(GpuConfig::vega_fe()).run_trace(&t);
        let ratio = p1.total_time_s() / clean.total_time_s();
        assert!(ratio > 0.98 && ratio < 1.02, "ratio = {ratio}");
        // Jitter changes the total relative to the clean run.
        assert_ne!(p1.total_time_s(), clean.total_time_s());
    }

    #[test]
    fn different_seeds_give_different_jitter() {
        let t = trace();
        let a = Device::with_jitter(GpuConfig::vega_fe(), JitterModel::new(0.02, 1)).run_trace(&t);
        let b = Device::with_jitter(GpuConfig::vega_fe(), JitterModel::new(0.02, 2)).run_trace(&t);
        assert_ne!(a.total_time_s(), b.total_time_s());
    }

    #[test]
    fn jitter_factor_range() {
        let j = JitterModel::new(0.1, 7);
        for i in 0..1000 {
            let f = j.factor("kernel", i);
            assert!((0.9..=1.1).contains(&f), "factor {f} out of range");
        }
    }

    #[test]
    fn amplitude_is_clamped() {
        let j = JitterModel::new(5.0, 0);
        assert_eq!(j.amplitude, 0.5);
        let j = JitterModel::new(-1.0, 0);
        assert_eq!(j.amplitude, 0.0);
    }

    #[test]
    fn trace_profile_counts_all_launches() {
        let d = Device::new(GpuConfig::vega_fe());
        let t = trace();
        let p = d.run_trace(&t);
        assert_eq!(p.launches(), 10);
        assert_eq!(p.unique_kernel_count(), 3);
    }
}
