use serde::{Deserialize, Serialize};

use crate::{CacheModel, GpuConfig, KernelDesc};

/// The timing breakdown of one kernel invocation on one configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct KernelTiming {
    /// Total wall time including launch overhead, in seconds.
    pub time_s: f64,
    /// Pure compute time at the achieved throughput, in seconds.
    pub compute_s: f64,
    /// L2 transfer time, in seconds (0 when the L2 is disabled).
    pub l2_s: f64,
    /// DRAM transfer time, in seconds.
    pub dram_s: f64,
    /// Fixed launch overhead, in seconds.
    pub launch_s: f64,
    /// Achieved occupancy factor in `(0, 1]`.
    pub occupancy: f64,
    /// Resolved cache behaviour (hit rates and traffic).
    pub cache: CacheModel,
}

impl KernelTiming {
    /// Whether the kernel was limited by memory rather than compute.
    pub fn memory_bound(&self) -> bool {
        self.l2_s.max(self.dram_s) > self.compute_s
    }
}

/// Occupancy model: how much of peak throughput a kernel with `workgroups`
/// independent workgroups can use on `cfg`.
///
/// A kernel needs roughly `cu_count` workgroups to put work on every CU and
/// several per CU to hide latency. Below that, throughput degrades — this
/// is why small-sequence-length iterations are insensitive to the CU count
/// (the paper's config #3 sensitivity, Figs. 13–14).
fn occupancy(cfg: &GpuConfig, workgroups: f64) -> f64 {
    let cus = f64::from(cfg.cu_count());
    let fill = (workgroups / cus).min(1.0);
    let latency_hiding = 0.6 + 0.4 * (workgroups / cfg.saturating_workgroups()).min(1.0);
    (fill * latency_hiding).clamp(0.0, 1.0)
}

/// Compute the runtime and timing breakdown of `kernel` on `cfg`.
///
/// The model is a launch-overhead-augmented roofline:
///
/// ```text
/// t = t_launch + max(t_compute, t_L2, t_DRAM)
/// ```
///
/// with `t_compute = flops / (peak · efficiency · occupancy)`, `t_L2` the
/// post-L1 traffic over the (clock-scaled) L2 bandwidth, and `t_DRAM` the
/// cache-filtered traffic over DRAM bandwidth. See [`CacheModel::evaluate`]
/// for the traffic model.
///
/// ```
/// use gpu_sim::{kernel_time, GpuConfig, KernelDesc, KernelKind};
///
/// let cfg = GpuConfig::vega_fe();
/// let k = KernelDesc::builder("ew_add_v4", KernelKind::Elementwise)
///     .flops(1e6)
///     .read_bytes(8e6)
///     .write_bytes(4e6)
///     .workgroups(4096.0)
///     .build();
/// let t = kernel_time(&cfg, &k);
/// assert!(t.memory_bound());
/// assert!(t.time_s > t.launch_s);
/// ```
pub fn kernel_time(cfg: &GpuConfig, kernel: &KernelDesc) -> KernelTiming {
    let cache = CacheModel::evaluate(cfg, kernel);
    let occ = occupancy(cfg, kernel.workgroups());
    let achieved_flops = cfg.peak_flops() * kernel.efficiency() * occ;
    let compute_s = if kernel.flops() > 0.0 {
        kernel.flops() / achieved_flops
    } else {
        0.0
    };
    // Post-L1 traffic (reads that missed L1 plus all writes) crosses the L2
    // interconnect when an L2 is present; otherwise it goes straight to DRAM.
    let post_l1 = cache.l2_read_bytes + kernel.write_bytes();
    let l2_s = if cfg.l2_enabled() {
        post_l1 / cfg.l2_bandwidth()
    } else {
        0.0
    };
    let dram_s = cache.dram_bytes / cfg.dram_bandwidth();
    let launch_s = cfg.launch_overhead_s();
    let exec_s = compute_s.max(l2_s).max(dram_s);
    KernelTiming {
        time_s: launch_s + exec_s,
        compute_s,
        l2_s,
        dram_s,
        launch_s,
        occupancy: occ,
        cache,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::KernelKind;

    fn big_gemm() -> KernelDesc {
        KernelDesc::builder("gemm_128x128x16", KernelKind::Gemm)
            .flops(5e11)
            .read_bytes(2e9)
            .write_bytes(1e8)
            .footprint_bytes(3e8)
            .l1_reuse(0.4, 12.0 * 1024.0)
            .l2_reuse(0.8, 2.0 * 1024.0 * 1024.0)
            .workgroups(4096.0)
            .efficiency(0.9)
            .build()
    }

    fn tiny_gemm() -> KernelDesc {
        KernelDesc::builder("gemm_32x32x16", KernelKind::Gemm)
            .flops(2e7)
            .read_bytes(2e6)
            .write_bytes(2e5)
            .footprint_bytes(1e6)
            .l1_reuse(0.4, 8.0 * 1024.0)
            .l2_reuse(0.8, 5e5)
            .workgroups(16.0)
            .efficiency(0.7)
            .build()
    }

    #[test]
    fn compute_bound_kernel_scales_with_clock() {
        let base = GpuConfig::vega_fe();
        let slow = GpuConfig::builder("slow").gclk_ghz(0.8).build().unwrap();
        let k = big_gemm();
        let t_base = kernel_time(&base, &k);
        let t_slow = kernel_time(&slow, &k);
        assert!(!t_base.memory_bound());
        let exec_ratio = (t_slow.time_s - t_slow.launch_s) / (t_base.time_s - t_base.launch_s);
        assert!((exec_ratio - 2.0).abs() < 0.05, "ratio = {exec_ratio}");
    }

    #[test]
    fn small_kernel_is_cu_insensitive() {
        let base = GpuConfig::vega_fe();
        let few_cu = GpuConfig::builder("cu16").cu_count(16).build().unwrap();
        let k = tiny_gemm();
        let t64 = kernel_time(&base, &k).time_s;
        let t16 = kernel_time(&few_cu, &k).time_s;
        // 16 workgroups fill 16 CUs as well as they fill 64: slowdown well
        // below the 4x peak-throughput ratio.
        assert!(t16 / t64 < 1.5, "t16/t64 = {}", t16 / t64);
    }

    #[test]
    fn large_kernel_is_cu_sensitive() {
        let base = GpuConfig::vega_fe();
        let few_cu = GpuConfig::builder("cu16").cu_count(16).build().unwrap();
        let k = big_gemm();
        let t64 = kernel_time(&base, &k).time_s;
        let t16 = kernel_time(&few_cu, &k).time_s;
        assert!(t16 / t64 > 2.5, "t16/t64 = {}", t16 / t64);
    }

    #[test]
    fn disabling_l2_slows_reuse_kernels() {
        let base = GpuConfig::vega_fe();
        let no_l2 = GpuConfig::builder("nl2").l2_mib(0).build().unwrap();
        let mut k = big_gemm();
        // Make it memory-sensitive by inflating traffic.
        k = KernelDesc::builder(k.name().to_owned(), k.kind())
            .flops(1e9)
            .read_bytes(4e9)
            .write_bytes(1e8)
            .footprint_bytes(4e8)
            .l1_reuse(0.2, 12.0 * 1024.0)
            .l2_reuse(0.9, 2.0 * 1024.0 * 1024.0)
            .workgroups(4096.0)
            .build();
        let with = kernel_time(&base, &k).time_s;
        let without = kernel_time(&no_l2, &k).time_s;
        assert!(without > with * 1.5, "with={with}, without={without}");
    }

    #[test]
    fn launch_overhead_dominates_empty_kernels() {
        let cfg = GpuConfig::vega_fe();
        let k = KernelDesc::builder("noop", KernelKind::Memory).build();
        let t = kernel_time(&cfg, &k);
        assert!((t.time_s - cfg.launch_overhead_s()).abs() < 1e-12);
    }

    #[test]
    fn occupancy_increases_with_workgroups() {
        let cfg = GpuConfig::vega_fe();
        let mut prev = 0.0;
        for wgs in [1.0, 8.0, 64.0, 128.0, 256.0, 1024.0] {
            let occ = occupancy(&cfg, wgs);
            assert!(occ >= prev, "occupancy not monotone at {wgs}");
            assert!(occ > 0.0 && occ <= 1.0);
            prev = occ;
        }
        assert_eq!(occupancy(&cfg, 1.0e9), 1.0);
    }

    #[test]
    fn timing_is_deterministic() {
        let cfg = GpuConfig::vega_fe();
        let k = big_gemm();
        let a = kernel_time(&cfg, &k);
        let b = kernel_time(&cfg, &k);
        assert_eq!(a, b);
    }
}
