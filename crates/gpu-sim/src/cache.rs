use serde::{Deserialize, Serialize};

use crate::{GpuConfig, KernelDesc};

/// Fraction of a kernel's reusable accesses a cache of `capacity_bytes` can
/// capture given the kernel's `working_set` bytes.
///
/// The model is the classic capacity rule: if the working set fits, all
/// reusable accesses hit; otherwise hits degrade proportionally to the
/// fraction of the working set that fits. A capacity of zero (a disabled
/// cache, the paper's configs #4/#5) captures nothing.
///
/// ```
/// use gpu_sim::capture_fraction;
///
/// assert_eq!(capture_fraction(0.0, 1024.0), 0.0);       // disabled cache
/// assert_eq!(capture_fraction(1024.0, 512.0), 1.0);     // fits entirely
/// assert_eq!(capture_fraction(1024.0, 4096.0), 0.25);   // partial fit
/// assert_eq!(capture_fraction(1024.0, 0.0), 1.0);       // nothing to hold
/// ```
pub fn capture_fraction(capacity_bytes: f64, working_set: f64) -> f64 {
    if capacity_bytes <= 0.0 {
        return 0.0;
    }
    if working_set <= 0.0 {
        return 1.0;
    }
    (capacity_bytes / working_set).min(1.0)
}

/// Resolved cache behaviour of one kernel on one configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CacheModel {
    /// L1 hit rate over read traffic, in `[0, 1]`.
    pub l1_hit_rate: f64,
    /// L2 hit rate over post-L1 read traffic, in `[0, 1]`.
    pub l2_hit_rate: f64,
    /// Read bytes presented to the L2 (post-L1 misses).
    pub l2_read_bytes: f64,
    /// Bytes that reach DRAM (reads that miss both levels, plus all
    /// writes, floored at the kernel's compulsory footprint).
    pub dram_bytes: f64,
}

impl CacheModel {
    /// Evaluate the cache hierarchy for `kernel` on `cfg`.
    ///
    /// Writes are modelled as streaming through to DRAM (write-through with
    /// no write-allocate), matching the store behaviour of GCN's vector L1.
    /// Reads are filtered first by the per-CU L1 (locality × capacity
    /// capture) and then by the shared L2. DRAM traffic never drops below
    /// the kernel's compulsory footprint.
    pub fn evaluate(cfg: &GpuConfig, kernel: &KernelDesc) -> CacheModel {
        let l1_hit_rate =
            kernel.l1_locality() * capture_fraction(cfg.l1_bytes(), kernel.l1_working_set());
        let l2_read_bytes = kernel.read_bytes() * (1.0 - l1_hit_rate);
        let l2_hit_rate =
            kernel.l2_locality() * capture_fraction(cfg.l2_bytes(), kernel.l2_working_set());
        let dram_reads = l2_read_bytes * (1.0 - l2_hit_rate);
        let dram_bytes = (dram_reads + kernel.write_bytes()).max(kernel.footprint_bytes());
        CacheModel {
            l1_hit_rate,
            l2_hit_rate,
            l2_read_bytes,
            dram_bytes,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::KernelKind;

    fn reuse_kernel() -> KernelDesc {
        KernelDesc::builder("gemm_like", KernelKind::Gemm)
            .flops(1e9)
            .read_bytes(1e8)
            .write_bytes(1e6)
            .footprint_bytes(2e6)
            .l1_reuse(0.5, 8.0 * 1024.0)
            .l2_reuse(0.9, 1024.0 * 1024.0)
            .build()
    }

    #[test]
    fn disabling_l1_increases_l2_traffic() {
        let base = GpuConfig::vega_fe();
        let no_l1 = GpuConfig::builder("nl1").l1_kib_per_cu(0).build().unwrap();
        let k = reuse_kernel();
        let with = CacheModel::evaluate(&base, &k);
        let without = CacheModel::evaluate(&no_l1, &k);
        assert!(without.l2_read_bytes > with.l2_read_bytes);
        assert_eq!(without.l1_hit_rate, 0.0);
    }

    #[test]
    fn disabling_l2_increases_dram_traffic() {
        let base = GpuConfig::vega_fe();
        let no_l2 = GpuConfig::builder("nl2").l2_mib(0).build().unwrap();
        let k = reuse_kernel();
        let with = CacheModel::evaluate(&base, &k);
        let without = CacheModel::evaluate(&no_l2, &k);
        assert!(without.dram_bytes > with.dram_bytes);
        assert_eq!(without.l2_hit_rate, 0.0);
    }

    #[test]
    fn dram_traffic_never_below_footprint() {
        let cfg = GpuConfig::vega_fe();
        let k = KernelDesc::builder("tiny", KernelKind::Gemm)
            .read_bytes(1e6)
            .write_bytes(1e5)
            .footprint_bytes(5e5)
            .l1_reuse(1.0, 16.0)
            .l2_reuse(1.0, 16.0)
            .build();
        let cm = CacheModel::evaluate(&cfg, &k);
        assert!(cm.dram_bytes >= 5e5);
    }

    #[test]
    fn streaming_kernel_ignores_caches() {
        let k = KernelDesc::builder("ew", KernelKind::Elementwise)
            .read_bytes(1e7)
            .write_bytes(1e7)
            .build();
        for cfg in GpuConfig::table2_configs() {
            let cm = CacheModel::evaluate(&cfg, &k);
            assert_eq!(cm.l1_hit_rate, 0.0);
            assert_eq!(cm.dram_bytes, 2e7);
        }
    }

    #[test]
    fn capture_fraction_is_monotone_in_capacity() {
        let ws = 64.0 * 1024.0;
        let mut prev = -1.0;
        for cap_kib in [0u32, 4, 8, 16, 32, 64, 128] {
            let f = capture_fraction(f64::from(cap_kib) * 1024.0, ws);
            assert!(f >= prev);
            prev = f;
        }
        assert_eq!(capture_fraction(128.0 * 1024.0, ws), 1.0);
    }
}
