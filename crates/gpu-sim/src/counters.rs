use std::collections::BTreeMap;
use std::ops::{Add, AddAssign};

use serde::{Deserialize, Serialize};

use crate::{GpuConfig, KernelDesc, KernelKind, KernelTiming};

/// Hardware performance counters for one kernel invocation (or a sum over
/// many), mirroring the Radeon Compute Profiler statistics the paper uses
/// in its motivation (Fig. 4): vector-ALU instructions, load data size, and
/// memory-write stalls.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct KernelCounters {
    /// Vector-ALU instructions issued.
    pub valu_insts: f64,
    /// Bytes fetched past the L1 ("load data size").
    pub load_bytes: f64,
    /// Bytes written by stores.
    pub store_bytes: f64,
    /// Bytes exchanged with DRAM.
    pub dram_bytes: f64,
    /// Bytes presented to the L2 interconnect.
    pub l2_bytes: f64,
    /// Cycles stalled on memory writes.
    pub mem_write_stall_cycles: f64,
}

impl KernelCounters {
    /// Derive counters from a kernel's descriptor and its resolved timing.
    pub fn from_timing(cfg: &GpuConfig, kernel: &KernelDesc, timing: &KernelTiming) -> Self {
        // One VALU instruction per lane-wide FMA: flops / (2 * lanes).
        let valu_insts = kernel.flops() / (2.0 * f64::from(cfg.lanes_per_cu())).max(1.0);
        let post_l1 = timing.cache.l2_read_bytes + kernel.write_bytes();
        let requested = kernel.read_bytes() + kernel.write_bytes();
        let write_share = if requested > 0.0 {
            kernel.write_bytes() / requested
        } else {
            0.0
        };
        let exec_s = timing.time_s - timing.launch_s;
        let stall_s = (exec_s - timing.compute_s).max(0.0) * write_share;
        KernelCounters {
            valu_insts,
            load_bytes: timing.cache.l2_read_bytes,
            store_bytes: kernel.write_bytes(),
            dram_bytes: timing.cache.dram_bytes,
            l2_bytes: post_l1,
            mem_write_stall_cycles: stall_s * cfg.gclk_hz(),
        }
    }
}

impl Add for KernelCounters {
    type Output = KernelCounters;

    fn add(mut self, rhs: KernelCounters) -> KernelCounters {
        self += rhs;
        self
    }
}

impl AddAssign for KernelCounters {
    fn add_assign(&mut self, rhs: KernelCounters) {
        self.valu_insts += rhs.valu_insts;
        self.load_bytes += rhs.load_bytes;
        self.store_bytes += rhs.store_bytes;
        self.dram_bytes += rhs.dram_bytes;
        self.l2_bytes += rhs.l2_bytes;
        self.mem_write_stall_cycles += rhs.mem_write_stall_cycles;
    }
}

/// Aggregated statistics for all invocations of one kernel (by name)
/// within a trace.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct KernelAgg {
    /// The kernel's computation class.
    pub kind: KernelKind,
    /// Number of invocations.
    pub invocations: u64,
    /// Total wall time across invocations, in seconds.
    pub time_s: f64,
    /// Summed counters across invocations.
    pub counters: KernelCounters,
}

/// The result of executing a kernel trace on a [`crate::Device`]: total
/// runtime, summed counters, and a per-kernel-name breakdown.
///
/// This is the simulator's equivalent of one profiled GPU "iteration".
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct TraceProfile {
    total_time_s: f64,
    launches: u64,
    counters: KernelCounters,
    by_kernel: BTreeMap<String, KernelAgg>,
}

impl TraceProfile {
    /// Create an empty profile.
    pub fn new() -> Self {
        TraceProfile::default()
    }

    /// Record one kernel execution.
    pub fn record(&mut self, kernel: &KernelDesc, time_s: f64, counters: KernelCounters) {
        self.total_time_s += time_s;
        self.launches += 1;
        self.counters += counters;
        match self.by_kernel.get_mut(kernel.name()) {
            Some(agg) => {
                agg.invocations += 1;
                agg.time_s += time_s;
                agg.counters += counters;
            }
            None => {
                self.by_kernel.insert(
                    kernel.name().to_owned(),
                    KernelAgg {
                        kind: kernel.kind(),
                        invocations: 1,
                        time_s,
                        counters,
                    },
                );
            }
        }
    }

    /// Total wall time of the trace, in seconds.
    pub fn total_time_s(&self) -> f64 {
        self.total_time_s
    }

    /// Total number of kernel launches.
    pub fn launches(&self) -> u64 {
        self.launches
    }

    /// Summed counters over the whole trace.
    pub fn counters(&self) -> KernelCounters {
        self.counters
    }

    /// Per-kernel-name aggregation (deterministically ordered by name).
    pub fn by_kernel(&self) -> &BTreeMap<String, KernelAgg> {
        &self.by_kernel
    }

    /// The set of unique kernel names invoked.
    pub fn unique_kernels(&self) -> impl Iterator<Item = &str> {
        self.by_kernel.keys().map(String::as_str)
    }

    /// Number of unique kernel names invoked.
    pub fn unique_kernel_count(&self) -> usize {
        self.by_kernel.len()
    }

    /// Wall-time totals grouped by [`KernelKind`].
    pub fn time_by_kind(&self) -> BTreeMap<KernelKind, f64> {
        let mut out = BTreeMap::new();
        for agg in self.by_kernel.values() {
            *out.entry(agg.kind).or_insert(0.0) += agg.time_s;
        }
        out
    }

    /// Fraction of total runtime spent in each kernel kind.
    ///
    /// Returns an empty map for an empty trace.
    pub fn runtime_shares_by_kind(&self) -> BTreeMap<KernelKind, f64> {
        let total = self.total_time_s;
        if total <= 0.0 {
            return BTreeMap::new();
        }
        self.time_by_kind()
            .into_iter()
            .map(|(k, t)| (k, t / total))
            .collect()
    }

    /// Fraction of total runtime spent in each unique kernel, keyed by name.
    pub fn runtime_shares_by_kernel(&self) -> BTreeMap<String, f64> {
        let total = self.total_time_s;
        if total <= 0.0 {
            return BTreeMap::new();
        }
        self.by_kernel
            .iter()
            .map(|(name, agg)| (name.clone(), agg.time_s / total))
            .collect()
    }

    /// Merge another profile into this one (e.g. to accumulate a full
    /// epoch out of per-iteration profiles).
    pub fn merge(&mut self, other: &TraceProfile) {
        self.total_time_s += other.total_time_s;
        self.launches += other.launches;
        self.counters += other.counters;
        for (name, agg) in &other.by_kernel {
            match self.by_kernel.get_mut(name) {
                Some(mine) => {
                    mine.invocations += agg.invocations;
                    mine.time_s += agg.time_s;
                    mine.counters += agg.counters;
                }
                None => {
                    self.by_kernel.insert(name.clone(), agg.clone());
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dummy_kernel(name: &str, kind: KernelKind) -> KernelDesc {
        KernelDesc::builder(name, kind)
            .flops(1e6)
            .read_bytes(1e6)
            .write_bytes(1e5)
            .build()
    }

    fn dummy_counters(v: f64) -> KernelCounters {
        KernelCounters {
            valu_insts: v,
            load_bytes: v,
            store_bytes: v,
            dram_bytes: v,
            l2_bytes: v,
            mem_write_stall_cycles: v,
        }
    }

    #[test]
    fn record_accumulates_by_name() {
        let mut p = TraceProfile::new();
        let a = dummy_kernel("gemm_a", KernelKind::Gemm);
        let b = dummy_kernel("ew_b", KernelKind::Elementwise);
        p.record(&a, 1.0, dummy_counters(1.0));
        p.record(&a, 2.0, dummy_counters(2.0));
        p.record(&b, 3.0, dummy_counters(3.0));
        assert_eq!(p.launches(), 3);
        assert_eq!(p.unique_kernel_count(), 2);
        assert!((p.total_time_s() - 6.0).abs() < 1e-12);
        assert_eq!(p.by_kernel()["gemm_a"].invocations, 2);
        assert!((p.by_kernel()["gemm_a"].time_s - 3.0).abs() < 1e-12);
        assert!((p.counters().valu_insts - 6.0).abs() < 1e-12);
    }

    #[test]
    fn kind_shares_sum_to_one() {
        let mut p = TraceProfile::new();
        p.record(
            &dummy_kernel("a", KernelKind::Gemm),
            2.0,
            dummy_counters(0.0),
        );
        p.record(
            &dummy_kernel("b", KernelKind::Reduce),
            1.0,
            dummy_counters(0.0),
        );
        p.record(
            &dummy_kernel("c", KernelKind::Softmax),
            1.0,
            dummy_counters(0.0),
        );
        let shares = p.runtime_shares_by_kind();
        let total: f64 = shares.values().sum();
        assert!((total - 1.0).abs() < 1e-12);
        assert!((shares[&KernelKind::Gemm] - 0.5).abs() < 1e-12);
    }

    #[test]
    fn merge_combines_profiles() {
        let mut p = TraceProfile::new();
        let mut q = TraceProfile::new();
        p.record(
            &dummy_kernel("a", KernelKind::Gemm),
            1.0,
            dummy_counters(1.0),
        );
        q.record(
            &dummy_kernel("a", KernelKind::Gemm),
            2.0,
            dummy_counters(2.0),
        );
        q.record(
            &dummy_kernel("b", KernelKind::Memory),
            4.0,
            dummy_counters(4.0),
        );
        p.merge(&q);
        assert_eq!(p.launches(), 3);
        assert!((p.total_time_s() - 7.0).abs() < 1e-12);
        assert_eq!(p.by_kernel()["a"].invocations, 2);
        assert_eq!(p.by_kernel()["b"].invocations, 1);
    }

    #[test]
    fn empty_profile_has_no_shares() {
        let p = TraceProfile::new();
        assert!(p.runtime_shares_by_kind().is_empty());
        assert_eq!(p.total_time_s(), 0.0);
    }

    #[test]
    fn counters_add_componentwise() {
        let a = dummy_counters(1.0);
        let b = dummy_counters(2.0);
        let c = a + b;
        assert!((c.valu_insts - 3.0).abs() < 1e-12);
        assert!((c.dram_bytes - 3.0).abs() < 1e-12);
    }
}
