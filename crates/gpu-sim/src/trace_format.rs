//! Kernel-trace serialization for simulator hand-off (paper
//! Section VII-A).
//!
//! SeqPoint "paves the way for network-level simulations of SQNNs": once
//! a handful of representative iterations is known, their kernel traces
//! can be exported and replayed inside a detailed architecture
//! simulator. This module defines a versioned, line-oriented text format
//! (one kernel per line, tab-separated) that round-trips every field of
//! a [`KernelDesc`].
//!
//! ```
//! use gpu_sim::trace_format::{read_trace, write_trace};
//! use gpu_sim::{KernelDesc, KernelKind};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let trace = vec![KernelDesc::builder("ew_relu_v1", KernelKind::Elementwise)
//!     .flops(1e6).read_bytes(4e6).write_bytes(4e6).build()];
//! let mut buf = Vec::new();
//! write_trace(&mut buf, &trace)?;
//! let back = read_trace(&buf[..])?;
//! assert_eq!(trace, back);
//! # Ok(())
//! # }
//! ```

use std::error::Error;
use std::fmt;
use std::io::{BufRead, BufReader, Read, Write};

use crate::{KernelDesc, KernelKind};

/// Format magic + version written as the first line.
pub const TRACE_HEADER: &str = "#seqpoint-trace v1";

/// Errors produced when reading a serialized trace.
#[derive(Debug)]
#[non_exhaustive]
pub enum TraceFormatError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// The header line was missing or of an unsupported version.
    BadHeader {
        /// The offending first line.
        found: String,
    },
    /// A kernel line could not be parsed.
    BadRecord {
        /// 1-based line number.
        line: usize,
        /// Description of the problem.
        reason: String,
    },
}

impl fmt::Display for TraceFormatError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceFormatError::Io(e) => write!(f, "trace i/o error: {e}"),
            TraceFormatError::BadHeader { found } => {
                write!(f, "bad trace header `{found}` (expected `{TRACE_HEADER}`)")
            }
            TraceFormatError::BadRecord { line, reason } => {
                write!(f, "bad trace record at line {line}: {reason}")
            }
        }
    }
}

impl Error for TraceFormatError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            TraceFormatError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for TraceFormatError {
    fn from(e: std::io::Error) -> Self {
        TraceFormatError::Io(e)
    }
}

fn kind_from_label(label: &str) -> Option<KernelKind> {
    KernelKind::all()
        .iter()
        .copied()
        .find(|k| k.label() == label)
}

/// Write `trace` to `w` in the v1 format.
///
/// # Errors
///
/// Propagates I/O errors from `w`.
pub fn write_trace<W: Write>(mut w: W, trace: &[KernelDesc]) -> Result<(), TraceFormatError> {
    writeln!(w, "{TRACE_HEADER}")?;
    for k in trace {
        writeln!(
            w,
            "{}\t{}\t{:e}\t{:e}\t{:e}\t{:e}\t{:e}\t{:e}\t{:e}\t{:e}\t{:e}\t{:e}",
            k.name(),
            k.kind().label(),
            k.flops(),
            k.read_bytes(),
            k.write_bytes(),
            k.footprint_bytes(),
            k.l1_locality(),
            k.l1_working_set(),
            k.l2_locality(),
            k.l2_working_set(),
            k.workgroups(),
            k.efficiency(),
        )?;
    }
    Ok(())
}

/// Read a v1 trace from `r`.
///
/// # Errors
///
/// Returns [`TraceFormatError`] on I/O failure, a bad header, or a
/// malformed record.
pub fn read_trace<R: Read>(r: R) -> Result<Vec<KernelDesc>, TraceFormatError> {
    let mut lines = BufReader::new(r).lines();
    let header = lines.next().transpose()?.unwrap_or_default();
    if header.trim() != TRACE_HEADER {
        return Err(TraceFormatError::BadHeader { found: header });
    }
    let mut trace = Vec::new();
    for (i, line) in lines.enumerate() {
        let line = line?;
        let line_no = i + 2;
        if line.trim().is_empty() || line.starts_with('#') {
            continue;
        }
        let fields: Vec<&str> = line.split('\t').collect();
        if fields.len() != 12 {
            return Err(TraceFormatError::BadRecord {
                line: line_no,
                reason: format!("expected 12 tab-separated fields, got {}", fields.len()),
            });
        }
        let kind = kind_from_label(fields[1]).ok_or_else(|| TraceFormatError::BadRecord {
            line: line_no,
            reason: format!("unknown kernel kind `{}`", fields[1]),
        })?;
        let num = |idx: usize| -> Result<f64, TraceFormatError> {
            fields[idx]
                .parse::<f64>()
                .map_err(|e| TraceFormatError::BadRecord {
                    line: line_no,
                    reason: format!("field {idx}: {e}"),
                })
        };
        trace.push(
            KernelDesc::builder(fields[0], kind)
                .flops(num(2)?)
                .read_bytes(num(3)?)
                .write_bytes(num(4)?)
                .footprint_bytes(num(5)?)
                .l1_reuse(num(6)?, num(7)?)
                .l2_reuse(num(8)?, num(9)?)
                .workgroups(num(10)?)
                .efficiency(num(11)?)
                .build(),
        );
    }
    Ok(trace)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gemm::GemmShape;
    use crate::AutotuneTable;
    use crate::GpuConfig;

    fn sample_trace() -> Vec<KernelDesc> {
        let cfg = GpuConfig::vega_fe();
        let mut tuner = AutotuneTable::new();
        vec![
            tuner.gemm(&cfg, GemmShape::new(1024, 512, 2048)),
            crate::elementwise::map("tanh", 1 << 20, 4.0, 1),
            crate::reduce::softmax(64, 36_549),
            crate::memops::gather(4096, 4096, 64 << 20),
        ]
    }

    #[test]
    fn round_trip_preserves_every_kernel() {
        let trace = sample_trace();
        let mut buf = Vec::new();
        write_trace(&mut buf, &trace).unwrap();
        let back = read_trace(&buf[..]).unwrap();
        assert_eq!(trace, back);
    }

    #[test]
    fn round_trip_preserves_timing() {
        let cfg = GpuConfig::vega_fe();
        let trace = sample_trace();
        let mut buf = Vec::new();
        write_trace(&mut buf, &trace).unwrap();
        let back = read_trace(&buf[..]).unwrap();
        for (a, b) in trace.iter().zip(&back) {
            assert_eq!(
                crate::kernel_time(&cfg, a),
                crate::kernel_time(&cfg, b),
                "timing must survive serialization"
            );
        }
    }

    #[test]
    fn rejects_bad_header() {
        let err = read_trace(&b"not a trace\n"[..]).unwrap_err();
        assert!(matches!(err, TraceFormatError::BadHeader { .. }));
    }

    #[test]
    fn rejects_malformed_records() {
        let input = format!("{TRACE_HEADER}\nonly\tthree\tfields\n");
        let err = read_trace(input.as_bytes()).unwrap_err();
        match err {
            TraceFormatError::BadRecord { line, .. } => assert_eq!(line, 2),
            other => panic!("unexpected error {other}"),
        }
    }

    #[test]
    fn rejects_unknown_kind() {
        let input = format!("{TRACE_HEADER}\nk\tnonsense\t0\t0\t0\t0\t0\t0\t0\t0\t1\t0.5\n");
        let err = read_trace(input.as_bytes()).unwrap_err();
        assert!(err.to_string().contains("nonsense"));
    }

    #[test]
    fn skips_comments_and_blank_lines() {
        let trace = sample_trace();
        let mut buf = Vec::new();
        write_trace(&mut buf, &trace).unwrap();
        let mut text = String::from_utf8(buf).unwrap();
        text.push_str("\n# trailing comment\n\n");
        let back = read_trace(text.as_bytes()).unwrap();
        assert_eq!(back.len(), trace.len());
    }

    #[test]
    fn empty_trace_round_trips() {
        let mut buf = Vec::new();
        write_trace(&mut buf, &[]).unwrap();
        assert!(read_trace(&buf[..]).unwrap().is_empty());
    }
}
