//! Data-movement kernels: gathers (embedding lookups), copies,
//! transposes, concatenations, and padding.
//!
//! The paper's "vocabulary" observation (key observation 6) is that symbol
//! → vector lookup time depends on the vocabulary and must not be scaled
//! down when sampling iterations; the gather kernel here carries that
//! cost.

use crate::{KernelDesc, KernelKind};

/// An embedding-table gather: `rows` lookups of `row_bytes` each from a
/// table of `table_bytes` total. Lookup locality depends on how much of
/// the table the cache can hold, so vocabulary size affects runtime.
pub fn gather(rows: u64, row_bytes: u64, table_bytes: u64) -> KernelDesc {
    let bytes = (rows * row_bytes) as f64;
    // Compulsory traffic: the distinct table rows actually touched (at
    // most the whole table), the index vector, and the gathered output.
    let touched = bytes.min(table_bytes as f64);
    let footprint = touched + rows as f64 * 4.0 + bytes;
    KernelDesc::builder("gather_rows", KernelKind::Memory)
        .flops(0.0)
        .read_bytes(bytes + rows as f64 * 4.0) // rows + index vector
        .write_bytes(bytes)
        .footprint_bytes(footprint)
        .l1_reuse(0.05, row_bytes as f64 * 64.0)
        .l2_reuse(0.5, table_bytes as f64)
        .workgroups((bytes / 4096.0).ceil().max(1.0))
        .efficiency(0.5)
        .build()
}

/// The backward pass of a gather: scatter-add of `rows` gradient rows of
/// `row_bytes` each into a table of `table_bytes` (embedding-gradient
/// accumulation). Atomics make it slower than the forward gather.
pub fn scatter_add(rows: u64, row_bytes: u64, table_bytes: u64) -> KernelDesc {
    let bytes = (rows * row_bytes) as f64;
    let touched = bytes.min(table_bytes as f64);
    KernelDesc::builder("scatter_add_rows", KernelKind::Memory)
        .flops(bytes / 4.0)
        .read_bytes(bytes * 2.0 + rows as f64 * 4.0) // grads + old values + indices
        .write_bytes(bytes)
        .footprint_bytes(bytes + touched + rows as f64 * 4.0)
        .l1_reuse(0.05, row_bytes as f64 * 64.0)
        .l2_reuse(0.4, table_bytes as f64)
        .workgroups((bytes / 4096.0).ceil().max(1.0))
        .efficiency(0.35)
        .build()
}

/// A contiguous device-to-device copy of `bytes`.
pub fn copy(bytes: u64) -> KernelDesc {
    let b = bytes as f64;
    KernelDesc::builder("copy_v4", KernelKind::Memory)
        .read_bytes(b)
        .write_bytes(b)
        .workgroups((b / 4096.0).ceil().max(1.0))
        .efficiency(0.9)
        .build()
}

/// A tiled 2-D transpose of a `rows × cols` FP32 matrix.
pub fn transpose(rows: u64, cols: u64) -> KernelDesc {
    let b = (rows * cols * 4) as f64;
    KernelDesc::builder("transpose_tiled32", KernelKind::Memory)
        .read_bytes(b)
        .write_bytes(b)
        .l1_reuse(0.5, 2.0 * 32.0 * 32.0 * 4.0)
        .workgroups(((rows as f64 / 32.0).ceil() * (cols as f64 / 32.0).ceil()).max(1.0))
        .efficiency(0.8)
        .build()
}

/// Concatenation of tensors totalling `bytes` into one buffer.
pub fn concat(bytes: u64) -> KernelDesc {
    let b = bytes as f64;
    KernelDesc::builder("concat_v2", KernelKind::Memory)
        .read_bytes(b)
        .write_bytes(b)
        .workgroups((b / 4096.0).ceil().max(1.0))
        .efficiency(0.85)
        .build()
}

/// Zero-padding a batch of sequences up to the batch maximum: writes
/// `bytes` of padded output while reading the `payload` fraction.
pub fn pad(bytes: u64, payload_fraction: f64) -> KernelDesc {
    let b = bytes as f64;
    KernelDesc::builder("pad_seq", KernelKind::Memory)
        .read_bytes(b * payload_fraction.clamp(0.0, 1.0))
        .write_bytes(b)
        .workgroups((b / 4096.0).ceil().max(1.0))
        .efficiency(0.85)
        .build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{kernel_time, GpuConfig};

    #[test]
    fn gather_scales_with_rows() {
        let small = gather(100, 4096, 1 << 27);
        let large = gather(10_000, 4096, 1 << 27);
        assert!(large.read_bytes() > small.read_bytes());
    }

    #[test]
    fn bigger_vocab_gathers_slower_on_cache_configs() {
        // Same number of lookups, bigger table ⇒ worse L2 capture ⇒ slower.
        let cfg = GpuConfig::vega_fe();
        let small_tab = gather(100_000, 4096, 8 << 20);
        let large_tab = gather(100_000, 4096, 512 << 20);
        let t_small = kernel_time(&cfg, &small_tab).time_s;
        let t_large = kernel_time(&cfg, &large_tab).time_s;
        assert!(t_large > t_small);
    }

    #[test]
    fn scatter_add_slower_than_gather() {
        let cfg = GpuConfig::vega_fe();
        let g = gather(10_000, 4096, 64 << 20);
        let s = scatter_add(10_000, 4096, 64 << 20);
        assert!(kernel_time(&cfg, &s).time_s > kernel_time(&cfg, &g).time_s);
    }

    #[test]
    fn copy_moves_bytes_both_ways() {
        let k = copy(1 << 20);
        assert_eq!(k.read_bytes(), k.write_bytes());
        assert_eq!(k.kind(), KernelKind::Memory);
    }

    #[test]
    fn transpose_has_l1_reuse() {
        let k = transpose(1024, 1024);
        assert!(k.l1_locality() > 0.0);
    }

    #[test]
    fn pad_reads_only_payload() {
        let k = pad(1000, 0.25);
        assert_eq!(k.read_bytes(), 250.0);
        assert_eq!(k.write_bytes(), 1000.0);
    }

    #[test]
    fn pad_fraction_is_clamped() {
        let k = pad(1000, 7.0);
        assert_eq!(k.read_bytes(), 1000.0);
    }
}
