//! Streaming element-wise kernels (activations, gate math, scaling).
//!
//! Element-wise kernels are memory-bound streaming sweeps. Real frameworks
//! emit differently vectorized variants depending on tensor size, so the
//! kernel *name* — and thus the unique-kernel set of an iteration —
//! changes with sequence length, contributing to the paper's Fig. 5.

use crate::{KernelDesc, KernelKind};

/// Elements per workgroup used by the launch-geometry model.
const ELEMS_PER_WORKGROUP: f64 = 1024.0;

/// Vectorization suffix chosen by tensor size, mimicking framework
/// dispatch heuristics (wide loads only pay off for large tensors).
fn vector_suffix(elems: u64) -> &'static str {
    if elems >= 1 << 22 {
        "v4"
    } else if elems >= 1 << 18 {
        "v2"
    } else {
        "v1"
    }
}

/// Build an element-wise map kernel named after `op` (e.g. `"tanh"`,
/// `"sigmoid"`, `"add"`): `elems` output elements, `inputs` input tensors
/// of the same size, `flops_per_elem` arithmetic per element.
///
/// ```
/// use gpu_sim::elementwise::map;
///
/// let k = map("tanh", 1 << 20, 4.0, 1);
/// assert_eq!(k.name(), "ew_tanh_v2");
/// ```
pub fn map(op: &str, elems: u64, flops_per_elem: f64, inputs: u32) -> KernelDesc {
    let e = elems as f64;
    let reads = e * 4.0 * f64::from(inputs);
    let writes = e * 4.0;
    KernelDesc::builder(
        format!("ew_{}_{}", op, vector_suffix(elems)),
        KernelKind::Elementwise,
    )
    .flops(e * flops_per_elem.max(0.0))
    .read_bytes(reads)
    .write_bytes(writes)
    // Producer→consumer forwarding: in a back-to-back kernel stream most
    // element-wise inputs were just written by the previous kernel, so
    // when the tensor still fits in the L2 the compulsory DRAM traffic is
    // only the output (plus a cold fraction of the input). With the L2
    // disabled (config #5) everything spills to DRAM.
    .footprint_bytes(writes + 0.25 * reads)
    .l2_reuse(0.75, reads)
    .workgroups((e / ELEMS_PER_WORKGROUP).ceil())
    .efficiency(0.85)
    .build()
}

/// A fused dropout kernel: one read, one mask generation, one write.
pub fn dropout(elems: u64) -> KernelDesc {
    let e = elems as f64;
    KernelDesc::builder(
        format!("ew_dropout_{}", vector_suffix(elems)),
        KernelKind::Elementwise,
    )
    .flops(e * 3.0)
    .read_bytes(e * 4.0)
    .write_bytes(e * 5.0) // output + packed mask
    .workgroups((e / ELEMS_PER_WORKGROUP).ceil())
    .efficiency(0.85)
    .build()
}

/// An optimizer parameter-update sweep (SGD with momentum): reads the
/// parameter, gradient, and momentum tensors; writes parameter and
/// momentum. Its cost is independent of sequence length, which gives SQNN
/// iteration runtimes their constant component.
pub fn sgd_momentum_update(params: u64) -> KernelDesc {
    let p = params as f64;
    KernelDesc::builder("opt_sgd_momentum", KernelKind::Optimizer)
        .flops(p * 4.0)
        .read_bytes(p * 4.0 * 3.0)
        .write_bytes(p * 4.0 * 2.0)
        .workgroups((p / ELEMS_PER_WORKGROUP).ceil())
        .efficiency(0.85)
        .build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{kernel_time, GpuConfig};

    #[test]
    fn name_varies_with_size() {
        assert_eq!(map("tanh", 1 << 16, 1.0, 1).name(), "ew_tanh_v1");
        assert_eq!(map("tanh", 1 << 20, 1.0, 1).name(), "ew_tanh_v2");
        assert_eq!(map("tanh", 1 << 23, 1.0, 1).name(), "ew_tanh_v4");
    }

    #[test]
    fn elementwise_is_memory_bound() {
        let cfg = GpuConfig::vega_fe();
        let k = map("add", 1 << 24, 1.0, 2);
        let t = kernel_time(&cfg, &k);
        assert!(t.memory_bound());
    }

    #[test]
    fn traffic_scales_with_inputs() {
        let one = map("scale", 1000, 1.0, 1);
        let two = map("add", 1000, 1.0, 2);
        assert!(two.read_bytes() > one.read_bytes());
        assert_eq!(one.write_bytes(), two.write_bytes());
    }

    #[test]
    fn small_tensors_benefit_from_l2_forwarding() {
        use crate::{kernel_time, GpuConfig};
        let k = map("relu", 100_000, 1.0, 1); // 400 KB: fits the 4 MiB L2
        let base = GpuConfig::vega_fe();
        let no_l2 = GpuConfig::builder("nl2").l2_mib(0).build().unwrap();
        let with = kernel_time(&base, &k);
        let without = kernel_time(&no_l2, &k);
        assert!(with.cache.dram_bytes < without.cache.dram_bytes);
        // Inputs are never L1-forwarded (kernels run back to back on
        // different CUs), only L2.
        assert_eq!(k.l1_locality(), 0.0);
    }

    #[test]
    fn huge_tensors_see_no_forwarding_benefit() {
        use crate::CacheModel;
        use crate::GpuConfig;
        let k = map("relu", 64 << 20, 1.0, 1); // 256 MB ≫ L2
        let cm = CacheModel::evaluate(&GpuConfig::vega_fe(), &k);
        // Capture fraction ~4/256: nearly all traffic reaches DRAM.
        assert!(cm.dram_bytes > 0.95 * (k.read_bytes() + k.write_bytes()));
    }

    #[test]
    fn optimizer_update_is_sl_independent_shape() {
        let a = sgd_momentum_update(1_000_000);
        let b = sgd_momentum_update(1_000_000);
        assert_eq!(a, b);
        assert_eq!(a.kind(), KernelKind::Optimizer);
    }

    #[test]
    fn dropout_writes_mask() {
        let k = dropout(1 << 10);
        assert!(k.write_bytes() > k.read_bytes());
    }

    #[test]
    fn negative_flops_clamped() {
        let k = map("weird", 100, -3.0, 1);
        assert_eq!(k.flops(), 0.0);
    }
}
