use serde::{Deserialize, Serialize};

/// The broad class of GPU computation a kernel performs.
///
/// The paper's kernel-distribution figures (Figs. 5, 6, 8) group kernels by
/// kind; the profiler also uses kinds to aggregate runtime shares.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[non_exhaustive]
pub enum KernelKind {
    /// Dense matrix multiply (rocBLAS-like tiled SGEMM).
    Gemm,
    /// Convolution lowered to implicit GEMM (MIOpen-like).
    Conv,
    /// Streaming element-wise map (activations, gate math, scaling).
    Elementwise,
    /// Reduction (sums, norms, loss terms).
    Reduce,
    /// Row-wise softmax (attention scores, vocabulary classifier).
    Softmax,
    /// Batch normalization statistics + normalization.
    BatchNorm,
    /// Data movement: gathers (embedding lookup), copies, transposes, pad.
    Memory,
    /// Optimizer parameter update (SGD/momentum element-wise sweeps).
    Optimizer,
}

impl KernelKind {
    /// Short lowercase label used in reports (e.g. `"gemm"`).
    pub fn label(self) -> &'static str {
        match self {
            KernelKind::Gemm => "gemm",
            KernelKind::Conv => "conv",
            KernelKind::Elementwise => "elementwise",
            KernelKind::Reduce => "reduce",
            KernelKind::Softmax => "softmax",
            KernelKind::BatchNorm => "batchnorm",
            KernelKind::Memory => "memory",
            KernelKind::Optimizer => "optimizer",
        }
    }

    /// All kernel kinds, in report order.
    pub fn all() -> &'static [KernelKind] {
        &[
            KernelKind::Gemm,
            KernelKind::Conv,
            KernelKind::Elementwise,
            KernelKind::Reduce,
            KernelKind::Softmax,
            KernelKind::BatchNorm,
            KernelKind::Memory,
            KernelKind::Optimizer,
        ]
    }
}

impl std::fmt::Display for KernelKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// A single kernel invocation: everything the timing model needs.
///
/// A `KernelDesc` plays the role a compiled GPU kernel plus its launch
/// dimensions play on real hardware. Its `name` identifies the *kernel
/// code* (e.g. which GEMM tile variant), so two invocations with the same
/// name are "the same kernel" for the paper's unique-kernel analysis
/// (Fig. 5) even if their operand shapes differ.
///
/// Construct descriptors through [`KernelDesc::builder`] or the domain
/// builders in [`crate::gemm`], [`crate::conv`], [`crate::elementwise`],
/// [`crate::reduce`], and [`crate::memops`]:
///
/// ```
/// use gpu_sim::{KernelDesc, KernelKind};
///
/// let k = KernelDesc::builder("ew_tanh_v4", KernelKind::Elementwise)
///     .flops(1.0e6)
///     .read_bytes(4.0e6)
///     .write_bytes(4.0e6)
///     .workgroups(1024.0)
///     .build();
/// assert_eq!(k.name(), "ew_tanh_v4");
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct KernelDesc {
    name: String,
    kind: KernelKind,
    flops: f64,
    read_bytes: f64,
    write_bytes: f64,
    footprint_bytes: f64,
    l1_locality: f64,
    l1_working_set: f64,
    l2_locality: f64,
    l2_working_set: f64,
    workgroups: f64,
    efficiency: f64,
}

impl KernelDesc {
    /// Start building a kernel descriptor.
    pub fn builder(name: impl Into<String>, kind: KernelKind) -> KernelDescBuilder {
        KernelDescBuilder {
            desc: KernelDesc {
                name: name.into(),
                kind,
                flops: 0.0,
                read_bytes: 0.0,
                write_bytes: 0.0,
                footprint_bytes: f64::NAN, // defaults to read + write at build()
                l1_locality: 0.0,
                l1_working_set: 0.0,
                l2_locality: 0.0,
                l2_working_set: 0.0,
                workgroups: 1.0,
                efficiency: 0.8,
            },
        }
    }

    /// The kernel-code identity (variant name), e.g. `"gemm_128x128x16"`.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The broad computation class.
    pub fn kind(&self) -> KernelKind {
        self.kind
    }

    /// Floating-point operations performed by the invocation.
    pub fn flops(&self) -> f64 {
        self.flops
    }

    /// Bytes requested by loads (after register/LDS blocking — i.e. the
    /// traffic presented to the L1).
    pub fn read_bytes(&self) -> f64 {
        self.read_bytes
    }

    /// Bytes written by stores.
    pub fn write_bytes(&self) -> f64 {
        self.write_bytes
    }

    /// Compulsory traffic: the unique data touched. DRAM traffic never
    /// drops below this no matter how effective the caches are.
    pub fn footprint_bytes(&self) -> f64 {
        self.footprint_bytes
    }

    /// Fraction of read traffic with L1-capturable (short) reuse distance.
    pub fn l1_locality(&self) -> f64 {
        self.l1_locality
    }

    /// Per-CU working set in bytes for the L1 capture model.
    pub fn l1_working_set(&self) -> f64 {
        self.l1_working_set
    }

    /// Fraction of post-L1 read traffic with L2-capturable reuse distance.
    pub fn l2_locality(&self) -> f64 {
        self.l2_locality
    }

    /// Device-wide working set in bytes for the L2 capture model.
    pub fn l2_working_set(&self) -> f64 {
        self.l2_working_set
    }

    /// Independent workgroups launched (drives the occupancy model).
    pub fn workgroups(&self) -> f64 {
        self.workgroups
    }

    /// Fraction of peak ALU throughput achievable for this kernel's shape
    /// (tile quantization, instruction mix), in `(0, 1]`.
    pub fn efficiency(&self) -> f64 {
        self.efficiency
    }
}

/// Builder for [`KernelDesc`]; see that type's docs for an example.
#[derive(Debug, Clone)]
pub struct KernelDescBuilder {
    desc: KernelDesc,
}

impl KernelDescBuilder {
    /// Floating-point operations performed by the invocation.
    pub fn flops(mut self, flops: f64) -> Self {
        self.desc.flops = flops;
        self
    }

    /// Bytes requested by loads.
    pub fn read_bytes(mut self, bytes: f64) -> Self {
        self.desc.read_bytes = bytes;
        self
    }

    /// Bytes written by stores.
    pub fn write_bytes(mut self, bytes: f64) -> Self {
        self.desc.write_bytes = bytes;
        self
    }

    /// Compulsory (unique-data) traffic in bytes. Defaults to
    /// `read_bytes + write_bytes` (a pure streaming kernel).
    pub fn footprint_bytes(mut self, bytes: f64) -> Self {
        self.desc.footprint_bytes = bytes;
        self
    }

    /// L1 reuse fraction and per-CU working set.
    pub fn l1_reuse(mut self, locality: f64, working_set: f64) -> Self {
        self.desc.l1_locality = locality;
        self.desc.l1_working_set = working_set;
        self
    }

    /// L2 reuse fraction and device-wide working set.
    pub fn l2_reuse(mut self, locality: f64, working_set: f64) -> Self {
        self.desc.l2_locality = locality;
        self.desc.l2_working_set = working_set;
        self
    }

    /// Independent workgroups launched.
    pub fn workgroups(mut self, wgs: f64) -> Self {
        self.desc.workgroups = wgs;
        self
    }

    /// Achievable fraction of peak ALU throughput, in `(0, 1]`.
    pub fn efficiency(mut self, eff: f64) -> Self {
        self.desc.efficiency = eff;
        self
    }

    /// Finish building the descriptor.
    ///
    /// All quantities are clamped into their valid ranges rather than
    /// rejected: negative byte/flop counts become 0, localities are clamped
    /// to `[0, 1]`, efficiency to `[0.01, 1]`, and workgroups to at least 1.
    /// The footprint is clamped to at most `read_bytes + write_bytes`.
    pub fn build(self) -> KernelDesc {
        let mut d = self.desc;
        d.flops = d.flops.max(0.0);
        d.read_bytes = d.read_bytes.max(0.0);
        d.write_bytes = d.write_bytes.max(0.0);
        let requested = d.read_bytes + d.write_bytes;
        if d.footprint_bytes.is_nan() {
            d.footprint_bytes = requested;
        }
        d.footprint_bytes = d.footprint_bytes.clamp(0.0, requested);
        d.l1_locality = d.l1_locality.clamp(0.0, 1.0);
        d.l2_locality = d.l2_locality.clamp(0.0, 1.0);
        d.l1_working_set = d.l1_working_set.max(0.0);
        d.l2_working_set = d.l2_working_set.max(0.0);
        d.workgroups = d.workgroups.max(1.0);
        d.efficiency = d.efficiency.clamp(0.01, 1.0);
        d
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_defaults_are_streaming() {
        let k = KernelDesc::builder("copy", KernelKind::Memory)
            .read_bytes(1000.0)
            .write_bytes(1000.0)
            .build();
        assert_eq!(k.footprint_bytes(), 2000.0);
        assert_eq!(k.l1_locality(), 0.0);
        assert_eq!(k.l2_locality(), 0.0);
    }

    #[test]
    fn build_clamps_invalid_values() {
        let k = KernelDesc::builder("bad", KernelKind::Elementwise)
            .flops(-5.0)
            .read_bytes(100.0)
            .write_bytes(-10.0)
            .footprint_bytes(1e9)
            .l1_reuse(7.0, -3.0)
            .efficiency(42.0)
            .workgroups(0.0)
            .build();
        assert_eq!(k.flops(), 0.0);
        assert_eq!(k.write_bytes(), 0.0);
        assert_eq!(k.footprint_bytes(), 100.0); // clamped to requested
        assert_eq!(k.l1_locality(), 1.0);
        assert_eq!(k.l1_working_set(), 0.0);
        assert_eq!(k.efficiency(), 1.0);
        assert_eq!(k.workgroups(), 1.0);
    }

    #[test]
    fn kind_labels_are_unique() {
        let mut labels: Vec<&str> = KernelKind::all().iter().map(|k| k.label()).collect();
        labels.sort_unstable();
        labels.dedup();
        assert_eq!(labels.len(), KernelKind::all().len());
    }

    #[test]
    fn display_matches_label() {
        assert_eq!(KernelKind::Gemm.to_string(), "gemm");
        assert_eq!(KernelKind::Softmax.to_string(), "softmax");
    }
}
