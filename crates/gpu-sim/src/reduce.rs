//! Reduction and softmax kernels.
//!
//! Row-wise reductions appear throughout SQNN training: attention-score
//! normalization, loss terms, batch-norm statistics, and the vocabulary
//! softmax. Like real frameworks, the kernel chosen depends on the row
//! width (single-pass for narrow rows, two-pass for wide ones), so the
//! kernel identity varies with sequence length.

use crate::{KernelDesc, KernelKind};

/// Row width at which a single-workgroup-per-row reduction no longer fits
/// and a two-pass kernel is dispatched.
const SINGLE_PASS_WIDTH: u64 = 4096;

/// Build a row-wise reduction kernel (`rows` independent reductions over
/// `width` elements each), named `reduce_<op>_<1p|2p>`.
///
/// ```
/// use gpu_sim::reduce::reduce;
///
/// assert_eq!(reduce("sum", 64, 512).name(), "reduce_sum_1p");
/// assert_eq!(reduce("sum", 64, 100_000).name(), "reduce_sum_2p");
/// ```
pub fn reduce(op: &str, rows: u64, width: u64) -> KernelDesc {
    let (r, w) = (rows as f64, width as f64);
    let two_pass = width > SINGLE_PASS_WIDTH;
    let suffix = if two_pass { "2p" } else { "1p" };
    // A two-pass reduction writes and re-reads per-block partials.
    let partials = if two_pass {
        r * (w / SINGLE_PASS_WIDTH as f64).ceil() * 4.0
    } else {
        0.0
    };
    KernelDesc::builder(format!("reduce_{op}_{suffix}"), KernelKind::Reduce)
        .flops(r * w)
        .read_bytes(r * w * 4.0 + partials)
        .write_bytes(r * 4.0 + partials)
        .l1_reuse(0.1, w * 4.0)
        .l2_reuse(if two_pass { 0.3 } else { 0.0 }, partials.max(1.0))
        .workgroups(
            r.max(1.0)
                * if two_pass {
                    (w / SINGLE_PASS_WIDTH as f64).ceil()
                } else {
                    1.0
                },
        )
        .efficiency(0.6)
        .build()
}

/// Build a row-wise softmax kernel over `rows × width` scores.
///
/// Width buckets select among fused kernels (narrow rows fit in LDS) and a
/// two-pass fallback — reproducing how attention softmax (width = encoder
/// length) and vocabulary softmax (width = vocab size) bind to different
/// kernels at different sequence lengths.
pub fn softmax(rows: u64, width: u64) -> KernelDesc {
    let (r, w) = (rows as f64, width as f64);
    let name = if width <= 1024 {
        "softmax_w1k"
    } else if width <= 4096 {
        "softmax_w4k"
    } else {
        "softmax_2pass"
    };
    let passes = if width > 4096 { 3.0 } else { 2.0 };
    KernelDesc::builder(name, KernelKind::Softmax)
        .flops(r * w * 5.0) // max, subtract, exp, accumulate, divide
        .read_bytes(r * w * 4.0 * (passes - 1.0))
        .write_bytes(r * w * 4.0)
        .footprint_bytes(r * w * 8.0)
        .l1_reuse(0.6, w * 4.0)
        .l2_reuse(0.5, r * w * 4.0)
        .workgroups(r.max(1.0))
        .efficiency(0.5)
        .build()
}

/// Batch-norm statistics + normalization over `elems` activations grouped
/// into `channels` (forward). Emitted by the DS2 batch-norm layer.
pub fn batchnorm(elems: u64, channels: u64, backward: bool) -> KernelDesc {
    let e = elems as f64;
    let name = if backward { "bnorm_bwd" } else { "bnorm_fwd" };
    KernelDesc::builder(name, KernelKind::BatchNorm)
        .flops(e * if backward { 8.0 } else { 5.0 })
        .read_bytes(e * 4.0 * if backward { 3.0 } else { 2.0 })
        .write_bytes(e * 4.0 + channels as f64 * 8.0)
        .l1_reuse(0.2, 16.0 * 1024.0)
        .l2_reuse(0.3, e * 4.0)
        .workgroups((e / 1024.0).ceil().max(1.0))
        .efficiency(0.55)
        .build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{kernel_time, GpuConfig};

    #[test]
    fn pass_count_selected_by_width() {
        assert_eq!(reduce("sum", 10, 4096).name(), "reduce_sum_1p");
        assert_eq!(reduce("sum", 10, 4097).name(), "reduce_sum_2p");
    }

    #[test]
    fn softmax_buckets_by_width() {
        assert_eq!(softmax(64, 80).name(), "softmax_w1k");
        assert_eq!(softmax(64, 2048).name(), "softmax_w4k");
        assert_eq!(softmax(64, 36549).name(), "softmax_2pass");
    }

    #[test]
    fn two_pass_reads_more() {
        let narrow = reduce("sum", 100, 4096);
        let wide = reduce("sum", 100, 8192);
        let per_elem_narrow = narrow.read_bytes() / (100.0 * 4096.0);
        let per_elem_wide = wide.read_bytes() / (100.0 * 8192.0);
        assert!(per_elem_wide > per_elem_narrow);
    }

    #[test]
    fn softmax_time_grows_with_width() {
        let cfg = GpuConfig::vega_fe();
        let small = kernel_time(&cfg, &softmax(6400, 64)).time_s;
        let large = kernel_time(&cfg, &softmax(6400, 36549)).time_s;
        assert!(large > small);
    }

    #[test]
    fn batchnorm_backward_costs_more() {
        let cfg = GpuConfig::vega_fe();
        let fwd = kernel_time(&cfg, &batchnorm(1 << 22, 32, false)).time_s;
        let bwd = kernel_time(&cfg, &batchnorm(1 << 22, 32, true)).time_s;
        assert!(bwd > fwd);
    }

    #[test]
    fn zero_rows_are_harmless() {
        let k = reduce("sum", 0, 128);
        assert_eq!(k.flops(), 0.0);
        assert_eq!(k.workgroups(), 1.0);
    }
}
