use std::collections::HashMap;

use serde::{Deserialize, Serialize};

use crate::gemm::{self, GemmShape, GemmVariant};
use crate::{GpuConfig, KernelDesc};

/// Number of timing trials per variant the autotune pass runs. Framework
/// autotuners measure each candidate once on a truncated instance and
/// keep the winner.
const TUNE_TRIALS: u32 = 1;

/// A per-configuration autotune table mapping GEMM problems to the variant
/// an autotune pass selected, with the accumulated cost of tuning.
///
/// The paper (Section IV-C2) observes that frameworks run an expensive
/// "autotune" phase once per training run to pick the optimal kernel per
/// computation, and that it can be ignored when building representative
/// profiles *because it only runs once*. This table models exactly that:
/// the first time a shape is seen it is tuned (cost recorded), afterwards
/// lookups are free.
///
/// ```
/// use gpu_sim::{gemm::GemmShape, AutotuneTable, GpuConfig};
///
/// let cfg = GpuConfig::vega_fe();
/// let mut tuner = AutotuneTable::new();
/// let a = tuner.gemm(&cfg, GemmShape::new(1024, 1024, 64));
/// let b = tuner.gemm(&cfg, GemmShape::new(1024, 1024, 64));
/// assert_eq!(a, b);                       // cached decision
/// assert_eq!(tuner.shapes_tuned(), 1);    // tuned only once
/// assert!(tuner.tuning_cost_s() > 0.0);
/// ```
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct AutotuneTable {
    #[serde(skip)]
    choices: HashMap<(String, GemmShape), &'static GemmVariant>,
    tuning_cost_s: f64,
}

impl AutotuneTable {
    /// Create an empty table.
    pub fn new() -> Self {
        AutotuneTable::default()
    }

    /// Return the tuned GEMM kernel for `shape` with the default (`"nn"`)
    /// flavor, tuning on first sight.
    pub fn gemm(&mut self, cfg: &GpuConfig, shape: GemmShape) -> KernelDesc {
        self.gemm_flavored(cfg, "nn", shape)
    }

    /// Return the tuned GEMM kernel for `shape` with an explicit flavor
    /// (`"nn"`, `"nt"`, `"tn"`, …), tuning on first sight.
    pub fn gemm_flavored(&mut self, cfg: &GpuConfig, flavor: &str, shape: GemmShape) -> KernelDesc {
        let key = (flavor.to_owned(), shape);
        let variant = match self.choices.get(&key) {
            Some(v) => v,
            None => {
                let v = gemm::best_variant(cfg, shape, flavor);
                self.tuning_cost_s += gemm::tuning_cost_s(cfg, shape, flavor, TUNE_TRIALS);
                self.choices.insert(key, v);
                v
            }
        };
        gemm::kernel_for(shape, flavor, variant)
    }

    /// Total simulated time spent in autotune measurements so far.
    pub fn tuning_cost_s(&self) -> f64 {
        self.tuning_cost_s
    }

    /// Number of distinct (flavor, shape) problems tuned so far.
    pub fn shapes_tuned(&self) -> usize {
        self.choices.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tuning_cost_accumulates_only_for_new_shapes() {
        let cfg = GpuConfig::vega_fe();
        let mut tuner = AutotuneTable::new();
        tuner.gemm(&cfg, GemmShape::new(256, 256, 256));
        let cost_one = tuner.tuning_cost_s();
        tuner.gemm(&cfg, GemmShape::new(256, 256, 256));
        assert_eq!(tuner.tuning_cost_s(), cost_one);
        tuner.gemm(&cfg, GemmShape::new(512, 512, 512));
        assert!(tuner.tuning_cost_s() > cost_one);
        assert_eq!(tuner.shapes_tuned(), 2);
    }

    #[test]
    fn flavors_are_tuned_separately() {
        let cfg = GpuConfig::vega_fe();
        let mut tuner = AutotuneTable::new();
        let s = GemmShape::new(1024, 1024, 1024);
        tuner.gemm_flavored(&cfg, "nn", s);
        tuner.gemm_flavored(&cfg, "nt", s);
        assert_eq!(tuner.shapes_tuned(), 2);
    }

    #[test]
    fn tuned_kernel_is_at_least_as_fast_as_any_fixed_variant() {
        use crate::{gemm::VARIANTS, kernel_time};
        let cfg = GpuConfig::vega_fe();
        let mut tuner = AutotuneTable::new();
        for shape in [
            GemmShape::new(4096, 1024, 6400),
            GemmShape::new(29, 1600, 3776),
            GemmShape::new(1024, 1024, 64),
        ] {
            let tuned = tuner.gemm(&cfg, shape);
            let t_tuned = kernel_time(&cfg, &tuned).time_s;
            for v in VARIANTS {
                let t_v = kernel_time(&cfg, &gemm::kernel_for(shape, "nn", v)).time_s;
                assert!(t_tuned <= t_v + 1e-15, "shape {shape} variant {}", v.label);
            }
        }
    }

    #[test]
    fn different_configs_can_pick_different_variants() {
        // Not asserted to differ for all shapes, but the mechanism must
        // allow it: tuning tables are per-config by construction.
        let base = GpuConfig::vega_fe();
        let tiny = GpuConfig::builder("cu4").cu_count(4).build().unwrap();
        let shape = GemmShape::new(2048, 1024, 2048);
        let mut t1 = AutotuneTable::new();
        let mut t2 = AutotuneTable::new();
        let k1 = t1.gemm(&base, shape);
        let k2 = t2.gemm(&tiny, shape);
        // Both are valid GEMM kernels for the same shape.
        assert_eq!(k1.flops(), k2.flops());
    }
}
