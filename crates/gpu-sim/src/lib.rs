//! # gpu-sim — an analytic GPU timing and counter simulator
//!
//! The SeqPoint paper profiles SQNN training on a real AMD Radeon Vega
//! Frontier Edition GPU. This crate is the substitute substrate: a
//! deterministic, analytic model of a Vega-class GPU that executes *kernel
//! traces* (sequences of [`KernelDesc`]) and reports per-kernel and
//! per-trace runtimes plus the performance counters the paper relies on
//! (vector-ALU instructions, memory-write stalls, load data size).
//!
//! The model captures exactly the mechanisms the paper attributes iteration
//! heterogeneity to:
//!
//! * **Roofline timing** — each kernel's runtime is the maximum of its
//!   compute time, L2 time, and DRAM time plus a fixed launch overhead, so
//!   small-sequence-length iterations are launch/memory bound and large ones
//!   are compute bound.
//! * **Cache capacity model** — working-set-based L1/L2 hit rates; setting a
//!   cache's size to zero disables it (the paper's configs #4 and #5).
//! * **Occupancy** — kernels with too few workgroups cannot fill all compute
//!   units, which makes CU-count changes (config #3) sequence-length
//!   sensitive.
//! * **Kernel variant selection** — a rocBLAS-like tiled-GEMM variant
//!   library plus an autotune pass picks different kernels for different
//!   shapes, reproducing the paper's observation that *which* kernels run
//!   changes with sequence length (Fig. 5).
//!
//! ## Example
//!
//! ```
//! use gpu_sim::{gemm::GemmShape, AutotuneTable, Device, GpuConfig};
//!
//! # fn main() -> Result<(), gpu_sim::SimError> {
//! let device = Device::new(GpuConfig::vega_fe());
//! let mut tuner = AutotuneTable::new();
//! let kernel = tuner.gemm(device.config(), GemmShape::new(1024, 1024, 4096));
//! let profile = device.run_trace(std::slice::from_ref(&kernel));
//! assert!(profile.total_time_s() > 0.0);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod autotune;
mod cache;
mod config;
mod counters;
mod device;
mod error;
mod kernel;
mod timing;

pub mod conv;
pub mod elementwise;
pub mod energy;
pub mod gemm;
pub mod memops;
pub mod reduce;
pub mod trace_format;

pub use autotune::AutotuneTable;
pub use cache::{capture_fraction, CacheModel};
pub use config::{GpuConfig, GpuConfigBuilder, TABLE2_CONFIG_COUNT};
pub use counters::{KernelAgg, KernelCounters, TraceProfile};
pub use device::{Device, JitterModel};
pub use error::SimError;
pub use kernel::{KernelDesc, KernelDescBuilder, KernelKind};
pub use timing::{kernel_time, KernelTiming};
