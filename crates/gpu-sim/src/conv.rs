//! Convolution kernels lowered to implicit GEMM (MIOpen-style).
//!
//! DeepSpeech2's front-end is two 2-D convolutions over the spectrogram;
//! their cost scales with the time dimension and therefore with sequence
//! length. Each pass (forward, backward-data, backward-weights) maps to an
//! implicit-GEMM problem and reuses the tiled-GEMM variant library.

use serde::{Deserialize, Serialize};

use crate::gemm::{self, GemmShape};
use crate::{GpuConfig, KernelDesc};

/// A 2-D convolution problem with SAME padding.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ConvShape {
    /// Batch size.
    pub batch: u64,
    /// Input channels.
    pub in_c: u64,
    /// Output channels.
    pub out_c: u64,
    /// Input height (frequency bins for DS2).
    pub in_h: u64,
    /// Input width (time frames for DS2).
    pub in_w: u64,
    /// Kernel height.
    pub kh: u64,
    /// Kernel width.
    pub kw: u64,
    /// Vertical stride.
    pub stride_h: u64,
    /// Horizontal stride.
    pub stride_w: u64,
}

impl ConvShape {
    /// Output height under SAME padding.
    pub fn out_h(&self) -> u64 {
        self.in_h.div_ceil(self.stride_h.max(1))
    }

    /// Output width under SAME padding.
    pub fn out_w(&self) -> u64 {
        self.in_w.div_ceil(self.stride_w.max(1))
    }

    /// The implicit-GEMM problem of the forward pass:
    /// `M = out_c`, `K = in_c·kh·kw`, `N = batch·out_h·out_w`.
    pub fn forward_gemm(&self) -> GemmShape {
        GemmShape::new(
            self.out_c,
            self.in_c * self.kh * self.kw,
            self.batch * self.out_h() * self.out_w(),
        )
    }

    /// Bytes of the input activation tensor.
    pub fn input_bytes(&self) -> f64 {
        (self.batch * self.in_c * self.in_h * self.in_w * 4) as f64
    }

    /// Bytes of the weight tensor.
    pub fn weight_bytes(&self) -> f64 {
        (self.out_c * self.in_c * self.kh * self.kw * 4) as f64
    }

    /// Bytes of the output activation tensor.
    pub fn output_bytes(&self) -> f64 {
        (self.batch * self.out_c * self.out_h() * self.out_w() * 4) as f64
    }

    /// Number of learnable parameters.
    pub fn param_count(&self) -> u64 {
        self.out_c * self.in_c * self.kh * self.kw + self.out_c
    }
}

/// Which convolution pass a kernel implements.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ConvPass {
    /// Forward activation computation.
    Forward,
    /// Gradient with respect to the input (backward-data).
    BackwardData,
    /// Gradient with respect to the weights (backward-weights).
    BackwardWeights,
}

impl ConvPass {
    fn flavor(self) -> &'static str {
        match self {
            ConvPass::Forward => "igemm_fwd",
            ConvPass::BackwardData => "igemm_bwdd",
            ConvPass::BackwardWeights => "igemm_bwdw",
        }
    }

    /// The implicit-GEMM problem for this pass of `shape`.
    pub fn gemm_shape(self, shape: &ConvShape) -> GemmShape {
        let f = shape.forward_gemm();
        match self {
            ConvPass::Forward => f,
            // dX = Wᵀ · dY : M = K_f, K = M_f, N = N_f
            ConvPass::BackwardData => GemmShape::new(f.k, f.m, f.n),
            // dW = dY · im2col(X)ᵀ : M = M_f, K = N_f, N = K_f
            ConvPass::BackwardWeights => GemmShape::new(f.m, f.n, f.k),
        }
    }
}

/// Build the kernel for one pass of a convolution, choosing the best
/// implicit-GEMM tile variant for `cfg`.
///
/// The kernel inherits the GEMM traffic model but with the input footprint
/// corrected for im2col expansion (the halo re-reads are served by cache,
/// so the compulsory input traffic is the raw activation tensor, not the
/// expanded matrix) and a higher L1 locality from the halo overlap.
pub fn kernel(cfg: &GpuConfig, shape: &ConvShape, pass: ConvPass) -> KernelDesc {
    let g = pass.gemm_shape(shape);
    let flavor = pass.flavor();
    let variant = gemm::best_variant(cfg, g, flavor);
    let base = gemm::kernel_for(g, flavor, variant);
    // The GEMM model's footprint counts the im2col-expanded matrix; the
    // compulsory traffic is really input + weights + output.
    let footprint = shape.input_bytes() + shape.weight_bytes() + shape.output_bytes();
    KernelDesc::builder(format!("conv_{}", base.name()), base.kind())
        .flops(base.flops())
        .read_bytes(base.read_bytes())
        .write_bytes(base.write_bytes())
        .footprint_bytes(footprint.min(base.read_bytes() + base.write_bytes()))
        .l1_reuse(0.6, base.l1_working_set())
        .l2_reuse(
            (1.0 - footprint / (base.read_bytes() + base.write_bytes()).max(1.0)).clamp(0.0, 1.0),
            shape.input_bytes() + shape.weight_bytes(),
        )
        .workgroups(base.workgroups())
        .efficiency(base.efficiency() * 0.9) // im2col addressing overhead
        .build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{kernel_time, GpuConfig};

    /// DS2's first conv layer on a T-frame spectrogram (161 freq bins).
    fn ds2_conv1(t_frames: u64) -> ConvShape {
        ConvShape {
            batch: 64,
            in_c: 1,
            out_c: 32,
            in_h: 161,
            in_w: t_frames,
            kh: 41,
            kw: 11,
            stride_h: 2,
            stride_w: 2,
        }
    }

    #[test]
    fn same_padding_output_dims() {
        let s = ds2_conv1(800);
        assert_eq!(s.out_h(), 81);
        assert_eq!(s.out_w(), 400);
    }

    #[test]
    fn forward_gemm_dimensions() {
        let s = ds2_conv1(800);
        let g = s.forward_gemm();
        assert_eq!(g.m, 32);
        assert_eq!(g.k, 41 * 11);
        assert_eq!(g.n, 64 * 81 * 400);
    }

    #[test]
    fn conv_time_scales_with_time_dimension() {
        let cfg = GpuConfig::vega_fe();
        let short = kernel(&cfg, &ds2_conv1(100), ConvPass::Forward);
        let long = kernel(&cfg, &ds2_conv1(800), ConvPass::Forward);
        let t_short = kernel_time(&cfg, &short).time_s;
        let t_long = kernel_time(&cfg, &long).time_s;
        assert!(t_long > 4.0 * t_short, "t_long={t_long}, t_short={t_short}");
    }

    #[test]
    fn backward_passes_have_distinct_kernels() {
        let cfg = GpuConfig::vega_fe();
        let s = ds2_conv1(400);
        let fwd = kernel(&cfg, &s, ConvPass::Forward);
        let bwd_d = kernel(&cfg, &s, ConvPass::BackwardData);
        let bwd_w = kernel(&cfg, &s, ConvPass::BackwardWeights);
        assert_ne!(fwd.name(), bwd_d.name());
        assert_ne!(fwd.name(), bwd_w.name());
        assert_ne!(bwd_d.name(), bwd_w.name());
    }

    #[test]
    fn backward_gemm_shapes_transpose_forward() {
        let s = ds2_conv1(400);
        let f = ConvPass::Forward.gemm_shape(&s);
        let d = ConvPass::BackwardData.gemm_shape(&s);
        let w = ConvPass::BackwardWeights.gemm_shape(&s);
        assert_eq!(f.flops(), d.flops());
        assert_eq!(f.flops(), w.flops());
        assert_eq!(d.m, f.k);
        assert_eq!(w.k, f.n);
    }

    #[test]
    fn param_count_matches_formula() {
        let s = ds2_conv1(100);
        // out_c=32, in_c=1, kh=41, kw=11, plus per-channel bias.
        assert_eq!(s.param_count(), 32 * 41 * 11 + 32);
    }
}
