use serde::{Deserialize, Serialize};

use crate::SimError;

/// Number of hardware configurations in the paper's Table II.
pub const TABLE2_CONFIG_COUNT: usize = 5;

/// A GPU hardware configuration.
///
/// Defaults model the AMD Radeon Vega Frontier Edition used by the paper:
/// 64 compute units (CUs) at 1.6 GHz, 16 KiB L1 per CU, a 4 MiB shared L2,
/// and 484 GB/s of HBM2 bandwidth. The paper's Table II varies the core
/// clock, CU count, and L1/L2 capacities; [`GpuConfig::table2_configs`]
/// returns those five configurations.
///
/// Construct presets with [`GpuConfig::vega_fe`] or customized instances
/// with [`GpuConfig::builder`]:
///
/// ```
/// use gpu_sim::GpuConfig;
///
/// # fn main() -> Result<(), gpu_sim::SimError> {
/// let cfg = GpuConfig::builder("half-clock")
///     .gclk_ghz(0.8)
///     .cu_count(64)
///     .build()?;
/// assert!(cfg.peak_flops() < GpuConfig::vega_fe().peak_flops());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GpuConfig {
    name: String,
    gclk_ghz: f64,
    cu_count: u32,
    l1_kib_per_cu: u32,
    l2_mib: u32,
    dram_gbps: f64,
    lanes_per_cu: u32,
    flops_per_lane_cycle: f64,
    l2_bytes_per_cycle_per_cu: f64,
    launch_overhead_us: f64,
    concurrent_workgroups_per_cu: u32,
}

impl GpuConfig {
    /// The paper's baseline machine (Table II config #1): Vega FE with
    /// 64 CUs at 1.6 GHz, 16 KiB L1 per CU, 4 MiB L2, 484 GB/s HBM2.
    pub fn vega_fe() -> Self {
        GpuConfigBuilder::new("config#1")
            .build()
            .expect("preset is valid")
    }

    /// The five hardware configurations of the paper's Table II.
    ///
    /// | Config | GCLK | #CU | L1 | L2 |
    /// |---|---|---|---|---|
    /// | #1 | 1.6 GHz | 64 | 16 KiB | 4 MiB |
    /// | #2 | 852 MHz | 64 | 16 KiB | 4 MiB |
    /// | #3 | 1.6 GHz | 16 | 16 KiB | 4 MiB |
    /// | #4 | 1.6 GHz | 64 | 0 KiB | 4 MiB |
    /// | #5 | 1.6 GHz | 64 | 16 KiB | 0 MiB |
    pub fn table2_configs() -> [GpuConfig; TABLE2_CONFIG_COUNT] {
        let build = |name: &str, f: &dyn Fn(GpuConfigBuilder) -> GpuConfigBuilder| {
            f(GpuConfigBuilder::new(name))
                .build()
                .expect("preset is valid")
        };
        [
            build("config#1", &|b| b),
            build("config#2", &|b| b.gclk_ghz(0.852)),
            build("config#3", &|b| b.cu_count(16)),
            build("config#4", &|b| b.l1_kib_per_cu(0)),
            build("config#5", &|b| b.l2_mib(0)),
        ]
    }

    /// Start building a custom configuration named `name`.
    pub fn builder(name: impl Into<String>) -> GpuConfigBuilder {
        GpuConfigBuilder::new(name)
    }

    /// The configuration's display name (e.g. `"config#1"`).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Core (shader) clock in GHz.
    pub fn gclk_ghz(&self) -> f64 {
        self.gclk_ghz
    }

    /// Core clock in Hz.
    pub fn gclk_hz(&self) -> f64 {
        self.gclk_ghz * 1e9
    }

    /// Number of active compute units.
    pub fn cu_count(&self) -> u32 {
        self.cu_count
    }

    /// L1 cache capacity per CU in bytes (0 means the L1 is disabled).
    pub fn l1_bytes(&self) -> f64 {
        f64::from(self.l1_kib_per_cu) * 1024.0
    }

    /// Shared L2 cache capacity in bytes (0 means the L2 is disabled).
    pub fn l2_bytes(&self) -> f64 {
        f64::from(self.l2_mib) * 1024.0 * 1024.0
    }

    /// Whether the per-CU L1 caches are present.
    pub fn l1_enabled(&self) -> bool {
        self.l1_kib_per_cu > 0
    }

    /// Whether the shared L2 cache is present.
    pub fn l2_enabled(&self) -> bool {
        self.l2_mib > 0
    }

    /// DRAM (HBM2) bandwidth in bytes per second.
    pub fn dram_bandwidth(&self) -> f64 {
        self.dram_gbps * 1e9
    }

    /// Aggregate L2 bandwidth in bytes per second. On-chip bandwidth scales
    /// with both the clock and the number of CU-facing ports.
    pub fn l2_bandwidth(&self) -> f64 {
        self.l2_bytes_per_cycle_per_cu * f64::from(self.cu_count) * self.gclk_hz()
    }

    /// Peak single-precision throughput in FLOP/s.
    pub fn peak_flops(&self) -> f64 {
        f64::from(self.cu_count)
            * f64::from(self.lanes_per_cu)
            * self.flops_per_lane_cycle
            * self.gclk_hz()
    }

    /// SIMD lanes per CU (64 for GCN/Vega).
    pub fn lanes_per_cu(&self) -> u32 {
        self.lanes_per_cu
    }

    /// Fixed kernel-launch overhead in seconds.
    pub fn launch_overhead_s(&self) -> f64 {
        self.launch_overhead_us * 1e-6
    }

    /// Number of workgroups the device must have in flight to reach full
    /// throughput (used by the occupancy model).
    pub fn saturating_workgroups(&self) -> f64 {
        f64::from(self.cu_count) * f64::from(self.concurrent_workgroups_per_cu)
    }
}

impl Default for GpuConfig {
    fn default() -> Self {
        GpuConfig::vega_fe()
    }
}

/// Builder for [`GpuConfig`]; see that type's docs for an example.
#[derive(Debug, Clone)]
pub struct GpuConfigBuilder {
    cfg: GpuConfig,
}

impl GpuConfigBuilder {
    /// Create a builder whose defaults are the Vega FE baseline.
    pub fn new(name: impl Into<String>) -> Self {
        GpuConfigBuilder {
            cfg: GpuConfig {
                name: name.into(),
                gclk_ghz: 1.6,
                cu_count: 64,
                l1_kib_per_cu: 16,
                l2_mib: 4,
                dram_gbps: 484.0,
                lanes_per_cu: 64,
                flops_per_lane_cycle: 2.0,
                l2_bytes_per_cycle_per_cu: 16.0,
                launch_overhead_us: 4.0,
                concurrent_workgroups_per_cu: 4,
            },
        }
    }

    /// Set the core clock in GHz.
    pub fn gclk_ghz(mut self, ghz: f64) -> Self {
        self.cfg.gclk_ghz = ghz;
        self
    }

    /// Set the number of active compute units.
    pub fn cu_count(mut self, cus: u32) -> Self {
        self.cfg.cu_count = cus;
        self
    }

    /// Set the per-CU L1 capacity in KiB (0 disables the L1).
    pub fn l1_kib_per_cu(mut self, kib: u32) -> Self {
        self.cfg.l1_kib_per_cu = kib;
        self
    }

    /// Set the shared L2 capacity in MiB (0 disables the L2).
    pub fn l2_mib(mut self, mib: u32) -> Self {
        self.cfg.l2_mib = mib;
        self
    }

    /// Set DRAM bandwidth in GB/s.
    pub fn dram_gbps(mut self, gbps: f64) -> Self {
        self.cfg.dram_gbps = gbps;
        self
    }

    /// Set the fixed kernel-launch overhead in microseconds.
    pub fn launch_overhead_us(mut self, us: f64) -> Self {
        self.cfg.launch_overhead_us = us;
        self
    }

    /// Set SIMD lanes per CU.
    pub fn lanes_per_cu(mut self, lanes: u32) -> Self {
        self.cfg.lanes_per_cu = lanes;
        self
    }

    /// Finish building.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidConfig`] if the clock, CU count, lane
    /// count, or DRAM bandwidth is non-positive, or if the launch overhead
    /// is negative.
    pub fn build(self) -> Result<GpuConfig, SimError> {
        let c = &self.cfg;
        let invalid = |field: &'static str, reason: &str| {
            Err(SimError::InvalidConfig {
                field,
                reason: reason.to_owned(),
            })
        };
        if c.gclk_ghz <= 0.0 || !c.gclk_ghz.is_finite() {
            return invalid("gclk_ghz", "must be positive and finite");
        }
        if c.cu_count == 0 {
            return invalid("cu_count", "must be at least 1");
        }
        if c.lanes_per_cu == 0 {
            return invalid("lanes_per_cu", "must be at least 1");
        }
        if c.dram_gbps <= 0.0 || !c.dram_gbps.is_finite() {
            return invalid("dram_gbps", "must be positive and finite");
        }
        if c.launch_overhead_us < 0.0 || !c.launch_overhead_us.is_finite() {
            return invalid("launch_overhead_us", "must be non-negative and finite");
        }
        Ok(self.cfg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vega_fe_matches_paper_baseline() {
        let cfg = GpuConfig::vega_fe();
        assert_eq!(cfg.cu_count(), 64);
        assert!((cfg.gclk_ghz() - 1.6).abs() < 1e-12);
        assert_eq!(cfg.l1_bytes() as u64, 16 * 1024);
        assert_eq!(cfg.l2_bytes() as u64, 4 * 1024 * 1024);
        assert!(cfg.l1_enabled());
        assert!(cfg.l2_enabled());
    }

    #[test]
    fn table2_has_five_distinct_configs() {
        let configs = GpuConfig::table2_configs();
        assert_eq!(configs.len(), TABLE2_CONFIG_COUNT);
        // Config #2 halves the clock relative to #1.
        assert!(configs[1].gclk_ghz() < configs[0].gclk_ghz());
        // Config #3 quarters the CU count.
        assert_eq!(configs[2].cu_count(), 16);
        // Config #4 disables the L1; config #5 the L2.
        assert!(!configs[3].l1_enabled());
        assert!(configs[3].l2_enabled());
        assert!(configs[4].l1_enabled());
        assert!(!configs[4].l2_enabled());
        // All names are distinct.
        for i in 0..configs.len() {
            for j in (i + 1)..configs.len() {
                assert_ne!(configs[i].name(), configs[j].name());
            }
        }
    }

    #[test]
    fn peak_flops_scales_with_clock_and_cus() {
        let base = GpuConfig::vega_fe();
        let half_clock = GpuConfig::builder("hc").gclk_ghz(0.8).build().unwrap();
        let quarter_cu = GpuConfig::builder("qc").cu_count(16).build().unwrap();
        assert!((half_clock.peak_flops() / base.peak_flops() - 0.5).abs() < 1e-9);
        assert!((quarter_cu.peak_flops() / base.peak_flops() - 0.25).abs() < 1e-9);
    }

    #[test]
    fn vega_peak_is_about_13_tflops() {
        // 64 CU * 64 lanes * 2 flop * 1.6 GHz = 13.1 TFLOP/s, matching the
        // advertised FP32 throughput of the Vega FE.
        let peak = GpuConfig::vega_fe().peak_flops();
        assert!(peak > 13.0e12 && peak < 13.2e12, "peak = {peak}");
    }

    #[test]
    fn builder_rejects_bad_values() {
        assert!(GpuConfig::builder("x").gclk_ghz(0.0).build().is_err());
        assert!(GpuConfig::builder("x").gclk_ghz(f64::NAN).build().is_err());
        assert!(GpuConfig::builder("x").cu_count(0).build().is_err());
        assert!(GpuConfig::builder("x").dram_gbps(-1.0).build().is_err());
        assert!(GpuConfig::builder("x")
            .launch_overhead_us(-1.0)
            .build()
            .is_err());
        assert!(GpuConfig::builder("x").lanes_per_cu(0).build().is_err());
    }

    #[test]
    fn disabled_caches_report_zero_bytes() {
        let no_l1 = GpuConfig::builder("nl1").l1_kib_per_cu(0).build().unwrap();
        assert_eq!(no_l1.l1_bytes(), 0.0);
        assert!(!no_l1.l1_enabled());
        let no_l2 = GpuConfig::builder("nl2").l2_mib(0).build().unwrap();
        assert_eq!(no_l2.l2_bytes(), 0.0);
        assert!(!no_l2.l2_enabled());
    }

    #[test]
    fn l2_bandwidth_scales_with_clock() {
        let base = GpuConfig::vega_fe();
        let slow = GpuConfig::builder("s").gclk_ghz(0.852).build().unwrap();
        let ratio = slow.l2_bandwidth() / base.l2_bandwidth();
        assert!((ratio - 0.852 / 1.6).abs() < 1e-9);
    }

    #[test]
    fn default_is_vega_fe() {
        assert_eq!(GpuConfig::default(), GpuConfig::vega_fe());
    }
}
