//! A first-order GPU energy model.
//!
//! The paper notes SeqPoint works with "any other statistic (or
//! collection of statistics) that varies with SL" (Section V-C). Energy
//! is the statistic hardware architects care about next after time; this
//! module derives per-kernel and per-trace energy from the quantities the
//! timing model already produces — compute work, cache/DRAM traffic, and
//! runtime (for static power).
//!
//! The coefficients are first-order public numbers for a 14 nm-class
//! GPU: ~10 pJ/flop core energy, ~15 pJ/B for DRAM (HBM2), ~1.5 pJ/B for
//! on-chip L2 transfers, and a static floor scaled by the active CU
//! count.

use serde::{Deserialize, Serialize};

use crate::{GpuConfig, KernelCounters, TraceProfile};

/// Energy coefficients. Construct with [`EnergyModel::default`] (14 nm
/// GPU-class numbers) or customize the fields directly.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EnergyModel {
    /// Core (ALU + register + LDS) energy per flop, in picojoules.
    pub pj_per_flop: f64,
    /// DRAM access energy per byte, in picojoules.
    pub pj_per_dram_byte: f64,
    /// L2/on-chip interconnect energy per byte, in picojoules.
    pub pj_per_l2_byte: f64,
    /// Static (leakage + always-on) power per compute unit, in watts.
    pub static_w_per_cu: f64,
}

impl Default for EnergyModel {
    fn default() -> Self {
        EnergyModel {
            pj_per_flop: 10.0,
            pj_per_dram_byte: 15.0,
            pj_per_l2_byte: 1.5,
            static_w_per_cu: 0.9,
        }
    }
}

impl EnergyModel {
    /// Energy of work summarized by `counters` executed over
    /// `wall_time_s` on `cfg`, in joules.
    ///
    /// Flops are recovered from the VALU instruction count (one
    /// lane-wide FMA per instruction).
    pub fn energy_j(&self, cfg: &GpuConfig, counters: &KernelCounters, wall_time_s: f64) -> f64 {
        let flops = counters.valu_insts * 2.0 * f64::from(cfg.lanes_per_cu());
        let dynamic = (flops * self.pj_per_flop
            + counters.dram_bytes * self.pj_per_dram_byte
            + counters.l2_bytes * self.pj_per_l2_byte)
            * 1e-12;
        let static_e = self.static_w_per_cu * f64::from(cfg.cu_count()) * wall_time_s.max(0.0);
        dynamic + static_e
    }

    /// Energy of a whole executed trace, in joules.
    pub fn trace_energy_j(&self, cfg: &GpuConfig, profile: &TraceProfile) -> f64 {
        self.energy_j(cfg, &profile.counters(), profile.total_time_s())
    }

    /// Average power of a trace, in watts (0 for an empty trace).
    pub fn trace_power_w(&self, cfg: &GpuConfig, profile: &TraceProfile) -> f64 {
        let t = profile.total_time_s();
        if t <= 0.0 {
            return 0.0;
        }
        self.trace_energy_j(cfg, profile) / t
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gemm::GemmShape;
    use crate::{AutotuneTable, Device};

    fn gemm_profile(cfg: &GpuConfig, n: u64) -> TraceProfile {
        let device = Device::new(cfg.clone());
        let mut tuner = AutotuneTable::new();
        let k = tuner.gemm(cfg, GemmShape::new(2048, 1024, n));
        device.run_trace(std::slice::from_ref(&k))
    }

    #[test]
    fn energy_is_positive_and_scales_with_work() {
        let cfg = GpuConfig::vega_fe();
        let model = EnergyModel::default();
        let small = model.trace_energy_j(&cfg, &gemm_profile(&cfg, 1024));
        let large = model.trace_energy_j(&cfg, &gemm_profile(&cfg, 8192));
        assert!(small > 0.0);
        assert!(large > 4.0 * small, "large {large} vs small {small}");
    }

    #[test]
    fn average_power_is_gpu_plausible() {
        // A large compute-bound GEMM on a 64-CU part should land in the
        // 100–400 W envelope of a real board.
        let cfg = GpuConfig::vega_fe();
        let model = EnergyModel::default();
        let power = model.trace_power_w(&cfg, &gemm_profile(&cfg, 16384));
        assert!((100.0..400.0).contains(&power), "power = {power} W");
    }

    #[test]
    fn disabling_l2_costs_energy_not_just_time() {
        let base = GpuConfig::vega_fe();
        let no_l2 = GpuConfig::builder("nl2").l2_mib(0).build().unwrap();
        let model = EnergyModel::default();
        // A streaming-with-forwarding kernel: loses its L2 hits.
        let k = crate::elementwise::map("add", 1 << 18, 1.0, 2);
        let device_a = Device::new(base.clone());
        let device_b = Device::new(no_l2.clone());
        let e_with = model.trace_energy_j(&base, &device_a.run_trace(std::slice::from_ref(&k)));
        let e_without = model.trace_energy_j(&no_l2, &device_b.run_trace(std::slice::from_ref(&k)));
        assert!(e_without > e_with, "{e_without} vs {e_with}");
    }

    #[test]
    fn empty_trace_has_zero_power() {
        let cfg = GpuConfig::vega_fe();
        let model = EnergyModel::default();
        assert_eq!(model.trace_power_w(&cfg, &TraceProfile::new()), 0.0);
    }

    #[test]
    fn static_power_grows_with_cu_count() {
        let model = EnergyModel::default();
        let small = GpuConfig::builder("cu16").cu_count(16).build().unwrap();
        let big = GpuConfig::vega_fe();
        let counters = KernelCounters::default();
        assert!(model.energy_j(&big, &counters, 1.0) > model.energy_j(&small, &counters, 1.0));
    }
}
